//! Criterion benches for the three flow steps (Sec 9) and the complete
//! strategy — the quantities behind the paper's "5 seconds per graph"
//! and "90% of the run-time is slice allocation" observations.

use sdfrs_fastutil::{crit::Criterion, criterion_group, criterion_main};

use sdfrs_appmodel::apps::{example_platform, h263_decoder, mp3_decoder, paper_example};
use sdfrs_core::bind::{bind_actors, BindConfig};
use sdfrs_core::binding_aware::BindingAwareGraph;
use sdfrs_core::cost::CostWeights;
use sdfrs_core::flow::FlowConfig;
use sdfrs_core::list_sched::construct_schedules;
use sdfrs_core::slice::{allocate_slices, SliceConfig};
use sdfrs_core::Allocator;
use sdfrs_gen::{AppGenerator, GeneratorConfig};
use sdfrs_platform::mesh::{mesh_platform, multimedia_platform, MeshConfig};
use sdfrs_platform::{PlatformState, ProcessorType};
use sdfrs_sdf::Rational;

fn bench_flow_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_steps");
    let app = paper_example();
    let arch = example_platform();
    let state = PlatformState::new(&arch);

    group.bench_function("bind", |b| {
        b.iter(|| bind_actors(&app, &arch, &state, &BindConfig::default()).unwrap())
    });

    let binding = bind_actors(&app, &arch, &state, &BindConfig::default()).unwrap();
    let ba = BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]).unwrap();
    group.bench_function("list_schedule", |b| {
        b.iter(|| construct_schedules(&ba).unwrap())
    });

    let schedules = construct_schedules(&ba).unwrap();
    group.bench_function("slice_allocation", |b| {
        b.iter(|| {
            let mut ba = ba.clone();
            allocate_slices(
                &mut ba,
                &schedules,
                &app,
                &arch,
                &state,
                &binding,
                &SliceConfig::default(),
            )
            .unwrap()
        })
    });

    group.bench_function("full_flow_paper_example", |b| {
        // A fresh allocator per iteration keeps the cold-cache timing the
        // old free function measured.
        b.iter(|| Allocator::new().allocate(&app, &arch, &state).unwrap())
    });
    group.finish();
}

fn bench_flow_applications(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_applications");
    group.sample_size(10);

    let arch = multimedia_platform();
    let state = PlatformState::new(&arch);
    let flow = FlowConfig::with_weights(CostWeights::MULTIMEDIA);

    let h263 = h263_decoder(0, Rational::new(1, 150_000));
    group.bench_function("h263", |b| {
        b.iter(|| {
            Allocator::from_config(flow)
                .allocate(&h263, &arch, &state)
                .unwrap()
        })
    });

    let mp3 = mp3_decoder(Rational::new(1, 3_000));
    group.bench_function("mp3", |b| {
        b.iter(|| {
            Allocator::from_config(flow)
                .allocate(&mp3, &arch, &state)
                .unwrap()
        })
    });

    // A generated mixed application on a 3×3 mesh: the Sec 10.2 per-graph
    // cost (paper: 5 seconds on a 2007 P4).
    let mesh = mesh_platform("mesh", &MeshConfig::default());
    let mesh_state = PlatformState::new(&mesh);
    let types = vec![
        ProcessorType::new("risc"),
        ProcessorType::new("dsp"),
        ProcessorType::new("acc"),
    ];
    let mut gen = AppGenerator::new(GeneratorConfig::mixed(), types, 99);
    let generated = gen.generate("bench");
    group.bench_function("generated_mixed", |b| {
        b.iter(|| {
            // Some generated graphs may be infeasible on a given platform;
            // both outcomes are valid work for this bench.
            let _ = Allocator::new().allocate(&generated, &mesh, &mesh_state);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_flow_steps, bench_flow_applications);
criterion_main!(benches);
