//! Criterion benches for the HSDF baseline (Fig 1 / Sec 1): conversion
//! cost and maximum-cycle-mean analysis versus the SDF-direct state space.
//!
//! The paper's headline: throughput analysis on the H.263 HSDFG takes 21
//! minutes where the SDFG-based flow needs under 3 — the *ratio* is what
//! this bench reproduces.

use sdfrs_fastutil::{crit::Criterion, criterion_group, criterion_main};

use sdfrs_bench::hsdf_cmp::timed_h263;
use sdfrs_sdf::analysis::mcr::hsdf_max_cycle_mean;
use sdfrs_sdf::analysis::selftimed::SelfTimedExecutor;
use sdfrs_sdf::hsdf::convert_to_hsdf;
use sdfrs_sdf::SdfGraph;

/// A multirate chain with increasing blow-up factor.
fn multirate_chain(factor: u64) -> SdfGraph {
    let mut g = SdfGraph::new(format!("chain_{factor}"));
    let a = g.add_actor("a", 3);
    let b = g.add_actor("b", 1);
    let c = g.add_actor("c", 2);
    g.add_self_edge(a, 1);
    g.add_self_edge(b, 1);
    g.add_self_edge(c, 1);
    g.add_channel("ab", a, factor, b, 1, 0);
    g.add_channel("ba", b, 1, a, factor, 2 * factor);
    g.add_channel("bc", b, 1, c, factor, 0);
    g.add_channel("cb", c, factor, b, 1, 2 * factor);
    g
}

fn bench_hsdf(c: &mut Criterion) {
    let mut group = c.benchmark_group("hsdf_mcm");

    for factor in [8u64, 32, 128] {
        let g = multirate_chain(factor);
        group.bench_function(format!("convert_factor_{factor}"), |b| {
            b.iter(|| convert_to_hsdf(&g).unwrap())
        });
        let h = convert_to_hsdf(&g).unwrap();
        group.bench_function(format!("mcm_factor_{factor}"), |b| {
            b.iter(|| hsdf_max_cycle_mean(&h.graph).unwrap())
        });
        let reference = g.actor_ids().next().unwrap();
        group.bench_function(format!("sdf_direct_factor_{factor}"), |b| {
            b.iter(|| SelfTimedExecutor::new(&g).throughput(reference).unwrap())
        });
    }

    // Two independent MCM algorithms head to head on the same HSDFG.
    let h = convert_to_hsdf(&multirate_chain(32)).unwrap();
    group.bench_function("howard_vs_karp_howard", |b| {
        b.iter(|| hsdf_max_cycle_mean(&h.graph).unwrap())
    });
    group.bench_function("howard_vs_karp_karp", |b| {
        b.iter(|| sdfrs_sdf::analysis::karp::karp_max_cycle_mean(&h.graph).unwrap())
    });

    // The real H.263: conversion alone (MCM on 4754 nodes is benched once
    // with few samples — it is the slow baseline by design).
    let h263 = timed_h263();
    group.sample_size(10);
    group.bench_function("h263_convert", |b| {
        b.iter(|| convert_to_hsdf(&h263).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_hsdf);
criterion_main!(benches);
