//! Criterion benches for the fast-path machinery: the state interner, the
//! memoized evaluation cache, and the parallel DSE sweep.

use sdfrs_fastutil::{crit::Criterion, criterion_group, criterion_main};

use sdfrs_appmodel::apps::{example_platform, paper_example};
use sdfrs_core::binding_aware::BindingAwareGraph;
use sdfrs_core::dse::{explore, explore_parallel};
use sdfrs_core::list_sched::construct_schedules;
use sdfrs_core::thru_cache::ThroughputCache;
use sdfrs_core::{Allocator, Binding, CostWeights, Metrics, RecordingSink};
use sdfrs_fastutil::crit::black_box;
use sdfrs_platform::{PlatformState, TileId};
use sdfrs_sdf::analysis::interner::StateInterner;

fn example_ba() -> BindingAwareGraph {
    let app = paper_example();
    let arch = example_platform();
    let g = app.graph();
    let mut binding = Binding::new(g.actor_count());
    binding.bind(g.actor_by_name("a1").unwrap(), TileId::from_index(0));
    binding.bind(g.actor_by_name("a2").unwrap(), TileId::from_index(0));
    binding.bind(g.actor_by_name("a3").unwrap(), TileId::from_index(1));
    BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]).unwrap()
}

fn bench_interner(c: &mut Criterion) {
    let mut group = c.benchmark_group("interner");

    // Fresh insertions: 1000 distinct 8-word states.
    let states: Vec<Vec<u64>> = (0..1000u64)
        .map(|i| (0..8).map(|j| i.wrapping_mul(31).wrapping_add(j)).collect())
        .collect();
    group.bench_function("intern_1000_fresh", |b| {
        b.iter(|| {
            let mut it = StateInterner::new();
            for s in &states {
                black_box(it.intern(s));
            }
            it.len()
        })
    });

    // Recurrence lookups: every intern is a hit.
    let mut warm = StateInterner::new();
    for s in &states {
        warm.intern(s);
    }
    group.bench_function("intern_1000_hits", |b| {
        b.iter(|| {
            for s in &states {
                black_box(warm.intern(s));
            }
            warm.len()
        })
    });
    group.finish();
}

fn bench_thru_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("thru_cache");
    let ba = example_ba();
    let schedules = construct_schedules(&ba).unwrap();
    let reference = ba.graph().actor_by_name("a3").unwrap();

    // Baseline: memoization off — every call explores the state space.
    let mut off = ThroughputCache::disabled();
    group.bench_function("evaluate_cache_off", |b| {
        b.iter(|| off.throughput(&ba, &schedules, reference, 100_000).unwrap())
    });

    // Warm cache: every call is a fingerprint + lookup.
    let mut on = ThroughputCache::new();
    on.throughput(&ba, &schedules, reference, 100_000).unwrap();
    group.bench_function("evaluate_cache_hit", |b| {
        b.iter(|| on.throughput(&ba, &schedules, reference, 100_000).unwrap())
    });
    group.finish();
}

fn bench_dse(c: &mut Criterion) {
    let mut group = c.benchmark_group("dse_sweep");
    let app = paper_example();
    let arch = example_platform();
    let state = PlatformState::new(&arch);
    let weights = CostWeights::table4();
    group.sample_size(10);
    group.bench_function("explore_sequential", |b| {
        b.iter(|| explore(&app, &arch, &state, &weights).points.len())
    });
    group.bench_function("explore_parallel", |b| {
        b.iter(|| explore_parallel(&app, &arch, &state, &weights).points.len())
    });
    group.finish();
}

/// The observability overhead budget: the default `NullSink` must stay
/// within noise of the pre-instrumentation flow (events are never even
/// constructed), while a recording observer pays for every event. The
/// same budget applies to metrics: the default `Metrics::null()` handle
/// is one branch per site, and even a collecting registry only pays for
/// relaxed atomic increments.
fn bench_observer_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("observer_overhead");
    let app = paper_example();
    let arch = example_platform();
    let state = PlatformState::new(&arch);

    group.bench_function("flow_null_sink", |b| {
        b.iter(|| Allocator::new().allocate(&app, &arch, &state).unwrap())
    });

    group.bench_function("flow_recording_sink", |b| {
        b.iter(|| {
            let sink = RecordingSink::new();
            let out = Allocator::new()
                .with_sink(sink.clone())
                .allocate(&app, &arch, &state)
                .unwrap();
            black_box(sink.len());
            out
        })
    });

    // Metrics off: the `Metrics::null()` default — this is the ≤2%
    // budget bench against `flow_null_sink`.
    group.bench_function("flow_metrics_off", |b| {
        b.iter(|| {
            Allocator::new()
                .with_metrics(Metrics::null())
                .allocate(&app, &arch, &state)
                .unwrap()
        })
    });

    group.bench_function("flow_metrics_on", |b| {
        b.iter(|| {
            let metrics = Metrics::collecting();
            let out = Allocator::new()
                .with_metrics(metrics.clone())
                .allocate(&app, &arch, &state)
                .unwrap();
            black_box(metrics.snapshot());
            out
        })
    });

    // Request tracing off: no event tap installed — the per-site cost
    // is one `tap.is_some()` branch, so this must stay within ~1% of
    // `flow_null_sink`.
    group.bench_function("flow_trace_off", |b| {
        b.iter(|| {
            let mut allocator = Allocator::new();
            allocator.set_event_tap(None);
            allocator.allocate(&app, &arch, &state).unwrap()
        })
    });

    // Request tracing on: a tap records every event into the span tree
    // buffer regardless of the primary sink — the per-request price of
    // a flight-recorder entry.
    group.bench_function("flow_trace_on", |b| {
        b.iter(|| {
            let tap = RecordingSink::new();
            let mut allocator = Allocator::new();
            allocator.set_event_tap(Some(tap.clone()));
            let out = allocator.allocate(&app, &arch, &state).unwrap();
            black_box(tap.len());
            out
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_interner,
    bench_thru_cache,
    bench_dse,
    bench_observer_overhead
);
criterion_main!(benches);
