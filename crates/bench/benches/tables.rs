//! Criterion benches regenerating the paper's tables and figures at a
//! reduced scale (the full-scale runs live in the `repro` binary).

use sdfrs_fastutil::{crit::Criterion, criterion_group, criterion_main};

use sdfrs_bench::table4::{run_experiment_with_weights, ExperimentConfig};
use sdfrs_bench::{fig5, table3, table5};
use sdfrs_core::cost::CostWeights;

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");

    group.bench_function("fig5_all_three_state_spaces", |b| b.iter(fig5::compute));

    group.bench_function("table3_four_bindings", |b| {
        b.iter(|| table3::compute().unwrap())
    });

    // One reduced Table 4 cell per iteration: the tuned weights on every
    // set, one sequence of five applications, all three platforms.
    group.sample_size(10);
    let config = ExperimentConfig {
        sequences: 1,
        apps_per_sequence: 5,
        ..ExperimentConfig::default()
    };
    group.bench_function("table4_reduced_cell", |b| {
        b.iter(|| run_experiment_with_weights(&config, vec![CostWeights::TUNED]))
    });

    let experiment =
        run_experiment_with_weights(&config, vec![CostWeights::MEMORY, CostWeights::TUNED]);
    group.bench_function("table5_normalization", |b| {
        b.iter(|| table5::compute(&experiment, "mixed"))
    });

    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
