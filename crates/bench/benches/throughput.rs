//! Criterion benches for the throughput-analysis kernels (Fig 5 / Sec 8):
//! the self-timed state space, the binding-aware variant, and the
//! schedule/TDMA-constrained execution.

use sdfrs_fastutil::{crit::Criterion, criterion_group, criterion_main};

use sdfrs_appmodel::apps::{example_platform, paper_example};
use sdfrs_bench::hsdf_cmp::timed_h263;
use sdfrs_core::binding_aware::BindingAwareGraph;
use sdfrs_core::constrained::constrained_throughput;
use sdfrs_core::list_sched::construct_schedules;
use sdfrs_core::Binding;
use sdfrs_platform::TileId;
use sdfrs_sdf::analysis::selftimed::SelfTimedExecutor;

fn example_ba() -> BindingAwareGraph {
    let app = paper_example();
    let arch = example_platform();
    let g = app.graph();
    let mut binding = Binding::new(g.actor_count());
    binding.bind(g.actor_by_name("a1").unwrap(), TileId::from_index(0));
    binding.bind(g.actor_by_name("a2").unwrap(), TileId::from_index(0));
    binding.bind(g.actor_by_name("a3").unwrap(), TileId::from_index(1));
    BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]).unwrap()
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput");

    // Fig 5(a): plain self-timed state space of the example.
    let app = paper_example();
    let mut plain = app.graph().clone();
    plain.set_execution_time(plain.actor_by_name("a1").unwrap(), 1);
    plain.set_execution_time(plain.actor_by_name("a2").unwrap(), 1);
    plain.set_execution_time(plain.actor_by_name("a3").unwrap(), 2);
    let a3_plain = plain.actor_by_name("a3").unwrap();
    group.bench_function("fig5a_self_timed", |b| {
        b.iter(|| SelfTimedExecutor::new(&plain).throughput(a3_plain).unwrap())
    });

    // Fig 5(b): binding-aware graph.
    let ba = example_ba();
    let a3 = ba.graph().actor_by_name("a3").unwrap();
    group.bench_function("fig5b_binding_aware", |b| {
        b.iter(|| SelfTimedExecutor::new(ba.graph()).throughput(a3).unwrap())
    });

    // Fig 5(c): constrained by schedules + TDMA.
    let schedules = construct_schedules(&ba).unwrap();
    group.bench_function("fig5c_constrained", |b| {
        b.iter(|| constrained_throughput(&ba, &schedules, a3).unwrap())
    });

    // The H.263 decoder: the workload the paper's Sec 1 runtime argument
    // is about, analyzed directly on the 4-actor SDFG.
    let h263 = timed_h263();
    let mc = h263.actor_by_name("mc0").unwrap();
    group.sample_size(20);
    group.bench_function("h263_sdf_state_space", |b| {
        b.iter(|| SelfTimedExecutor::new(&h263).throughput(mc).unwrap())
    });

    group.finish();
}

fn bench_companion_analyses(c: &mut Criterion) {
    let mut group = c.benchmark_group("companion_analyses");
    let h263 = timed_h263();
    let mc = h263.actor_by_name("mc0").unwrap();

    group.bench_function("structural_bounds_h263", |b| {
        b.iter(|| sdfrs_sdf::analysis::bounds::throughput_bounds(&h263, 10_000).unwrap())
    });
    group.sample_size(10);
    group.bench_function("latency_h263", |b| {
        b.iter(|| sdfrs_sdf::analysis::latency::iteration_latency(&h263, mc, 2).unwrap())
    });
    group.bench_function("occupancy_h263", |b| {
        b.iter(|| sdfrs_sdf::analysis::occupancy::max_occupancy(&h263, 1_000_000).unwrap())
    });
    group.bench_function("state_space_export_example", |b| {
        let app = paper_example();
        let mut g = app.graph().clone();
        g.set_execution_time(g.actor_by_name("a1").unwrap(), 1);
        g.set_execution_time(g.actor_by_name("a2").unwrap(), 1);
        g.set_execution_time(g.actor_by_name("a3").unwrap(), 2);
        b.iter(|| SelfTimedExecutor::new(&g).explore_state_space().unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_throughput, bench_companion_analyses);
criterion_main!(benches);
