//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the reverse-order re-binding optimization of Sec 9.1 (on/off);
//! * the per-tile slice refinement of Sec 9.3 (on/off);
//! * schedule minimization (minimized vs raw list-scheduler output);
//! * event-driven TDMA clock advancement (the engine jumps to the next
//!   completion) vs the worst case of many tiny wheel revolutions.

use sdfrs_fastutil::{crit::Criterion, criterion_group, criterion_main};

use sdfrs_appmodel::apps::{example_platform, paper_example};
use sdfrs_core::binding_aware::BindingAwareGraph;
use sdfrs_core::constrained::constrained_throughput;
use sdfrs_core::flow::FlowConfig;
use sdfrs_core::list_sched::ListScheduler;
use sdfrs_core::{Allocator, Binding};
use sdfrs_gen::{AppGenerator, GeneratorConfig};
use sdfrs_platform::mesh::{mesh_platform, MeshConfig};
use sdfrs_platform::{PlatformState, ProcessorType, TileId};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");

    // --- Binding optimization pass on/off, on a generated app where it
    // has actual work to do.
    let mesh = mesh_platform("mesh", &MeshConfig::default());
    let state = PlatformState::new(&mesh);
    let types = vec![
        ProcessorType::new("risc"),
        ProcessorType::new("dsp"),
        ProcessorType::new("acc"),
    ];
    let mut gen = AppGenerator::new(GeneratorConfig::mixed(), types, 5);
    let app = gen.generate("ablate");
    for optimize in [true, false] {
        let mut flow = FlowConfig::default();
        flow.bind.optimize = optimize;
        group.bench_function(format!("flow_optimize_{optimize}"), |b| {
            b.iter(|| {
                let _ = Allocator::from_config(flow).allocate(&app, &mesh, &state);
            })
        });
    }

    // --- Slice refinement on/off.
    for refine in [true, false] {
        let mut flow = FlowConfig::default();
        flow.slice.refine = refine;
        group.bench_function(format!("flow_refine_{refine}"), |b| {
            b.iter(|| {
                let _ = Allocator::from_config(flow).allocate(&app, &mesh, &state);
            })
        });
    }

    // --- Schedule minimization: analysis cost with the raw vs the
    // minimized schedule (same semantics, different position spaces).
    let paper = paper_example();
    let arch = example_platform();
    let g = paper.graph();
    let mut binding = Binding::new(g.actor_count());
    binding.bind(g.actor_by_name("a1").unwrap(), TileId::from_index(0));
    binding.bind(g.actor_by_name("a2").unwrap(), TileId::from_index(0));
    binding.bind(g.actor_by_name("a3").unwrap(), TileId::from_index(1));
    let ba = BindingAwareGraph::build(&paper, &arch, &binding, &[5, 5]).unwrap();
    let raw = ListScheduler::new(&ba).construct_raw().unwrap();
    let minimized = raw.minimized();
    let a3 = ba.graph().actor_by_name("a3").unwrap();
    group.bench_function("constrained_raw_schedule", |b| {
        b.iter(|| constrained_throughput(&ba, &raw, a3).unwrap())
    });
    group.bench_function("constrained_minimized_schedule", |b| {
        b.iter(|| constrained_throughput(&ba, &minimized, a3).unwrap())
    });

    // --- Connection model: the paper's simple c actor vs the pipelined
    // NoC refinement (Sec 8.1's "more detailed model" remark).
    use sdfrs_core::binding_aware::ConnectionModel;
    use sdfrs_sdf::analysis::selftimed::SelfTimedExecutor;
    for (label, model) in [
        ("simple", ConnectionModel::Simple),
        ("pipelined", ConnectionModel::PipelinedHops),
    ] {
        let ba =
            BindingAwareGraph::build_with_model(&paper, &arch, &binding, &[5, 5], model).unwrap();
        let a3 = ba.graph().actor_by_name("a3").unwrap();
        group.bench_function(format!("connection_model_{label}"), |b| {
            b.iter(|| SelfTimedExecutor::new(ba.graph()).throughput(a3).unwrap())
        });
    }

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
