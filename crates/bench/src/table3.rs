//! E4: Table 3 — binding of the example's actors for four weight
//! settings of the tile cost function.

use sdfrs_appmodel::apps::{example_platform, paper_example};
use sdfrs_core::bind::{bind_actors, BindConfig};
use sdfrs_core::cost::CostWeights;
use sdfrs_core::MapError;
use sdfrs_platform::PlatformState;

/// One row of Table 3: the weights and the tile index (0 = t1, 1 = t2)
/// each of a1, a2, a3 is bound to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// The (c1, c2, c3) weights.
    pub weights: CostWeights,
    /// Tile indices of a1, a2, a3.
    pub tiles: [usize; 3],
}

/// The four weight settings of Table 3, in row order.
pub fn weight_rows() -> [CostWeights; 4] {
    [
        CostWeights::PROCESSING,
        CostWeights::MEMORY,
        CostWeights::COMMUNICATION,
        CostWeights::BALANCED,
    ]
}

/// Computes Table 3 with our implementation of the binding step.
///
/// # Errors
///
/// Propagates binding failures (none occur on the bundled example).
pub fn compute() -> Result<Vec<Table3Row>, MapError> {
    let app = paper_example();
    let arch = example_platform();
    let state = PlatformState::new(&arch);
    let mut rows = Vec::new();
    for weights in weight_rows() {
        let binding = bind_actors(&app, &arch, &state, &BindConfig::with_weights(weights))?;
        let tile_of = |name: &str| {
            binding
                .tile_of(app.graph().actor_by_name(name).expect("example actor"))
                .expect("complete binding")
                .index()
        };
        rows.push(Table3Row {
            weights,
            tiles: [tile_of("a1"), tile_of("a2"), tile_of("a3")],
        });
    }
    Ok(rows)
}

/// The paper's published Table 3 (tile indices, 0 = t1).
pub fn paper_rows() -> [[usize; 3]; 4] {
    [
        [0, 0, 1], // (1,0,0)
        [0, 1, 1], // (0,1,0)
        [0, 0, 0], // (0,0,1)
        [0, 0, 1], // (1,1,1)
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rows 1, 3 and 4 reproduce the paper exactly. Row 2 — the
    /// memory-only weighting — reproduces the paper's *partition*
    /// ({a1} apart from {a2, a3}) with the tiles mirrored; the exact tile
    /// choice depends on figure annotations the text does not publish
    /// (see EXPERIMENTS.md).
    #[test]
    fn rows_1_3_4_match_paper() {
        let rows = compute().unwrap();
        let paper = paper_rows();
        assert_eq!(rows[0].tiles, paper[0]);
        assert_eq!(rows[2].tiles, paper[2]);
        assert_eq!(rows[3].tiles, paper[3]);
    }

    #[test]
    fn row_2_partition_matches_paper() {
        let rows = compute().unwrap();
        let [a1, a2, a3] = rows[1].tiles;
        // Paper: a1 alone, a2 and a3 together.
        assert_ne!(a1, a2);
        assert_eq!(a2, a3);
    }
}
