//! E8: the Sec 10.3 multimedia system — three H.263 decoders and an MP3
//! decoder bound to a 2×2 mesh with two generic processors and two
//! accelerators, using the (2, 0, 1) tile-cost function.

use std::time::{Duration, Instant};

use sdfrs_appmodel::apps::{h263_decoder, mp3_decoder};
use sdfrs_appmodel::ApplicationGraph;
use sdfrs_core::cost::CostWeights;
use sdfrs_core::flow::FlowConfig;
use sdfrs_core::multi_app::{allocate_until_failure, MultiAppResult};
use sdfrs_platform::mesh::multimedia_platform;
use sdfrs_sdf::hsdf::hsdf_size;
use sdfrs_sdf::Rational;

/// Outcome of the multimedia experiment.
#[derive(Debug)]
pub struct Multimedia {
    /// The allocation run (4 applications expected to bind).
    pub result: MultiAppResult,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Fraction of the run spent in slice allocation (paper: ~90%).
    pub slice_fraction: f64,
    /// Throughput computations in the slice-allocation steps (paper: 34).
    pub slice_checks: usize,
    /// HSDF sizes of the four applications (paper: 3 × 4754 + 13 = 14275).
    pub hsdf_sizes: Vec<u64>,
}

/// The four applications of the multimedia system. `lambda_h263` /
/// `lambda_mp3` are per-application iteration-throughput constraints.
pub fn applications(lambda_h263: Rational, lambda_mp3: Rational) -> Vec<ApplicationGraph> {
    let mut apps: Vec<ApplicationGraph> = (0..3).map(|i| h263_decoder(i, lambda_h263)).collect();
    apps.push(mp3_decoder(lambda_mp3));
    apps
}

/// Default constraints: demanding enough to need real slices, loose
/// enough that all four applications fit the 2×2 platform (three decoders
/// share the two generic processors and two accelerators).
pub fn default_constraints() -> (Rational, Rational) {
    (Rational::new(1, 100_000), Rational::new(1, 3_000))
}

/// Runs the multimedia experiment.
pub fn run() -> Multimedia {
    let (lh, lm) = default_constraints();
    run_with(lh, lm)
}

/// Runs the experiment with explicit constraints.
pub fn run_with(lambda_h263: Rational, lambda_mp3: Rational) -> Multimedia {
    let apps = applications(lambda_h263, lambda_mp3);
    let hsdf_sizes = apps
        .iter()
        .map(|a| hsdf_size(a.graph()).expect("reference apps are consistent"))
        .collect();
    let arch = multimedia_platform();
    let flow = FlowConfig::with_weights(CostWeights::MULTIMEDIA);
    let start = Instant::now();
    let result = allocate_until_failure(&apps, &arch, &flow);
    let elapsed = start.elapsed();
    let slice_time: Duration = result.stats.iter().map(|s| s.slice_time).sum();
    let total_time: Duration = result.stats.iter().map(|s| s.total_time()).sum();
    let slice_fraction = if total_time.is_zero() {
        0.0
    } else {
        slice_time.as_secs_f64() / total_time.as_secs_f64()
    };
    let slice_checks = result.stats.iter().map(|s| s.throughput_checks).sum();
    Multimedia {
        result,
        elapsed,
        slice_fraction,
        slice_checks,
        hsdf_sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hsdf_total_matches_paper() {
        let (lh, lm) = default_constraints();
        let apps = applications(lh, lm);
        let total: u64 = apps.iter().map(|a| hsdf_size(a.graph()).unwrap()).sum();
        assert_eq!(total, 14275);
    }

    #[test]
    fn all_four_applications_bind() {
        let m = run();
        assert_eq!(
            m.result.bound_count(),
            4,
            "multimedia system must fit the 2×2 mesh (failure: {:?})",
            m.result.failure
        );
        assert!(m.slice_checks > 0);
        // Every allocation meets its constraint.
        let (lh, lm) = default_constraints();
        for (i, alloc) in m.result.allocations.iter().enumerate() {
            let lambda = if i < 3 { lh } else { lm };
            assert!(alloc.guaranteed_throughput() >= lambda, "app {i}");
        }
    }
}
