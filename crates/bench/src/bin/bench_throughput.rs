//! `bench_throughput` — trajectory harness for the fast-path throughput
//! machinery: interned state-space exploration, the memoized evaluation
//! cache, and the end-to-end flow built on both.
//!
//! ```text
//! bench_throughput [output.json]
//! ```
//!
//! Runs a fixed set of phases, prints a human-readable trajectory, and
//! writes a machine-readable report (default: `BENCH_throughput.json` in
//! the current directory). Each phase records wall-clock time plus the
//! phase's own counters: states explored for the explorations, throughput
//! checks and cache hit/miss counts for the flow phases, plus warm-start
//! hit rate and invalidation counts where the incremental re-analysis is
//! live. Three summary ratios close the report: `cache_speedup`
//! (repeated admission, everything off vs fingerprint cache on),
//! `warm_speedup` (repeated slice search, from scratch vs warm-started)
//! and `admission_warm_speedup` (repeated admission, from scratch vs
//! warm-started with the fingerprint cache bypassed). All three compare
//! phases measured in the same run, so they stay meaningful across
//! machines.

use std::env;
use std::time::Instant;

use sdfrs_appmodel::apps::{example_platform, h263_decoder, paper_example};
use sdfrs_bench::hsdf_cmp::timed_h263;
use sdfrs_core::binding_aware::BindingAwareGraph;
use sdfrs_core::constrained::constrained_throughput;
use sdfrs_core::list_sched::construct_schedules;
use sdfrs_core::service::{ServiceConfig, ServiceRequest, ServiceResponse};
use sdfrs_core::thru_cache::ThroughputCache;
use sdfrs_core::warm::WarmStats;
use sdfrs_core::{AllocationService, Allocator, Binding, FlowConfig, Metrics};
use sdfrs_platform::mesh::{grid_mesh_platform, multimedia_platform, MeshConfig};
use sdfrs_platform::{ArchitectureGraph, PlatformState, ProcessorType, TileId};
use sdfrs_sdf::analysis::selftimed::SelfTimedExecutor;
use sdfrs_sdf::Rational;

/// One measured phase of the trajectory.
#[derive(Debug, Default)]
struct Phase {
    name: &'static str,
    wall_ms: f64,
    states_explored: Option<usize>,
    throughput_checks: Option<usize>,
    cache_hits: Option<usize>,
    cache_misses: Option<usize>,
    /// Fraction of the phase's warm transitions replayed from the memo.
    warm_hit_rate: Option<f64>,
    /// Guarded memo entries invalidated (recomputed) during the phase.
    states_invalidated: Option<u64>,
}

impl Phase {
    fn json(&self) -> String {
        let mut fields = vec![
            format!("\"name\": \"{}\"", self.name),
            format!("\"wall_ms\": {:.3}", self.wall_ms),
        ];
        if let Some(s) = self.states_explored {
            fields.push(format!("\"states_explored\": {s}"));
        }
        if let Some(c) = self.throughput_checks {
            fields.push(format!("\"throughput_checks\": {c}"));
        }
        if let Some(h) = self.cache_hits {
            fields.push(format!("\"cache_hits\": {h}"));
        }
        if let Some(m) = self.cache_misses {
            fields.push(format!("\"cache_misses\": {m}"));
        }
        if let Some(r) = self.warm_hit_rate {
            fields.push(format!("\"warm_hit_rate\": {r:.4}"));
        }
        if let Some(i) = self.states_invalidated {
            fields.push(format!("\"states_invalidated\": {i}"));
        }
        format!("    {{ {} }}", fields.join(", "))
    }

    /// Attaches the warm-start delta accumulated since `before`.
    fn with_warm_delta(mut self, after: Option<WarmStats>, before: Option<WarmStats>) -> Phase {
        if let (Some(a), Some(b)) = (after, before) {
            let replayed = a.replayed_transitions - b.replayed_transitions;
            let recomputed = a.recomputed_transitions - b.recomputed_transitions;
            let total = replayed + recomputed;
            if total > 0 {
                self.warm_hit_rate = Some(replayed as f64 / total as f64);
            } else {
                // Every probe answered at the trajectory level: no
                // transitions were walked at all.
                self.warm_hit_rate = Some(1.0);
            }
            self.states_invalidated = Some(a.invalidated_transitions - b.invalidated_transitions);
        }
        self
    }
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// The paper-example binding-aware graph (a1/a2 on t1, a3 on t2, 50%
/// slices) — the Fig 5(c) configuration.
fn example_ba() -> BindingAwareGraph {
    let app = paper_example();
    let arch = example_platform();
    let g = app.graph();
    let mut binding = Binding::new(g.actor_count());
    binding.bind(g.actor_by_name("a1").unwrap(), TileId::from_index(0));
    binding.bind(g.actor_by_name("a2").unwrap(), TileId::from_index(0));
    binding.bind(g.actor_by_name("a3").unwrap(), TileId::from_index(1));
    BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]).unwrap()
}

/// Repeats the same end-to-end allocation `rounds` times against an
/// unchanged platform state — the admission re-check pattern of Sec 10.1.
/// Returns the phase plus the final cache counters.
fn admission_repeat(
    name: &'static str,
    rounds: usize,
    cache: ThroughputCache,
    metrics: &Metrics,
) -> Phase {
    let app = h263_decoder(0, Rational::new(1, 200_000));
    let arch = multimedia_platform();
    let state = PlatformState::new(&arch);
    let mut allocator = Allocator::new()
        .with_cache(cache)
        .with_metrics(metrics.clone());
    let warm_before = allocator.cache().warm_stats();
    let mut checks = 0usize;
    let start = Instant::now();
    for round in 0..rounds {
        let r0 = Instant::now();
        let (_, stats) = allocator
            .allocate(&app, &arch, &state)
            .expect("the H.263 decoder fits an empty multimedia platform");
        if env::var_os("BENCH_ROUNDS_DEBUG").is_some() {
            eprintln!(
                "  {name} round {round}: {:.3} ms (bind {:?} sched {:?} slice {:?})",
                ms(r0),
                stats.binding_time,
                stats.scheduling_time,
                stats.slice_time
            );
        }
        checks += stats.throughput_checks;
    }
    let wall_ms = ms(start);
    Phase {
        name,
        wall_ms,
        throughput_checks: Some(checks),
        cache_hits: Some(allocator.cache().hits()),
        cache_misses: Some(allocator.cache().misses()),
        ..Phase::default()
    }
    .with_warm_delta(allocator.cache().warm_stats(), warm_before)
}

/// Runs the H.263 slice-search workload `rounds` times through one
/// allocator whose fingerprint cache is bypassed, so every probe runs an
/// exploration. `warm` decides whether those explorations share the
/// warm-start memo or start from scratch each time — the two phases the
/// CI regression gate compares. A warm-up allocation outside the timer
/// seeds the memo: the phase measures steady-state re-analysis.
fn slice_search(name: &'static str, rounds: usize, warm: bool, metrics: &Metrics) -> Phase {
    let app = h263_decoder(0, Rational::new(1, 200_000));
    let arch = multimedia_platform();
    let state = PlatformState::new(&arch);
    let config = FlowConfig::builder()
        .warm_start(warm)
        .build()
        .expect("valid config");
    let mut allocator = Allocator::from_config(config)
        .with_cache_disabled()
        .with_metrics(metrics.clone());
    if warm {
        allocator
            .allocate(&app, &arch, &state)
            .expect("the H.263 decoder fits an empty multimedia platform");
    }
    let warm_before = allocator.cache().warm_stats();
    let mut checks = 0usize;
    let start = Instant::now();
    for _ in 0..rounds {
        let (_, stats) = allocator
            .allocate(&app, &arch, &state)
            .expect("the H.263 decoder fits an empty multimedia platform");
        checks += stats.throughput_checks;
    }
    let wall_ms = ms(start);
    Phase {
        name,
        wall_ms,
        throughput_checks: Some(checks),
        ..Phase::default()
    }
    .with_warm_delta(allocator.cache().warm_stats(), warm_before)
}

/// Service churn: one H.263 session repeatedly departs and re-admits
/// under a swept throughput constraint, so every round re-runs the slice
/// search against slightly different targets — the rebind pattern whose
/// probes warm-start from the shared memo.
fn rebind_churn(rounds: usize, metrics: &Metrics) -> Phase {
    let arch = multimedia_platform();
    let mut service = AllocationService::new(&arch).with_metrics(metrics.clone());
    let mut session = service
        .admit(&h263_decoder(0, Rational::new(1, 200_000)))
        .expect("the H.263 decoder fits an empty multimedia platform");
    let warm_before = service.warm_stats();
    let start = Instant::now();
    for round in 0..rounds {
        service
            .rebind(session)
            .expect("the churned session is live");
        service
            .depart(session)
            .expect("the churned session is live");
        let constraint = Rational::new(1, 190_000 + 4_000 * round as i128);
        session = service
            .admit(&h263_decoder(0, constraint))
            .expect("the re-admitted H.263 decoder fits");
    }
    let wall_ms = ms(start);
    Phase {
        name: "rebind_churn",
        wall_ms,
        ..Phase::default()
    }
    .with_warm_delta(service.warm_stats(), warm_before)
}

/// The 64×64 grid mesh (4096 tiles, 4-neighborhood links) whose
/// processor types match the grid workload below.
fn grid64() -> ArchitectureGraph {
    let config = MeshConfig {
        rows: 64,
        cols: 64,
        processor_types: vec![ProcessorType::new("p1"), ProcessorType::new("p2")],
        ..MeshConfig::default()
    };
    grid_mesh_platform("grid64", &config)
}

/// The workload one grid admission carries: a two-actor pipeline whose
/// memory footprint (150k of the 512k tile memory per actor) makes
/// occupied tiles rank strictly costlier than fresh ones, so successive
/// admissions spread deterministically across the mesh instead of
/// tie-breaking onto exhausted wheels.
fn grid_app() -> sdfrs_appmodel::ApplicationGraph {
    use sdfrs_appmodel::{ActorRequirements, ApplicationGraph, ChannelRequirements};
    use sdfrs_sdf::SdfGraph;
    let p1 = ProcessorType::new("p1");
    let p2 = ProcessorType::new("p2");
    let mut g = SdfGraph::new("grid_pipeline");
    let a = g.add_actor("a", 0);
    let b = g.add_actor("b", 0);
    let d = g.add_channel("d", a, 1, b, 1, 0);
    ApplicationGraph::builder(g, Rational::new(1, 100_000))
        .actor(
            a,
            ActorRequirements::new()
                .on(p1.clone(), 10, 150_000)
                .on(p2.clone(), 10, 150_000),
        )
        .actor(
            b,
            ActorRequirements::new()
                .on(p1, 10, 150_000)
                .on(p2, 10, 150_000),
        )
        .channel(d, ChannelRequirements::new(16, 2, 2, 2, 50))
        .output_actor(b)
        .build()
        .expect("the grid pipeline is a valid application graph")
}

/// Drains one batch of `count` grid-pipeline admissions through a
/// service partitioned into `regions` regions. With `regions == 1` the
/// drain is the plain sequential-commit path (speculation off, so the
/// timer sees exactly one flow per admit); with more, admissions run
/// region-locally and commit region-parallel. Every admit must succeed.
fn region_admission(
    name: &'static str,
    arch: &ArchitectureGraph,
    regions: usize,
    count: usize,
    metrics: &Metrics,
) -> Phase {
    let mut config = ServiceConfig::default();
    config.regions = regions;
    config.parallel_speculation = false;
    config.batch_capacity = count;
    let mut svc = AllocationService::from_config(arch, config).with_metrics(metrics.clone());
    let app = grid_app();
    for _ in 0..count {
        svc.enqueue(ServiceRequest::Admit {
            app: Box::new(app.clone()),
        });
    }
    let start = Instant::now();
    let responses = svc.drain();
    let wall_ms = ms(start);
    assert_eq!(responses.len(), count);
    for (seq, r) in &responses {
        assert!(
            matches!(r, ServiceResponse::Admitted { .. }),
            "{name}: admit {seq} was not admitted: {r:?}"
        );
    }
    Phase {
        name,
        wall_ms,
        ..Phase::default()
    }
}

fn main() {
    let out_path = env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_throughput.json".into());
    let mut phases: Vec<Phase> = Vec::new();
    // One registry across every allocator phase; its snapshot rides along
    // in the report so CI artifacts carry the full counter/histogram set.
    let metrics = Metrics::collecting();

    // --- Phase 1: plain self-timed exploration, paper example (Fig 5a).
    let app = paper_example();
    let mut plain = app.graph().clone();
    plain.set_execution_time(plain.actor_by_name("a1").unwrap(), 1);
    plain.set_execution_time(plain.actor_by_name("a2").unwrap(), 1);
    plain.set_execution_time(plain.actor_by_name("a3").unwrap(), 2);
    let a3_plain = plain.actor_by_name("a3").unwrap();
    let start = Instant::now();
    let mut result = None;
    for _ in 0..1000 {
        result = Some(SelfTimedExecutor::new(&plain).throughput(a3_plain).unwrap());
    }
    phases.push(Phase {
        name: "selftimed_fig5a_x1000",
        wall_ms: ms(start),
        states_explored: result.map(|r| r.states_explored),
        ..Phase::default()
    });

    // --- Phase 2: constrained execution, paper example (Fig 5c).
    let ba = example_ba();
    let schedules = construct_schedules(&ba).unwrap();
    let a3 = ba.graph().actor_by_name("a3").unwrap();
    let start = Instant::now();
    let mut result = None;
    for _ in 0..1000 {
        result = Some(constrained_throughput(&ba, &schedules, a3).unwrap());
    }
    phases.push(Phase {
        name: "constrained_fig5c_x1000",
        wall_ms: ms(start),
        states_explored: result.map(|r| r.states_explored),
        ..Phase::default()
    });

    // --- Phase 3: self-timed exploration of the H.263 decoder — the
    // Sec 1 workload whose HSDF equivalent has 4754 actors.
    let h263 = timed_h263();
    let mc = h263.actor_by_name("mc0").unwrap();
    let start = Instant::now();
    let result = SelfTimedExecutor::new(&h263).throughput(mc).unwrap();
    phases.push(Phase {
        name: "selftimed_h263",
        wall_ms: ms(start),
        states_explored: Some(result.states_explored),
        ..Phase::default()
    });

    // --- Phase 4: one end-to-end flow for the H.263 decoder.
    let h263_app = h263_decoder(0, Rational::new(1, 200_000));
    let arch = multimedia_platform();
    let state = PlatformState::new(&arch);
    let start = Instant::now();
    let (_, stats) = Allocator::new()
        .with_metrics(metrics.clone())
        .allocate(&h263_app, &arch, &state)
        .expect("the H.263 decoder fits an empty multimedia platform");
    phases.push(Phase {
        name: "flow_h263",
        wall_ms: ms(start),
        throughput_checks: Some(stats.throughput_checks),
        cache_hits: Some(stats.cache_hits),
        cache_misses: Some(stats.cache_misses),
        ..Phase::default()
    });

    // --- Phase 5: the same end-to-end flow again through a fresh
    // allocator whose fingerprint cache is bypassed but whose warm pool
    // was seeded by one prior allocation — every probe re-analyzes
    // incrementally instead of from scratch.
    {
        let mut warm_alloc = Allocator::new()
            .with_cache(ThroughputCache::disabled())
            .with_metrics(metrics.clone());
        warm_alloc
            .allocate(&h263_app, &arch, &state)
            .expect("the H.263 decoder fits an empty multimedia platform");
        let warm_before = warm_alloc.cache().warm_stats();
        let start = Instant::now();
        let (_, stats) = warm_alloc
            .allocate(&h263_app, &arch, &state)
            .expect("the H.263 decoder fits an empty multimedia platform");
        phases.push(
            Phase {
                name: "flow_h263_incremental",
                wall_ms: ms(start),
                throughput_checks: Some(stats.throughput_checks),
                ..Phase::default()
            }
            .with_warm_delta(warm_alloc.cache().warm_stats(), warm_before),
        );
    }

    // --- Phases 6/7: the slice-search workload repeated, from scratch
    // vs warm-started — the ratio the CI regression gate checks.
    const SEARCH_ROUNDS: usize = 4;
    let scratch = slice_search("slice_search_scratch", SEARCH_ROUNDS, false, &metrics);
    let warm = slice_search("slice_search_warm", SEARCH_ROUNDS, true, &metrics);
    let warm_speedup = scratch.wall_ms / warm.wall_ms.max(1e-9);
    phases.push(scratch);
    phases.push(warm);

    // --- Phase 8: service depart/re-admit churn under a swept
    // constraint (the rebind pattern).
    phases.push(rebind_churn(8, &metrics));

    // --- Phases 9/10/11: repeated admission checks — fully from scratch
    // (no reuse of any kind, the pre-warm-start behaviour), with the
    // fingerprint cache bypassed but warm start on, and with both on.
    const ROUNDS: usize = 6;
    let scratch_adm = admission_repeat(
        "admission_repeat_scratch",
        ROUNDS,
        ThroughputCache::disabled().without_warm_start(),
        &metrics,
    );
    let off = admission_repeat(
        "admission_repeat_nocache",
        ROUNDS,
        ThroughputCache::disabled(),
        &metrics,
    );
    let on = admission_repeat(
        "admission_repeat_cache",
        ROUNDS,
        ThroughputCache::new(),
        &metrics,
    );
    let admission_warm_speedup = scratch_adm.wall_ms / off.wall_ms.max(1e-9);
    let speedup = scratch_adm.wall_ms / on.wall_ms.max(1e-9);
    phases.push(scratch_adm);
    phases.push(off);
    phases.push(on);

    // --- Phases 12/13/14: one batch of admissions onto the 64×64 grid
    // mesh, sequential-commit vs region-parallel at 4 and 16 regions.
    // Region-local flows only rank the home region's tiles, so the
    // speedup is algorithmic and holds on a single core; the ratio the
    // CI regression gate checks compares the 16-region drain (≥ 8
    // regions per the acceptance bar) against the sequential one.
    const GRID_ADMITS: usize = 24;
    let grid = grid64();
    let grid_seq = region_admission("admission_64x64_seq", &grid, 1, GRID_ADMITS, &metrics);
    let grid_r4 = region_admission("admission_64x64_regions4", &grid, 4, GRID_ADMITS, &metrics);
    let grid_r16 = region_admission(
        "admission_64x64_regions16",
        &grid,
        16,
        GRID_ADMITS,
        &metrics,
    );
    let region_speedup = grid_seq.wall_ms / grid_r16.wall_ms.max(1e-9);
    phases.push(grid_seq);
    phases.push(grid_r4);
    phases.push(grid_r16);

    for p in &phases {
        let extras = [
            p.states_explored.map(|s| format!("states {s}")),
            p.throughput_checks.map(|c| format!("checks {c}")),
            p.cache_hits.map(|h| format!("hits {h}")),
            p.cache_misses.map(|m| format!("misses {m}")),
            p.warm_hit_rate.map(|r| format!("warm {:.1}%", r * 100.0)),
            p.states_invalidated.map(|i| format!("invalidated {i}")),
        ]
        .into_iter()
        .flatten()
        .collect::<Vec<_>>()
        .join(", ");
        eprintln!("{:<28} {:>10.3} ms   {}", p.name, p.wall_ms, extras);
    }
    eprintln!("cache speedup on repeated admission ({ROUNDS} rounds): {speedup:.2}x");
    eprintln!(
        "warm-start speedup on repeated slice search ({SEARCH_ROUNDS} rounds): {warm_speedup:.2}x"
    );
    eprintln!(
        "warm-start speedup on repeated admission ({ROUNDS} rounds): {admission_warm_speedup:.2}x"
    );
    eprintln!(
        "region-parallel speedup on the 64x64 drain ({GRID_ADMITS} admits, 16 regions): \
         {region_speedup:.2}x"
    );

    let snapshot = metrics
        .snapshot()
        .expect("the collecting registry snapshots");
    let json = format!(
        "{{\n  \"harness\": \"bench_throughput\",\n  \"rounds\": {ROUNDS},\n  \
         \"phases\": [\n{}\n  ],\n  \"cache_speedup\": {speedup:.2},\n  \
         \"warm_speedup\": {warm_speedup:.2},\n  \
         \"admission_warm_speedup\": {admission_warm_speedup:.2},\n  \
         \"region_speedup\": {region_speedup:.2},\n  \
         \"metrics\": {}\n}}\n",
        phases
            .iter()
            .map(Phase::json)
            .collect::<Vec<_>>()
            .join(",\n"),
        snapshot.to_json()
    );
    std::fs::write(&out_path, json).expect("report written");
    eprintln!("report written to {out_path}");
}
