//! `bench_throughput` — trajectory harness for the fast-path throughput
//! machinery: interned state-space exploration, the memoized evaluation
//! cache, and the end-to-end flow built on both.
//!
//! ```text
//! bench_throughput [output.json]
//! ```
//!
//! Runs a fixed set of phases, prints a human-readable trajectory, and
//! writes a machine-readable report (default: `BENCH_throughput.json` in
//! the current directory). Each phase records wall-clock time plus the
//! phase's own counters: states explored for the explorations, throughput
//! checks and cache hit/miss counts for the flow phases. The
//! `cache_speedup` summary compares the repeated-admission workload with
//! memoization off vs on — the headline number for the evaluation cache.

use std::env;
use std::time::Instant;

use sdfrs_appmodel::apps::{example_platform, h263_decoder, paper_example};
use sdfrs_bench::hsdf_cmp::timed_h263;
use sdfrs_core::binding_aware::BindingAwareGraph;
use sdfrs_core::constrained::constrained_throughput;
use sdfrs_core::list_sched::construct_schedules;
use sdfrs_core::thru_cache::ThroughputCache;
use sdfrs_core::{Allocator, Binding, Metrics};
use sdfrs_platform::mesh::multimedia_platform;
use sdfrs_platform::{PlatformState, TileId};
use sdfrs_sdf::analysis::selftimed::SelfTimedExecutor;
use sdfrs_sdf::Rational;

/// One measured phase of the trajectory.
#[derive(Debug, Default)]
struct Phase {
    name: &'static str,
    wall_ms: f64,
    states_explored: Option<usize>,
    throughput_checks: Option<usize>,
    cache_hits: Option<usize>,
    cache_misses: Option<usize>,
}

impl Phase {
    fn json(&self) -> String {
        let mut fields = vec![
            format!("\"name\": \"{}\"", self.name),
            format!("\"wall_ms\": {:.3}", self.wall_ms),
        ];
        if let Some(s) = self.states_explored {
            fields.push(format!("\"states_explored\": {s}"));
        }
        if let Some(c) = self.throughput_checks {
            fields.push(format!("\"throughput_checks\": {c}"));
        }
        if let Some(h) = self.cache_hits {
            fields.push(format!("\"cache_hits\": {h}"));
        }
        if let Some(m) = self.cache_misses {
            fields.push(format!("\"cache_misses\": {m}"));
        }
        format!("    {{ {} }}", fields.join(", "))
    }
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// The paper-example binding-aware graph (a1/a2 on t1, a3 on t2, 50%
/// slices) — the Fig 5(c) configuration.
fn example_ba() -> BindingAwareGraph {
    let app = paper_example();
    let arch = example_platform();
    let g = app.graph();
    let mut binding = Binding::new(g.actor_count());
    binding.bind(g.actor_by_name("a1").unwrap(), TileId::from_index(0));
    binding.bind(g.actor_by_name("a2").unwrap(), TileId::from_index(0));
    binding.bind(g.actor_by_name("a3").unwrap(), TileId::from_index(1));
    BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]).unwrap()
}

/// Repeats the same end-to-end allocation `rounds` times against an
/// unchanged platform state — the admission re-check pattern of Sec 10.1.
/// Returns the phase plus the final cache counters.
fn admission_repeat(
    name: &'static str,
    rounds: usize,
    cache: ThroughputCache,
    metrics: &Metrics,
) -> Phase {
    let app = h263_decoder(0, Rational::new(1, 200_000));
    let arch = multimedia_platform();
    let state = PlatformState::new(&arch);
    let mut allocator = Allocator::new()
        .with_cache(cache)
        .with_metrics(metrics.clone());
    let mut checks = 0usize;
    let start = Instant::now();
    for _ in 0..rounds {
        let (_, stats) = allocator
            .allocate(&app, &arch, &state)
            .expect("the H.263 decoder fits an empty multimedia platform");
        checks += stats.throughput_checks;
    }
    let wall_ms = ms(start);
    Phase {
        name,
        wall_ms,
        throughput_checks: Some(checks),
        cache_hits: Some(allocator.cache().hits()),
        cache_misses: Some(allocator.cache().misses()),
        ..Phase::default()
    }
}

fn main() {
    let out_path = env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_throughput.json".into());
    let mut phases: Vec<Phase> = Vec::new();
    // One registry across every allocator phase; its snapshot rides along
    // in the report so CI artifacts carry the full counter/histogram set.
    let metrics = Metrics::collecting();

    // --- Phase 1: plain self-timed exploration, paper example (Fig 5a).
    let app = paper_example();
    let mut plain = app.graph().clone();
    plain.set_execution_time(plain.actor_by_name("a1").unwrap(), 1);
    plain.set_execution_time(plain.actor_by_name("a2").unwrap(), 1);
    plain.set_execution_time(plain.actor_by_name("a3").unwrap(), 2);
    let a3_plain = plain.actor_by_name("a3").unwrap();
    let start = Instant::now();
    let mut result = None;
    for _ in 0..1000 {
        result = Some(SelfTimedExecutor::new(&plain).throughput(a3_plain).unwrap());
    }
    phases.push(Phase {
        name: "selftimed_fig5a_x1000",
        wall_ms: ms(start),
        states_explored: result.map(|r| r.states_explored),
        ..Phase::default()
    });

    // --- Phase 2: constrained execution, paper example (Fig 5c).
    let ba = example_ba();
    let schedules = construct_schedules(&ba).unwrap();
    let a3 = ba.graph().actor_by_name("a3").unwrap();
    let start = Instant::now();
    let mut result = None;
    for _ in 0..1000 {
        result = Some(constrained_throughput(&ba, &schedules, a3).unwrap());
    }
    phases.push(Phase {
        name: "constrained_fig5c_x1000",
        wall_ms: ms(start),
        states_explored: result.map(|r| r.states_explored),
        ..Phase::default()
    });

    // --- Phase 3: self-timed exploration of the H.263 decoder — the
    // Sec 1 workload whose HSDF equivalent has 4754 actors.
    let h263 = timed_h263();
    let mc = h263.actor_by_name("mc0").unwrap();
    let start = Instant::now();
    let result = SelfTimedExecutor::new(&h263).throughput(mc).unwrap();
    phases.push(Phase {
        name: "selftimed_h263",
        wall_ms: ms(start),
        states_explored: Some(result.states_explored),
        ..Phase::default()
    });

    // --- Phase 4: one end-to-end flow for the H.263 decoder.
    let h263_app = h263_decoder(0, Rational::new(1, 200_000));
    let arch = multimedia_platform();
    let state = PlatformState::new(&arch);
    let start = Instant::now();
    let (_, stats) = Allocator::new()
        .with_metrics(metrics.clone())
        .allocate(&h263_app, &arch, &state)
        .expect("the H.263 decoder fits an empty multimedia platform");
    phases.push(Phase {
        name: "flow_h263",
        wall_ms: ms(start),
        throughput_checks: Some(stats.throughput_checks),
        cache_hits: Some(stats.cache_hits),
        cache_misses: Some(stats.cache_misses),
        ..Phase::default()
    });

    // --- Phases 5/6: repeated admission checks, memoization off vs on.
    const ROUNDS: usize = 6;
    let off = admission_repeat(
        "admission_repeat_nocache",
        ROUNDS,
        ThroughputCache::disabled(),
        &metrics,
    );
    let on = admission_repeat(
        "admission_repeat_cache",
        ROUNDS,
        ThroughputCache::new(),
        &metrics,
    );
    let speedup = off.wall_ms / on.wall_ms.max(1e-9);
    phases.push(off);
    phases.push(on);

    for p in &phases {
        let extras = [
            p.states_explored.map(|s| format!("states {s}")),
            p.throughput_checks.map(|c| format!("checks {c}")),
            p.cache_hits.map(|h| format!("hits {h}")),
            p.cache_misses.map(|m| format!("misses {m}")),
        ]
        .into_iter()
        .flatten()
        .collect::<Vec<_>>()
        .join(", ");
        eprintln!("{:<28} {:>10.3} ms   {}", p.name, p.wall_ms, extras);
    }
    eprintln!("cache speedup on repeated admission ({ROUNDS} rounds): {speedup:.2}x");

    let snapshot = metrics
        .snapshot()
        .expect("the collecting registry snapshots");
    let json = format!(
        "{{\n  \"harness\": \"bench_throughput\",\n  \"rounds\": {ROUNDS},\n  \
         \"phases\": [\n{}\n  ],\n  \"cache_speedup\": {speedup:.2},\n  \
         \"metrics\": {}\n}}\n",
        phases
            .iter()
            .map(Phase::json)
            .collect::<Vec<_>>()
            .join(",\n"),
        snapshot.to_json()
    );
    std::fs::write(&out_path, json).expect("report written");
    eprintln!("report written to {out_path}");
}
