//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro fig5                 Figure 5 state-space periods
//! repro table3               Table 3 bindings
//! repro table4 [--quick]     Table 4 average #applications bound
//! repro table5 [--quick]     Table 5 resource efficiency (mixed set)
//! repro multimedia           Sec 10.3 multimedia system
//! repro hsdf                 Fig 1 / Sec 1 HSDF blow-up + runtime comparison
//! repro runtime [--quick]    Sec 10.2 run-time / throughput-check statistics
//! repro sweep [set]          weight-grid search (default: mixed set)
//! repro baseline             flow-level SDFG-direct vs HSDF+MCM comparison
//! repro all [--quick]        everything above
//! ```
//!
//! `--quick` shrinks the Table 4/5 experiment (1 sequence × 10 apps
//! instead of 3 × 40) for smoke runs.
//!
//! Every run also writes a machine-readable `BENCH_repro.json` summary
//! (command, configuration, wall-clock) next to the working directory,
//! mirroring the `bench_throughput` report convention for CI artifacts.

use std::env;
use std::time::Instant;

use sdfrs_bench::table4::ExperimentConfig;
use sdfrs_bench::{fig5, hsdf_cmp, multimedia, sweep, table3, table4, table5};

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let command = args.first().map(String::as_str).unwrap_or("all");
    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    let run_start = Instant::now();
    match command {
        "fig5" => {
            print_fig5();
            if args.iter().any(|a| a == "--dot") {
                for dot in sdfrs_bench::fig5::compute_dot() {
                    println!("{dot}");
                }
            }
        }
        "table3" => print_table3(),
        "table4" => {
            let exp = run_experiment(&config);
            print_table4(&exp);
        }
        "table5" => {
            let exp = run_experiment(&config);
            print_table5(&exp);
        }
        "multimedia" => print_multimedia(),
        "hsdf" => print_hsdf(),
        "runtime" => {
            let exp = run_experiment(&config);
            print_runtime(&exp);
        }
        "baseline" => print_baseline(),
        "sweep" => {
            let set = args
                .iter()
                .skip(1)
                .find(|a| !a.starts_with("--"))
                .map(String::as_str)
                .unwrap_or("mixed");
            print_sweep(&config, set);
        }
        "all" => {
            print_fig5();
            print_table3();
            print_hsdf();
            print_multimedia();
            let exp = run_experiment(&config);
            print_table4(&exp);
            print_table5(&exp);
            print_runtime(&exp);
        }
        other => {
            eprintln!("unknown command {other:?}; see the module docs for usage");
            std::process::exit(2);
        }
    }
    write_report(command, quick, &config, run_start);
}

/// Writes the `BENCH_repro.json` run summary.
fn write_report(command: &str, quick: bool, config: &ExperimentConfig, start: Instant) {
    let json = format!(
        "{{\n  \"harness\": \"repro\",\n  \"command\": \"{command}\",\n  \
         \"quick\": {quick},\n  \"sequences\": {},\n  \
         \"apps_per_sequence\": {},\n  \"wall_ms\": {:.3}\n}}\n",
        config.sequences,
        config.apps_per_sequence,
        start.elapsed().as_secs_f64() * 1e3
    );
    match std::fs::write("BENCH_repro.json", &json) {
        Ok(()) => eprintln!("report written to BENCH_repro.json"),
        Err(e) => eprintln!("cannot write BENCH_repro.json: {e}"),
    }
}

fn run_experiment(config: &ExperimentConfig) -> table4::Experiment {
    eprintln!(
        "running benchmark experiment ({} sequences × {} apps per set)...",
        config.sequences, config.apps_per_sequence
    );
    let t0 = Instant::now();
    let exp = table4::run_experiment(config);
    eprintln!("experiment finished in {:?}", t0.elapsed());
    exp
}

fn print_fig5() {
    let f = fig5::compute();
    println!("== Figure 5: state spaces of the running example ==");
    println!("                         period(a3)   paper   states");
    println!(
        "(a) application SDFG       {:>8}        2   {:>6}",
        f.period_application.to_string(),
        f.states[0]
    );
    println!(
        "(b) binding-aware SDFG     {:>8}       29   {:>6}",
        f.period_binding_aware.to_string(),
        f.states[1]
    );
    println!(
        "(c) constrained execution  {:>8}       30   {:>6}",
        f.period_constrained.to_string(),
        f.states[2]
    );
    println!();
}

fn print_table3() {
    let rows = table3::compute().expect("example binds");
    let paper = table3::paper_rows();
    println!("== Table 3: binding of actors to tiles ==");
    println!("c1,c2,c3     a1   a2   a3   (paper)");
    for (row, p) in rows.iter().zip(paper.iter()) {
        println!(
            "{:<10}  {:>3}  {:>3}  {:>3}   (t{} t{} t{})",
            row.weights.to_string(),
            format!("t{}", row.tiles[0] + 1),
            format!("t{}", row.tiles[1] + 1),
            format!("t{}", row.tiles[2] + 1),
            p[0] + 1,
            p[1] + 1,
            p[2] + 1
        );
    }
    println!();
}

fn print_table4(exp: &table4::Experiment) {
    println!("== Table 4: average number of application graphs bound ==");
    println!("c1,c2,c3     set1(proc)  set2(mem)  set3(comm)  set4(mixed)");
    for (w, row) in exp.weights.iter().zip(exp.table4()) {
        println!(
            "{:<12} {:>9.2}  {:>9.2}  {:>9.2}  {:>10.2}",
            w.to_string(),
            row[0],
            row[1],
            row[2],
            row[3]
        );
    }
    println!("(paper: rows ranked per set — see EXPERIMENTS.md)");
    println!();
}

fn print_table5(exp: &table4::Experiment) {
    println!("== Table 5: resource efficiency, mixed set (normalized) ==");
    println!("c1,c2,c3     timewheel  memory  connections  input bw  output bw");
    for (w, row) in exp.weights.iter().zip(table5::compute(exp, "mixed")) {
        println!(
            "{:<12} {:>8.2}  {:>6.2}  {:>11.2}  {:>8.2}  {:>9.2}",
            w.to_string(),
            row.timewheel,
            row.memory,
            row.connections,
            row.input_bw,
            row.output_bw
        );
    }
    let util = table5::utilization(exp, "mixed", exp.weights.len() - 1);
    println!(
        "average platform utilization with weights {}: {:.0}% (paper: 73%)",
        exp.weights[exp.weights.len() - 1],
        util * 100.0
    );
    println!();
}

fn print_multimedia() {
    println!("== Sec 10.3: multimedia system (3×H.263 + MP3 on 2×2 mesh) ==");
    let m = multimedia::run();
    println!(
        "HSDF sizes: {:?} (total {}, paper: 3×4754 + 13 = 14275)",
        m.hsdf_sizes,
        m.hsdf_sizes.iter().sum::<u64>()
    );
    println!(
        "applications bound: {}/4 in {:?} (paper: all 4 in 8 minutes on a P4)",
        m.result.bound_count(),
        m.elapsed
    );
    println!(
        "slice-allocation throughput checks: {} (paper: 34)",
        m.slice_checks
    );
    println!(
        "share of run-time in slice allocation: {:.0}% (paper: ~90%)",
        m.slice_fraction * 100.0
    );
    for (i, alloc) in m.result.allocations.iter().enumerate() {
        println!(
            "  app {i}: slices {:?}, guaranteed throughput {}",
            alloc.slices,
            alloc.guaranteed_throughput()
        );
    }
    println!();
}

fn print_hsdf() {
    println!("== Fig 1 / Sec 1: SDF vs HSDF problem size and analysis time ==");
    let c = hsdf_cmp::compare();
    println!(
        "H.263 SDFG: {} actors; HSDF equivalent: {} actors, {} channels (paper: 4754 actors)",
        c.sdf_actors, c.hsdf_actors, c.hsdf_channels
    );
    println!(
        "state-space on SDFG: thr {} in {:?}",
        c.sdf_throughput, c.sdf_time
    );
    println!(
        "convert + MCM on HSDFG: thr {} in {:?}",
        c.hsdf_throughput, c.hsdf_time
    );
    let speedup = c.hsdf_time.as_secs_f64() / c.sdf_time.as_secs_f64().max(1e-9);
    println!(
        "SDF-direct analysis is {speedup:.1}× faster (paper: 21 min vs <3 min for the whole flow)"
    );
    println!();
}

fn print_baseline() {
    println!("== Flow-level comparison: SDFG-direct vs HSDF+MCM baseline (H.263) ==");
    let c = hsdf_cmp::compare_flows();
    println!(
        "SDFG-direct slice allocation:  {:?} ({} checks)",
        c.sdf_time, c.sdf_checks
    );
    println!(
        "HSDF+MCM baseline allocation:  {:?} ({} checks, peak HSDF {} actors)",
        c.hsdf_time, c.hsdf_checks, c.peak_hsdf_actors
    );
    let ratio = c.hsdf_time.as_secs_f64() / c.sdf_time.as_secs_f64().max(1e-9);
    println!(
        "the baseline is {ratio:.0}× slower and allocates {} total slice units vs {} \
         (paper: 'several hours' vs 8 minutes; conservatism costs wheel time)",
        c.slices.1, c.slices.0
    );
    println!();
}

fn print_sweep(config: &ExperimentConfig, set: &str) {
    eprintln!("sweeping 26 weight settings on set {set:?}...");
    let sweep_config = ExperimentConfig {
        sequences: 1,
        apps_per_sequence: config.apps_per_sequence.min(12),
        ..config.clone()
    };
    let points = sweep::sweep(&sweep_config, set, sweep::weight_grid());
    println!("== Weight sweep on set {set} (paper: this search motivated (0,1,2)) ==");
    println!("rank  c1,c2,c3     avg bound");
    for (i, p) in points.iter().take(8).enumerate() {
        println!(
            "{:>4}  {:<10}  {:>8.2}",
            i + 1,
            p.weights.to_string(),
            p.avg_bound
        );
    }
}

fn print_runtime(exp: &table4::Experiment) {
    println!("== Sec 10.2: run-time statistics ==");
    let total_bound: usize = exp.runs.iter().map(|r| r.bound).sum();
    println!(
        "allocations performed: {total_bound}; avg throughput checks per allocation: {:.1} (paper: 16.1)",
        exp.avg_throughput_checks()
    );
    println!();
}
