//! `sdfrs-gap-study` — the heuristic-vs-exact optimality-gap study the
//! paper never ran (EXPERIMENTS.md "How far from optimal is the
//! heuristic?").
//!
//! ```text
//! sdfrs-gap-study [out.json] [--seeds N] [--markdown] [--check]
//! ```
//!
//! Sweeps `sdfrs_gen` scenarios pinned to the enumerable regime (2–4
//! actors on 2 tiles — where the branch-and-bound search proves
//! optimality within its default budget), runs the greedy heuristic and
//! the exact solver on each feasible instance, and reports per instance:
//! the constraint λ, greedy's achieved guaranteed throughput, the exact
//! optimum with its certified bound pair, and the *heuristic gap*
//! `(optimal − greedy) / optimal` — how much guaranteed throughput the
//! paper's flow leaves on the table.
//!
//! Output is a `BENCH_exact.json` report (median/max heuristic gap,
//! branch-and-bound nodes per second, per-instance rows); `--markdown`
//! additionally prints the EXPERIMENTS.md table on stdout. `--check` is
//! the CI regression gate: it exits non-zero unless on every feasible
//! instance the exact optimum dominates greedy, both satisfy λ, and the
//! search proved optimality.

use std::env;
use std::process::ExitCode;
use std::time::Instant;

use sdfrs_core::exact::enumerate_exhaustive;
use sdfrs_core::solver::SolverBackend;
use sdfrs_core::{Allocator, Exact, Greedy, SolveReport};
use sdfrs_gen::{Scenario, ScenarioConfig};
use sdfrs_platform::PlatformState;
use sdfrs_sdf::Rational;

struct Row {
    seed: u64,
    actors: usize,
    tiles: usize,
    lambda: Rational,
    greedy: Rational,
    exact: SolveReport,
    /// `(optimal − greedy) / optimal`.
    heuristic_gap: Rational,
    /// Exhaustive enumeration agreed bit-for-bit with the search.
    enumeration_agrees: bool,
    elapsed_us: u128,
}

struct Args {
    out_path: String,
    seeds: u64,
    markdown: bool,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out_path: "BENCH_exact.json".into(),
        seeds: 24,
        markdown: false,
        check: false,
    };
    let mut it = env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => {
                let value = it.next().ok_or("--seeds needs a count")?;
                args.seeds = value.parse().map_err(|e| format!("--seeds {value}: {e}"))?;
            }
            "--markdown" => args.markdown = true,
            "--check" => args.check = true,
            other if !other.starts_with("--") => args.out_path = other.to_string(),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn f64_of(r: Rational) -> f64 {
    r.to_f64()
}

fn run_sweep(seeds: u64) -> (Vec<Row>, u64) {
    let config = ScenarioConfig {
        actors: 2..=4,
        tiles: 2..=2,
        ..ScenarioConfig::default()
    };
    let mut rows = Vec::new();
    let mut infeasible = 0u64;
    for seed in 0..seeds {
        let scenario = Scenario::sample_with(&config, seed);
        let state = PlatformState::new(&scenario.arch);
        let greedy = Greedy.solve(&mut Allocator::new(), &scenario.app, &scenario.arch, &state);
        let started = Instant::now();
        let exact =
            Allocator::new().solve_with(&Exact::default(), &scenario.app, &scenario.arch, &state);
        let elapsed_us = started.elapsed().as_micros();
        let (Ok(greedy), Ok(exact)) = (greedy, exact) else {
            infeasible += 1;
            continue;
        };
        let enumeration_agrees =
            enumerate_exhaustive(&mut Allocator::new(), &scenario.app, &scenario.arch, &state)
                .map(|x| {
                    x.allocation.binding == exact.allocation.binding
                        && x.allocation.schedules == exact.allocation.schedules
                        && x.allocation.slices == exact.allocation.slices
                        && x.report.lower == exact.report.lower
                })
                .unwrap_or(false);
        let optimal = exact.report.lower;
        let achieved = greedy.report.lower;
        let heuristic_gap = if optimal > Rational::ZERO {
            (optimal - achieved.min(optimal)) / optimal
        } else {
            Rational::ZERO
        };
        rows.push(Row {
            seed,
            actors: scenario.app.graph().actor_count(),
            tiles: scenario.arch.tile_count(),
            lambda: scenario.app.throughput_constraint(),
            greedy: achieved,
            exact: exact.report,
            heuristic_gap,
            enumeration_agrees,
            elapsed_us,
        });
    }
    (rows, infeasible)
}

fn median(mut values: Vec<f64>) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("gap values are finite"));
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    }
}

fn report_json(rows: &[Row], infeasible: u64, seeds: u64) -> String {
    let gaps: Vec<f64> = rows.iter().map(|r| f64_of(r.heuristic_gap)).collect();
    let optimal_hits = rows
        .iter()
        .filter(|r| r.heuristic_gap == Rational::ZERO)
        .count();
    let nodes: u64 = rows.iter().map(|r| r.exact.nodes_expanded).sum();
    let pivots: u64 = rows.iter().map(|r| r.exact.lp_pivots).sum();
    let elapsed_us: u128 = rows.iter().map(|r| r.elapsed_us).sum();
    let nodes_per_sec = if elapsed_us > 0 {
        nodes as f64 / (elapsed_us as f64 / 1e6)
    } else {
        0.0
    };
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"seed\": {}, \"actors\": {}, \"tiles\": {}, \"lambda\": \"{}\", \
                 \"greedy\": \"{}\", \"optimal\": \"{}\", \"upper\": \"{}\", \
                 \"heuristic_gap\": {:.6}, \"proven_optimal\": {}, \"enumeration_agrees\": {}, \
                 \"nodes\": {}, \"lp_pivots\": {}, \"elapsed_us\": {} }}",
                r.seed,
                r.actors,
                r.tiles,
                r.lambda,
                r.greedy,
                r.exact.lower,
                r.exact.upper,
                f64_of(r.heuristic_gap),
                r.exact.proven_optimal,
                r.enumeration_agrees,
                r.exact.nodes_expanded,
                r.exact.lp_pivots,
                r.elapsed_us
            )
        })
        .collect();
    format!(
        "{{\n  \"harness\": \"gap_study\",\n  \"seeds\": {seeds},\n  \"feasible\": {},\n  \
         \"infeasible\": {infeasible},\n  \"median_heuristic_gap\": {:.6},\n  \
         \"max_heuristic_gap\": {:.6},\n  \"greedy_optimal_on\": {optimal_hits},\n  \
         \"nodes_total\": {nodes},\n  \"lp_pivots_total\": {pivots},\n  \
         \"nodes_per_sec\": {nodes_per_sec:.1},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.len(),
        median(gaps.clone()),
        gaps.iter().cloned().fold(0.0f64, f64::max),
        row_json.join(",\n")
    )
}

fn markdown_table(rows: &[Row]) -> String {
    let mut out = String::from(
        "| seed | actors×tiles | λ | greedy | optimal | heuristic gap | nodes | LP pivots |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {}×{} | {} | {} | {} | {:.1}% | {} | {} |\n",
            r.seed,
            r.actors,
            r.tiles,
            r.lambda,
            r.greedy,
            r.exact.lower,
            f64_of(r.heuristic_gap) * 100.0,
            r.exact.nodes_expanded,
            r.exact.lp_pivots
        ));
    }
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("sdfrs-gap-study: {e}");
            eprintln!("usage: sdfrs-gap-study [out.json] [--seeds N] [--markdown] [--check]");
            return ExitCode::from(2);
        }
    };

    let (rows, infeasible) = run_sweep(args.seeds);
    if rows.is_empty() {
        eprintln!(
            "sdfrs-gap-study: no feasible instance in {} seeds",
            args.seeds
        );
        return ExitCode::FAILURE;
    }

    let json = report_json(&rows, infeasible, args.seeds);
    if let Err(e) = std::fs::write(&args.out_path, &json) {
        eprintln!("sdfrs-gap-study: writing {}: {e}", args.out_path);
        return ExitCode::FAILURE;
    }
    if args.markdown {
        print!("{}", markdown_table(&rows));
    } else {
        let gaps: Vec<f64> = rows.iter().map(|r| f64_of(r.heuristic_gap)).collect();
        println!(
            "{} feasible / {} seeds, median heuristic gap {:.1}%, greedy optimal on {}/{}",
            rows.len(),
            args.seeds,
            median(gaps) * 100.0,
            rows.iter()
                .filter(|r| r.heuristic_gap == Rational::ZERO)
                .count(),
            rows.len()
        );
    }
    println!("report written to {}", args.out_path);

    if args.check {
        // The CI regression gate: the exact optimum dominates greedy,
        // both respect λ, the search proved optimality, and the
        // exhaustive enumeration agrees bit-for-bit.
        for r in &rows {
            let reject = |what: &str| {
                eprintln!("sdfrs-gap-study: seed {}: {what}", r.seed);
                ExitCode::FAILURE
            };
            if r.exact.lower < r.greedy {
                return reject("greedy beats the proven optimum");
            }
            if r.greedy < r.lambda || r.exact.lower < r.lambda {
                return reject("an admitting route violates λ");
            }
            if !r.exact.proven_optimal {
                return reject("exact search left a residual gap");
            }
            if !r.enumeration_agrees {
                return reject("exhaustive enumeration disagrees with the search");
            }
        }
        println!(
            "check passed: exact dominates greedy on all {} instances",
            rows.len()
        );
    }
    ExitCode::SUCCESS
}
