//! `sdfrs-loadgen` — closed-loop load and fault harness for the
//! networked allocation service.
//!
//! ```text
//! sdfrs-loadgen [output.json] [--addr HOST:PORT] [--clients N]
//!               [--requests N] [--seed N]
//!               [--policy greedy|best-fit|exact|portfolio]
//! ```
//!
//! Two modes:
//!
//! * **Self-hosted** (default): spawns a loopback
//!   [`sdfrs_net::NetServer`] around a
//!   fresh service on the paper's example platform and drives two
//!   phases — `steady` (default watermark, nothing sheds) and
//!   `overload` (watermark 2, backpressure engages). After each phase
//!   the server is drained and its commit log replayed offline; a
//!   residual-digest mismatch is a **hard failure** (exit 1) — the
//!   load run doubles as a determinism check.
//! * **External** (`--addr`): drives one `steady` phase against an
//!   already-running `sdfrs serve --listen` instance. No server-side
//!   stats or replay check are available in this mode; the commit-log
//!   diff is the CI job's responsibility.
//!
//! The report (default `BENCH_service.json`) records, per phase:
//! p50/p99/mean latency in microseconds, a full client-side latency
//! histogram (same bucket bounds as the server's
//! `net_request_latency_us`), the top-3 slowest requests with their
//! trace ids, admissions per second, shed rate, the full client-side
//! outcome tally, and — self-hosted only — the server's queue-depth
//! histogram, flight-recorder tallies and commit count. Histogram
//! `bounds` arrays carry an explicit `"+Inf"` overflow label so
//! `bounds` and `counts` always have matching, self-describing lengths.

use std::env;
use std::net::SocketAddr;
use std::process::ExitCode;

use sdfrs_appmodel::apps::example_platform;
use sdfrs_core::admission::AdmissionPolicy;
use sdfrs_core::metrics::{HistogramSnapshot, NET_LATENCY_BOUNDS};
use sdfrs_core::service::{replay_commit_log, AllocationService, CommitLog, ServiceConfig};
use sdfrs_net::loadgen::{self, LoadgenOptions};
use sdfrs_net::server::{NetServer, ServerOptions};

/// Flight-recorder capacity for self-hosted phases: large enough that
/// nothing a default run pins is ever evicted, so the shed-capture
/// check below is exact.
const HOSTED_FLIGHT_CAPACITY: usize = 4096;

/// Server-side flight-recorder tallies of one self-hosted phase.
struct FlightStats {
    recorded: u64,
    pinned: u64,
    /// Pinned entries whose anomaly is `"shed"` — must equal the
    /// client-observed shed count when no response was lost.
    shed_pinned: u64,
}

/// One measured phase of the run.
struct Phase {
    name: &'static str,
    report: loadgen::LoadReport,
    /// Server-side queue-depth histogram (self-hosted only).
    queue_depth: Option<HistogramSnapshot>,
    /// Commit-log length (self-hosted only).
    commits_logged: Option<u64>,
    /// Replay-equality verdict (self-hosted only).
    replay_ok: Option<bool>,
    /// Flight-recorder tallies (self-hosted only).
    flight: Option<FlightStats>,
}

/// Renders one histogram as `{ "bounds": [...,"+Inf"], "counts": [...] }`.
///
/// The overflow bucket gets an explicit `"+Inf"` bound so the two
/// arrays always have the same length and the encoding is
/// self-describing — consumers never need to know the
/// `counts.len() == bounds.len() + 1` convention.
fn hist_json(bounds: &[u64], counts: &[u64]) -> String {
    debug_assert_eq!(counts.len(), bounds.len() + 1);
    let mut bound_labels: Vec<String> = bounds.iter().map(u64::to_string).collect();
    bound_labels.push("\"+Inf\"".into());
    let counts: Vec<String> = counts.iter().map(u64::to_string).collect();
    format!(
        "{{ \"bounds\": [{}], \"counts\": [{}] }}",
        bound_labels.join(", "),
        counts.join(", ")
    )
}

/// Buckets client-observed latencies into the server's
/// [`NET_LATENCY_BOUNDS`] shape (one extra overflow bucket).
fn latency_counts(latencies_us: &[u64]) -> Vec<u64> {
    let mut counts = vec![0u64; NET_LATENCY_BOUNDS.len() + 1];
    for &value in latencies_us {
        let i = NET_LATENCY_BOUNDS.partition_point(|&b| b < value);
        counts[i] += 1;
    }
    counts
}

impl Phase {
    fn json(&self) -> String {
        let r = &self.report;
        let mut fields = vec![
            format!("\"name\": \"{}\"", self.name),
            format!("\"wall_ms\": {:.3}", r.elapsed.as_secs_f64() * 1e3),
            format!("\"clients\": {}", r.clients),
            format!("\"requests\": {}", r.requests),
            format!("\"admitted\": {}", r.admitted),
            format!("\"rejected\": {}", r.rejected),
            format!("\"departed\": {}", r.departed),
            format!("\"rebound\": {}", r.rebound),
            format!("\"status\": {}", r.status),
            format!("\"failed\": {}", r.failed),
            format!("\"shed\": {}", r.shed),
            format!("\"deadline_expired\": {}", r.deadline_expired),
            format!("\"parse_errors\": {}", r.parse_errors),
            format!("\"lost\": {}", r.lost),
            format!("\"trace_mismatches\": {}", r.trace_mismatches),
            format!("\"p50_us\": {}", r.latency_percentile_us(0.50)),
            format!("\"p99_us\": {}", r.latency_percentile_us(0.99)),
            format!("\"mean_us\": {}", r.latency_mean_us()),
            format!(
                "\"latency_us\": {}",
                hist_json(NET_LATENCY_BOUNDS, &latency_counts(&r.latencies_us))
            ),
            format!(
                "\"slowest\": [{}]",
                r.slowest
                    .iter()
                    .map(|s| format!(
                        "{{ \"trace\": \"{}\", \"latency_us\": {}, \"op\": \"{}\" }}",
                        s.trace, s.latency_us, s.op
                    ))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            format!("\"admissions_per_sec\": {:.3}", r.admissions_per_sec()),
            format!("\"shed_rate\": {:.4}", r.shed_rate()),
        ];
        if let Some(commits) = self.commits_logged {
            fields.push(format!("\"commits_logged\": {commits}"));
        }
        if let Some(ok) = self.replay_ok {
            fields.push(format!("\"replay_ok\": {ok}"));
        }
        if let Some(h) = &self.queue_depth {
            fields.push(format!(
                "\"queue_depth\": {}",
                hist_json(&h.bounds, &h.counts)
            ));
        }
        if let Some(f) = &self.flight {
            fields.push(format!("\"flight_recorded\": {}", f.recorded));
            fields.push(format!("\"flight_pinned\": {}", f.pinned));
            fields.push(format!("\"flight_shed_pinned\": {}", f.shed_pinned));
        }
        format!("    {{ {} }}", fields.join(", "))
    }
}

struct Args {
    out_path: String,
    addr: Option<SocketAddr>,
    /// Admission policy of the self-hosted service (and its replay
    /// check). Ignored with `--addr`: an external server has its own.
    policy: AdmissionPolicy,
    options: LoadgenOptions,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out_path: "BENCH_service.json".into(),
        addr: None,
        policy: AdmissionPolicy::default(),
        options: LoadgenOptions::default(),
    };
    let mut it = env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => {
                let value = take("--addr")?;
                args.addr = Some(value.parse().map_err(|e| format!("--addr {value}: {e}"))?);
            }
            "--clients" => {
                let value = take("--clients")?;
                args.options.clients = value
                    .parse()
                    .map_err(|e| format!("--clients {value}: {e}"))?;
            }
            "--requests" => {
                let value = take("--requests")?;
                args.options.requests_per_client = value
                    .parse()
                    .map_err(|e| format!("--requests {value}: {e}"))?;
            }
            "--seed" => {
                let value = take("--seed")?;
                args.options.seed = value.parse().map_err(|e| format!("--seed {value}: {e}"))?;
            }
            "--policy" => {
                let value = take("--policy")?;
                args.policy = value
                    .parse()
                    .map_err(|e| format!("--policy {value}: {e}"))?;
            }
            other if !other.starts_with("--") => args.out_path = other.to_string(),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Runs one self-hosted phase: fresh server, loadgen, drain, replay.
/// The policy reaches both the served service and the replay check —
/// the replay must re-admit with the same backend to reproduce the
/// residual digest.
fn hosted_phase(
    name: &'static str,
    queue_watermark: usize,
    policy: AdmissionPolicy,
    options: &LoadgenOptions,
) -> Result<Phase, String> {
    let arch = example_platform();
    let service_config = || {
        let mut c = ServiceConfig::default();
        c.policy = policy;
        c
    };
    let server_options = ServerOptions {
        queue_watermark,
        flight_recorder: HOSTED_FLIGHT_CAPACITY,
        ..ServerOptions::default()
    };
    let server = NetServer::spawn(
        AllocationService::from_config(&arch, service_config()),
        CommitLog::new(),
        server_options,
        "127.0.0.1:0",
    )
    .map_err(|e| format!("bind loopback: {e}"))?;
    let report = loadgen::run(server.local_addr(), options).map_err(|e| format!("loadgen: {e}"))?;
    let server_report = server.shutdown();

    let lines = server_report.commit_log.lines().iter().map(String::as_str);
    let replayed = replay_commit_log(&arch, service_config(), lines)
        .map_err(|e| format!("{name}: commit log does not replay: {e}"))?;
    let replay_ok = replayed.residual_digest() == server_report.residual_digest();
    // Shed requests never commit and every commit was answered: with no
    // lost responses the client-side tally must equal the log exactly.
    if report.lost == 0 && report.commits() != server_report.commit_log.len() as u64 {
        return Err(format!(
            "{name}: clients observed {} commits but the log holds {}",
            report.commits(),
            server_report.commit_log.len()
        ));
    }
    let recorder = &server_report.flight_recorder;
    let flight = FlightStats {
        recorded: recorder.recorded(),
        pinned: recorder.pinned_total(),
        shed_pinned: recorder
            .pinned()
            .iter()
            .filter(|e| e.anomaly == Some("shed"))
            .count() as u64,
    };
    // Every shed response the clients saw must be pinned in the flight
    // recorder with its span tree — the observability contract the CI
    // smoke job relies on.
    if report.lost == 0 && flight.shed_pinned != report.shed {
        return Err(format!(
            "{name}: clients observed {} shed requests but the flight recorder pinned {}",
            report.shed, flight.shed_pinned
        ));
    }
    if report.trace_mismatches != 0 {
        return Err(format!(
            "{name}: {} responses echoed a wrong trace id",
            report.trace_mismatches
        ));
    }
    Ok(Phase {
        name,
        report,
        queue_depth: Some(server_report.stats.queue_depth.clone()),
        commits_logged: Some(server_report.commit_log.len() as u64),
        replay_ok: Some(replay_ok),
        flight: Some(flight),
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("sdfrs-loadgen: {e}");
            eprintln!(
                "usage: sdfrs-loadgen [output.json] [--addr HOST:PORT] \
                 [--clients N] [--requests N] [--seed N] \
                 [--policy greedy|best-fit|exact|portfolio]"
            );
            return ExitCode::from(2);
        }
    };

    let phases: Result<Vec<Phase>, String> = match args.addr {
        Some(addr) => loadgen::run(addr, &args.options)
            .map(|report| {
                vec![Phase {
                    name: "steady",
                    report,
                    queue_depth: None,
                    commits_logged: None,
                    replay_ok: None,
                    flight: None,
                }]
            })
            .map_err(|e| format!("loadgen against {addr}: {e}")),
        None => hosted_phase(
            "steady",
            ServerOptions::default().queue_watermark,
            args.policy,
            &args.options,
        )
        .and_then(|steady| {
            Ok(vec![
                steady,
                hosted_phase("overload", 2, args.policy, &args.options)?,
            ])
        }),
    };
    let phases = match phases {
        Ok(phases) => phases,
        Err(e) => {
            eprintln!("sdfrs-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };

    for phase in &phases {
        let r = &phase.report;
        println!(
            "{:<9} {:>6} requests  {:>7.1} admissions/s  p50 {:>6}us  p99 {:>7}us  \
             shed {:>5.1}%  lost {}",
            phase.name,
            r.requests,
            r.admissions_per_sec(),
            r.latency_percentile_us(0.50),
            r.latency_percentile_us(0.99),
            r.shed_rate() * 100.0,
            r.lost,
        );
        for slow in &r.slowest {
            println!(
                "          slowest: {:>7}us  {:<7} trace {}",
                slow.latency_us, slow.op, slow.trace
            );
        }
    }

    let json = format!(
        "{{\n  \"harness\": \"loadgen\",\n  \"clients\": {},\n  \"requests_per_client\": {},\n  \
         \"seed\": {},\n  \"phases\": [\n{}\n  ]\n}}\n",
        args.options.clients,
        args.options.requests_per_client,
        args.options.seed,
        phases
            .iter()
            .map(Phase::json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    if let Err(e) = std::fs::write(&args.out_path, json) {
        eprintln!("sdfrs-loadgen: writing {}: {e}", args.out_path);
        return ExitCode::FAILURE;
    }
    println!("report written to {}", args.out_path);

    if phases.iter().any(|p| p.replay_ok == Some(false)) {
        eprintln!("sdfrs-loadgen: commit-log replay diverged from the live residual");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
