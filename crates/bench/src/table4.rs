//! E5: Table 4 — average number of application graphs bound per tile-cost
//! function and benchmark set, and the raw per-run data Table 5 reuses.
//!
//! Protocol of Sec 10.1/10.2: for each tile-cost function, architecture
//! graph (3 platforms) and sequence of application graphs (3 per set),
//! applications are allocated until the first failure; the reported number
//! is the count of successfully bound graphs, averaged over the 9 runs.

use sdfrs_appmodel::ApplicationGraph;
use sdfrs_core::cost::CostWeights;
use sdfrs_core::flow::FlowConfig;
use sdfrs_core::multi_app::allocate_until_failure;
use sdfrs_gen::{AppGenerator, GeneratorConfig};
use sdfrs_platform::mesh::experiment_platforms;
use sdfrs_platform::{ArchitectureGraph, ProcessorType, TileUsage};

/// Configuration of the Table 4/5 experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Sequences per set (paper: 3).
    pub sequences: usize,
    /// Applications generated per sequence (must exceed the number any
    /// run can bind; the paper's best cell averages ~30).
    pub apps_per_sequence: usize,
    /// Base RNG seed; every (set, sequence) pair derives its own stream.
    pub seed: u64,
    /// State budget per throughput evaluation, bounding worst-case
    /// exploration on unlucky graphs.
    pub state_budget: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            sequences: 3,
            apps_per_sequence: 40,
            seed: 2007,
            state_budget: 200_000,
        }
    }
}

impl ExperimentConfig {
    /// A reduced configuration for quick runs and CI tests.
    pub fn quick() -> Self {
        ExperimentConfig {
            sequences: 1,
            apps_per_sequence: 10,
            ..ExperimentConfig::default()
        }
    }
}

/// One allocation run: a (set, weights, platform, sequence) combination.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Benchmark set name.
    pub set: &'static str,
    /// Tile-cost weights used.
    pub weights: CostWeights,
    /// Platform index (0..3) and sequence index.
    pub platform: usize,
    /// Sequence index within the set.
    pub sequence: usize,
    /// Applications successfully bound before the first failure.
    pub bound: usize,
    /// Throughput checks across the successful allocations.
    pub throughput_checks: usize,
    /// Total resources in use at the end of the run.
    pub usage: TileUsage,
    /// Total platform capacity (for efficiency ratios).
    pub capacity: TileUsage,
}

/// The full experiment output.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// All individual runs.
    pub runs: Vec<RunResult>,
    /// The weight settings, in Table 4 row order.
    pub weights: Vec<CostWeights>,
    /// The set names, in Table 4 column order.
    pub sets: Vec<&'static str>,
}

impl Experiment {
    /// Table 4: average bound count per (weight row, set column).
    pub fn table4(&self) -> Vec<Vec<f64>> {
        self.weights
            .iter()
            .map(|w| {
                self.sets
                    .iter()
                    .map(|s| {
                        let runs: Vec<&RunResult> = self
                            .runs
                            .iter()
                            .filter(|r| r.set == *s && r.weights == *w)
                            .collect();
                        runs.iter().map(|r| r.bound as f64).sum::<f64>() / runs.len().max(1) as f64
                    })
                    .collect()
            })
            .collect()
    }

    /// Average throughput checks per successful allocation across all
    /// runs (the paper reports 16.1).
    pub fn avg_throughput_checks(&self) -> f64 {
        let (checks, bound): (usize, usize) = self
            .runs
            .iter()
            .fold((0, 0), |(c, b), r| (c + r.throughput_checks, b + r.bound));
        checks as f64 / bound.max(1) as f64
    }
}

/// Total capacity of a platform, summed over tiles.
fn platform_capacity(arch: &ArchitectureGraph) -> TileUsage {
    let mut cap = TileUsage::default();
    for (_, t) in arch.tiles() {
        cap.wheel += t.wheel_size();
        cap.memory += t.memory();
        cap.connections += t.max_connections();
        cap.bandwidth_in += t.bandwidth_in();
        cap.bandwidth_out += t.bandwidth_out();
    }
    cap
}

/// Generates the shared application sequences: `sequences` per set,
/// deterministic in `seed`. The same sequences are reused for every
/// weight setting and platform, as in the paper.
pub fn benchmark_sequences(
    config: &ExperimentConfig,
) -> Vec<(&'static str, Vec<Vec<ApplicationGraph>>)> {
    let types = vec![
        ProcessorType::new("risc"),
        ProcessorType::new("dsp"),
        ProcessorType::new("acc"),
    ];
    GeneratorConfig::benchmark_sets()
        .into_iter()
        .enumerate()
        .map(|(set_idx, (name, gen_cfg))| {
            let seqs = (0..config.sequences)
                .map(|seq| {
                    let seed = config
                        .seed
                        .wrapping_mul(1_000_003)
                        .wrapping_add((set_idx * 97 + seq) as u64);
                    let mut gen = AppGenerator::new(gen_cfg.clone(), types.clone(), seed);
                    gen.generate_sequence(&format!("{name}{seq}"), config.apps_per_sequence)
                })
                .collect();
            (name, seqs)
        })
        .collect()
}

/// Runs the full Table 4/5 experiment.
pub fn run_experiment(config: &ExperimentConfig) -> Experiment {
    run_experiment_with_weights(config, CostWeights::table4().to_vec())
}

/// Runs the experiment with custom weight rows (used by the weight-sweep
/// ablation).
pub fn run_experiment_with_weights(
    config: &ExperimentConfig,
    weights: Vec<CostWeights>,
) -> Experiment {
    let platforms = experiment_platforms();
    let sequences = benchmark_sequences(config);

    // Every (weights, set, platform, sequence) run is independent: fan the
    // cells out over the available cores. `par_map` hands the results back
    // indexed by job, so the table is byte-identical to a sequential run.
    let mut jobs: Vec<(
        CostWeights,
        &'static str,
        usize,
        usize,
        &Vec<ApplicationGraph>,
    )> = Vec::new();
    for &w in &weights {
        for (set, seqs) in &sequences {
            for p_idx in 0..platforms.len() {
                for (s_idx, apps) in seqs.iter().enumerate() {
                    jobs.push((w, set, p_idx, s_idx, apps));
                }
            }
        }
    }
    let runs = sdfrs_fastutil::par_map(&jobs, |&(w, set, p_idx, s_idx, apps)| {
        let mut flow = FlowConfig::with_weights(w);
        flow.slice.state_budget = config.state_budget;
        flow.schedule_state_budget = config.state_budget;
        let arch = &platforms[p_idx];
        let result = allocate_until_failure(apps, arch, &flow);
        RunResult {
            set,
            weights: w,
            platform: p_idx,
            sequence: s_idx,
            bound: result.bound_count(),
            throughput_checks: result.total_throughput_checks(),
            usage: result.total_usage(),
            capacity: platform_capacity(arch),
        }
    });

    Experiment {
        runs,
        weights,
        sets: sequences.iter().map(|(n, _)| *n).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiment_binds_applications() {
        let cfg = ExperimentConfig {
            sequences: 1,
            apps_per_sequence: 6,
            ..ExperimentConfig::default()
        };
        // Two weight rows keep the test fast.
        let exp =
            run_experiment_with_weights(&cfg, vec![CostWeights::COMMUNICATION, CostWeights::TUNED]);
        assert_eq!(exp.runs.len(), (2 * 4 * 3));
        let table = exp.table4();
        assert_eq!(table.len(), 2);
        assert_eq!(table[0].len(), 4);
        // Something binds somewhere.
        assert!(
            table.iter().flatten().any(|&v| v > 0.0),
            "no application bound at all: {table:?}"
        );
        assert!(exp.avg_throughput_checks() >= 1.0);
    }

    #[test]
    fn sequences_are_deterministic() {
        let cfg = ExperimentConfig {
            sequences: 1,
            apps_per_sequence: 3,
            ..ExperimentConfig::default()
        };
        let a = benchmark_sequences(&cfg);
        let b = benchmark_sequences(&cfg);
        for ((n1, s1), (n2, s2)) in a.iter().zip(b.iter()) {
            assert_eq!(n1, n2);
            for (x, y) in s1.iter().flatten().zip(s2.iter().flatten()) {
                assert_eq!(x.graph(), y.graph());
            }
        }
    }
}
