//! E9: the Fig 1 / Sec 1 problem-size argument — the H.263 decoder's HSDF
//! equivalent has 4754 actors, and throughput analysis on the HSDFG (the
//! maximum-cycle-ratio baseline) is far slower than the state-space
//! technique working directly on the 4-actor SDFG.

use std::time::{Duration, Instant};

use sdfrs_appmodel::apps::h263_decoder;
use sdfrs_platform::ProcessorType;
use sdfrs_sdf::analysis::mcr::{hsdf_max_cycle_mean, CycleRatio};
use sdfrs_sdf::analysis::selftimed::SelfTimedExecutor;
use sdfrs_sdf::hsdf::convert_to_hsdf;
use sdfrs_sdf::{Rational, SdfGraph};

/// Comparison of the two throughput techniques on the H.263 decoder.
#[derive(Debug, Clone)]
pub struct HsdfComparison {
    /// Actors in the SDFG (4).
    pub sdf_actors: usize,
    /// Actors in the HSDF equivalent (4754).
    pub hsdf_actors: usize,
    /// Channels in the HSDF equivalent.
    pub hsdf_channels: usize,
    /// Iteration throughput from the SDF state-space technique.
    pub sdf_throughput: Rational,
    /// Iteration throughput from MCM on the HSDFG (must agree).
    pub hsdf_throughput: Rational,
    /// Time for the state-space analysis on the SDFG.
    pub sdf_time: Duration,
    /// Time for conversion + MCM on the HSDFG.
    pub hsdf_time: Duration,
}

/// A timed H.263 graph: actors carry their generic-processor execution
/// times, every actor is serialized by a self-edge, and channel buffers
/// are bounded so the state space is finite.
pub fn timed_h263() -> SdfGraph {
    let app = h263_decoder(0, Rational::new(1, 1_000_000));
    let src = app.graph();
    let generic = ProcessorType::new("generic");
    let mut g = SdfGraph::new("h263_timed");
    for (a, actor) in src.actors() {
        let tau = app
            .execution_time(a, &generic)
            .expect("all h263 actors run on the generic processor");
        g.add_actor(actor.name(), tau);
    }
    for (a, _) in src.actors() {
        if !src.has_self_edge(a) {
            g.add_self_edge(a, 1);
        }
    }
    for (d, ch) in src.channels() {
        g.add_channel(
            ch.name(),
            ch.src(),
            ch.production_rate(),
            ch.dst(),
            ch.consumption_rate(),
            ch.initial_tokens(),
        );
        g.add_channel(
            format!("buf_{}", ch.name()),
            ch.dst(),
            ch.consumption_rate(),
            ch.src(),
            ch.production_rate(),
            app.channel_requirements(d).buffer_tile,
        );
    }
    g
}

/// Runs both techniques and reports sizes, results and runtimes.
///
/// # Panics
///
/// Panics if the two techniques disagree on the throughput — they compute
/// the same quantity and must match exactly.
pub fn compare() -> HsdfComparison {
    let g = timed_h263();
    let mc = g.actor_by_name("mc0").expect("h263 has an mc actor");

    let t0 = Instant::now();
    let sdf_result = SelfTimedExecutor::new(&g)
        .throughput(mc)
        .expect("h263 analyzes");
    let sdf_time = t0.elapsed();

    let t0 = Instant::now();
    let h = convert_to_hsdf(&g).expect("h263 converts");
    let ratio = match hsdf_max_cycle_mean(&h.graph).expect("mcm computes") {
        CycleRatio::Ratio(r) => r,
        other => panic!("h263 HSDF must have cycles: {other:?}"),
    };
    let hsdf_time = t0.elapsed();

    let comparison = HsdfComparison {
        sdf_actors: g.actor_count(),
        hsdf_actors: h.graph.actor_count(),
        hsdf_channels: h.graph.channel_count(),
        sdf_throughput: sdf_result.iteration_throughput,
        hsdf_throughput: ratio.recip(),
        sdf_time,
        hsdf_time,
    };
    assert_eq!(
        comparison.sdf_throughput, comparison.hsdf_throughput,
        "state-space and MCM throughput must agree"
    );
    comparison
}

/// Flow-level comparison (the paper's headline): run the slice-allocation
/// step of the multimedia H.263 decoder once with the paper's SDFG-direct
/// analysis and once with the HSDF+MCM baseline, timing both.
#[derive(Debug, Clone)]
pub struct FlowComparison {
    /// Wall-clock and check count of the SDFG-direct slice allocation.
    pub sdf_time: Duration,
    /// Throughput checks of the SDFG-direct run.
    pub sdf_checks: usize,
    /// Wall-clock of the HSDF-baseline slice allocation.
    pub hsdf_time: Duration,
    /// Throughput checks of the baseline run.
    pub hsdf_checks: usize,
    /// Largest HSDF graph the baseline had to build.
    pub peak_hsdf_actors: usize,
    /// Total slices allocated by each (SDFG-direct, baseline).
    pub slices: (u64, u64),
}

/// Runs both slice allocators on the same H.263 binding.
///
/// # Panics
///
/// Panics if either allocator fails on the bundled model (a regression).
pub fn compare_flows() -> FlowComparison {
    use sdfrs_core::baseline::allocate_baseline;
    use sdfrs_core::bind::{bind_actors, BindConfig};
    use sdfrs_core::binding_aware::BindingAwareGraph;
    use sdfrs_core::cost::CostWeights;
    use sdfrs_core::list_sched::construct_schedules;
    use sdfrs_core::slice::{allocate_slices, SliceConfig};
    use sdfrs_platform::mesh::multimedia_platform;
    use sdfrs_platform::PlatformState;

    let app = h263_decoder(0, Rational::new(1, 100_000));
    let arch = multimedia_platform();
    let state = PlatformState::new(&arch);
    let binding = bind_actors(
        &app,
        &arch,
        &state,
        &BindConfig::with_weights(CostWeights::MULTIMEDIA),
    )
    .expect("h263 binds");
    let half: Vec<u64> = arch
        .tile_ids()
        .map(|t| (state.available_wheel(&arch, t) / 2).max(1))
        .collect();

    let mut ba = BindingAwareGraph::build(&app, &arch, &binding, &half).expect("builds");
    let schedules = construct_schedules(&ba).expect("schedules");
    let t0 = Instant::now();
    let exact = allocate_slices(
        &mut ba,
        &schedules,
        &app,
        &arch,
        &state,
        &binding,
        &SliceConfig::default(),
    )
    .expect("exact slice allocation");
    let sdf_time = t0.elapsed();

    let mut ba2 = BindingAwareGraph::build(&app, &arch, &binding, &half).expect("builds");
    let t0 = Instant::now();
    let (base, stats) =
        allocate_baseline(&mut ba2, &app, &arch, &state, &binding).expect("baseline allocation");
    let hsdf_time = t0.elapsed();

    FlowComparison {
        sdf_time,
        sdf_checks: exact.throughput_checks,
        hsdf_time,
        hsdf_checks: stats.throughput_checks,
        peak_hsdf_actors: stats.peak_hsdf_actors,
        slices: (exact.slices.iter().sum(), base.slices.iter().sum()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_the_paper() {
        let c = compare();
        assert_eq!(c.sdf_actors, 4 /* self-edges add no actors */);
        assert_eq!(c.hsdf_actors, 4754);
        assert!(c.hsdf_channels >= 4754, "HSDF edges at least cover actors");
    }

    #[test]
    fn flow_comparison_shapes() {
        let c = compare_flows();
        // The baseline's conservatism never allocates fewer slices.
        assert!(c.slices.1 >= c.slices.0, "{:?}", c.slices);
        assert!(c.peak_hsdf_actors >= 4754, "the blow-up is real");
        assert!(c.sdf_checks > 0 && c.hsdf_checks > 0);
    }

    #[test]
    fn techniques_agree() {
        let c = compare();
        assert_eq!(c.sdf_throughput, c.hsdf_throughput);
        assert!(c.sdf_throughput > Rational::ZERO);
    }
}
