//! Weight-space sweep: evaluate a grid of (c1, c2, c3) settings on one
//! benchmark set — the search that produced the paper's 5th cost function
//! ("Based on these observations, we devised a 5th tile-cost function
//! (0, 1, 2) ...", Sec 10.2).

use sdfrs_core::cost::CostWeights;

use crate::table4::{run_experiment_with_weights, ExperimentConfig};

/// One sweep result: weights and the average number of applications bound
/// on the chosen set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The evaluated weights.
    pub weights: CostWeights,
    /// Average bound count on the swept set.
    pub avg_bound: f64,
}

/// The default grid: every (c1, c2, c3) ∈ {0, 1, 2}³ except (0, 0, 0).
pub fn weight_grid() -> Vec<CostWeights> {
    let mut grid = Vec::new();
    for c1 in 0..=2 {
        for c2 in 0..=2 {
            for c3 in 0..=2 {
                if c1 + c2 + c3 > 0 {
                    grid.push(CostWeights::new(c1 as f64, c2 as f64, c3 as f64));
                }
            }
        }
    }
    grid
}

/// Runs the sweep on one set (`"processing"`, `"memory"`,
/// `"communication"` or `"mixed"`), returning points sorted best-first.
pub fn sweep(config: &ExperimentConfig, set: &str, grid: Vec<CostWeights>) -> Vec<SweepPoint> {
    let experiment = run_experiment_with_weights(config, grid);
    let set_idx = experiment
        .sets
        .iter()
        .position(|s| *s == set)
        .expect("known benchmark set");
    let table = experiment.table4();
    let mut points: Vec<SweepPoint> = experiment
        .weights
        .iter()
        .zip(table.iter())
        .map(|(w, row)| SweepPoint {
            weights: *w,
            avg_bound: row[set_idx],
        })
        .collect();
    points.sort_by(|a, b| {
        b.avg_bound
            .partial_cmp(&a.avg_bound)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_26_points() {
        let grid = weight_grid();
        assert_eq!(grid.len(), 26);
        assert!(grid.contains(&CostWeights::new(0.0, 1.0, 2.0)));
        assert!(!grid.contains(&CostWeights::new(0.0, 0.0, 0.0)));
    }

    #[test]
    fn sweep_orders_best_first() {
        let config = ExperimentConfig {
            sequences: 1,
            apps_per_sequence: 5,
            ..ExperimentConfig::default()
        };
        let points = sweep(
            &config,
            "processing",
            vec![CostWeights::PROCESSING, CostWeights::TUNED],
        );
        assert_eq!(points.len(), 2);
        assert!(points[0].avg_bound >= points[1].avg_bound);
    }
}
