//! E6: Table 5 — resource efficiency for the mixed set, normalized per
//! resource against the largest usage across the five tile-cost
//! functions.

use crate::table4::Experiment;

/// One row of Table 5: normalized usage of the five tile resources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table5Row {
    /// Normalized time-wheel usage.
    pub timewheel: f64,
    /// Normalized memory usage.
    pub memory: f64,
    /// Normalized NI-connection usage.
    pub connections: f64,
    /// Normalized incoming-bandwidth usage.
    pub input_bw: f64,
    /// Normalized outgoing-bandwidth usage.
    pub output_bw: f64,
}

/// Computes Table 5 from the experiment runs, for the given set (the
/// paper uses set 4, `"mixed"`).
pub fn compute(experiment: &Experiment, set: &str) -> Vec<Table5Row> {
    // Sum raw usage per weight setting over that set's runs.
    let totals: Vec<[f64; 5]> = experiment
        .weights
        .iter()
        .map(|w| {
            let mut t = [0.0f64; 5];
            for r in experiment
                .runs
                .iter()
                .filter(|r| r.set == set && r.weights == *w)
            {
                t[0] += r.usage.wheel as f64;
                t[1] += r.usage.memory as f64;
                t[2] += r.usage.connections as f64;
                t[3] += r.usage.bandwidth_in as f64;
                t[4] += r.usage.bandwidth_out as f64;
            }
            t
        })
        .collect();
    let max: [f64; 5] = {
        let mut m = [0.0f64; 5];
        for t in &totals {
            for i in 0..5 {
                m[i] = m[i].max(t[i]);
            }
        }
        m
    };
    totals
        .iter()
        .map(|t| {
            let norm = |i: usize| if max[i] == 0.0 { 0.0 } else { t[i] / max[i] };
            Table5Row {
                timewheel: norm(0),
                memory: norm(1),
                connections: norm(2),
                input_bw: norm(3),
                output_bw: norm(4),
            }
        })
        .collect()
}

/// Average fraction of the total platform resources in use for one weight
/// setting and set (the paper reports 73% for the tuned weights on the
/// mixed set).
pub fn utilization(experiment: &Experiment, set: &str, weight_row: usize) -> f64 {
    let w = experiment.weights[weight_row];
    let mut used = 0.0f64;
    let mut capacity = 0.0f64;
    for r in experiment
        .runs
        .iter()
        .filter(|r| r.set == set && r.weights == w)
    {
        used += r.usage.wheel as f64
            + r.usage.memory as f64
            + r.usage.connections as f64
            + r.usage.bandwidth_in as f64
            + r.usage.bandwidth_out as f64;
        capacity += r.capacity.wheel as f64
            + r.capacity.memory as f64
            + r.capacity.connections as f64
            + r.capacity.bandwidth_in as f64
            + r.capacity.bandwidth_out as f64;
    }
    if capacity == 0.0 {
        0.0
    } else {
        used / capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table4::{run_experiment_with_weights, ExperimentConfig};
    use sdfrs_core::cost::CostWeights;

    #[test]
    fn normalization_caps_at_one() {
        let cfg = ExperimentConfig {
            sequences: 1,
            apps_per_sequence: 5,
            ..ExperimentConfig::default()
        };
        let exp = run_experiment_with_weights(&cfg, vec![CostWeights::MEMORY, CostWeights::TUNED]);
        let rows = compute(&exp, "mixed");
        assert_eq!(rows.len(), 2);
        for row in &rows {
            for v in [
                row.timewheel,
                row.memory,
                row.connections,
                row.input_bw,
                row.output_bw,
            ] {
                assert!(
                    (0.0..=1.0).contains(&v),
                    "normalized value out of range: {v}"
                );
            }
        }
        // Per column, some row achieves the maximum (value 1), unless the
        // column is all-zero.
        let col_max = |f: fn(&Table5Row) -> f64| rows.iter().map(f).fold(0.0f64, f64::max);
        for max in [col_max(|r| r.timewheel), col_max(|r| r.memory)] {
            assert!(max == 0.0 || (max - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn utilization_is_a_fraction() {
        let cfg = ExperimentConfig {
            sequences: 1,
            apps_per_sequence: 5,
            ..ExperimentConfig::default()
        };
        let exp = run_experiment_with_weights(&cfg, vec![CostWeights::TUNED]);
        let u = utilization(&exp, "mixed", 0);
        assert!((0.0..=1.0).contains(&u));
    }
}
