//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Each module computes one artifact as plain data; the `repro` binary
//! formats them like the paper's tables:
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`fig5`] | Figure 5 state-space periods (2 / 29 / 30) |
//! | [`table3`] | Table 3 bindings per weight setting |
//! | [`table4`] | Table 4 average #applications bound |
//! | [`table5`] | Table 5 resource efficiency (mixed set) |
//! | [`multimedia`] | Sec 10.3 multimedia system |
//! | [`hsdf_cmp`] | Fig 1 / Sec 1 HSDF blow-up + runtime comparison |
//! | [`sweep`] | the Sec 10.2 weight-space search behind the (0,1,2) setting |
//!
//! See `EXPERIMENTS.md` at the workspace root for paper-vs-measured
//! results.

pub mod fig5;
pub mod hsdf_cmp;
pub mod multimedia;
pub mod sweep;
pub mod table3;
pub mod table4;
pub mod table5;
