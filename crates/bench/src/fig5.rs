//! E1–E3: the three state spaces of Figure 5.
//!
//! * (a) the application SDFG executed self-timed with the bound execution
//!   times — a3 fires every 2 time units;
//! * (b) the binding-aware SDFG (50% slices assumed) — every 29;
//! * (c) the execution constrained by static orders and the TDMA wheels —
//!   every 30.

use sdfrs_appmodel::apps::{example_platform, paper_example};
use sdfrs_core::binding_aware::BindingAwareGraph;
use sdfrs_core::constrained::constrained_throughput;
use sdfrs_core::list_sched::construct_schedules;
use sdfrs_core::Binding;
use sdfrs_platform::TileId;
use sdfrs_sdf::analysis::selftimed::SelfTimedExecutor;
use sdfrs_sdf::Rational;

/// The three firing periods of actor a3 in Fig 5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig5 {
    /// Fig 5(a): period in the plain self-timed execution.
    pub period_application: Rational,
    /// Fig 5(b): period in the binding-aware SDFG.
    pub period_binding_aware: Rational,
    /// Fig 5(c): period under static orders + 50% TDMA wheels.
    pub period_constrained: Rational,
    /// States explored in each of the three analyses.
    pub states: [usize; 3],
}

/// Computes the three state spaces as DOT graphs (the actual figure).
///
/// # Panics
///
/// Panics if the bundled paper example fails to analyze (a regression).
pub fn compute_dot() -> [String; 3] {
    let app = paper_example();
    let arch = example_platform();
    let g = app.graph();
    let a1 = g.actor_by_name("a1").expect("example actor");
    let a2 = g.actor_by_name("a2").expect("example actor");
    let a3 = g.actor_by_name("a3").expect("example actor");

    let mut timed = g.clone();
    timed.set_execution_time(a1, 1);
    timed.set_execution_time(a2, 1);
    timed.set_execution_time(a3, 2);
    let ssa = SelfTimedExecutor::new(&timed)
        .explore_state_space()
        .expect("fig5a explores");

    let mut binding = Binding::new(g.actor_count());
    binding.bind(a1, TileId::from_index(0));
    binding.bind(a2, TileId::from_index(0));
    binding.bind(a3, TileId::from_index(1));
    let ba = BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]).expect("fig5b builds");
    let ssb = SelfTimedExecutor::new(ba.graph())
        .explore_state_space()
        .expect("fig5b explores");

    let schedules = construct_schedules(&ba).expect("fig5c schedules");
    let ssc = sdfrs_core::ConstrainedExecutor::new(&ba, &schedules)
        .explore_state_space()
        .expect("fig5c explores");

    [
        ssa.to_dot("fig5a_application"),
        ssb.to_dot("fig5b_binding_aware"),
        ssc.to_dot("fig5c_constrained"),
    ]
}

/// Computes all three Fig 5 periods.
///
/// # Panics
///
/// Panics if the bundled paper example fails to analyze (a regression).
pub fn compute() -> Fig5 {
    let app = paper_example();
    let arch = example_platform();
    let g = app.graph();
    let a1 = g.actor_by_name("a1").expect("example actor");
    let a2 = g.actor_by_name("a2").expect("example actor");
    let a3 = g.actor_by_name("a3").expect("example actor");

    // (a) application SDFG with the bound execution times (1, 1, 2).
    let mut timed = g.clone();
    timed.set_execution_time(a1, 1);
    timed.set_execution_time(a2, 1);
    timed.set_execution_time(a3, 2);
    let ra = SelfTimedExecutor::new(&timed)
        .throughput(a3)
        .expect("fig5a analyzes");

    // (b) binding-aware SDFG, a1/a2 on t1, a3 on t2, 50% slices.
    let mut binding = Binding::new(g.actor_count());
    binding.bind(a1, TileId::from_index(0));
    binding.bind(a2, TileId::from_index(0));
    binding.bind(a3, TileId::from_index(1));
    let ba = BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]).expect("fig5b builds");
    let ba_a3 = ba.ba_actor(a3);
    let rb = SelfTimedExecutor::new(ba.graph())
        .throughput(ba_a3)
        .expect("fig5b analyzes");

    // (c) constrained by the constructed static orders + 50% wheels.
    let schedules = construct_schedules(&ba).expect("fig5c schedules");
    let rc = constrained_throughput(&ba, &schedules, ba_a3).expect("fig5c analyzes");

    Fig5 {
        period_application: ra.actor_throughput.recip(),
        period_binding_aware: rb.actor_throughput.recip(),
        period_constrained: rc.actor_throughput.recip(),
        states: [ra.states_explored, rb.states_explored, rc.states_explored],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periods_match_the_paper() {
        let f = compute();
        assert_eq!(f.period_application, Rational::from_integer(2));
        assert_eq!(f.period_binding_aware, Rational::from_integer(29));
        assert_eq!(f.period_constrained, Rational::from_integer(30));
        assert!(f.states.iter().all(|&s| s > 0));
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_state_spaces_reflect_the_periods() {
        let [a, b, c] = compute_dot();
        for (dot, name) in [(&a, "fig5a"), (&b, "fig5b"), (&c, "fig5c")] {
            assert!(dot.contains("digraph"), "{name}");
            assert!(dot.contains("s0 -> s1"), "{name}");
            assert!(dot.contains("color=red"), "{name} marks the cycle entry");
        }
        // Fig 5(a) fires a1 first (its self-edge token is available).
        assert!(a.contains("a1"));
        // Fig 5(b)/(c) involve the connection actor.
        assert!(b.contains("c_d2"));
        assert!(c.contains("c_d2"));
    }
}
