//! Resource requirement annotations: the functions Γ and Θ of Definition 5.

use std::collections::BTreeMap;

use sdfrs_platform::ProcessorType;

/// Per-processor-type execution time and memory requirement of one actor
/// (the function Γ restricted to one actor).
///
/// A processor type that is absent from the map corresponds to Γ = (∞, ∞):
/// the actor cannot be bound to that type.
///
/// # Examples
///
/// ```
/// use sdfrs_appmodel::ActorRequirements;
/// use sdfrs_platform::ProcessorType;
/// let req = ActorRequirements::new()
///     .on(ProcessorType::new("p1"), 1, 10)
///     .on(ProcessorType::new("p2"), 4, 15);
/// assert_eq!(req.execution_time(&ProcessorType::new("p1")), Some(1));
/// assert_eq!(req.execution_time(&ProcessorType::new("p3")), None);
/// assert_eq!(req.max_execution_time(), Some(4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ActorRequirements {
    entries: BTreeMap<ProcessorType, (u64, u64)>,
}

impl ActorRequirements {
    /// No supported processor types yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) support for `pt` with execution time `tau` and
    /// memory requirement `mu` (builder style).
    pub fn on(mut self, pt: ProcessorType, tau: u64, mu: u64) -> Self {
        self.entries.insert(pt, (tau, mu));
        self
    }

    /// Execution time τ on `pt`, or `None` if the actor cannot run there.
    pub fn execution_time(&self, pt: &ProcessorType) -> Option<u64> {
        self.entries.get(pt).map(|&(tau, _)| tau)
    }

    /// Memory requirement μ on `pt`, or `None` if unsupported.
    pub fn memory(&self, pt: &ProcessorType) -> Option<u64> {
        self.entries.get(pt).map(|&(_, mu)| mu)
    }

    /// `true` if the actor can be bound to a processor of type `pt`.
    pub fn supports(&self, pt: &ProcessorType) -> bool {
        self.entries.contains_key(pt)
    }

    /// The supported processor types, in name order.
    pub fn supported_types(&self) -> impl Iterator<Item = &ProcessorType> + '_ {
        self.entries.keys()
    }

    /// The worst-case execution time over all supported types
    /// (`sup{ τ_{a,pt} | τ_{a,pt} ≠ ∞ }` of Eqn 1), or `None` if the actor
    /// supports nothing.
    pub fn max_execution_time(&self) -> Option<u64> {
        self.entries.values().map(|&(tau, _)| tau).max()
    }

    /// Number of supported processor types.
    pub fn support_count(&self) -> usize {
        self.entries.len()
    }
}

/// Per-channel requirements: the 5-tuple Θ(d) = (sz, α_tile, α_src,
/// α_dst, β) of Definition 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelRequirements {
    /// Token size *sz* in bits.
    pub token_size: u64,
    /// Buffer capacity (in tokens) when both endpoints share a tile.
    pub buffer_tile: u64,
    /// Buffer capacity (tokens) in the source tile when the channel crosses
    /// tiles.
    pub buffer_src: u64,
    /// Buffer capacity (tokens) in the destination tile when the channel
    /// crosses tiles.
    pub buffer_dst: u64,
    /// Bandwidth β (bits/time-unit) claimed when the channel crosses tiles.
    pub bandwidth: u64,
}

impl ChannelRequirements {
    /// Creates the 5-tuple in the paper's order.
    pub fn new(
        token_size: u64,
        buffer_tile: u64,
        buffer_src: u64,
        buffer_dst: u64,
        bandwidth: u64,
    ) -> Self {
        ChannelRequirements {
            token_size,
            buffer_tile,
            buffer_src,
            buffer_dst,
            bandwidth,
        }
    }

    /// Memory (bits) claimed on a single tile when the channel stays local:
    /// `α_tile · sz`.
    pub fn memory_tile(&self) -> u64 {
        self.buffer_tile * self.token_size
    }

    /// Memory (bits) claimed in the source tile when crossing tiles:
    /// `α_src · sz`.
    pub fn memory_src(&self) -> u64 {
        self.buffer_src * self.token_size
    }

    /// Memory (bits) claimed in the destination tile when crossing tiles:
    /// `α_dst · sz`.
    pub fn memory_dst(&self) -> u64 {
        self.buffer_dst * self.token_size
    }

    /// Time to push one token through a connection's bandwidth share:
    /// `⌈sz / β⌉` (the transfer component of Υ(c) in Sec 8.1).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is zero (the channel may not cross tiles).
    pub fn transfer_time(&self) -> u64 {
        assert!(
            self.bandwidth > 0,
            "transfer time undefined for channels with zero bandwidth"
        );
        self.token_size.div_ceil(self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(n: &str) -> ProcessorType {
        ProcessorType::new(n)
    }

    #[test]
    fn actor_requirements_lookup() {
        let r = ActorRequirements::new()
            .on(pt("p1"), 3, 13)
            .on(pt("p2"), 2, 10);
        assert_eq!(r.execution_time(&pt("p1")), Some(3));
        assert_eq!(r.memory(&pt("p2")), Some(10));
        assert!(!r.supports(&pt("p9")));
        assert_eq!(r.max_execution_time(), Some(3));
        assert_eq!(r.support_count(), 2);
        let types: Vec<_> = r.supported_types().map(|p| p.name().to_string()).collect();
        assert_eq!(types, vec!["p1", "p2"]);
    }

    #[test]
    fn empty_requirements() {
        let r = ActorRequirements::new();
        assert_eq!(r.max_execution_time(), None);
        assert_eq!(r.support_count(), 0);
    }

    #[test]
    fn replacing_an_entry() {
        let r = ActorRequirements::new().on(pt("p"), 5, 5).on(pt("p"), 7, 9);
        assert_eq!(r.execution_time(&pt("p")), Some(7));
        assert_eq!(r.support_count(), 1);
    }

    #[test]
    fn channel_memory_products() {
        // d2 of the paper: (100, 2, 2, 2, 10).
        let c = ChannelRequirements::new(100, 2, 2, 2, 10);
        assert_eq!(c.memory_tile(), 200);
        assert_eq!(c.memory_src(), 200);
        assert_eq!(c.memory_dst(), 200);
        // ⌈100/10⌉ = 10: with ℒ = 1 this gives the paper's Υ(c) = 11.
        assert_eq!(c.transfer_time(), 10);
    }

    #[test]
    fn transfer_time_rounds_up() {
        let c = ChannelRequirements::new(7, 1, 1, 1, 2);
        assert_eq!(c.transfer_time(), 4);
    }

    #[test]
    #[should_panic(expected = "zero bandwidth")]
    fn zero_bandwidth_transfer_panics() {
        ChannelRequirements::new(1, 1, 0, 0, 0).transfer_time();
    }
}
