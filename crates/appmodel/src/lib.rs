//! Application model for the `sdfrs` workspace.
//!
//! An [`ApplicationGraph`] is the 5-tuple *(A, D, Γ, Θ, λ)* of Definition 5
//! in the DAC 2007 paper: an SDFG structure, per-actor processor-type
//! requirements Γ ([`ActorRequirements`]), per-channel storage/bandwidth
//! requirements Θ ([`ChannelRequirements`]) and a throughput constraint λ.
//!
//! The [`apps`] module provides the paper's reference applications — the
//! running example of Fig 3 / Table 2, the H.263 decoder of Fig 1, and the
//! MP3 decoder of the Sec 10.3 multimedia system.
//!
//! # Example
//!
//! ```
//! use sdfrs_appmodel::apps::paper_example;
//! use sdfrs_platform::ProcessorType;
//!
//! let app = paper_example();
//! let a3 = app.graph().actor_by_name("a3").unwrap();
//! assert_eq!(app.execution_time(a3, &ProcessorType::new("p2")), Some(2));
//! ```

pub mod app;
pub mod apps;
pub mod classic;
pub mod compose;
pub mod requirements;
pub mod textio;

pub use app::{AppError, ApplicationGraph, ApplicationGraphBuilder};
pub use requirements::{ActorRequirements, ChannelRequirements};
