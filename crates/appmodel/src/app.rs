//! The application graph (Definition 5): an SDFG annotated with resource
//! requirements and a throughput constraint.

use std::error::Error;
use std::fmt;

use sdfrs_platform::ProcessorType;
use sdfrs_sdf::analysis::deadlock::check_deadlock_free;
use sdfrs_sdf::{ActorId, ChannelId, Rational, SdfError, SdfGraph};

use crate::requirements::{ActorRequirements, ChannelRequirements};

/// Errors raised while assembling or validating an application graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppError {
    /// The underlying SDFG is inconsistent or deadlocks.
    Sdf(SdfError),
    /// An actor supports no processor type at all (Γ = ∞ everywhere).
    Unmappable {
        /// The actor without any finite Γ entry.
        actor: ActorId,
    },
    /// The throughput constraint must be positive.
    NonPositiveConstraint,
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::Sdf(e) => write!(f, "invalid application SDFG: {e}"),
            AppError::Unmappable { actor } => {
                write!(f, "actor {actor} cannot be bound to any processor type")
            }
            AppError::NonPositiveConstraint => {
                write!(f, "throughput constraint must be positive")
            }
        }
    }
}

impl Error for AppError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AppError::Sdf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SdfError> for AppError {
    fn from(e: SdfError) -> Self {
        AppError::Sdf(e)
    }
}

/// An application graph *(A, D, Γ, Θ, λ)* — Definition 5 of the paper.
///
/// * the structure *(A, D)* is an [`SdfGraph`] (actor execution times in
///   the structure are ignored; timing comes from Γ once bound);
/// * Γ is stored as one [`ActorRequirements`] per actor;
/// * Θ as one [`ChannelRequirements`] per channel;
/// * λ is the minimum required throughput in **graph iterations per time
///   unit** (equivalently: the output actor must fire at least
///   `γ(output) · λ` times per time unit).
///
/// # Examples
///
/// ```
/// use sdfrs_appmodel::{ApplicationGraph, ActorRequirements, ChannelRequirements};
/// use sdfrs_platform::ProcessorType;
/// use sdfrs_sdf::{Rational, SdfGraph};
///
/// # fn main() -> Result<(), sdfrs_appmodel::AppError> {
/// let mut g = SdfGraph::new("tiny");
/// let a = g.add_actor("a", 0);
/// let b = g.add_actor("b", 0);
/// g.add_channel("d", a, 1, b, 1, 0);
/// let app = ApplicationGraph::builder(g, Rational::new(1, 100))
///     .actor(a, ActorRequirements::new().on(ProcessorType::new("p"), 2, 8))
///     .actor(b, ActorRequirements::new().on(ProcessorType::new("p"), 3, 8))
///     .channel_default(ChannelRequirements::new(8, 2, 2, 2, 4))
///     .output_actor(b)
///     .build()?;
/// assert_eq!(app.throughput_constraint(), Rational::new(1, 100));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplicationGraph {
    graph: SdfGraph,
    actor_reqs: Vec<ActorRequirements>,
    channel_reqs: Vec<ChannelRequirements>,
    throughput_constraint: Rational,
    output_actor: ActorId,
}

impl ApplicationGraph {
    /// Starts building an application graph around an SDFG structure.
    pub fn builder(graph: SdfGraph, throughput_constraint: Rational) -> ApplicationGraphBuilder {
        ApplicationGraphBuilder {
            actor_reqs: vec![ActorRequirements::new(); graph.actor_count()],
            channel_reqs: vec![ChannelRequirements::new(1, 1, 1, 1, 1); graph.channel_count()],
            output_actor: ActorId::from_index(graph.actor_count().saturating_sub(1)),
            graph,
            throughput_constraint,
        }
    }

    /// The application's SDFG structure.
    pub fn graph(&self) -> &SdfGraph {
        &self.graph
    }

    /// Γ restricted to one actor.
    pub fn actor_requirements(&self, actor: ActorId) -> &ActorRequirements {
        &self.actor_reqs[actor.index()]
    }

    /// Θ of one channel.
    pub fn channel_requirements(&self, channel: ChannelId) -> &ChannelRequirements {
        &self.channel_reqs[channel.index()]
    }

    /// The throughput constraint λ (iterations per time unit).
    pub fn throughput_constraint(&self) -> Rational {
        self.throughput_constraint
    }

    /// The designated output actor used for reporting firing periods.
    pub fn output_actor(&self) -> ActorId {
        self.output_actor
    }

    /// Execution time of `actor` on `pt` (`None` encodes Γ = ∞).
    pub fn execution_time(&self, actor: ActorId, pt: &ProcessorType) -> Option<u64> {
        self.actor_reqs[actor.index()].execution_time(pt)
    }

    /// Memory requirement of `actor` on `pt` (`None` encodes Γ = ∞).
    pub fn actor_memory(&self, actor: ActorId, pt: &ProcessorType) -> Option<u64> {
        self.actor_reqs[actor.index()].memory(pt)
    }

    /// Worst-case execution time of `actor` over all supported types.
    pub fn max_execution_time(&self, actor: ActorId) -> u64 {
        self.actor_reqs[actor.index()]
            .max_execution_time()
            .expect("validated application graphs have mappable actors")
    }

    /// Replaces the throughput constraint, returning a new application.
    pub fn with_throughput_constraint(mut self, lambda: Rational) -> Self {
        self.throughput_constraint = lambda;
        self
    }
}

/// Builder for [`ApplicationGraph`], validating on
/// [`build`](ApplicationGraphBuilder::build).
#[derive(Debug, Clone)]
pub struct ApplicationGraphBuilder {
    graph: SdfGraph,
    actor_reqs: Vec<ActorRequirements>,
    channel_reqs: Vec<ChannelRequirements>,
    throughput_constraint: Rational,
    output_actor: ActorId,
}

impl ApplicationGraphBuilder {
    /// Sets Γ for one actor.
    pub fn actor(mut self, actor: ActorId, reqs: ActorRequirements) -> Self {
        self.actor_reqs[actor.index()] = reqs;
        self
    }

    /// Sets Θ for one channel.
    pub fn channel(mut self, channel: ChannelId, reqs: ChannelRequirements) -> Self {
        self.channel_reqs[channel.index()] = reqs;
        self
    }

    /// Sets Θ for every channel that has not been set explicitly (applies
    /// to all channels; call before per-channel overrides).
    pub fn channel_default(mut self, reqs: ChannelRequirements) -> Self {
        for slot in &mut self.channel_reqs {
            *slot = reqs;
        }
        self
    }

    /// Designates the actor whose output the throughput constraint refers
    /// to (defaults to the last actor added).
    pub fn output_actor(mut self, actor: ActorId) -> Self {
        self.output_actor = actor;
        self
    }

    /// Validates and assembles the application graph.
    ///
    /// # Errors
    ///
    /// * [`AppError::Sdf`] if the structure is inconsistent or deadlocks;
    /// * [`AppError::Unmappable`] if some actor has no finite Γ entry;
    /// * [`AppError::NonPositiveConstraint`] if λ ≤ 0.
    pub fn build(self) -> Result<ApplicationGraph, AppError> {
        self.graph.validate()?;
        check_deadlock_free(&self.graph)?;
        if self.throughput_constraint <= Rational::ZERO {
            return Err(AppError::NonPositiveConstraint);
        }
        for (id, _) in self.graph.actors() {
            if self.actor_reqs[id.index()].support_count() == 0 {
                return Err(AppError::Unmappable { actor: id });
            }
        }
        Ok(ApplicationGraph {
            graph: self.graph,
            actor_reqs: self.actor_reqs,
            channel_reqs: self.channel_reqs,
            throughput_constraint: self.throughput_constraint,
            output_actor: self.output_actor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(n: &str) -> ProcessorType {
        ProcessorType::new(n)
    }

    fn base_graph() -> (SdfGraph, ActorId, ActorId) {
        let mut g = SdfGraph::new("g");
        let a = g.add_actor("a", 0);
        let b = g.add_actor("b", 0);
        g.add_channel("d", a, 1, b, 1, 0);
        (g, a, b)
    }

    #[test]
    fn builds_valid_application() {
        let (g, a, b) = base_graph();
        let app = ApplicationGraph::builder(g, Rational::new(1, 10))
            .actor(a, ActorRequirements::new().on(pt("p"), 1, 2))
            .actor(
                b,
                ActorRequirements::new().on(pt("p"), 3, 4).on(pt("q"), 1, 1),
            )
            .channel(
                ChannelId::from_index(0),
                ChannelRequirements::new(8, 1, 2, 2, 4),
            )
            .output_actor(b)
            .build()
            .unwrap();
        assert_eq!(app.execution_time(a, &pt("p")), Some(1));
        assert_eq!(app.execution_time(a, &pt("q")), None);
        assert_eq!(app.actor_memory(b, &pt("q")), Some(1));
        assert_eq!(app.max_execution_time(b), 3);
        assert_eq!(app.output_actor(), b);
        assert_eq!(
            app.channel_requirements(ChannelId::from_index(0))
                .token_size,
            8
        );
    }

    #[test]
    fn unmappable_actor_rejected() {
        let (g, a, _) = base_graph();
        let err = ApplicationGraph::builder(g, Rational::ONE)
            .actor(a, ActorRequirements::new().on(pt("p"), 1, 1))
            .build()
            .unwrap_err();
        assert!(matches!(err, AppError::Unmappable { .. }));
        assert!(err.to_string().contains("cannot be bound"));
    }

    #[test]
    fn deadlocking_structure_rejected() {
        let mut g = SdfGraph::new("dead");
        let a = g.add_actor("a", 0);
        let b = g.add_actor("b", 0);
        g.add_channel("ab", a, 1, b, 1, 0);
        g.add_channel("ba", b, 1, a, 1, 0);
        let err = ApplicationGraph::builder(g, Rational::ONE)
            .actor(a, ActorRequirements::new().on(pt("p"), 1, 1))
            .actor(b, ActorRequirements::new().on(pt("p"), 1, 1))
            .build()
            .unwrap_err();
        assert!(matches!(err, AppError::Sdf(SdfError::Deadlock { .. })));
    }

    #[test]
    fn non_positive_constraint_rejected() {
        let (g, a, b) = base_graph();
        let err = ApplicationGraph::builder(g, Rational::ZERO)
            .actor(a, ActorRequirements::new().on(pt("p"), 1, 1))
            .actor(b, ActorRequirements::new().on(pt("p"), 1, 1))
            .build()
            .unwrap_err();
        assert_eq!(err, AppError::NonPositiveConstraint);
    }

    #[test]
    fn constraint_can_be_replaced() {
        let (g, a, b) = base_graph();
        let app = ApplicationGraph::builder(g, Rational::new(1, 10))
            .actor(a, ActorRequirements::new().on(pt("p"), 1, 1))
            .actor(b, ActorRequirements::new().on(pt("p"), 1, 1))
            .build()
            .unwrap();
        let app = app.with_throughput_constraint(Rational::new(1, 20));
        assert_eq!(app.throughput_constraint(), Rational::new(1, 20));
    }

    #[test]
    fn channel_default_applies_everywhere() {
        let mut g = SdfGraph::new("two");
        let a = g.add_actor("a", 0);
        let b = g.add_actor("b", 0);
        g.add_channel("d0", a, 1, b, 1, 0);
        g.add_channel("d1", a, 1, b, 1, 0);
        let app = ApplicationGraph::builder(g, Rational::ONE)
            .actor(a, ActorRequirements::new().on(pt("p"), 1, 1))
            .actor(b, ActorRequirements::new().on(pt("p"), 1, 1))
            .channel_default(ChannelRequirements::new(16, 3, 3, 3, 8))
            .build()
            .unwrap();
        for ch in [ChannelId::from_index(0), ChannelId::from_index(1)] {
            assert_eq!(app.channel_requirements(ch).token_size, 16);
            assert_eq!(app.channel_requirements(ch).buffer_tile, 3);
        }
    }
}
