//! Classic multirate SDF benchmarks from the literature — the graphs the
//! SDF³ ecosystem ships alongside the paper's H.263/MP3 models. They
//! exercise deeply multirate repetition vectors that stress the HSDF
//! blow-up argument far beyond single-rate examples.

use sdfrs_platform::ProcessorType;
use sdfrs_sdf::{Rational, SdfGraph};

use crate::app::ApplicationGraph;
use crate::requirements::{ActorRequirements, ChannelRequirements};

/// The CD-to-DAT sample-rate converter (Bhattacharyya et al.): a chain of
/// five rate-conversion stages taking 44.1 kHz audio to 48 kHz, i.e. a
/// 147 : 160 overall ratio.
///
/// Stage rates: 1/1 → 2/3 → 2/7 → 8/7 → 5/1, giving the repetition vector
/// (147, 147, 98, 28, 32, 160) — 612 actors in the HSDF equivalent from
/// just 6 SDF actors.
///
/// # Examples
///
/// ```
/// use sdfrs_sdf::hsdf::hsdf_size;
/// let app = sdfrs_appmodel::classic::cd_to_dat(sdfrs_sdf::Rational::new(1, 10_000));
/// let gamma = app.graph().repetition_vector()?;
/// assert_eq!(gamma.as_slice(), &[147, 147, 98, 28, 32, 160]);
/// assert_eq!(hsdf_size(app.graph())?, 612);
/// # Ok::<(), sdfrs_sdf::SdfError>(())
/// ```
pub fn cd_to_dat(lambda: Rational) -> ApplicationGraph {
    let dsp = ProcessorType::new("dsp");
    let risc = ProcessorType::new("risc");
    let mut g = SdfGraph::new("cd2dat");
    let cd = g.add_actor("cd", 0);
    let fir1 = g.add_actor("fir1", 0);
    let fir2 = g.add_actor("fir2", 0);
    let fir3 = g.add_actor("fir3", 0);
    let fir4 = g.add_actor("fir4", 0);
    let dat = g.add_actor("dat", 0);
    g.add_channel("c_cd_f1", cd, 1, fir1, 1, 0);
    g.add_channel("c_f1_f2", fir1, 2, fir2, 3, 0);
    g.add_channel("c_f2_f3", fir2, 2, fir3, 7, 0);
    g.add_channel("c_f3_f4", fir3, 8, fir4, 7, 0);
    g.add_channel("c_f4_dat", fir4, 5, dat, 1, 0);
    // Flow control: one frame in flight (147 cd samples per iteration).
    g.add_channel("c_dat_cd", dat, 147, cd, 160, 147 * 160);

    let stage = |tau_dsp: u64, tau_risc: u64, mu: u64| {
        ActorRequirements::new()
            .on(dsp.clone(), tau_dsp, mu)
            .on(risc.clone(), tau_risc, mu * 2)
    };
    ApplicationGraph::builder(g, lambda)
        .actor(cd, stage(1, 2, 64))
        .actor(fir1, stage(2, 5, 256))
        .actor(fir2, stage(3, 7, 256))
        .actor(fir3, stage(3, 7, 512))
        .actor(fir4, stage(2, 5, 256))
        .actor(dat, stage(1, 2, 64))
        .channel_default(ChannelRequirements::new(16, 24, 24, 24, 512))
        .output_actor(dat)
        .build()
        .expect("cd2dat is a valid application graph")
}

/// A satellite-receiver-style graph (after Ritz et al.): two parallel
/// demodulation chains feeding a shared decoder, with multirate filter
/// banks.
///
/// # Examples
///
/// ```
/// let app = sdfrs_appmodel::classic::satellite_receiver(sdfrs_sdf::Rational::new(1, 50_000));
/// assert_eq!(app.graph().actor_count(), 10);
/// assert!(app.graph().repetition_vector().is_ok());
/// ```
pub fn satellite_receiver(lambda: Rational) -> ApplicationGraph {
    let dsp = ProcessorType::new("dsp");
    let acc = ProcessorType::new("acc");
    let mut g = SdfGraph::new("satellite");
    let frontend = g.add_actor("frontend", 0);
    let chan_a = g.add_actor("chan_a", 0);
    let chan_b = g.add_actor("chan_b", 0);
    let filt_a1 = g.add_actor("filt_a1", 0);
    let filt_a2 = g.add_actor("filt_a2", 0);
    let filt_b1 = g.add_actor("filt_b1", 0);
    let filt_b2 = g.add_actor("filt_b2", 0);
    let demod_a = g.add_actor("demod_a", 0);
    let demod_b = g.add_actor("demod_b", 0);
    let decoder = g.add_actor("decoder", 0);

    g.add_channel("s_fe_a", frontend, 1, chan_a, 1, 0);
    g.add_channel("s_fe_b", frontend, 1, chan_b, 1, 0);
    // Polyphase banks: 4 subsamples per channel symbol, decimated by 2
    // per stage.
    g.add_channel("s_a_f1", chan_a, 4, filt_a1, 1, 0);
    g.add_channel("s_f1_f2a", filt_a1, 1, filt_a2, 2, 0);
    g.add_channel("s_b_f1", chan_b, 4, filt_b1, 1, 0);
    g.add_channel("s_f1_f2b", filt_b1, 1, filt_b2, 2, 0);
    g.add_channel("s_f2_da", filt_a2, 1, demod_a, 2, 0);
    g.add_channel("s_f2_db", filt_b2, 1, demod_b, 2, 0);
    g.add_channel("s_da_dec", demod_a, 1, decoder, 1, 0);
    g.add_channel("s_db_dec", demod_b, 1, decoder, 1, 0);
    // Rate control from the decoder back to the front end.
    g.add_channel("s_dec_fe", decoder, 1, frontend, 1, 2);

    let hw = |tau_dsp: u64, tau_acc: u64, mu: u64| {
        ActorRequirements::new()
            .on(dsp.clone(), tau_dsp, mu)
            .on(acc.clone(), tau_acc, mu / 2)
    };
    ApplicationGraph::builder(g, lambda)
        .actor(frontend, ActorRequirements::new().on(dsp.clone(), 8, 1_024))
        .actor(chan_a, hw(6, 3, 512))
        .actor(chan_b, hw(6, 3, 512))
        .actor(filt_a1, hw(2, 1, 256))
        .actor(filt_a2, hw(3, 1, 256))
        .actor(filt_b1, hw(2, 1, 256))
        .actor(filt_b2, hw(3, 1, 256))
        .actor(demod_a, hw(5, 2, 512))
        .actor(demod_b, hw(5, 2, 512))
        .actor(decoder, ActorRequirements::new().on(dsp, 10, 2_048))
        .channel_default(ChannelRequirements::new(32, 16, 16, 16, 1_024))
        .output_actor(decoder)
        .build()
        .expect("satellite receiver is a valid application graph")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfrs_sdf::analysis::deadlock::is_live;
    use sdfrs_sdf::hsdf::hsdf_size;

    #[test]
    fn cd2dat_repetition_vector() {
        let app = cd_to_dat(Rational::new(1, 10_000));
        let gamma = app.graph().repetition_vector().unwrap();
        assert_eq!(gamma.as_slice(), &[147, 147, 98, 28, 32, 160]);
        assert_eq!(hsdf_size(app.graph()).unwrap(), 612);
        assert!(is_live(app.graph()));
    }

    #[test]
    fn satellite_structure() {
        let app = satellite_receiver(Rational::new(1, 50_000));
        let gamma = app.graph().repetition_vector().unwrap();
        let g = app.graph();
        // Front end fires once per iteration; the filter banks run 4× /
        // 2× per channel.
        assert_eq!(gamma[g.actor_by_name("frontend").unwrap()], 1);
        assert_eq!(gamma[g.actor_by_name("filt_a1").unwrap()], 4);
        assert_eq!(gamma[g.actor_by_name("filt_a2").unwrap()], 2);
        assert_eq!(gamma[g.actor_by_name("decoder").unwrap()], 1);
        assert!(is_live(g));
    }

    #[test]
    fn both_are_multirate() {
        // cd2dat explodes by two orders of magnitude; the satellite
        // receiver roughly doubles.
        let cd = cd_to_dat(Rational::new(1, 10_000));
        assert_eq!(hsdf_size(cd.graph()).unwrap(), 612);
        let sat = satellite_receiver(Rational::new(1, 50_000));
        let size = hsdf_size(sat.graph()).unwrap() as usize;
        assert!(size > sat.graph().actor_count(), "HSDF must grow: {size}");
    }
}
