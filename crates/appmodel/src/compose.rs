//! Composition of application graphs.
//!
//! The paper allocates applications one at a time, which is what keeps
//! per-application guarantees independent. For *design-time* what-if
//! studies it is still useful to view several applications as one
//! disjoint-union graph — e.g. to compute the combined HSDF size the
//! paper quotes for the multimedia system (3×4754 + 13 = 14275) or to
//! feed the whole use-case into a single analysis.

use sdfrs_sdf::{Rational, SdfGraph};

use crate::app::{AppError, ApplicationGraph};

/// Disjoint union of several application graphs.
///
/// Actors and channels keep their names (they must remain unique across
/// the inputs — reference applications use instance-prefixed names for
/// exactly this reason). The combined throughput constraint is the
/// *tightest* (largest) λ of the inputs: a combined analysis at that rate
/// conservatively covers every member.
///
/// # Errors
///
/// * [`AppError`] variants if the union fails validation (e.g. duplicate
///   names across inputs).
///
/// # Panics
///
/// Panics if `apps` is empty.
///
/// # Examples
///
/// ```
/// use sdfrs_appmodel::apps::{h263_decoder, mp3_decoder};
/// use sdfrs_appmodel::compose::compose;
/// use sdfrs_sdf::{hsdf::hsdf_size, Rational};
///
/// # fn main() -> Result<(), sdfrs_appmodel::AppError> {
/// let apps = vec![
///     h263_decoder(0, Rational::new(1, 100_000)),
///     h263_decoder(1, Rational::new(1, 100_000)),
///     h263_decoder(2, Rational::new(1, 100_000)),
///     mp3_decoder(Rational::new(1, 3_000)),
/// ];
/// let combined = compose("multimedia", &apps)?;
/// assert_eq!(combined.graph().actor_count(), 3 * 4 + 13);
/// assert_eq!(hsdf_size(combined.graph()).unwrap(), 14275);
/// # Ok(())
/// # }
/// ```
pub fn compose(name: &str, apps: &[ApplicationGraph]) -> Result<ApplicationGraph, AppError> {
    assert!(!apps.is_empty(), "compose needs at least one application");
    let mut graph = SdfGraph::new(name);
    let mut actor_offsets = Vec::with_capacity(apps.len());
    for app in apps {
        actor_offsets.push(graph.actor_count());
        for (_, actor) in app.graph().actors() {
            graph.add_actor(actor.name(), actor.execution_time());
        }
    }
    for (app, &offset) in apps.iter().zip(&actor_offsets) {
        for (_, ch) in app.graph().channels() {
            graph.add_channel(
                ch.name(),
                sdfrs_sdf::ActorId::from_index(offset + ch.src().index()),
                ch.production_rate(),
                sdfrs_sdf::ActorId::from_index(offset + ch.dst().index()),
                ch.consumption_rate(),
                ch.initial_tokens(),
            );
        }
    }

    let lambda = apps
        .iter()
        .map(|a| a.throughput_constraint())
        .fold(Rational::ZERO, Rational::max);
    // The output actor of the *last* member keeps its role (matching the
    // member ordering semantics of the multi-application protocol).
    let last_offset = *actor_offsets.last().expect("non-empty");
    let last = apps.last().expect("non-empty");
    let output = sdfrs_sdf::ActorId::from_index(last_offset + last.output_actor().index());

    let mut builder = ApplicationGraph::builder(graph, lambda).output_actor(output);
    let mut channel_index = 0usize;
    for (app, &offset) in apps.iter().zip(&actor_offsets) {
        for (a, _) in app.graph().actors() {
            builder = builder.actor(
                sdfrs_sdf::ActorId::from_index(offset + a.index()),
                app.actor_requirements(a).clone(),
            );
        }
        for d in app.graph().channel_ids() {
            builder = builder.channel(
                sdfrs_sdf::ChannelId::from_index(channel_index),
                *app.channel_requirements(d),
            );
            channel_index += 1;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{h263_decoder, mp3_decoder, paper_example};
    use sdfrs_sdf::analysis::deadlock::is_live;
    use sdfrs_sdf::hsdf::hsdf_size;

    #[test]
    fn multimedia_union_matches_the_paper() {
        let apps = vec![
            h263_decoder(0, Rational::new(1, 100_000)),
            h263_decoder(1, Rational::new(1, 100_000)),
            h263_decoder(2, Rational::new(1, 100_000)),
            mp3_decoder(Rational::new(1, 3_000)),
        ];
        let combined = compose("multimedia", &apps).unwrap();
        assert_eq!(combined.graph().actor_count(), 25);
        assert_eq!(hsdf_size(combined.graph()).unwrap(), 14275);
        assert!(is_live(combined.graph()));
        // Tightest constraint wins: 1/3000 > 1/100000.
        assert_eq!(combined.throughput_constraint(), Rational::new(1, 3_000));
    }

    #[test]
    fn requirements_are_carried_over() {
        let apps = vec![
            h263_decoder(0, Rational::new(1, 100_000)),
            mp3_decoder(Rational::new(1, 3_000)),
        ];
        let combined = compose("pair", &apps).unwrap();
        let g = combined.graph();
        let vld = g.actor_by_name("vld0").unwrap();
        let huff = g.actor_by_name("huffman").unwrap();
        let generic = sdfrs_platform::ProcessorType::new("generic");
        assert_eq!(
            combined.execution_time(vld, &generic),
            apps[0].execution_time(apps[0].graph().actor_by_name("vld0").unwrap(), &generic)
        );
        assert_eq!(
            combined.execution_time(huff, &generic),
            apps[1].execution_time(apps[1].graph().actor_by_name("huffman").unwrap(), &generic)
        );
        // Output actor comes from the last member.
        assert_eq!(g.actor(combined.output_actor()).name(), "synth");
    }

    #[test]
    fn name_collisions_are_rejected() {
        // Two copies of the same instance share actor names.
        let apps = vec![
            h263_decoder(0, Rational::new(1, 10)),
            h263_decoder(0, Rational::new(1, 10)),
        ];
        assert!(compose("dup", &apps).is_err());
    }

    #[test]
    fn single_member_is_identity_shaped() {
        let app = paper_example();
        let combined = compose("solo", std::slice::from_ref(&app)).unwrap();
        assert_eq!(combined.graph().actor_count(), app.graph().actor_count());
        assert_eq!(
            combined.throughput_constraint(),
            app.throughput_constraint()
        );
        let gamma_a = app.graph().repetition_vector().unwrap();
        let gamma_c = combined.graph().repetition_vector().unwrap();
        assert_eq!(gamma_a.as_slice(), gamma_c.as_slice());
    }

    #[test]
    #[should_panic(expected = "at least one application")]
    fn empty_compose_panics() {
        let _ = compose("none", &[]);
    }
}
