//! Reference applications and platforms from the paper.
//!
//! * [`paper_example`] / [`example_platform`] — the running example of
//!   Figures 2–5 and Tables 1–3;
//! * [`h263_decoder`] — the H.263 decoder of Fig 1 (4 actors, HSDF
//!   equivalent of 4754 actors);
//! * [`mp3_decoder`] — the 13-actor MP3 decoder of the Sec 10.3 multimedia
//!   system.
//!
//! The paper's figures do not print every numeric annotation; where a value
//! is not in the text, the models below use representative numbers and the
//! derivation is documented in `DESIGN.md` §3. All *published* values
//! (Table 1, Table 2, repetition vectors, HSDF sizes, state-space periods)
//! are reproduced exactly and locked in by tests.

use sdfrs_platform::{ArchitectureGraph, ProcessorType, Tile};
use sdfrs_sdf::{Rational, SdfGraph};

use crate::app::ApplicationGraph;
use crate::requirements::{ActorRequirements, ChannelRequirements};

/// The example platform of Fig 2 / Table 1: two connected tiles.
///
/// | tile | pt | w  | m   | c | i   | o   |
/// |------|----|----|-----|---|-----|-----|
/// | t1   | p1 | 10 | 700 | 5 | 100 | 100 |
/// | t2   | p2 | 10 | 500 | 7 | 100 | 100 |
///
/// Both connections (c1: t1→t2, c2: t2→t1) have latency 1.
///
/// # Examples
///
/// ```
/// let arch = sdfrs_appmodel::apps::example_platform();
/// assert_eq!(arch.tile_count(), 2);
/// ```
pub fn example_platform() -> ArchitectureGraph {
    let mut arch = ArchitectureGraph::new("paper_example_platform");
    let t1 = arch.add_tile(Tile::new(
        "t1",
        ProcessorType::new("p1"),
        10,
        700,
        5,
        100,
        100,
    ));
    let t2 = arch.add_tile(Tile::new(
        "t2",
        ProcessorType::new("p2"),
        10,
        500,
        7,
        100,
        100,
    ));
    arch.add_connection(t1, t2, 1);
    arch.add_connection(t2, t1, 1);
    arch
}

/// The example application of Fig 3 / Table 2.
///
/// Structure (reconstructed from Sec 8.1, see `DESIGN.md` §3):
/// `d3` is a self-edge on `a1` carrying one initial token, `d1 = a1 → a2`
/// (rates 1/1), `d2 = a2 → a3` (rates 1/2, so γ = (2, 2, 1)).
///
/// Γ (Table 2): a1 = p1:(1,10) p2:(4,15); a2 = p1:(1,7) p2:(7,19);
/// a3 = p1:(3,13) p2:(2,10).
/// Θ (Table 2): d1 = (7,1,2,2,100); d2 = (100,2,2,2,10); d3 = (1,1,0,0,0).
///
/// The throughput constraint is λ = 1/30 iterations per time unit — the
/// rate realized by the allocation the paper walks through (Fig 5(c): a3
/// fires once every 30 time units and γ(a3) = 1).
///
/// # Examples
///
/// ```
/// let app = sdfrs_appmodel::apps::paper_example();
/// let gamma = app.graph().repetition_vector()?;
/// assert_eq!(gamma.as_slice(), &[2, 2, 1]);
/// # Ok::<(), sdfrs_sdf::SdfError>(())
/// ```
pub fn paper_example() -> ApplicationGraph {
    let p1 = ProcessorType::new("p1");
    let p2 = ProcessorType::new("p2");
    let mut g = SdfGraph::new("paper_example");
    let a1 = g.add_actor("a1", 0);
    let a2 = g.add_actor("a2", 0);
    let a3 = g.add_actor("a3", 0);
    let d1 = g.add_channel("d1", a1, 1, a2, 1, 0);
    let d2 = g.add_channel("d2", a2, 1, a3, 2, 0);
    let d3 = g.add_channel("d3", a1, 1, a1, 1, 1);
    ApplicationGraph::builder(g, Rational::new(1, 30))
        .actor(
            a1,
            ActorRequirements::new()
                .on(p1.clone(), 1, 10)
                .on(p2.clone(), 4, 15),
        )
        .actor(
            a2,
            ActorRequirements::new()
                .on(p1.clone(), 1, 7)
                .on(p2.clone(), 7, 19),
        )
        .actor(a3, ActorRequirements::new().on(p1, 3, 13).on(p2, 2, 10))
        .channel(d1, ChannelRequirements::new(7, 1, 2, 2, 100))
        .channel(d2, ChannelRequirements::new(100, 2, 2, 2, 10))
        .channel(d3, ChannelRequirements::new(1, 1, 0, 0, 0))
        .output_actor(a3)
        .build()
        .expect("the paper example is a valid application graph")
}

/// An H.263 decoder (Fig 1): VLD → IQ → IDCT → MC with repetition vector
/// (1, 2376, 2376, 1), so its HSDF equivalent has 4754 actors.
///
/// `instance` distinguishes the three decoder copies of the Sec 10.3
/// multimedia system (it only affects graph/actor naming, not structure).
/// `lambda` is the per-instance throughput constraint (iterations per time
/// unit).
///
/// Execution times are representative: the frame-level actors (VLD, MC)
/// are two orders of magnitude heavier than the per-macroblock actors
/// (IQ, IDCT), matching the granularity split of the real decoder.
///
/// # Examples
///
/// ```
/// use sdfrs_sdf::hsdf::hsdf_size;
/// let app = sdfrs_appmodel::apps::h263_decoder(0, sdfrs_sdf::Rational::new(1, 100_000));
/// assert_eq!(hsdf_size(app.graph())?, 4754);
/// # Ok::<(), sdfrs_sdf::SdfError>(())
/// ```
pub fn h263_decoder(instance: usize, lambda: Rational) -> ApplicationGraph {
    let generic = ProcessorType::new("generic");
    let acc = ProcessorType::new("accelerator");
    let mut g = SdfGraph::new(format!("h263_{instance}"));
    let vld = g.add_actor(format!("vld{instance}"), 0);
    let iq = g.add_actor(format!("iq{instance}"), 0);
    let idct = g.add_actor(format!("idct{instance}"), 0);
    let mc = g.add_actor(format!("mc{instance}"), 0);
    let v_i = g.add_channel(format!("h{instance}_vld_iq"), vld, 2376, iq, 1, 0);
    let i_d = g.add_channel(format!("h{instance}_iq_idct"), iq, 1, idct, 1, 0);
    let d_m = g.add_channel(format!("h{instance}_idct_mc"), idct, 1, mc, 2376, 0);
    let m_v = g.add_channel(format!("h{instance}_mc_vld"), mc, 1, vld, 1, 1);

    ApplicationGraph::builder(g, lambda)
        // VLD is bit-serial: generic processor only.
        .actor(
            vld,
            ActorRequirements::new().on(generic.clone(), 120, 4_096),
        )
        // IQ and IDCT run per macroblock and have hardware support.
        .actor(
            iq,
            ActorRequirements::new()
                .on(generic.clone(), 2, 512)
                .on(acc.clone(), 1, 256),
        )
        .actor(
            idct,
            ActorRequirements::new()
                .on(generic.clone(), 4, 1_024)
                .on(acc.clone(), 1, 512),
        )
        // Motion compensation works on whole frames.
        .actor(
            mc,
            ActorRequirements::new()
                .on(generic, 180, 8_192)
                .on(acc, 90, 4_096),
        )
        .channel(v_i, ChannelRequirements::new(16, 2_400, 2_400, 2_400, 256))
        .channel(i_d, ChannelRequirements::new(16, 64, 64, 64, 128))
        .channel(d_m, ChannelRequirements::new(16, 2_400, 2_400, 2_400, 256))
        .channel(m_v, ChannelRequirements::new(32, 2, 2, 2, 32))
        .output_actor(mc)
        .build()
        .expect("h263 model is a valid application graph")
}

/// A 13-actor MP3 decoder (single-rate, so its HSDF equivalent has 13
/// actors; combined with three H.263 decoders this yields the 14275 HSDF
/// actors of Sec 10.3).
///
/// Structure: Huffman decoding fans out into left/right channel chains
/// (requantize → reorder), a joint stereo stage, then per-channel alias
/// reduction → IMDCT → frequency inversion, joined by synthesis.
///
/// # Examples
///
/// ```
/// use sdfrs_sdf::hsdf::hsdf_size;
/// let app = sdfrs_appmodel::apps::mp3_decoder(sdfrs_sdf::Rational::new(1, 10_000));
/// assert_eq!(app.graph().actor_count(), 13);
/// assert_eq!(hsdf_size(app.graph())?, 13);
/// # Ok::<(), sdfrs_sdf::SdfError>(())
/// ```
pub fn mp3_decoder(lambda: Rational) -> ApplicationGraph {
    let generic = ProcessorType::new("generic");
    let acc = ProcessorType::new("accelerator");
    let mut g = SdfGraph::new("mp3");
    let huffman = g.add_actor("huffman", 0);
    let req_l = g.add_actor("requant_l", 0);
    let req_r = g.add_actor("requant_r", 0);
    let reo_l = g.add_actor("reorder_l", 0);
    let reo_r = g.add_actor("reorder_r", 0);
    let stereo = g.add_actor("stereo", 0);
    let alias_l = g.add_actor("alias_l", 0);
    let alias_r = g.add_actor("alias_r", 0);
    let imdct_l = g.add_actor("imdct_l", 0);
    let imdct_r = g.add_actor("imdct_r", 0);
    let freq_l = g.add_actor("freqinv_l", 0);
    let freq_r = g.add_actor("freqinv_r", 0);
    let synth = g.add_actor("synth", 0);

    let edges = [
        ("m_h_rl", huffman, req_l),
        ("m_h_rr", huffman, req_r),
        ("m_rl_ol", req_l, reo_l),
        ("m_rr_or", req_r, reo_r),
        ("m_ol_s", reo_l, stereo),
        ("m_or_s", reo_r, stereo),
        ("m_s_al", stereo, alias_l),
        ("m_s_ar", stereo, alias_r),
        ("m_al_il", alias_l, imdct_l),
        ("m_ar_ir", alias_r, imdct_r),
        ("m_il_fl", imdct_l, freq_l),
        ("m_ir_fr", imdct_r, freq_r),
        ("m_fl_sy", freq_l, synth),
        ("m_fr_sy", freq_r, synth),
    ];
    for (name, src, dst) in edges {
        g.add_channel(name, src, 1, dst, 1, 0);
    }

    let cheap = |tau_g: u64, tau_a: u64, mu: u64| {
        ActorRequirements::new()
            .on(generic.clone(), tau_g, mu)
            .on(acc.clone(), tau_a, mu / 2)
    };
    ApplicationGraph::builder(g, lambda)
        .actor(
            huffman,
            ActorRequirements::new().on(generic.clone(), 60, 4_096),
        )
        .actor(req_l, cheap(20, 10, 1_024))
        .actor(req_r, cheap(20, 10, 1_024))
        .actor(reo_l, cheap(12, 6, 512))
        .actor(reo_r, cheap(12, 6, 512))
        .actor(
            stereo,
            ActorRequirements::new().on(generic.clone(), 25, 2_048),
        )
        .actor(alias_l, cheap(10, 5, 512))
        .actor(alias_r, cheap(10, 5, 512))
        .actor(imdct_l, cheap(45, 15, 2_048))
        .actor(imdct_r, cheap(45, 15, 2_048))
        .actor(freq_l, cheap(8, 4, 256))
        .actor(freq_r, cheap(8, 4, 256))
        .actor(synth, ActorRequirements::new().on(generic, 70, 4_096))
        .channel_default(ChannelRequirements::new(64, 2, 2, 2, 64))
        .output_actor(synth)
        .build()
        .expect("mp3 model is a valid application graph")
}

/// The bundled example application behind a stable name — the set the
/// CLI's `example` command and the admission service's wire protocol
/// (`{"op":"admit","example":"paper"}`) agree on. Constraints match the
/// paper's experiments; `None` for an unknown name.
pub fn bundled(name: &str) -> Option<ApplicationGraph> {
    use crate::classic;
    Some(match name {
        "paper" => paper_example(),
        "h263" => h263_decoder(0, Rational::new(1, 100_000)),
        "mp3" => mp3_decoder(Rational::new(1, 3_000)),
        "cd2dat" => classic::cd_to_dat(Rational::new(1, 40_000)),
        "satellite" => classic::satellite_receiver(Rational::new(1, 2_000)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfrs_sdf::analysis::selftimed::SelfTimedExecutor;
    use sdfrs_sdf::hsdf::hsdf_size;

    #[test]
    fn example_platform_matches_table1() {
        let arch = example_platform();
        let t1 = arch.tile_by_name("t1").unwrap();
        let t2 = arch.tile_by_name("t2").unwrap();
        assert_eq!(arch.tile(t1).processor_type().name(), "p1");
        assert_eq!(arch.tile(t1).wheel_size(), 10);
        assert_eq!(arch.tile(t1).memory(), 700);
        assert_eq!(arch.tile(t1).max_connections(), 5);
        assert_eq!(arch.tile(t2).memory(), 500);
        assert_eq!(arch.tile(t2).max_connections(), 7);
        assert_eq!(arch.connection_between(t1, t2).unwrap().1.latency(), 1);
        assert_eq!(arch.connection_between(t2, t1).unwrap().1.latency(), 1);
    }

    #[test]
    fn paper_example_matches_table2() {
        let app = paper_example();
        let g = app.graph();
        let a1 = g.actor_by_name("a1").unwrap();
        let a3 = g.actor_by_name("a3").unwrap();
        let p1 = ProcessorType::new("p1");
        let p2 = ProcessorType::new("p2");
        assert_eq!(app.execution_time(a1, &p1), Some(1));
        assert_eq!(app.actor_memory(a1, &p2), Some(15));
        assert_eq!(app.execution_time(a3, &p2), Some(2));
        let d2 = g.channel_by_name("d2").unwrap();
        let th = app.channel_requirements(d2);
        assert_eq!(
            (
                th.token_size,
                th.buffer_tile,
                th.buffer_src,
                th.buffer_dst,
                th.bandwidth
            ),
            (100, 2, 2, 2, 10)
        );
        let d3 = g.channel_by_name("d3").unwrap();
        assert!(g.channel(d3).is_self_edge());
        assert_eq!(g.channel(d3).initial_tokens(), 1);
    }

    /// Fig 5(a): with the bound execution times (1, 1, 2), a3 fires once
    /// every 2 time units in the unconstrained self-timed execution.
    #[test]
    fn fig5a_period_is_2() {
        let app = paper_example();
        let mut g = app.graph().clone();
        let a1 = g.actor_by_name("a1").unwrap();
        let a2 = g.actor_by_name("a2").unwrap();
        let a3 = g.actor_by_name("a3").unwrap();
        g.set_execution_time(a1, 1);
        g.set_execution_time(a2, 1);
        g.set_execution_time(a3, 2);
        let thr = SelfTimedExecutor::new(&g).throughput(a3).unwrap();
        assert_eq!(thr.actor_throughput, Rational::new(1, 2));
    }

    #[test]
    fn h263_hsdf_size_is_4754() {
        let app = h263_decoder(1, Rational::new(1, 100_000));
        assert_eq!(app.graph().actor_count(), 4);
        assert_eq!(hsdf_size(app.graph()).unwrap(), 4754);
    }

    #[test]
    fn multimedia_system_hsdf_total_is_14275() {
        let lambda = Rational::new(1, 100_000);
        let total: u64 = (0..3)
            .map(|i| hsdf_size(h263_decoder(i, lambda).graph()).unwrap())
            .sum::<u64>()
            + hsdf_size(mp3_decoder(lambda).graph()).unwrap();
        assert_eq!(total, 14275);
    }

    #[test]
    fn mp3_is_single_rate() {
        let app = mp3_decoder(Rational::new(1, 1_000));
        assert!(app
            .graph()
            .channels()
            .all(|(_, c)| c.production_rate() == 1 && c.consumption_rate() == 1));
        let gamma = app.graph().repetition_vector().unwrap();
        assert!(gamma.as_slice().iter().all(|&x| x == 1));
    }

    #[test]
    fn h263_instances_have_distinct_names() {
        let a = h263_decoder(0, Rational::new(1, 10));
        let b = h263_decoder(1, Rational::new(1, 10));
        assert_ne!(a.graph().name(), b.graph().name());
        assert!(a.graph().actor_by_name("vld0").is_some());
        assert!(b.graph().actor_by_name("vld1").is_some());
    }
}
