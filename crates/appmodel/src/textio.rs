//! Line-based text format for application graphs and platforms.
//!
//! A deliberately trivial format — one record per line, `key value`
//! pairs, `#` comments — so graphs can be exchanged with scripts and
//! version control without a serialization dependency.
//!
//! Application file (`.sdfa`):
//!
//! ```text
//! app h263 lambda 1/100000
//! actor vld pt generic tau 120 mu 4096
//! actor iq pt generic tau 2 mu 512 pt acc tau 1 mu 256
//! channel d0 vld 2376 iq 1 tokens 0 sz 16 atile 2400 asrc 2400 adst 2400 beta 256
//! output iq
//! ```
//!
//! Platform file (`.sdfp`):
//!
//! ```text
//! arch mesh
//! tile t1 pt p1 wheel 10 mem 700 conn 5 bwin 100 bwout 100
//! connection t1 t2 latency 1
//! ```

use std::error::Error;
use std::fmt;

use crate::{ActorRequirements, ApplicationGraph, ChannelRequirements};
use sdfrs_platform::{ArchitectureGraph, ProcessorType, Tile};
use sdfrs_sdf::{Rational, SdfGraph};

/// Errors raised while parsing the text formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the problem.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_u64(line: usize, token: &str, what: &str) -> Result<u64, ParseError> {
    token
        .parse()
        .map_err(|_| err(line, format!("expected a number for {what}, got {token:?}")))
}

fn parse_rational(line: usize, token: &str) -> Result<Rational, ParseError> {
    let (num, den) = match token.split_once('/') {
        Some((n, d)) => (n, d),
        None => (token, "1"),
    };
    let n: i128 = num
        .parse()
        .map_err(|_| err(line, format!("bad rational numerator {num:?}")))?;
    let d: i128 = den
        .parse()
        .map_err(|_| err(line, format!("bad rational denominator {den:?}")))?;
    if d == 0 {
        return Err(err(line, "rational denominator is zero"));
    }
    Ok(Rational::new(n, d))
}

/// Expects `tokens[i] == key` and returns the following value token.
fn keyed<'a>(
    line: usize,
    tokens: &'a [&'a str],
    i: usize,
    key: &str,
) -> Result<&'a str, ParseError> {
    if tokens.get(i) != Some(&key) {
        return Err(err(
            line,
            format!(
                "expected keyword {key:?} at position {i}, got {:?}",
                tokens.get(i)
            ),
        ));
    }
    tokens
        .get(i + 1)
        .copied()
        .ok_or_else(|| err(line, format!("missing value after {key:?}")))
}

/// Parses an application graph from the `.sdfa` text format.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line, or a semantic
/// error message (line 0) if the assembled graph fails validation.
pub fn parse_application(input: &str) -> Result<ApplicationGraph, ParseError> {
    let mut name = String::from("app");
    let mut lambda = Rational::ONE;
    let mut graph = SdfGraph::new("pending");
    let mut actor_reqs: Vec<ActorRequirements> = Vec::new();
    let mut channel_reqs: Vec<ChannelRequirements> = Vec::new();
    let mut output: Option<String> = None;

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "app" => {
                name = tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, "app needs a name"))?
                    .to_string();
                lambda = parse_rational(line_no, keyed(line_no, &tokens, 2, "lambda")?)?;
            }
            "actor" => {
                let actor_name = *tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, "actor needs a name"))?;
                let mut reqs = ActorRequirements::new();
                let mut i = 2;
                while i < tokens.len() {
                    let pt = keyed(line_no, &tokens, i, "pt")?;
                    let tau = parse_u64(line_no, keyed(line_no, &tokens, i + 2, "tau")?, "tau")?;
                    let mu = parse_u64(line_no, keyed(line_no, &tokens, i + 4, "mu")?, "mu")?;
                    reqs = reqs.on(ProcessorType::new(pt), tau, mu);
                    i += 6;
                }
                graph.add_actor(actor_name, 0);
                actor_reqs.push(reqs);
            }
            "channel" => {
                if tokens.len() < 6 {
                    return Err(err(line_no, "channel needs: name src p dst q ..."));
                }
                let ch_name = tokens[1];
                let src = graph
                    .actor_by_name(tokens[2])
                    .ok_or_else(|| err(line_no, format!("unknown actor {:?}", tokens[2])))?;
                let p = parse_u64(line_no, tokens[3], "production rate")?;
                let dst = graph
                    .actor_by_name(tokens[4])
                    .ok_or_else(|| err(line_no, format!("unknown actor {:?}", tokens[4])))?;
                let q = parse_u64(line_no, tokens[5], "consumption rate")?;
                if p == 0 || q == 0 {
                    return Err(err(line_no, "rates must be positive"));
                }
                let tokens_n = parse_u64(line_no, keyed(line_no, &tokens, 6, "tokens")?, "tokens")?;
                let sz = parse_u64(line_no, keyed(line_no, &tokens, 8, "sz")?, "sz")?;
                let atile = parse_u64(line_no, keyed(line_no, &tokens, 10, "atile")?, "atile")?;
                let asrc = parse_u64(line_no, keyed(line_no, &tokens, 12, "asrc")?, "asrc")?;
                let adst = parse_u64(line_no, keyed(line_no, &tokens, 14, "adst")?, "adst")?;
                let beta = parse_u64(line_no, keyed(line_no, &tokens, 16, "beta")?, "beta")?;
                graph.add_channel(ch_name, src, p, dst, q, tokens_n);
                channel_reqs.push(ChannelRequirements::new(sz, atile, asrc, adst, beta));
            }
            "output" => {
                output = Some(
                    tokens
                        .get(1)
                        .ok_or_else(|| err(line_no, "output needs an actor name"))?
                        .to_string(),
                );
            }
            other => return Err(err(line_no, format!("unknown record {other:?}"))),
        }
    }

    let mut renamed = SdfGraph::new(name);
    for (_, a) in graph.actors() {
        renamed.add_actor(a.name(), 0);
    }
    for (_, c) in graph.channels() {
        renamed.add_channel(
            c.name(),
            c.src(),
            c.production_rate(),
            c.dst(),
            c.consumption_rate(),
            c.initial_tokens(),
        );
    }
    let output_actor = match output {
        Some(n) => renamed
            .actor_by_name(&n)
            .ok_or_else(|| err(0, format!("output names unknown actor {n:?}")))?,
        None => {
            if renamed.actor_count() == 0 {
                return Err(err(0, "application has no actors"));
            }
            sdfrs_sdf::ActorId::from_index(renamed.actor_count() - 1)
        }
    };
    let mut builder = ApplicationGraph::builder(renamed, lambda).output_actor(output_actor);
    for (i, r) in actor_reqs.into_iter().enumerate() {
        builder = builder.actor(sdfrs_sdf::ActorId::from_index(i), r);
    }
    for (i, r) in channel_reqs.into_iter().enumerate() {
        builder = builder.channel(sdfrs_sdf::ChannelId::from_index(i), r);
    }
    builder.build().map_err(|e| err(0, e.to_string()))
}

/// Parses a *bundle*: several applications in one file, each starting at
/// an `app` record. The single-application format is a bundle of one.
///
/// # Errors
///
/// Propagates the first member's [`ParseError`], with line numbers
/// relative to the whole file.
///
/// # Examples
///
/// ```
/// use sdfrs_appmodel::textio::parse_applications;
/// let text = "\
/// app one lambda 1/4
/// actor a pt p tau 1 mu 1
/// output a
/// app two lambda 1/8
/// actor b pt p tau 2 mu 2
/// output b
/// ";
/// let apps = parse_applications(text)?;
/// assert_eq!(apps.len(), 2);
/// assert_eq!(apps[1].graph().name(), "two");
/// # Ok::<(), sdfrs_appmodel::textio::ParseError>(())
/// ```
pub fn parse_applications(input: &str) -> Result<Vec<ApplicationGraph>, ParseError> {
    // Split on `app` record starts, keeping line offsets for error
    // reporting.
    let mut chunks: Vec<(usize, Vec<&str>)> = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let is_app = raw
            .split('#')
            .next()
            .unwrap_or("")
            .trim_start()
            .starts_with("app ");
        if is_app || chunks.is_empty() {
            chunks.push((idx, Vec::new()));
        }
        chunks.last_mut().expect("chunk exists").1.push(raw);
    }
    let mut apps = Vec::new();
    for (offset, lines) in chunks {
        let meaningful = lines
            .iter()
            .any(|l| !l.split('#').next().unwrap_or("").trim().is_empty());
        if !meaningful {
            continue;
        }
        let text = lines.join("\n");
        let app = parse_application(&text).map_err(|e| ParseError {
            line: if e.line == 0 { 0 } else { e.line + offset },
            message: e.message,
        })?;
        apps.push(app);
    }
    Ok(apps)
}

/// Writes several applications as one bundle.
pub fn write_applications(apps: &[ApplicationGraph]) -> String {
    apps.iter().map(write_application).collect()
}

/// Writes an application graph in the `.sdfa` text format.
pub fn write_application(app: &ApplicationGraph) -> String {
    let g = app.graph();
    let mut out = String::new();
    let lambda = app.throughput_constraint();
    out.push_str(&format!(
        "app {} lambda {}/{}\n",
        g.name(),
        lambda.numer(),
        lambda.denom()
    ));
    for (a, actor) in g.actors() {
        out.push_str(&format!("actor {}", actor.name()));
        let reqs = app.actor_requirements(a);
        for pt in reqs.supported_types() {
            out.push_str(&format!(
                " pt {} tau {} mu {}",
                pt.name(),
                reqs.execution_time(pt).expect("supported"),
                reqs.memory(pt).expect("supported")
            ));
        }
        out.push('\n');
    }
    for (d, c) in g.channels() {
        let th = app.channel_requirements(d);
        out.push_str(&format!(
            "channel {} {} {} {} {} tokens {} sz {} atile {} asrc {} adst {} beta {}\n",
            c.name(),
            g.actor(c.src()).name(),
            c.production_rate(),
            g.actor(c.dst()).name(),
            c.consumption_rate(),
            c.initial_tokens(),
            th.token_size,
            th.buffer_tile,
            th.buffer_src,
            th.buffer_dst,
            th.bandwidth
        ));
    }
    out.push_str(&format!("output {}\n", g.actor(app.output_actor()).name()));
    out
}

/// Parses an architecture graph from the `.sdfp` text format.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line.
pub fn parse_platform(input: &str) -> Result<ArchitectureGraph, ParseError> {
    let mut arch = ArchitectureGraph::new("platform");
    let mut named = false;
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "arch" => {
                let name = tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, "arch needs a name"))?;
                if named {
                    return Err(err(line_no, "duplicate arch record"));
                }
                let mut renamed = ArchitectureGraph::new(*name);
                for (_, t) in arch.tiles() {
                    renamed.add_tile(t.clone());
                }
                arch = renamed;
                named = true;
            }
            "tile" => {
                let name = *tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, "tile needs a name"))?;
                let pt = keyed(line_no, &tokens, 2, "pt")?;
                let wheel = parse_u64(line_no, keyed(line_no, &tokens, 4, "wheel")?, "wheel")?;
                let mem = parse_u64(line_no, keyed(line_no, &tokens, 6, "mem")?, "mem")?;
                let conn = parse_u64(line_no, keyed(line_no, &tokens, 8, "conn")?, "conn")?;
                let bwin = parse_u64(line_no, keyed(line_no, &tokens, 10, "bwin")?, "bwin")?;
                let bwout = parse_u64(line_no, keyed(line_no, &tokens, 12, "bwout")?, "bwout")?;
                arch.add_tile(Tile::new(
                    name,
                    ProcessorType::new(pt),
                    wheel,
                    mem,
                    conn as u32,
                    bwin,
                    bwout,
                ));
            }
            "connection" => {
                let src = arch
                    .tile_by_name(tokens.get(1).copied().unwrap_or(""))
                    .ok_or_else(|| err(line_no, "unknown source tile"))?;
                let dst = arch
                    .tile_by_name(tokens.get(2).copied().unwrap_or(""))
                    .ok_or_else(|| err(line_no, "unknown destination tile"))?;
                let latency =
                    parse_u64(line_no, keyed(line_no, &tokens, 3, "latency")?, "latency")?;
                arch.add_connection(src, dst, latency);
            }
            other => return Err(err(line_no, format!("unknown record {other:?}"))),
        }
    }
    Ok(arch)
}

/// Writes an architecture graph in the `.sdfp` text format.
pub fn write_platform(arch: &ArchitectureGraph) -> String {
    let mut out = format!("arch {}\n", arch.name());
    for (_, t) in arch.tiles() {
        out.push_str(&format!(
            "tile {} pt {} wheel {} mem {} conn {} bwin {} bwout {}\n",
            t.name(),
            t.processor_type().name(),
            t.wheel_size(),
            t.memory(),
            t.max_connections(),
            t.bandwidth_in(),
            t.bandwidth_out()
        ));
    }
    for (_, c) in arch.connections() {
        out.push_str(&format!(
            "connection {} {} latency {}\n",
            arch.tile(c.src()).name(),
            arch.tile(c.dst()).name(),
            c.latency()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{example_platform, h263_decoder, mp3_decoder, paper_example};

    #[test]
    fn application_roundtrip() {
        for app in [
            paper_example(),
            h263_decoder(0, Rational::new(1, 100_000)),
            mp3_decoder(Rational::new(1, 3_000)),
        ] {
            let text = write_application(&app);
            let parsed = parse_application(&text).unwrap_or_else(|e| {
                panic!("failed to reparse {}: {e}\n{text}", app.graph().name())
            });
            assert_eq!(parsed.graph(), app.graph());
            assert_eq!(parsed.throughput_constraint(), app.throughput_constraint());
            assert_eq!(parsed.output_actor(), app.output_actor());
            for (a, _) in app.graph().actors() {
                assert_eq!(parsed.actor_requirements(a), app.actor_requirements(a));
            }
            for d in app.graph().channel_ids() {
                assert_eq!(parsed.channel_requirements(d), app.channel_requirements(d));
            }
        }
    }

    #[test]
    fn platform_roundtrip() {
        let arch = example_platform();
        let text = write_platform(&arch);
        let parsed = parse_platform(&text).unwrap();
        assert_eq!(parsed, arch);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text =
            "\n# a comment\napp demo lambda 1/4  # trailing\nactor a pt p tau 1 mu 1\noutput a\n";
        let app = parse_application(text).unwrap();
        assert_eq!(app.graph().name(), "demo");
        assert_eq!(app.throughput_constraint(), Rational::new(1, 4));
    }

    #[test]
    fn error_reports_line() {
        let text = "app demo lambda 1/4\nactor a pt p tau X mu 1\noutput a\n";
        let e = parse_application(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("tau"));
    }

    #[test]
    fn unknown_actor_in_channel_rejected() {
        let text = "app demo lambda 1\nactor a pt p tau 1 mu 1\nchannel d a 1 ghost 1 tokens 0 sz 1 atile 1 asrc 1 adst 1 beta 1\n";
        let e = parse_application(text).unwrap_err();
        assert!(e.to_string().contains("ghost"));
    }

    #[test]
    fn unknown_record_rejected() {
        assert!(parse_application("bogus x\n").is_err());
        assert!(parse_platform("bogus x\n").is_err());
    }

    #[test]
    fn semantic_errors_surface() {
        // Inconsistent rates are caught by the builder.
        let text = "app demo lambda 1\nactor a pt p tau 1 mu 1\nactor b pt p tau 1 mu 1\n\
                    channel d0 a 1 b 1 tokens 0 sz 1 atile 1 asrc 1 adst 1 beta 1\n\
                    channel d1 b 2 a 1 tokens 0 sz 1 atile 1 asrc 1 adst 1 beta 1\noutput b\n";
        let e = parse_application(text).unwrap_err();
        assert!(e.to_string().contains("consistent"), "{e}");
    }

    #[test]
    fn platform_connections_need_known_tiles() {
        let text = "arch a\ntile t pt p wheel 1 mem 1 conn 1 bwin 1 bwout 1\nconnection t ghost latency 1\n";
        assert!(parse_platform(text).is_err());
    }
}

#[cfg(test)]
mod bundle_tests {
    use super::*;
    use crate::apps::{h263_decoder, mp3_decoder};

    #[test]
    fn bundle_roundtrip() {
        let apps = vec![
            h263_decoder(0, Rational::new(1, 100_000)),
            h263_decoder(1, Rational::new(1, 100_000)),
            mp3_decoder(Rational::new(1, 3_000)),
        ];
        let text = write_applications(&apps);
        let parsed = parse_applications(&text).unwrap();
        assert_eq!(parsed.len(), 3);
        for (p, a) in parsed.iter().zip(&apps) {
            assert_eq!(p.graph(), a.graph());
        }
    }

    #[test]
    fn single_app_is_a_bundle_of_one() {
        let apps =
            parse_applications("app solo lambda 1/2\nactor a pt p tau 1 mu 1\noutput a\n").unwrap();
        assert_eq!(apps.len(), 1);
        assert_eq!(apps[0].graph().name(), "solo");
    }

    #[test]
    fn bundle_errors_carry_global_line_numbers() {
        let text = "app one lambda 1/4\nactor a pt p tau 1 mu 1\noutput a\n\
                    app two lambda 1/8\nactor b pt p tau X mu 2\noutput b\n";
        let e = parse_applications(text).unwrap_err();
        assert_eq!(e.line, 5, "line number must be file-relative: {e}");
    }

    #[test]
    fn empty_input_is_an_empty_bundle() {
        assert_eq!(parse_applications("\n# nothing\n").unwrap().len(), 0);
    }
}
