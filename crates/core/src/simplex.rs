//! Exact rational linear programming: a small dense two-phase simplex
//! over [`Rational`], used by the branch-and-bound backend
//! ([`exact`](crate::exact)) to compute certified throughput upper
//! bounds from the LP relaxation of the tile-capacity constraints.
//!
//! Design constraints, in order:
//!
//! * **Exactness** — every pivot is performed in `i128`-backed rational
//!   arithmetic; there is no floating point anywhere, so a bound proved
//!   here is a *certificate*, not an approximation.
//! * **Determinism** — entering and leaving variables are chosen by
//!   Bland's rule (lowest eligible index). Bland's rule both prevents
//!   cycling (termination is guaranteed) and makes the pivot sequence —
//!   and therefore the reported pivot count — a pure function of the
//!   input problem, which the bit-reproducibility argument of the
//!   branch-and-bound search relies on.
//! * **No dependencies** — the build environment has no external solver
//!   and no crates.io access; ~300 lines of dense tableau simplex cover
//!   the few-dozen-variable relaxations the search needs.
//!
//! The kernel is intentionally *not* sparse, revised, or otherwise
//! clever: relaxations in this workspace have `actors × tiles + 1`
//! variables and `actors + tiles` rows, where both factors are small by
//! construction (the exact backend is for small instances).

use sdfrs_sdf::Rational;

/// How one [`LpConstraint`] relates its left-hand side to its bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpRelation {
    /// `coeffs · x ≤ rhs`.
    Le,
    /// `coeffs · x = rhs`.
    Eq,
    /// `coeffs · x ≥ rhs`.
    Ge,
}

/// One linear constraint `coeffs · x (≤ | = | ≥) rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LpConstraint {
    /// Dense coefficient row, one entry per structural variable.
    pub coeffs: Vec<Rational>,
    /// The relation between the row and its right-hand side.
    pub relation: LpRelation,
    /// The right-hand side.
    pub rhs: Rational,
}

/// A linear program `minimize objective · x subject to constraints,
/// x ≥ 0`.
///
/// All structural variables are non-negative; bounded variables are
/// expressed through explicit constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LpProblem {
    /// Number of structural variables.
    pub num_vars: usize,
    /// Dense objective row (minimized), one entry per variable.
    pub objective: Vec<Rational>,
    /// The constraint rows.
    pub constraints: Vec<LpConstraint>,
}

/// An optimal basic feasible solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LpSolution {
    /// The minimized objective value.
    pub objective: Rational,
    /// The value of every structural variable.
    pub values: Vec<Rational>,
    /// Simplex pivots performed across both phases — the proof-of-work
    /// figure reported in [`SolveReport`](crate::solver::SolveReport).
    pub pivots: u64,
}

/// Why a problem has no optimal solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "infeasible linear program"),
            LpError::Unbounded => write!(f, "unbounded linear program"),
        }
    }
}

impl std::error::Error for LpError {}

/// Dense simplex tableau: `rows[r]` holds the coefficients of every
/// column plus the right-hand side in the final position.
struct Tableau {
    rows: Vec<Vec<Rational>>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Total columns excluding the right-hand side.
    ncols: usize,
    pivots: u64,
}

impl Tableau {
    fn rhs(&self, r: usize) -> Rational {
        self.rows[r][self.ncols]
    }

    /// Pivots on `(r, c)`: row `r` is scaled so column `c` becomes 1,
    /// then eliminated from every other row. `cost` rides along as an
    /// extra row so reduced costs stay current.
    fn pivot(&mut self, r: usize, c: usize, cost: &mut [Rational]) {
        let p = self.rows[r][c];
        debug_assert!(!p.is_zero(), "pivot element must be non-zero");
        let inv = p.recip();
        for v in self.rows[r].iter_mut() {
            *v = *v * inv;
        }
        let pivot_row = self.rows[r].clone();
        for (i, row) in self.rows.iter_mut().enumerate() {
            if i == r {
                continue;
            }
            let f = row[c];
            if f.is_zero() {
                continue;
            }
            for (v, pv) in row.iter_mut().zip(&pivot_row) {
                *v = *v - f * *pv;
            }
        }
        let f = cost[c];
        if !f.is_zero() {
            for (v, pv) in cost.iter_mut().zip(&pivot_row) {
                *v = *v - f * *pv;
            }
        }
        self.basis[r] = c;
        self.pivots += 1;
    }

    /// Reduces `cost` against the current basis so basic columns have
    /// zero reduced cost.
    fn reduce_cost(&self, cost: &mut [Rational]) {
        for (r, &b) in self.basis.iter().enumerate() {
            let f = cost[b];
            if f.is_zero() {
                continue;
            }
            for (v, rv) in cost.iter_mut().zip(&self.rows[r]) {
                *v = *v - f * *rv;
            }
        }
    }

    /// Runs Bland-rule simplex iterations until optimality, restricted
    /// to columns where `allowed` is true.
    fn optimize(&mut self, cost: &mut [Rational], allowed: &[bool]) -> Result<(), LpError> {
        loop {
            // Entering: lowest-index allowed column with negative
            // reduced cost (Bland's rule, part 1).
            let entering = (0..self.ncols).find(|&c| allowed[c] && cost[c] < Rational::ZERO);
            let Some(c) = entering else {
                return Ok(());
            };
            // Leaving: minimum ratio rhs / coeff over positive
            // coefficients; ties broken by the lowest basic-variable
            // index (Bland's rule, part 2).
            let mut leave: Option<(usize, Rational)> = None;
            for r in 0..self.rows.len() {
                let a = self.rows[r][c];
                if a <= Rational::ZERO {
                    continue;
                }
                let ratio = self.rhs(r) / a;
                match &leave {
                    None => leave = Some((r, ratio)),
                    Some((best_r, best)) => {
                        if ratio < *best || (ratio == *best && self.basis[r] < self.basis[*best_r])
                        {
                            leave = Some((r, ratio));
                        }
                    }
                }
            }
            let Some((r, _)) = leave else {
                return Err(LpError::Unbounded);
            };
            self.pivot(r, c, cost);
        }
    }
}

/// Solves `problem` with the deterministic two-phase simplex.
///
/// # Errors
///
/// [`LpError::Infeasible`] when the feasible region is empty,
/// [`LpError::Unbounded`] when the objective is unbounded below.
pub fn solve(problem: &LpProblem) -> Result<LpSolution, LpError> {
    let n = problem.num_vars;
    debug_assert_eq!(problem.objective.len(), n);
    let m = problem.constraints.len();

    // Normalize every row to `rhs ≥ 0` (flipping the relation when the
    // row is negated), then count auxiliary columns: one slack per ≤
    // row, one surplus per ≥ row, one artificial per ≥ / = row.
    let mut rows_norm: Vec<(Vec<Rational>, LpRelation, Rational)> = Vec::with_capacity(m);
    for c in &problem.constraints {
        debug_assert_eq!(c.coeffs.len(), n);
        if c.rhs < Rational::ZERO {
            let coeffs = c.coeffs.iter().map(|&v| -v).collect();
            let relation = match c.relation {
                LpRelation::Le => LpRelation::Ge,
                LpRelation::Ge => LpRelation::Le,
                LpRelation::Eq => LpRelation::Eq,
            };
            rows_norm.push((coeffs, relation, -c.rhs));
        } else {
            rows_norm.push((c.coeffs.clone(), c.relation, c.rhs));
        }
    }
    let slacks = rows_norm
        .iter()
        .filter(|(_, rel, _)| matches!(rel, LpRelation::Le | LpRelation::Ge))
        .count();
    let artificials = rows_norm
        .iter()
        .filter(|(_, rel, _)| matches!(rel, LpRelation::Ge | LpRelation::Eq))
        .count();
    let ncols = n + slacks + artificials;

    let mut rows: Vec<Vec<Rational>> = Vec::with_capacity(m);
    let mut basis = Vec::with_capacity(m);
    let mut next_slack = n;
    let mut next_artificial = n + slacks;
    let art_start = n + slacks;
    for (coeffs, relation, rhs) in &rows_norm {
        let mut row = vec![Rational::ZERO; ncols + 1];
        row[..n].copy_from_slice(coeffs);
        row[ncols] = *rhs;
        match relation {
            LpRelation::Le => {
                row[next_slack] = Rational::ONE;
                basis.push(next_slack);
                next_slack += 1;
            }
            LpRelation::Ge => {
                row[next_slack] = -Rational::ONE;
                next_slack += 1;
                row[next_artificial] = Rational::ONE;
                basis.push(next_artificial);
                next_artificial += 1;
            }
            LpRelation::Eq => {
                row[next_artificial] = Rational::ONE;
                basis.push(next_artificial);
                next_artificial += 1;
            }
        }
        rows.push(row);
    }
    let mut tableau = Tableau {
        rows,
        basis,
        ncols,
        pivots: 0,
    };

    // Phase 1: minimize the sum of artificials.
    if artificials > 0 {
        let mut cost = vec![Rational::ZERO; ncols + 1];
        cost[art_start..ncols].fill(Rational::ONE);
        tableau.reduce_cost(&mut cost);
        let allowed = vec![true; ncols];
        tableau.optimize(&mut cost, &allowed)?;
        // `-cost[rhs]` is the phase-1 objective value.
        if -cost[ncols] != Rational::ZERO {
            return Err(LpError::Infeasible);
        }
        // Drive remaining (degenerate, zero-valued) artificials out of
        // the basis; a row with no non-artificial coefficient left is a
        // redundant constraint and is dropped.
        let mut r = 0;
        while r < tableau.rows.len() {
            if tableau.basis[r] >= art_start {
                let c = (0..art_start).find(|&c| !tableau.rows[r][c].is_zero());
                match c {
                    Some(c) => tableau.pivot(r, c, &mut cost),
                    None => {
                        tableau.rows.remove(r);
                        tableau.basis.remove(r);
                        continue;
                    }
                }
            }
            r += 1;
        }
    }

    // Phase 2: minimize the real objective over non-artificial columns.
    let mut cost = vec![Rational::ZERO; ncols + 1];
    cost[..n].copy_from_slice(&problem.objective);
    tableau.reduce_cost(&mut cost);
    let mut allowed = vec![true; ncols];
    for a in allowed.iter_mut().skip(art_start) {
        *a = false;
    }
    tableau.optimize(&mut cost, &allowed)?;

    let mut values = vec![Rational::ZERO; n];
    for (r, &b) in tableau.basis.iter().enumerate() {
        if b < n {
            values[b] = tableau.rhs(r);
        }
    }
    let objective = problem
        .objective
        .iter()
        .zip(&values)
        .fold(Rational::ZERO, |acc, (&c, &x)| acc + c * x);
    Ok(LpSolution {
        objective,
        values,
        pivots: tableau.pivots,
    })
}

/// `true` when `values` satisfies every constraint of `problem` and the
/// non-negativity bounds — the invariant the property tests (and debug
/// assertions in the exact backend) check on every returned solution.
pub fn is_feasible(problem: &LpProblem, values: &[Rational]) -> bool {
    if values.len() != problem.num_vars || values.iter().any(|&v| v < Rational::ZERO) {
        return false;
    }
    problem.constraints.iter().all(|c| {
        let lhs = c
            .coeffs
            .iter()
            .zip(values)
            .fold(Rational::ZERO, |acc, (&a, &x)| acc + a * x);
        match c.relation {
            LpRelation::Le => lhs <= c.rhs,
            LpRelation::Eq => lhs == c.rhs,
            LpRelation::Ge => lhs >= c.rhs,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(num: i128, den: i128) -> Rational {
        Rational::new(num, den)
    }

    fn le(coeffs: &[i128], rhs: i128) -> LpConstraint {
        LpConstraint {
            coeffs: coeffs.iter().map(|&v| Rational::from_integer(v)).collect(),
            relation: LpRelation::Le,
            rhs: Rational::from_integer(rhs),
        }
    }

    fn eq(coeffs: &[i128], rhs: i128) -> LpConstraint {
        LpConstraint {
            coeffs: coeffs.iter().map(|&v| Rational::from_integer(v)).collect(),
            relation: LpRelation::Eq,
            rhs: Rational::from_integer(rhs),
        }
    }

    fn minimize(objective: &[i128], constraints: Vec<LpConstraint>) -> LpProblem {
        LpProblem {
            num_vars: objective.len(),
            objective: objective
                .iter()
                .map(|&v| Rational::from_integer(v))
                .collect(),
            constraints,
        }
    }

    #[test]
    fn textbook_maximization_via_negation() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), 36.
        let p = minimize(
            &[-3, -5],
            vec![le(&[1, 0], 4), le(&[0, 2], 12), le(&[3, 2], 18)],
        );
        let s = solve(&p).unwrap();
        assert_eq!(s.objective, Rational::from_integer(-36));
        assert_eq!(s.values, vec![r(2, 1), r(6, 1)]);
        assert!(is_feasible(&p, &s.values));
    }

    #[test]
    fn equality_rows_force_phase_one() {
        // min x + y s.t. x + y = 2, x - y = 0 → (1, 1), 2.
        let p = minimize(&[1, 1], vec![eq(&[1, 1], 2), eq(&[1, -1], 0)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.objective, Rational::from_integer(2));
        assert_eq!(s.values, vec![Rational::ONE, Rational::ONE]);
    }

    #[test]
    fn infeasible_system_is_reported() {
        // x ≤ 1 and x ≥ 3 cannot hold together.
        let p = minimize(
            &[1],
            vec![
                le(&[1], 1),
                LpConstraint {
                    coeffs: vec![Rational::ONE],
                    relation: LpRelation::Ge,
                    rhs: Rational::from_integer(3),
                },
            ],
        );
        assert_eq!(solve(&p), Err(LpError::Infeasible));
    }

    #[test]
    fn unbounded_objective_is_reported() {
        // min -x with only x ≥ 0: unbounded below.
        let p = minimize(&[-1], vec![]);
        assert_eq!(solve(&p), Err(LpError::Unbounded));
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // -x ≤ -2 ⇔ x ≥ 2; min x → 2.
        let p = minimize(&[1], vec![le(&[-1], -2)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.objective, Rational::from_integer(2));
    }

    #[test]
    fn redundant_equalities_are_dropped() {
        // The duplicated row leaves a zero-value artificial that cannot
        // be driven out; the solver must drop it, not loop or fail.
        let p = minimize(&[1, 1], vec![eq(&[1, 1], 2), eq(&[1, 1], 2)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.objective, Rational::from_integer(2));
    }

    #[test]
    fn rational_coefficients_stay_exact() {
        // min P s.t. P ≥ 7/3, P ≥ 5/2 → exactly 5/2, no rounding.
        let ge = |rhs: Rational| LpConstraint {
            coeffs: vec![Rational::ONE],
            relation: LpRelation::Ge,
            rhs,
        };
        let p = LpProblem {
            num_vars: 1,
            objective: vec![Rational::ONE],
            constraints: vec![ge(r(7, 3)), ge(r(5, 2))],
        };
        let s = solve(&p).unwrap();
        assert_eq!(s.objective, r(5, 2));
    }

    #[test]
    fn pivot_count_is_deterministic() {
        let p = minimize(
            &[-3, -5],
            vec![le(&[1, 0], 4), le(&[0, 2], 12), le(&[3, 2], 18)],
        );
        let a = solve(&p).unwrap();
        let b = solve(&p).unwrap();
        assert_eq!(a.pivots, b.pivots);
        assert_eq!(a.values, b.values);
        assert!(a.pivots > 0);
    }
}
