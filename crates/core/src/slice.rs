//! TDMA time-slice allocation (Section 9.3).
//!
//! Two binary searches:
//!
//! 1. A *global* search over a common fraction of each used tile's
//!    remaining wheel, between one time unit and the entire remaining
//!    wheel. It stops as soon as the guaranteed throughput lies within 10%
//!    above the constraint and fails if even the full remaining wheels are
//!    insufficient.
//! 2. A *per-tile refinement* that shrinks individual slices below the
//!    equal-fraction solution, using `⌊l_p(t)·ω_t / max_t' l_p(t')⌋` as a
//!    lower bound — imperfectly balanced load means lightly loaded tiles
//!    need less wheel time.
//!
//! Successive probes of either search differ in one tile's slice (the
//! global search moves all slices in lock-step, the refinement moves
//! exactly one), so every probe routed through the [`ThroughputCache`]
//! warm-starts from the shared exploration memo of the
//! [`warm`](crate::warm) module: only transitions that read the changed
//! slice are re-executed. The parallel refinement's forked caches share
//! one warm pool, so concurrent tasks warm each other too.

use sdfrs_appmodel::ApplicationGraph;
#[cfg(test)]
use sdfrs_platform::TileId;
use sdfrs_platform::{ArchitectureGraph, PlatformState};
use sdfrs_sdf::analysis::selftimed::ThroughputResult;
use sdfrs_sdf::Rational;

use crate::binding::Binding;
use crate::binding_aware::BindingAwareGraph;
use crate::constrained::TileSchedules;
use crate::cost::tile_loads;
use crate::error::MapError;
use crate::events::{FlowEvent, FlowObserver, NullSink, SliceScope};
use crate::thru_cache::ThroughputCache;

/// Configuration of the slice-allocation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceConfig {
    /// Early-stop tolerance of the global search: stop once
    /// `λ ≤ thr ≤ (1 + tolerance)·λ`. The paper uses 10%.
    pub tolerance: Rational,
    /// Maximum refinement passes over the tiles (each pass may shrink
    /// several slices; passes repeat until a fixpoint or this cap).
    pub max_refine_passes: usize,
    /// State budget per throughput evaluation.
    pub state_budget: usize,
    /// Skip the per-tile refinement (for the ablation benches).
    pub refine: bool,
    /// Run the per-tile refinement searches of each pass concurrently.
    /// The proposals are reassembled in tile order before being applied,
    /// so the resulting allocation is identical to the sequential path.
    pub parallel: bool,
}

impl Default for SliceConfig {
    fn default() -> Self {
        SliceConfig {
            tolerance: Rational::new(1, 10),
            max_refine_passes: 3,
            state_budget: crate::constrained::DEFAULT_STATE_BUDGET,
            refine: true,
            parallel: false,
        }
    }
}

/// Result of the slice allocation.
#[derive(Debug, Clone)]
pub struct SliceAllocation {
    /// Allocated slice per tile index (0 for tiles without actors).
    pub slices: Vec<u64>,
    /// Guaranteed throughput under the final allocation.
    pub achieved: ThroughputResult,
    /// Throughput evaluations performed (the count reported in Sec 10).
    pub throughput_checks: usize,
}

/// Evaluates the guaranteed throughput under `slices`, at the output actor.
///
/// Counted as a throughput check even when the cache answers: the paper's
/// metric is how often the search *consults* the analysis. The second
/// return value reports whether the cache answered.
fn evaluate(
    ba: &mut BindingAwareGraph,
    schedules: &TileSchedules,
    app: &ApplicationGraph,
    slices: &[u64],
    budget: usize,
    checks: &mut usize,
    cache: &mut ThroughputCache,
) -> Result<(ThroughputResult, bool), MapError> {
    *checks += 1;
    ba.set_slices(slices);
    let reference = ba.ba_actor(app.output_actor());
    let hits_before = cache.hits();
    let thr = cache
        .throughput(ba, schedules, reference, budget)
        .map_err(MapError::from)?;
    Ok((thr, cache.hits() > hits_before))
}

/// Allocates TDMA slices meeting the application's throughput constraint
/// (Sec 9.3).
///
/// `binding` must be the binding the binding-aware graph was built from;
/// `state` provides the remaining wheel per tile.
///
/// # Errors
///
/// * [`MapError::ConstraintUnsatisfiable`] if even the full remaining
///   wheels cannot reach λ;
/// * analysis errors propagate as [`MapError::Sdf`].
pub fn allocate_slices(
    ba: &mut BindingAwareGraph,
    schedules: &TileSchedules,
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    binding: &Binding,
    config: &SliceConfig,
) -> Result<SliceAllocation, MapError> {
    let mut cache = ThroughputCache::new();
    allocate_slices_cached(ba, schedules, app, arch, state, binding, config, &mut cache)
}

/// [`allocate_slices`] with a caller-provided evaluation cache.
///
/// The binary searches re-probe configurations the cache remembers (the
/// equal-fraction `slice_for` map collapses many `k` values to the same
/// slice vector on small wheels, and every refinement pass re-validates
/// its neighbours), and callers that allocate the same application
/// repeatedly against an unchanged platform — admission protocols, DSE
/// sweeps — reuse whole searches across calls.
#[allow(clippy::too_many_arguments)]
pub fn allocate_slices_cached(
    ba: &mut BindingAwareGraph,
    schedules: &TileSchedules,
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    binding: &Binding,
    config: &SliceConfig,
    cache: &mut ThroughputCache,
) -> Result<SliceAllocation, MapError> {
    let mut sink = NullSink;
    let mut obs = FlowObserver::new(&mut sink);
    allocate_slices_observed(
        ba, schedules, app, arch, state, binding, config, cache, &mut obs,
    )
}

/// A probe recorded inside a (possibly parallel) refinement task, replayed
/// through the observer in tile order after the tasks join so the event
/// stream stays deterministic.
type RefineProbe = (u64, Vec<u64>, Rational, bool, bool);

/// [`allocate_slices_cached`] reporting every throughput evaluation of
/// both binary searches as a
/// [`SliceProbe`](FlowEvent::SliceProbe) — the tested slice vector, the
/// measured throughput, feasibility, and whether the cache answered.
///
/// Probes from parallel refinement tasks are buffered per task and
/// emitted in tile order once the pass joins, so the event stream is
/// identical between the sequential and parallel paths.
///
/// # Errors
///
/// See [`allocate_slices`].
#[allow(clippy::too_many_arguments)]
pub fn allocate_slices_observed(
    ba: &mut BindingAwareGraph,
    schedules: &TileSchedules,
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    binding: &Binding,
    config: &SliceConfig,
    cache: &mut ThroughputCache,
    obs: &mut FlowObserver<'_>,
) -> Result<SliceAllocation, MapError> {
    let lambda = app.throughput_constraint();
    let ceiling = lambda * (Rational::ONE + config.tolerance);
    let used = binding.used_tiles();
    let mut checks = 0usize;

    let remaining: Vec<u64> = arch
        .tile_ids()
        .map(|t| state.available_wheel(arch, t))
        .collect();
    let slice_for = |k: u64, big_k: u64| -> Vec<u64> {
        // Equal fractions of each tile's remaining wheel, at least 1 unit.
        arch.tile_ids()
            .map(|t| {
                if used.contains(&t) {
                    (remaining[t.index()] * k / big_k).max(1)
                } else {
                    0
                }
            })
            .collect()
    };

    // --- Global binary search over the common fraction k / K.
    let big_k = used
        .iter()
        .map(|t| remaining[t.index()])
        .max()
        .ok_or(MapError::ConstraintUnsatisfiable)?;
    if big_k == 0 {
        return Err(MapError::ConstraintUnsatisfiable);
    }
    let full = slice_for(big_k, big_k);
    let (thr_full, full_hit) = evaluate(
        ba,
        schedules,
        app,
        &full,
        config.state_budget,
        &mut checks,
        cache,
    )?;
    obs.counters.global_slice_iterations += 1;
    obs.metrics().record(|m| m.global_slice_iterations.inc());
    let full_feasible = thr_full.iteration_throughput >= lambda;
    obs.emit(|| FlowEvent::SliceProbe {
        scope: SliceScope::Global {
            k: big_k,
            of: big_k,
        },
        slices: full.clone(),
        throughput: thr_full.iteration_throughput,
        feasible: full_feasible,
        cache_hit: full_hit,
    });
    if !full_feasible {
        return Err(MapError::ConstraintUnsatisfiable);
    }

    let mut lo = 1u64;
    let mut hi = big_k;
    let mut best = full.clone();
    let mut best_thr = thr_full;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let candidate = slice_for(mid, big_k);
        if candidate == best && hi == mid {
            break;
        }
        let (thr, hit) = evaluate(
            ba,
            schedules,
            app,
            &candidate,
            config.state_budget,
            &mut checks,
            cache,
        )?;
        obs.counters.global_slice_iterations += 1;
        obs.metrics().record(|m| m.global_slice_iterations.inc());
        obs.emit(|| FlowEvent::SliceProbe {
            scope: SliceScope::Global { k: mid, of: big_k },
            slices: candidate.clone(),
            throughput: thr.iteration_throughput,
            feasible: thr.iteration_throughput >= lambda,
            cache_hit: hit,
        });
        if thr.iteration_throughput >= lambda {
            let within_tolerance = thr.iteration_throughput <= ceiling;
            hi = mid;
            best = candidate;
            best_thr = thr;
            if within_tolerance {
                break;
            }
        } else {
            lo = mid + 1;
        }
    }
    let mut slices = best;

    // --- Per-tile refinement.
    //
    // Each pass computes one *speculative* shrink proposal per tile: the
    // smallest feasible slice for that tile with every other tile frozen
    // at the pass-start allocation. The proposals are independent, so
    // `config.parallel` fans them out across threads; they are collected
    // in tile order either way. Proposals are then applied sequentially
    // (tile order), each commit re-validated against the *cumulative*
    // candidate — shrinking two tiles at once can violate λ even when
    // each shrink alone is feasible.
    if config.refine && used.len() > 1 {
        let loads: Vec<f64> = used
            .iter()
            .map(|&t| tile_loads(app, arch, state, binding, t).map(|l| l.processing))
            .collect::<Result<_, _>>()?;
        let max_load = loads
            .iter()
            .copied()
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        for pass in 0..config.max_refine_passes {
            let pass_start = slices.clone();
            let tile_indices: Vec<usize> = (0..used.len()).collect();
            let snapshot: &BindingAwareGraph = ba;
            let seed = cache.fork();
            let record = obs.enabled();
            let proposals = sdfrs_fastutil::par::maybe_par_map(
                config.parallel,
                &tile_indices,
                |&i| -> Result<(u64, usize, ThroughputCache, Vec<RefineProbe>), MapError> {
                    let t = used[i];
                    let upper = pass_start[t.index()];
                    let lower = (((loads[i] / max_load) * upper as f64).floor() as u64).max(1);
                    let mut local_cache = seed.clone();
                    let mut probes = Vec::new();
                    if lower >= upper {
                        return Ok((upper, 0, local_cache, probes));
                    }
                    let mut local_ba = snapshot.clone();
                    let mut local_checks = 0usize;
                    let mut lo = lower;
                    let mut hi = upper;
                    while lo < hi {
                        let mid = lo + (hi - lo) / 2;
                        let mut candidate = pass_start.clone();
                        candidate[t.index()] = mid;
                        let (thr, hit) = evaluate(
                            &mut local_ba,
                            schedules,
                            app,
                            &candidate,
                            config.state_budget,
                            &mut local_checks,
                            &mut local_cache,
                        )?;
                        let feasible = thr.iteration_throughput >= lambda;
                        if record {
                            probes.push((mid, candidate, thr.iteration_throughput, feasible, hit));
                        }
                        if feasible {
                            hi = mid;
                        } else {
                            lo = mid + 1;
                        }
                    }
                    Ok((hi, local_checks, local_cache, probes))
                },
            );
            let mut changed = false;
            for (i, proposal) in proposals.into_iter().enumerate() {
                let (proposed, local_checks, local_cache, probes) = proposal?;
                checks += local_checks;
                obs.counters.refine_slice_iterations += local_checks;
                // Recorded in the (sequential) join so counter totals and
                // bucket counts never depend on thread interleaving.
                obs.metrics().record(|m| {
                    m.refine_slice_iterations.add(local_checks as u64);
                    m.refine_search_iters.observe(local_checks as u64);
                });
                cache.absorb(local_cache);
                let t = used[i];
                for (tried, probe_slices, thr, feasible, hit) in probes {
                    obs.emit(|| FlowEvent::SliceProbe {
                        scope: SliceScope::Refine {
                            pass,
                            tile: t.index(),
                            slice: tried,
                        },
                        slices: probe_slices,
                        throughput: thr,
                        feasible,
                        cache_hit: hit,
                    });
                }
                if proposed >= slices[t.index()] {
                    continue;
                }
                let mut candidate = slices.clone();
                candidate[t.index()] = proposed;
                let (thr, hit) = evaluate(
                    ba,
                    schedules,
                    app,
                    &candidate,
                    config.state_budget,
                    &mut checks,
                    cache,
                )?;
                obs.counters.refine_slice_iterations += 1;
                obs.metrics().record(|m| m.refine_slice_iterations.inc());
                let feasible = thr.iteration_throughput >= lambda;
                obs.emit(|| FlowEvent::SliceProbe {
                    scope: SliceScope::Commit {
                        pass,
                        tile: t.index(),
                        slice: proposed,
                    },
                    slices: candidate.clone(),
                    throughput: thr.iteration_throughput,
                    feasible,
                    cache_hit: hit,
                });
                if feasible {
                    slices = candidate;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Re-evaluate at the final allocation so `achieved` matches it.
        let (final_thr, final_hit) = evaluate(
            ba,
            schedules,
            app,
            &slices,
            config.state_budget,
            &mut checks,
            cache,
        )?;
        obs.counters.refine_slice_iterations += 1;
        obs.metrics().record(|m| m.refine_slice_iterations.inc());
        best_thr = final_thr;
        obs.emit(|| FlowEvent::SliceProbe {
            scope: SliceScope::Final,
            slices: slices.clone(),
            throughput: best_thr.iteration_throughput,
            feasible: best_thr.iteration_throughput >= lambda,
            cache_hit: final_hit,
        });
        if best_thr.iteration_throughput < lambda {
            // Defensive: refinement never commits an infeasible slice, but
            // re-check because `best_thr` may come from a larger slice.
            return Err(MapError::ConstraintUnsatisfiable);
        }
    } else {
        ba.set_slices(&slices);
    }

    Ok(SliceAllocation {
        slices,
        achieved: best_thr,
        throughput_checks: checks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding_aware::BindingAwareGraph;
    use crate::list_sched::construct_schedules;
    use sdfrs_appmodel::apps::{example_platform, paper_example};

    fn setup(
        lambda: Rational,
    ) -> (
        ApplicationGraph,
        ArchitectureGraph,
        Binding,
        BindingAwareGraph,
        TileSchedules,
        PlatformState,
    ) {
        let app = paper_example().with_throughput_constraint(lambda);
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let g = app.graph();
        let mut binding = Binding::new(g.actor_count());
        binding.bind(g.actor_by_name("a1").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a2").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a3").unwrap(), TileId::from_index(1));
        let ba = BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]).unwrap();
        let schedules = construct_schedules(&ba).unwrap();
        (app, arch, binding, ba, schedules, state)
    }

    #[test]
    fn paper_constraint_is_satisfiable() {
        // λ = 1/30: exactly the Fig 5(c) rate, reachable with 50% slices.
        let (app, arch, binding, mut ba, schedules, state) = setup(Rational::new(1, 30));
        let alloc = allocate_slices(
            &mut ba,
            &schedules,
            &app,
            &arch,
            &state,
            &binding,
            &SliceConfig::default(),
        )
        .unwrap();
        assert!(alloc.achieved.iteration_throughput >= Rational::new(1, 30));
        assert!(alloc.throughput_checks >= 1);
        for &t in &binding.used_tiles() {
            assert!(alloc.slices[t.index()] >= 1);
            assert!(alloc.slices[t.index()] <= 10);
        }
    }

    #[test]
    fn impossible_constraint_fails() {
        // λ = 1/2 is beyond even the unconstrained graph (period 29 with
        // full wheels: still ≥ 24 due to the connection actor).
        let (app, arch, binding, mut ba, schedules, state) = setup(Rational::new(1, 2));
        let err = allocate_slices(
            &mut ba,
            &schedules,
            &app,
            &arch,
            &state,
            &binding,
            &SliceConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, MapError::ConstraintUnsatisfiable);
    }

    #[test]
    fn looser_constraint_gets_smaller_slices() {
        let total = |lambda| {
            let (app, arch, binding, mut ba, schedules, state) = setup(lambda);
            let alloc = allocate_slices(
                &mut ba,
                &schedules,
                &app,
                &arch,
                &state,
                &binding,
                &SliceConfig::default(),
            )
            .unwrap();
            alloc.slices.iter().sum::<u64>()
        };
        let tight = total(Rational::new(1, 30));
        let loose = total(Rational::new(1, 200));
        assert!(
            loose <= tight,
            "looser λ must not need more wheel ({loose} vs {tight})"
        );
    }

    #[test]
    fn refinement_never_violates_constraint() {
        for num_den in [(1i128, 35i128), (1, 50), (1, 80), (1, 120)] {
            let lambda = Rational::new(num_den.0, num_den.1);
            let (app, arch, binding, mut ba, schedules, state) = setup(lambda);
            let alloc = allocate_slices(
                &mut ba,
                &schedules,
                &app,
                &arch,
                &state,
                &binding,
                &SliceConfig::default(),
            )
            .unwrap();
            assert!(
                alloc.achieved.iteration_throughput >= lambda,
                "λ = {lambda} violated"
            );
        }
    }

    #[test]
    fn refinement_disabled_allocates_equal_fractions() {
        let (app, arch, binding, mut ba, schedules, state) = setup(Rational::new(1, 60));
        let cfg = SliceConfig {
            refine: false,
            ..SliceConfig::default()
        };
        let alloc =
            allocate_slices(&mut ba, &schedules, &app, &arch, &state, &binding, &cfg).unwrap();
        // Equal wheels ⇒ equal slices without refinement.
        assert_eq!(alloc.slices[0], alloc.slices[1]);
    }

    #[test]
    fn parallel_refinement_matches_sequential() {
        for num_den in [(1i128, 30i128), (1, 50), (1, 80), (1, 120)] {
            let lambda = Rational::new(num_den.0, num_den.1);
            let (app, arch, binding, mut ba, schedules, state) = setup(lambda);
            let seq = allocate_slices(
                &mut ba,
                &schedules,
                &app,
                &arch,
                &state,
                &binding,
                &SliceConfig::default(),
            )
            .unwrap();
            let cfg = SliceConfig {
                parallel: true,
                ..SliceConfig::default()
            };
            let (app2, arch2, binding2, mut ba2, schedules2, state2) = setup(lambda);
            let par = allocate_slices(
                &mut ba2,
                &schedules2,
                &app2,
                &arch2,
                &state2,
                &binding2,
                &cfg,
            )
            .unwrap();
            assert_eq!(seq.slices, par.slices, "λ = {lambda}");
            assert_eq!(seq.achieved, par.achieved, "λ = {lambda}");
            assert_eq!(seq.throughput_checks, par.throughput_checks, "λ = {lambda}");
        }
    }

    #[test]
    fn shared_cache_replays_identical_searches() {
        use crate::thru_cache::ThroughputCache;
        let (app, arch, binding, mut ba, schedules, state) = setup(Rational::new(1, 30));
        let mut cache = ThroughputCache::new();
        let first = allocate_slices_cached(
            &mut ba,
            &schedules,
            &app,
            &arch,
            &state,
            &binding,
            &SliceConfig::default(),
            &mut cache,
        )
        .unwrap();
        let misses_after_first = cache.misses();
        assert!(misses_after_first > 0);
        let second = allocate_slices_cached(
            &mut ba,
            &schedules,
            &app,
            &arch,
            &state,
            &binding,
            &SliceConfig::default(),
            &mut cache,
        )
        .unwrap();
        assert_eq!(first.slices, second.slices);
        assert_eq!(first.achieved, second.achieved);
        assert_eq!(
            cache.misses(),
            misses_after_first,
            "the repeated search must be answered entirely from the cache"
        );
        assert!(cache.hits() >= second.throughput_checks);
    }

    #[test]
    fn occupied_wheel_limits_allocation() {
        use sdfrs_platform::TileUsage;
        let (app, arch, binding, mut ba, schedules, mut state) = setup(Rational::new(1, 30));
        // Occupy 80% of both wheels: only 2 units remain each; λ = 1/30
        // needs more.
        for t in arch.tile_ids() {
            state.claim(
                t,
                TileUsage {
                    wheel: 8,
                    ..TileUsage::default()
                },
            );
        }
        let err = allocate_slices(
            &mut ba,
            &schedules,
            &app,
            &arch,
            &state,
            &binding,
            &SliceConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, MapError::ConstraintUnsatisfiable);
    }
}
