//! The cost functions steering the binding step (Section 9.1).
//!
//! * [`actor_criticality`] — Eqn 1: an SDFG-level estimate of how much an
//!   actor's execution time can limit throughput, computed over the simple
//!   cycles through the actor (avoiding the HSDF conversion a real
//!   critical-cycle analysis would need);
//! * [`TileLoads`] / [`tile_cost`] — Eqn 2: the weighted combination of a
//!   tile's processing, memory and communication load used to rank
//!   candidate tiles.

use sdfrs_appmodel::ApplicationGraph;
use sdfrs_platform::{ArchitectureGraph, PlatformState, TileId};
use sdfrs_sdf::analysis::cycles::simple_cycles;
use sdfrs_sdf::{ActorId, Rational};

use crate::binding::Binding;
use crate::error::MapError;
use crate::resources::{tile_capacity, tile_demand};

/// Weights *(c1, c2, c3)* of the tile cost function (Eqn 2).
///
/// The five settings evaluated in the paper's Table 4 are provided as
/// constants, plus the (2, 0, 1) setting of the Sec 10.3 multimedia
/// experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Weight *c1* of the processing load.
    pub processing: f64,
    /// Weight *c2* of the memory load.
    pub memory: f64,
    /// Weight *c3* of the communication load.
    pub communication: f64,
}

impl CostWeights {
    /// Cost function 1 of Table 4: (1, 0, 0).
    pub const PROCESSING: CostWeights = CostWeights::new(1.0, 0.0, 0.0);
    /// Cost function 2 of Table 4: (0, 1, 0).
    pub const MEMORY: CostWeights = CostWeights::new(0.0, 1.0, 0.0);
    /// Cost function 3 of Table 4: (0, 0, 1).
    pub const COMMUNICATION: CostWeights = CostWeights::new(0.0, 0.0, 1.0);
    /// Cost function 4 of Table 4: (1, 1, 1).
    pub const BALANCED: CostWeights = CostWeights::new(1.0, 1.0, 1.0);
    /// Cost function 5 of Table 4: (0, 1, 2) — minimize connections while
    /// balancing memory.
    pub const TUNED: CostWeights = CostWeights::new(0.0, 1.0, 2.0);
    /// The (2, 0, 1) setting of the Sec 10.3 multimedia experiment.
    pub const MULTIMEDIA: CostWeights = CostWeights::new(2.0, 0.0, 1.0);

    /// Creates a weight triple *(c1, c2, c3)*.
    pub const fn new(processing: f64, memory: f64, communication: f64) -> Self {
        CostWeights {
            processing,
            memory,
            communication,
        }
    }

    /// The five Table 4 settings in row order.
    pub fn table4() -> [CostWeights; 5] {
        [
            CostWeights::PROCESSING,
            CostWeights::MEMORY,
            CostWeights::COMMUNICATION,
            CostWeights::BALANCED,
            CostWeights::TUNED,
        ]
    }
}

impl std::fmt::Display for CostWeights {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({}, {}, {})",
            self.processing, self.memory, self.communication
        )
    }
}

/// Eqn 1: per-actor criticality estimate.
///
/// For every actor, the maximum over the simple cycles through it of
/// `Σ_b γ(b)·sup τ_b / Σ_d Tok(d)/q_d`. Actors on no cycle get cost 0.
/// Cycle enumeration is capped at `max_cycles`; beyond the cap the
/// estimate simply covers fewer cycles (application graphs are small, so
/// the default cap of [`DEFAULT_CYCLE_CAP`] is effectively exhaustive).
///
/// # Errors
///
/// [`MapError::Sdf`] if the graph has no repetition vector (validated
/// applications always do; the error path exists so sweeps over
/// machine-generated inputs observe failures instead of aborting).
///
/// # Examples
///
/// ```
/// use sdfrs_appmodel::apps::paper_example;
/// use sdfrs_core::cost::{actor_criticality, DEFAULT_CYCLE_CAP};
/// let app = paper_example();
/// let crit = actor_criticality(&app, DEFAULT_CYCLE_CAP).unwrap();
/// // Only a1 lies on a cycle (its self-edge d3): γ(a1)·sup τ = 2·4 = 8
/// // over Tok/q = 1.
/// assert_eq!(crit[0], sdfrs_sdf::Rational::from_integer(8));
/// assert_eq!(crit[1], sdfrs_sdf::Rational::ZERO);
/// ```
pub fn actor_criticality(
    app: &ApplicationGraph,
    max_cycles: usize,
) -> Result<Vec<Rational>, MapError> {
    let g = app.graph();
    let gamma = g.repetition_vector()?;
    let (cycles, _) = simple_cycles(g, max_cycles);
    let mut cost = vec![Rational::ZERO; g.actor_count()];
    for cycle in &cycles {
        let mut num = Rational::ZERO;
        let mut den = Rational::ZERO;
        let mut members = Vec::with_capacity(cycle.len());
        for &ch in &cycle.channels {
            let c = g.channel(ch);
            let b = c.src();
            members.push(b);
            num = num
                + Rational::from_integer(gamma[b] as i128)
                    * Rational::from_integer(app.max_execution_time(b) as i128);
            den = den + Rational::new(c.initial_tokens() as i128, c.consumption_rate() as i128);
        }
        // Live graphs have tokens on every cycle; a token-free cycle would
        // deadlock and is treated as infinitely critical.
        let ratio = if den.is_zero() {
            Rational::from_integer(i64::MAX as i128)
        } else {
            num / den
        };
        for b in members {
            cost[b.index()] = cost[b.index()].max(ratio);
        }
    }
    Ok(cost)
}

/// Default cycle-enumeration cap for [`actor_criticality`].
pub const DEFAULT_CYCLE_CAP: usize = 10_000;

/// Actors sorted for the binding step: decreasing criticality, ties in
/// actor order (Sec 9.1: "actors whose execution time has a large impact
/// on the throughput ... are considered first").
///
/// # Errors
///
/// See [`actor_criticality`].
pub fn binding_order(app: &ApplicationGraph, max_cycles: usize) -> Result<Vec<ActorId>, MapError> {
    let crit = actor_criticality(app, max_cycles)?;
    let mut order: Vec<ActorId> = app.graph().actor_ids().collect();
    order.sort_by(|a, b| crit[b.index()].cmp(&crit[a.index()]).then(a.cmp(b)));
    Ok(order)
}

/// The three load terms of Eqn 2 for one tile.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TileLoads {
    /// `l_p(t)`: the tile's share of the application's total processing.
    pub processing: f64,
    /// `l_m(t)`: fraction of the tile's memory in use.
    pub memory: f64,
    /// `l_c(t)`: average of the bandwidth and connection fractions in use.
    pub communication: f64,
}

/// Divides `used / capacity` with the conventions needed by partially
/// occupied platforms: an unused zero-capacity resource costs nothing, an
/// overdrawn one costs infinity.
fn fraction(used: f64, capacity: f64) -> f64 {
    if used == 0.0 {
        0.0
    } else if capacity == 0.0 {
        f64::INFINITY
    } else {
        used / capacity
    }
}

/// Computes the loads `l_p`, `l_m`, `l_c` of one tile under a (partial)
/// binding, normalized against the *remaining* capacities of the tile.
///
/// # Errors
///
/// * [`MapError::Sdf`] if the graph has no repetition vector;
/// * [`MapError::UnsupportedBinding`] if `binding` placed an actor on a
///   tile whose processor type it does not support (only possible with
///   hand-built bindings).
pub fn tile_loads(
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    binding: &Binding,
    tile: TileId,
) -> Result<TileLoads, MapError> {
    let g = app.graph();
    let gamma = g.repetition_vector()?;
    let pt = arch.tile(tile).processor_type();

    // l_p: γ-weighted execution time on this tile over the total
    // γ-weighted worst-case execution time of the whole application.
    let mut work_here = 0u128;
    for a in binding.actors_on(tile) {
        let tau = app
            .execution_time(a, pt)
            .ok_or(MapError::UnsupportedBinding { actor: a, tile })?;
        work_here += gamma[a] as u128 * tau as u128;
    }
    let total_work: u128 = g
        .actor_ids()
        .map(|a| gamma[a] as u128 * app.max_execution_time(a) as u128)
        .sum();
    let processing = fraction(work_here as f64, total_work as f64);

    // l_m and l_c from the Section 7 demand, against remaining capacity.
    let cap = tile_capacity(arch, state, tile);
    let demand = tile_demand(app, arch, binding, tile);
    let memory = fraction(demand.memory as f64, cap.memory as f64);
    let communication = (fraction(demand.bandwidth_out as f64, cap.bandwidth_out as f64)
        + fraction(demand.bandwidth_in as f64, cap.bandwidth_in as f64)
        + fraction(demand.connections as f64, cap.connections as f64))
        / 3.0;

    Ok(TileLoads {
        processing,
        memory,
        communication,
    })
}

/// Eqn 2: `cost(t) = c1·l_p(t) + c2·l_m(t) + c3·l_c(t)`.
pub fn tile_cost(weights: CostWeights, loads: TileLoads) -> f64 {
    weights.processing * loads.processing
        + weights.memory * loads.memory
        + weights.communication * loads.communication
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfrs_appmodel::apps::{example_platform, paper_example};

    #[test]
    fn criticality_of_paper_example() {
        let app = paper_example();
        let crit = actor_criticality(&app, DEFAULT_CYCLE_CAP).unwrap();
        // a1: self-cycle d3 with 1 token, q = 1: (γ(a1)=2)·(sup τ = 4) / 1.
        assert_eq!(crit[0], Rational::from_integer(8));
        assert_eq!(crit[1], Rational::ZERO);
        assert_eq!(crit[2], Rational::ZERO);
        let order = binding_order(&app, DEFAULT_CYCLE_CAP).unwrap();
        assert_eq!(
            order,
            vec![
                ActorId::from_index(0),
                ActorId::from_index(1),
                ActorId::from_index(2)
            ]
        );
    }

    #[test]
    fn criticality_multi_actor_cycle() {
        use sdfrs_appmodel::{ActorRequirements, ApplicationGraph, ChannelRequirements};
        use sdfrs_platform::ProcessorType;
        use sdfrs_sdf::SdfGraph;
        let mut g = SdfGraph::new("ring");
        let a = g.add_actor("a", 0);
        let b = g.add_actor("b", 0);
        g.add_channel("ab", a, 1, b, 1, 0);
        g.add_channel("ba", b, 1, a, 1, 2);
        let app = ApplicationGraph::builder(g, Rational::new(1, 100))
            .actor(
                a,
                ActorRequirements::new().on(ProcessorType::new("p"), 3, 1),
            )
            .actor(
                b,
                ActorRequirements::new().on(ProcessorType::new("p"), 5, 1),
            )
            .channel_default(ChannelRequirements::new(1, 1, 1, 1, 1))
            .build()
            .unwrap();
        let crit = actor_criticality(&app, DEFAULT_CYCLE_CAP).unwrap();
        // Cycle a→b→a: (3 + 5) / (0/1 + 2/1) = 4 for both actors.
        assert_eq!(crit[0], Rational::from_integer(4));
        assert_eq!(crit[1], Rational::from_integer(4));
    }

    #[test]
    fn loads_of_example_binding() {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let mut b = Binding::new(3);
        let t1 = TileId::from_index(0);
        let t2 = TileId::from_index(1);
        b.bind(ActorId::from_index(0), t1);
        b.bind(ActorId::from_index(1), t1);
        b.bind(ActorId::from_index(2), t2);
        let l1 = tile_loads(&app, &arch, &state, &b, t1).unwrap();
        // Work on t1: 2·1 + 2·1 = 4 of total 2·4 + 2·7 + 1·3 = 25.
        assert!((l1.processing - 4.0 / 25.0).abs() < 1e-12);
        // Memory demand 225 of 700.
        assert!((l1.memory - 225.0 / 700.0).abs() < 1e-12);
        // Communication: out 10/100, in 0, connections 1/5.
        assert!((l1.communication - (0.1 + 0.0 + 0.2) / 3.0).abs() < 1e-12);
        let l2 = tile_loads(&app, &arch, &state, &b, t2).unwrap();
        assert!((l2.processing - 2.0 / 25.0).abs() < 1e-12);
        assert!((l2.memory - 210.0 / 500.0).abs() < 1e-12);
    }

    #[test]
    fn cost_combines_weights() {
        let loads = TileLoads {
            processing: 0.5,
            memory: 0.25,
            communication: 0.1,
        };
        assert!((tile_cost(CostWeights::PROCESSING, loads) - 0.5).abs() < 1e-12);
        assert!((tile_cost(CostWeights::MEMORY, loads) - 0.25).abs() < 1e-12);
        assert!((tile_cost(CostWeights::COMMUNICATION, loads) - 0.1).abs() < 1e-12);
        assert!((tile_cost(CostWeights::BALANCED, loads) - 0.85).abs() < 1e-12);
        assert!((tile_cost(CostWeights::TUNED, loads) - 0.45).abs() < 1e-12);
        assert!((tile_cost(CostWeights::new(2.0, 0.0, 1.0), loads) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_conventions() {
        assert_eq!(fraction(0.0, 0.0), 0.0);
        assert_eq!(fraction(1.0, 0.0), f64::INFINITY);
        assert_eq!(fraction(1.0, 4.0), 0.25);
    }

    #[test]
    fn table4_weights_in_row_order() {
        let rows = CostWeights::table4();
        assert_eq!(rows[0], CostWeights::PROCESSING);
        assert_eq!(rows[4], CostWeights::TUNED);
        assert_eq!(rows[4].to_string(), "(0, 1, 2)");
    }
}
