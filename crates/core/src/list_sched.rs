//! Static-order schedule construction (Section 9.2).
//!
//! A list scheduler executes the binding-aware SDFG (with 50% of each
//! tile's available wheel assumed allocated). Tile-bound actors do not
//! fire the moment they become enabled; they join their tile's FIFO ready
//! list, and whenever a tile is idle the head of its list starts and is
//! appended to the tile's schedule. The execution runs until a recurrent
//! state, yielding a finite `prefix (period)*` schedule per tile, which is
//! then minimized.

use std::collections::hash_map::Entry;
use std::collections::VecDeque;

use sdfrs_fastutil::FxHashMap;

use sdfrs_platform::TileId;
use sdfrs_sdf::rational::lcm;
use sdfrs_sdf::{ActorId, SdfError};

use crate::binding_aware::BindingAwareGraph;
use crate::constrained::TileSchedules;
use crate::events::{FlowEvent, FlowObserver, NullSink};
use crate::schedule::StaticOrderSchedule;
use crate::tdma::TdmaSlice;

/// Default state budget for the schedule-construction execution.
pub const DEFAULT_STATE_BUDGET: usize = 4_000_000;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ListState {
    tokens: Vec<u64>,
    active: Vec<Vec<u64>>,
    ready: Vec<Vec<u32>>,
    phase: u64,
}

/// List scheduler over a binding-aware SDFG.
#[derive(Debug)]
pub struct ListScheduler<'a> {
    ba: &'a BindingAwareGraph,
    tdma: Vec<Option<TdmaSlice>>,
    hyperperiod: u64,
    tokens: Vec<u64>,
    active: Vec<Vec<u64>>,
    /// FIFO ready list per tile (actor indices).
    ready: Vec<VecDeque<u32>>,
    /// Queued-but-not-started entries per actor (to detect new enablings).
    queued: Vec<u32>,
    /// One active tile-bound firing at most; `true` while the tile is busy.
    busy: Vec<bool>,
    /// Recorded firing sequence per tile.
    sequences: Vec<Vec<ActorId>>,
    time: u64,
    state_budget: usize,
}

impl<'a> ListScheduler<'a> {
    /// Creates a list scheduler at the initial state. The binding-aware
    /// graph should carry the 50%-of-available-wheel slice assumption
    /// (Sec 9.2); the scheduler reads its TDMA configuration from there.
    pub fn new(ba: &'a BindingAwareGraph) -> Self {
        let g = ba.graph();
        let tile_count = ba
            .used_tiles()
            .iter()
            .map(|t| t.index() + 1)
            .max()
            .unwrap_or(0);
        let mut tdma = vec![None; tile_count];
        let mut hyper = 1u64;
        for tile in ba.used_tiles() {
            let slice = ba.tdma(tile);
            hyper = lcm(hyper as u128, slice.wheel as u128) as u64;
            tdma[tile.index()] = Some(slice);
        }
        ListScheduler {
            ba,
            tdma,
            hyperperiod: hyper,
            tokens: g
                .channel_ids()
                .map(|c| g.channel(c).initial_tokens())
                .collect(),
            active: vec![Vec::new(); g.actor_count()],
            ready: vec![VecDeque::new(); tile_count],
            queued: vec![0; g.actor_count()],
            busy: vec![false; tile_count],
            sequences: vec![Vec::new(); tile_count],
            time: 0,
            state_budget: DEFAULT_STATE_BUDGET,
        }
    }

    /// Overrides the exploration budget.
    pub fn with_state_budget(mut self, budget: usize) -> Self {
        self.state_budget = budget;
        self
    }

    fn enabled_firings(&self, actor: ActorId) -> u64 {
        let g = self.ba.graph();
        let mut n = u64::MAX;
        for &ch in g.incoming(actor) {
            let q = g.channel(ch).consumption_rate();
            n = n.min(self.tokens[ch.index()] / q);
        }
        if g.incoming(actor).is_empty() {
            // Sources without inputs would fire unboundedly; binding-aware
            // graphs give every bound actor a self-edge so this only
            // happens for degenerate graphs. Treat as one firing at a time.
            n = 1;
        }
        n
    }

    /// Adds newly enabled tile-bound firings to their ready lists.
    fn refresh_ready_lists(&mut self) {
        for actor in self.ba.graph().actor_ids() {
            let Some(tile) = self.ba.tile_of(actor) else {
                continue;
            };
            let target = self.enabled_firings(actor);
            while u64::from(self.queued[actor.index()]) < target {
                self.queued[actor.index()] += 1;
                self.ready[tile.index()].push_back(actor.index() as u32);
            }
        }
    }

    fn start_firing(&mut self, actor: ActorId) {
        let g = self.ba.graph();
        for &ch in g.incoming(actor) {
            self.tokens[ch.index()] -= g.channel(ch).consumption_rate();
        }
        let work = g.actor(actor).execution_time();
        let lane = &mut self.active[actor.index()];
        let pos = lane.partition_point(|&t| t <= work);
        lane.insert(pos, work);
    }

    /// Completes zero-remaining firings; returns how many completed.
    fn complete_finished(&mut self) -> usize {
        let g = self.ba.graph();
        let mut completed = 0;
        for idx in 0..self.active.len() {
            while self.active[idx].first() == Some(&0) {
                self.active[idx].remove(0);
                let actor = ActorId::from_index(idx);
                for &ch in g.outgoing(actor) {
                    self.tokens[ch.index()] += g.channel(ch).production_rate();
                }
                if let Some(tile) = self.ba.tile_of(actor) {
                    self.busy[tile.index()] = false;
                }
                completed += 1;
            }
        }
        completed
    }

    /// Starts unbound (connection/sync) actors self-timed and pops ready
    /// lists of idle tiles. Returns how many firings started.
    fn start_allowed(&mut self) -> usize {
        let g = self.ba.graph();
        let mut started = 0;
        loop {
            let mut progress = false;
            // Unbound actors fire as soon as enabled.
            for actor in g.actor_ids() {
                if self.ba.tile_of(actor).is_some() {
                    continue;
                }
                while self.enabled_firings(actor) > 0 {
                    self.start_firing(actor);
                    started += 1;
                    progress = true;
                    if g.actor(actor).execution_time() == 0 {
                        self.complete_finished();
                    } else if g.has_self_edge(actor) {
                        break;
                    }
                }
            }
            self.refresh_ready_lists();
            // Idle tiles pop their ready-list head.
            for tile_idx in 0..self.ready.len() {
                while !self.busy[tile_idx] {
                    let Some(&head) = self.ready[tile_idx].front() else {
                        break;
                    };
                    let actor = ActorId::from_index(head as usize);
                    self.ready[tile_idx].pop_front();
                    self.queued[head as usize] -= 1;
                    self.start_firing(actor);
                    self.sequences[tile_idx].push(actor);
                    started += 1;
                    progress = true;
                    if g.actor(actor).execution_time() == 0 {
                        self.complete_finished();
                        self.refresh_ready_lists();
                    } else {
                        self.busy[tile_idx] = true;
                    }
                }
            }
            if !progress {
                break;
            }
        }
        started
    }

    fn advance_clock(&mut self) -> Option<u64> {
        let mut delta: Option<u64> = None;
        for idx in 0..self.active.len() {
            if let Some(&work) = self.active[idx].first() {
                let wall = match self.ba.tile_of(ActorId::from_index(idx)) {
                    None => work,
                    Some(tile) => self.tdma[tile.index()]
                        .expect("bound actors live on used tiles")
                        .wall_time_for(self.time, work),
                };
                delta = Some(delta.map_or(wall, |d| d.min(wall)));
            }
        }
        let delta = delta?;
        for idx in 0..self.active.len() {
            if self.active[idx].is_empty() {
                continue;
            }
            let progress = match self.ba.tile_of(ActorId::from_index(idx)) {
                None => delta,
                Some(tile) => self.tdma[tile.index()]
                    .expect("bound actors live on used tiles")
                    .slice_time_in(self.time, delta),
            };
            for w in self.active[idx].iter_mut() {
                *w = w.saturating_sub(progress);
            }
        }
        self.time += delta;
        Some(delta)
    }

    fn snapshot(&self) -> ListState {
        ListState {
            tokens: self.tokens.clone(),
            active: self.active.clone(),
            ready: self
                .ready
                .iter()
                .map(|q| q.iter().copied().collect())
                .collect(),
            phase: self.time % self.hyperperiod,
        }
    }

    /// Runs the construction until a recurrent state and returns the
    /// minimized static-order schedules.
    ///
    /// # Errors
    ///
    /// * [`SdfError::Deadlock`] if the execution stalls;
    /// * [`SdfError::BudgetExceeded`] if no recurrence is found in budget.
    pub fn construct(self) -> Result<TileSchedules, SdfError> {
        Ok(self.construct_raw()?.minimized())
    }

    /// [`construct`](Self::construct) reporting through an observer: the
    /// recurrence detection
    /// ([`ScheduleRecurrence`](FlowEvent::ScheduleRecurrence)) and one
    /// [`ScheduleConstructed`](FlowEvent::ScheduleConstructed) per tile
    /// with the minimized prefix/period lengths.
    ///
    /// # Errors
    ///
    /// See [`construct`](Self::construct).
    pub fn construct_observed(self, obs: &mut FlowObserver<'_>) -> Result<TileSchedules, SdfError> {
        let schedules = self.construct_raw_observed(obs)?.minimized();
        obs.metrics().record(|m| {
            m.schedules_constructed
                .add(schedules.tiles().count() as u64)
        });
        if obs.enabled() {
            for tile in schedules.tiles() {
                let s = schedules.get(tile).expect("tiles() yields set tiles");
                obs.emit(|| FlowEvent::ScheduleConstructed {
                    tile: tile.index(),
                    prefix_len: s.prefix().len(),
                    period_len: s.period().len(),
                });
            }
        }
        Ok(schedules)
    }

    /// Like [`construct`](Self::construct) but returns the raw
    /// list-scheduler output without the Sec 9.2 minimization — for the
    /// paper's 17-state example schedule and the ablation benches.
    ///
    /// # Errors
    ///
    /// See [`construct`](Self::construct).
    pub fn construct_raw(self) -> Result<TileSchedules, SdfError> {
        let mut sink = NullSink;
        let mut obs = FlowObserver::new(&mut sink);
        self.construct_raw_observed(&mut obs)
    }

    /// [`construct_raw`](Self::construct_raw) with an observer.
    ///
    /// # Errors
    ///
    /// See [`construct`](Self::construct).
    pub fn construct_raw_observed(
        mut self,
        obs: &mut FlowObserver<'_>,
    ) -> Result<TileSchedules, SdfError> {
        let mut seen: FxHashMap<ListState, Vec<usize>> = FxHashMap::default();
        let seq_lens = |s: &ListScheduler| s.sequences.iter().map(Vec::len).collect::<Vec<_>>();
        seen.insert(self.snapshot(), seq_lens(&self));
        let mut states = 0usize;
        loop {
            states += 1;
            if states > self.state_budget {
                return Err(SdfError::BudgetExceeded {
                    analysis: "list-scheduler state space",
                    budget: self.state_budget,
                });
            }
            let completed = self.complete_finished();
            let started = self.start_allowed();
            if self.advance_clock().is_none() {
                if completed == 0 && started == 0 {
                    let stuck = self
                        .ba
                        .graph()
                        .actor_ids()
                        .next()
                        .expect("graphs have actors");
                    return Err(SdfError::Deadlock { actor: stuck });
                }
                continue;
            }
            match seen.entry(self.snapshot()) {
                Entry::Occupied(prev) => {
                    obs.counters.schedule_states += states;
                    obs.metrics()
                        .record(|m| m.schedule_states.add(states as u64));
                    obs.emit(|| FlowEvent::ScheduleRecurrence { states });
                    let first_lens = prev.get().clone();
                    let mut schedules = TileSchedules::new(self.sequences.len());
                    for (idx, seq) in self.sequences.iter().enumerate() {
                        if seq.is_empty() {
                            continue;
                        }
                        let prefix = seq[..first_lens[idx]].to_vec();
                        let period = seq[first_lens[idx]..].to_vec();
                        if period.is_empty() {
                            // An actor-less period cannot happen for tiles
                            // hosting actors of a live graph; skip tiles
                            // that only saw transient firings defensively.
                            continue;
                        }
                        schedules.set(
                            TileId::from_index(idx),
                            StaticOrderSchedule::new(prefix, period),
                        );
                    }
                    return Ok(schedules);
                }
                Entry::Vacant(slot) => {
                    slot.insert(seq_lens(&self));
                }
            }
        }
    }
}

/// Convenience wrapper: construct minimized static-order schedules for a
/// binding-aware graph (which should carry the 50% slice assumption).
///
/// # Errors
///
/// See [`ListScheduler::construct`].
pub fn construct_schedules(ba: &BindingAwareGraph) -> Result<TileSchedules, SdfError> {
    ListScheduler::new(ba).construct()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::Binding;
    use crate::constrained::constrained_throughput;
    use sdfrs_appmodel::apps::{example_platform, paper_example};
    use sdfrs_sdf::Rational;

    fn example_ba() -> BindingAwareGraph {
        let app = paper_example();
        let arch = example_platform();
        let g = app.graph();
        let mut binding = Binding::new(g.actor_count());
        binding.bind(g.actor_by_name("a1").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a2").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a3").unwrap(), TileId::from_index(1));
        // 50% of the 10-unit wheels.
        BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]).unwrap()
    }

    /// Sec 9.2: the constructed schedule for t1 minimizes to (a1 a2)* and
    /// for t2 to (a3)*.
    #[test]
    fn paper_example_schedules() {
        let ba = example_ba();
        let schedules = construct_schedules(&ba).unwrap();
        let g = ba.graph();
        let a1 = g.actor_by_name("a1").unwrap();
        let a2 = g.actor_by_name("a2").unwrap();
        let a3 = g.actor_by_name("a3").unwrap();
        let s1 = schedules.get(TileId::from_index(0)).unwrap();
        assert!(s1.prefix().is_empty(), "prefix should fold away: {s1:?}");
        assert_eq!(s1.period(), &[a1, a2]);
        let s2 = schedules.get(TileId::from_index(1)).unwrap();
        assert!(s2.prefix().is_empty());
        assert_eq!(s2.period(), &[a3]);
    }

    /// The constructed schedules are consistent with the token flow: the
    /// constrained execution under them reproduces Fig 5(c).
    #[test]
    fn constructed_schedules_reach_fig5c_throughput() {
        let ba = example_ba();
        let schedules = construct_schedules(&ba).unwrap();
        let a3 = ba.graph().actor_by_name("a3").unwrap();
        let thr = constrained_throughput(&ba, &schedules, a3).unwrap();
        assert_eq!(thr.actor_throughput, Rational::new(1, 30));
    }

    #[test]
    fn budget_is_respected() {
        let ba = example_ba();
        let r = ListScheduler::new(&ba).with_state_budget(1).construct();
        assert!(matches!(r, Err(SdfError::BudgetExceeded { .. })));
    }

    #[test]
    fn single_tile_binding_schedules_everything() {
        let app = paper_example();
        let arch = example_platform();
        let g = app.graph();
        let mut binding = Binding::new(g.actor_count());
        for (a, _) in g.actors() {
            binding.bind(a, TileId::from_index(0));
        }
        let ba = BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]).unwrap();
        let schedules = construct_schedules(&ba).unwrap();
        let s = schedules.get(TileId::from_index(0)).unwrap();
        // One iteration fires a1 and a2 twice and a3 once: period length 5
        // (or a multiple folded to the primitive root).
        let mut counts = std::collections::HashMap::new();
        for a in s.period() {
            *counts.entry(*a).or_insert(0u64) += 1;
        }
        let gamma = ba.graph().repetition_vector().unwrap();
        let a1 = ba.graph().actor_by_name("a1").unwrap();
        let per_iter = counts[&a1] as f64 / gamma[a1] as f64;
        for (a, c) in counts {
            assert_eq!(
                c as f64 / gamma[a] as f64,
                per_iter,
                "γ-proportional firings"
            );
        }
        assert!(schedules.get(TileId::from_index(1)).is_none());
    }
}
