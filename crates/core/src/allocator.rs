//! The allocation front-end: one builder-style handle owning the flow
//! configuration, the throughput-evaluation cache, and the event sink.
//!
//! [`Allocator`] replaced the old free-function pair
//! `flow::allocate` / `flow::allocate_with_cache` (now removed). Owning
//! all three pieces in one place means:
//!
//! * repeated runs — admission protocols, DSE sweeps, multi-application
//!   sequences — share the [`ThroughputCache`] without threading it
//!   through every call site;
//! * every phase of every run reports through the same
//!   [`EventSink`], with timestamps monotonic
//!   across runs (one epoch per allocator);
//! * configuration is validated once, up front, instead of failing
//!   mid-flow.
//!
//! # Example
//!
//! ```
//! use sdfrs_appmodel::apps::{example_platform, paper_example};
//! use sdfrs_core::Allocator;
//! use sdfrs_platform::PlatformState;
//!
//! # fn main() -> Result<(), sdfrs_core::MapError> {
//! let app = paper_example();
//! let arch = example_platform();
//! let state = PlatformState::new(&arch);
//! let mut allocator = Allocator::new();
//! let (allocation, stats) = allocator.allocate(&app, &arch, &state)?;
//! assert!(allocation.guaranteed_throughput() >= app.throughput_constraint());
//! assert!(stats.throughput_checks > 0);
//! # Ok(())
//! # }
//! ```

use std::time::Instant;

use sdfrs_appmodel::ApplicationGraph;
use sdfrs_platform::{ArchitectureGraph, PlatformState};

use crate::admission::{AdmissionPolicy, AdmissionResult};
use crate::cost::CostWeights;
use crate::dse::DseResult;
use crate::error::MapError;
use crate::events::{EventSink, FlowEvent, FlowObserver, NullSink, RecordingSink, TapSink};
use crate::flow::{Allocation, FlowConfig, FlowStats};
use crate::metrics::{Metrics, MetricsRegistry};
use crate::multi_app::MultiAppResult;
use crate::thru_cache::ThroughputCache;

/// The redesigned entry point of the Section 9 strategy: a handle owning
/// the [`FlowConfig`], a persistent [`ThroughputCache`], and a pluggable
/// [`EventSink`].
///
/// Built with a fluent API; see the [module docs](self) for an example.
/// The default sink is the zero-overhead [`NullSink`].
pub struct Allocator {
    config: FlowConfig,
    cache: ThroughputCache,
    sink: Box<dyn EventSink>,
    /// Per-request event tap: when installed, every event is *also*
    /// captured here (even with a `NullSink` primary) so the service
    /// can attach the trail to a request trace. `None` — the default —
    /// costs one branch per emission site.
    tap: Option<RecordingSink>,
    metrics: Metrics,
    epoch: Instant,
}

impl Default for Allocator {
    fn default() -> Self {
        Allocator::new()
    }
}

impl std::fmt::Debug for Allocator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Allocator")
            .field("config", &self.config)
            .field("sink_enabled", &self.sink.enabled())
            .finish_non_exhaustive()
    }
}

impl Allocator {
    /// An allocator with the default configuration, an empty cache, and
    /// the [`NullSink`].
    pub fn new() -> Self {
        Allocator::from_config(FlowConfig::default())
    }

    /// An allocator with the given configuration. A `warm_start: false`
    /// configuration builds the cache without a warm-start pool, so every
    /// exploration runs fully from scratch.
    pub fn from_config(config: FlowConfig) -> Self {
        let mut cache = ThroughputCache::new();
        if !config.warm_start {
            cache = cache.without_warm_start();
        }
        Allocator {
            config,
            cache,
            sink: Box::new(NullSink),
            tap: None,
            metrics: Metrics::null(),
            epoch: Instant::now(),
        }
    }

    /// Replaces the flow configuration. Switching `warm_start` off drops
    /// the current cache's warm pool; switching it back on only takes
    /// effect with a freshly constructed cache
    /// ([`from_config`](Self::from_config) or
    /// [`with_cache`](Self::with_cache)).
    #[must_use]
    pub fn with_config(mut self, config: FlowConfig) -> Self {
        self.config = config;
        if !config.warm_start && self.cache.warm_start_enabled() {
            let cache = std::mem::take(&mut self.cache);
            self.cache = cache.without_warm_start();
        }
        self
    }

    /// Uses the given Eqn 2 weights (keeping the remaining defaults).
    #[must_use]
    pub fn with_weights(mut self, weights: CostWeights) -> Self {
        self.config = FlowConfig::with_weights(weights);
        self
    }

    /// Seeds the allocator with an existing evaluation cache (e.g. one
    /// carried over from a previous allocator via [`into_cache`]).
    ///
    /// [`into_cache`]: Self::into_cache
    #[must_use]
    pub fn with_cache(mut self, cache: ThroughputCache) -> Self {
        self.cache = cache;
        self.cache.set_metrics(self.metrics.clone());
        self
    }

    /// Disables throughput-evaluation memoization: every check runs an
    /// exploration and counts as a cache miss. Used by the conformance
    /// harness to compare cached against cache-free runs. Warm-starting
    /// still follows `config.warm_start` — combine with a
    /// `warm_start: false` configuration for a fully cold baseline.
    #[must_use]
    pub fn with_cache_disabled(mut self) -> Self {
        let mut cache = ThroughputCache::disabled();
        if !self.config.warm_start {
            cache = cache.without_warm_start();
        }
        self.cache = cache;
        self.cache.set_metrics(self.metrics.clone());
        self
    }

    /// Forces the parallel (`true`) or sequential (`false`) slice
    /// refinement path, overriding `config.slice.parallel`. Both paths
    /// must produce identical allocations; the conformance harness
    /// checks exactly that.
    #[must_use]
    pub fn with_parallelism(mut self, parallel: bool) -> Self {
        self.config.slice.parallel = parallel;
        self
    }

    /// Attaches a metrics handle: counters, histograms and phase spans
    /// are recorded into its registry on every subsequent run. Accepts
    /// [`Metrics`], an `Arc<`[`MetricsRegistry`]`>`, a bare
    /// [`MetricsRegistry`], or
    /// [`NullMetrics`](crate::metrics::NullMetrics) to switch recording
    /// off again.
    ///
    /// Do not also route this allocator's events into a
    /// [`MetricsSink`](crate::events::MetricsSink) over the *same*
    /// registry — everything would be counted twice.
    #[must_use]
    pub fn with_metrics(mut self, metrics: impl Into<Metrics>) -> Self {
        self.metrics = metrics.into();
        self.cache.set_metrics(self.metrics.clone());
        self
    }

    /// Routes all flow events to `sink`.
    #[must_use]
    pub fn with_sink(self, sink: impl EventSink + 'static) -> Self {
        self.with_boxed_sink(Box::new(sink))
    }

    /// Routes all flow events to an already-boxed sink (what the CLI
    /// builds from `--trace` / `--verbose`).
    #[must_use]
    pub fn with_boxed_sink(mut self, sink: Box<dyn EventSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Installs (or removes) a per-request event tap. While a tap is
    /// installed every event is recorded into it *in addition to* the
    /// configured sink; the tracing layer installs one around each
    /// traced request and drains it into the trace afterwards. The tap
    /// is observational only — it never changes allocation results —
    /// and with no tap installed the cost is one branch per site
    /// (pinned by the `observer_overhead` bench).
    pub fn set_event_tap(&mut self, tap: Option<RecordingSink>) {
        self.tap = tap;
    }

    /// The flow configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// Mutable access to the flow configuration (for sweeps that adjust
    /// one knob between runs).
    pub fn config_mut(&mut self) -> &mut FlowConfig {
        &mut self.config
    }

    /// The evaluation cache.
    pub fn cache(&self) -> &ThroughputCache {
        &self.cache
    }

    /// Mutable cache access, for absorbing the forks of speculative
    /// parallel runs back into the shared cache.
    pub(crate) fn cache_mut(&mut self) -> &mut ThroughputCache {
        &mut self.cache
    }

    /// The attached metrics handle (null unless
    /// [`with_metrics`](Self::with_metrics) was called).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Consumes the allocator, returning its cache (to seed another
    /// allocator).
    pub fn into_cache(self) -> ThroughputCache {
        self.cache
    }

    /// Flushes the event sink (buffered trace files).
    pub fn flush(&mut self) {
        self.sink.flush();
    }

    /// Runs the three-step strategy (Sec 9) for one application on a
    /// (partially occupied) platform, emitting events for every phase and
    /// updating the shared cache.
    ///
    /// # Errors
    ///
    /// * [`MapError::InvalidConfig`] if the configuration is rejected by
    ///   [`FlowConfig::validate`];
    /// * [`MapError::NoFeasibleTile`] from binding;
    /// * [`MapError::Sdf`] from an analysis;
    /// * [`MapError::ConstraintUnsatisfiable`] from the slice allocation.
    pub fn allocate(
        &mut self,
        app: &ApplicationGraph,
        arch: &ArchitectureGraph,
        state: &PlatformState,
    ) -> Result<(Allocation, FlowStats), MapError> {
        let Allocator {
            config,
            cache,
            sink,
            tap,
            metrics,
            epoch,
        } = self;
        match tap {
            Some(tap) => {
                let mut tee = TapSink {
                    primary: sink.as_mut(),
                    tap: tap.clone(),
                };
                let mut obs =
                    FlowObserver::with_epoch(&mut tee, *epoch).with_metrics(metrics.clone());
                crate::flow::allocate_inner(app, arch, state, config, cache, &mut obs)
            }
            None => {
                let mut obs =
                    FlowObserver::with_epoch(sink.as_mut(), *epoch).with_metrics(metrics.clone());
                crate::flow::allocate_inner(app, arch, state, config, cache, &mut obs)
            }
        }
    }

    /// Allocates `apps` in order onto one platform until the first
    /// failure (Sec 10.1's conservative protocol), sharing this
    /// allocator's cache and sink across the sequence.
    pub fn allocate_sequence(
        &mut self,
        apps: &[ApplicationGraph],
        arch: &ArchitectureGraph,
    ) -> MultiAppResult {
        crate::multi_app::allocate_until_failure_with(self, apps, arch)
    }

    /// Batch admission under the chosen [`AdmissionPolicy`]: a
    /// static-order first fit that *skips* applications that fail (the
    /// run-time mechanism of Sec 10.1), the dynamic best fit that each
    /// round speculatively allocates every remaining application and
    /// admits the one claiming the least wheel time, or a solver-backed
    /// policy (exact / portfolio) that additionally certifies a bound
    /// pair per admission (see
    /// [`AdmissionResult::reports`](crate::admission::AdmissionResult)).
    #[allow(deprecated)]
    pub fn admit_with(
        &mut self,
        apps: &[ApplicationGraph],
        arch: &ArchitectureGraph,
        policy: AdmissionPolicy,
    ) -> AdmissionResult {
        match policy {
            AdmissionPolicy::FirstFit(order) => {
                crate::admission::allocate_skipping_failures_with(self, apps, arch, order)
            }
            AdmissionPolicy::BestFit => crate::admission::allocate_best_fit_with(self, apps, arch),
            AdmissionPolicy::Exact(_) | AdmissionPolicy::Portfolio(_) => {
                let backend = policy.solver_backend();
                crate::admission::allocate_solver_with(self, apps, arch, backend.as_ref())
            }
        }
    }

    /// Solves one application through an arbitrary
    /// [`SolverBackend`](crate::solver::SolverBackend), sharing this
    /// allocator's cache, sink and metrics — the single-application
    /// analogue of [`admit_with`](Allocator::admit_with).
    ///
    /// # Errors
    ///
    /// As [`SolverBackend::solve`](crate::solver::SolverBackend::solve).
    pub fn solve_with(
        &mut self,
        backend: &dyn crate::solver::SolverBackend,
        app: &ApplicationGraph,
        arch: &ArchitectureGraph,
        state: &PlatformState,
    ) -> Result<crate::solver::SolveOutcome, MapError> {
        backend.solve(self, app, arch, state)
    }

    /// Sweeps the given Eqn 2 weight settings under both connection
    /// models, emitting one
    /// [`DsePointEvaluated`](crate::events::FlowEvent::DsePointEvaluated)
    /// per configuration. Each point runs with a fresh cache (different
    /// weights produce different bindings, so points share nothing), like
    /// [`dse::explore`](crate::dse::explore).
    pub fn explore(
        &mut self,
        app: &ApplicationGraph,
        arch: &ArchitectureGraph,
        state: &PlatformState,
        weights: &[CostWeights],
    ) -> DseResult {
        crate::dse::explore_with(self, app, arch, state, weights)
    }

    /// Emits one event through this allocator's sink (used by the
    /// admission and multi-application protocols for their own events).
    pub(crate) fn emit(&mut self, make: impl FnOnce() -> FlowEvent) {
        if self.sink.enabled() || self.tap.is_some() {
            let at = self.epoch.elapsed();
            let event = make();
            if self.sink.enabled() {
                self.sink.record(at, &event);
            }
            if let Some(tap) = &mut self.tap {
                tap.record(at, &event);
            }
        }
    }

    /// Records into the metrics registry, if one is attached (used by
    /// the admission, multi-application and DSE protocols).
    pub(crate) fn metric(&self, f: impl FnOnce(&MetricsRegistry)) {
        self.metrics.record(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::RecordingSink;
    use sdfrs_appmodel::apps::{example_platform, paper_example};
    use sdfrs_sdf::Rational;

    #[test]
    fn allocator_reproduces_the_paper_example() {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let (alloc, stats) = Allocator::new().allocate(&app, &arch, &state).unwrap();
        assert!(alloc.guaranteed_throughput() >= Rational::new(1, 30));
        assert!(stats.throughput_checks >= 2);
    }

    #[test]
    fn cache_persists_across_runs() {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let mut allocator = Allocator::new();
        let (_, first) = allocator.allocate(&app, &arch, &state).unwrap();
        let (_, second) = allocator.allocate(&app, &arch, &state).unwrap();
        assert!(first.cache_misses > 0, "cold cache must run explorations");
        assert_eq!(
            second.cache_misses, 0,
            "the repeated run must be answered entirely from the cache"
        );
        assert_eq!(second.cache_hits, second.throughput_checks);
    }

    #[test]
    fn timestamps_are_monotonic_across_runs() {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let sink = RecordingSink::new();
        let mut allocator = Allocator::new().with_sink(sink.clone());
        allocator.allocate(&app, &arch, &state).unwrap();
        allocator.allocate(&app, &arch, &state).unwrap();
        let events = sink.events();
        assert!(!events.is_empty());
        for pair in events.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "timestamps must never go back");
        }
        // Two runs ⇒ two flow_started / flow_finished pairs.
        let starts = events
            .iter()
            .filter(|(_, e)| e.kind() == "flow_started")
            .count();
        assert_eq!(starts, 2);
    }

    #[test]
    fn invalid_config_is_rejected_up_front() {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let cfg = FlowConfig {
            schedule_state_budget: 0,
            ..FlowConfig::default()
        };
        let err = Allocator::from_config(cfg)
            .allocate(&app, &arch, &state)
            .unwrap_err();
        assert!(matches!(err, MapError::InvalidConfig { .. }));
    }

    #[test]
    fn into_cache_seeds_another_allocator() {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let mut first = Allocator::new();
        first.allocate(&app, &arch, &state).unwrap();
        let mut second = Allocator::new().with_cache(first.into_cache());
        let (_, stats) = second.allocate(&app, &arch, &state).unwrap();
        assert_eq!(stats.cache_misses, 0);
    }
}
