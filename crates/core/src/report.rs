//! Human-readable allocation reports — the summary the CLI prints,
//! available as a library API so tools and tests share one format.

use std::fmt::Write as _;

use sdfrs_appmodel::ApplicationGraph;
use sdfrs_platform::ArchitectureGraph;

use crate::flow::{Allocation, FlowStats};

/// Renders a complete allocation summary: binding, schedules, slices,
/// guarantee, statistics.
///
/// # Examples
///
/// ```
/// use sdfrs_appmodel::apps::{example_platform, paper_example};
/// use sdfrs_core::report::render_allocation;
/// use sdfrs_core::Allocator;
/// use sdfrs_platform::PlatformState;
///
/// # fn main() -> Result<(), sdfrs_core::MapError> {
/// let app = paper_example();
/// let arch = example_platform();
/// let state = PlatformState::new(&arch);
/// let (alloc, stats) = Allocator::new().allocate(&app, &arch, &state)?;
/// let report = render_allocation(&app, &arch, &alloc, Some(&stats));
/// assert!(report.contains("guaranteed throughput"));
/// # Ok(())
/// # }
/// ```
pub fn render_allocation(
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    allocation: &Allocation,
    stats: Option<&FlowStats>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "allocation for {} on {}",
        app.graph().name(),
        arch.name()
    );
    let _ = writeln!(out, "  binding:");
    for (a, actor) in app.graph().actors() {
        match allocation.binding.tile_of(a) {
            Some(tile) => {
                let _ = writeln!(
                    out,
                    "    {:<12} -> {} ({})",
                    actor.name(),
                    arch.tile(tile).name(),
                    arch.tile(tile).processor_type()
                );
            }
            None => {
                let _ = writeln!(out, "    {:<12} -> (unbound)", actor.name());
            }
        }
    }
    let _ = writeln!(out, "  schedules and slices:");
    for tile in allocation.binding.used_tiles() {
        let schedule = allocation
            .schedules
            .get(tile)
            .map(|s| s.display(app.graph()).to_string())
            .unwrap_or_else(|| "(missing)".to_string());
        let _ = writeln!(
            out,
            "    {:<6} {}  ω = {}/{}",
            arch.tile(tile).name(),
            schedule,
            allocation.slices.get(tile.index()).copied().unwrap_or(0),
            arch.tile(tile).wheel_size()
        );
    }
    let thr = allocation.guaranteed_throughput();
    let _ = writeln!(
        out,
        "  guaranteed throughput: {} iterations/time-unit (period {}), constraint λ = {}",
        thr,
        thr.recip(),
        app.throughput_constraint()
    );
    let _ = writeln!(out, "  resource usage per tile:");
    for tile in allocation.binding.used_tiles() {
        let u = allocation.usage[tile.index()];
        let t = arch.tile(tile);
        let _ = writeln!(
            out,
            "    {:<6} wheel {}/{}  memory {}/{}  connections {}/{}  bw in {}/{} out {}/{}",
            t.name(),
            u.wheel,
            t.wheel_size(),
            u.memory,
            t.memory(),
            u.connections,
            t.max_connections(),
            u.bandwidth_in,
            t.bandwidth_in(),
            u.bandwidth_out,
            t.bandwidth_out()
        );
    }
    if let Some(s) = stats {
        let _ = writeln!(
            out,
            "  flow: {} throughput checks; bind {:?}, schedule {:?}, slices {:?}",
            s.throughput_checks, s.binding_time, s.scheduling_time, s.slice_time
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::Allocator;
    use sdfrs_appmodel::apps::{example_platform, paper_example};
    use sdfrs_platform::PlatformState;

    #[test]
    fn report_contains_every_section() {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let (alloc, stats) = Allocator::new().allocate(&app, &arch, &state).unwrap();
        let report = render_allocation(&app, &arch, &alloc, Some(&stats));
        for needle in [
            "allocation for paper_example",
            "binding:",
            "a1",
            "a2",
            "a3",
            "schedules and slices:",
            "(a1 a2)*",
            "guaranteed throughput: 1/30",
            "resource usage per tile:",
            "throughput checks",
        ] {
            assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
        }
    }

    #[test]
    fn unbound_actors_are_visible() {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let (mut alloc, _) = Allocator::new().allocate(&app, &arch, &state).unwrap();
        alloc
            .binding
            .unbind(app.graph().actor_by_name("a2").unwrap());
        let report = render_allocation(&app, &arch, &alloc, None);
        assert!(report.contains("(unbound)"));
        assert!(!report.contains("throughput checks"), "no stats requested");
    }
}
