//! The HSDF-based baseline the paper argues against (Sec 1, Sec 8.2).
//!
//! Pre-existing resource-allocation strategies evaluate throughput by
//! (1) modeling TDMA interference à la reference \[4\] — every bound
//! actor's execution time is inflated by the unreserved part of the
//! wheel, `τ' = τ + (w − ω)·⌈τ/ω⌉` — and (2) converting the binding-aware
//! SDFG to
//! its HSDF equivalent and running a maximum-cycle-ratio analysis.
//!
//! Both steps cost accuracy and time: the inflation is strictly more
//! conservative than the paper's wheel-position tracking, and the HSDF
//! conversion blows the graph up (H.263: 4 → 4754 actors, "21 minutes per
//! throughput check" on the paper's hardware). This module implements the
//! baseline faithfully so the comparison is executable:
//! [`baseline_throughput`] for one check and [`allocate_baseline`] for a
//! whole slice-allocation step driven by it.

use sdfrs_appmodel::ApplicationGraph;
use sdfrs_platform::{ArchitectureGraph, PlatformState};
use sdfrs_sdf::analysis::mcr::{hsdf_max_cycle_mean, CycleRatio};
use sdfrs_sdf::hsdf::convert_to_hsdf;
use sdfrs_sdf::{Rational, SdfGraph};

use crate::binding::Binding;
use crate::binding_aware::BindingAwareGraph;
use crate::error::MapError;
use crate::slice::SliceAllocation;

/// Inflates every tile-bound actor's execution time by the unreserved
/// part of the wheel (the \[4\] model): each firing is charged one
/// `w − ω` wait per slice window it needs,
/// `τ' = τ + (w − ω) · ⌈τ / ω⌉` (Sec 8.2: "increasing the execution time
/// of every actor firing with the fraction of the TDMA time wheel which
/// is not reserved" — +5 for the example's a3).
///
/// Connection and sync actors keep their times (they do not compete for
/// processor wheels).
pub fn inflate_execution_times(ba: &BindingAwareGraph) -> SdfGraph {
    let mut g = ba.graph().clone();
    for (a, actor) in ba.graph().actors() {
        if let Some(tile) = ba.tile_of(a) {
            let tdma = ba.tdma(tile);
            let tau = actor.execution_time();
            let windows = tau.div_ceil(tdma.slice).max(1);
            let inflated = tau + (tdma.wheel - tdma.slice) * windows;
            g.set_execution_time(a, inflated);
        }
    }
    g
}

/// One baseline throughput check: inflate, convert to HSDF, run MCM.
///
/// Returns the guaranteed iteration throughput under the baseline model
/// (always ≤ the paper's constrained-state-space result) together with
/// the HSDF size that the conversion had to build.
///
/// # Errors
///
/// Conversion/MCM failures propagate; a deadlocked graph reports
/// [`MapError::ConstraintUnsatisfiable`]-compatible zero throughput via
/// `Ok(Rational::ZERO)` only for token-free cycles.
pub fn baseline_throughput(ba: &BindingAwareGraph) -> Result<(Rational, usize), MapError> {
    let inflated = inflate_execution_times(ba);
    let h = convert_to_hsdf(&inflated).map_err(MapError::Sdf)?;
    let thr = match hsdf_max_cycle_mean(&h.graph).map_err(MapError::Sdf)? {
        CycleRatio::Ratio(r) if !r.is_zero() => r.recip(),
        CycleRatio::Ratio(_) | CycleRatio::Acyclic => {
            // No cycle limits throughput: unbounded in the MCM model; the
            // binding-aware construction always adds self-edges, so this
            // only happens for degenerate graphs.
            Rational::from_integer(i64::MAX as i128)
        }
        CycleRatio::Deadlock => Rational::ZERO,
    };
    Ok((thr, h.graph.actor_count()))
}

/// Statistics of a baseline slice allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BaselineStats {
    /// Throughput checks performed (each one = HSDF conversion + MCM).
    pub throughput_checks: usize,
    /// Actors of the largest HSDF graph built along the way.
    pub peak_hsdf_actors: usize,
}

/// Slice allocation driven by the baseline analysis: the same global
/// binary search as Sec 9.3, but every check converts to HSDF and runs
/// MCM on inflated execution times.
///
/// # Errors
///
/// [`MapError::ConstraintUnsatisfiable`] if even the full remaining
/// wheels miss λ *under the baseline model* — which can happen even when
/// the paper's analysis succeeds, demonstrating the accuracy gap.
pub fn allocate_baseline(
    ba: &mut BindingAwareGraph,
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    binding: &Binding,
) -> Result<(SliceAllocation, BaselineStats), MapError> {
    let lambda = app.throughput_constraint();
    let ceiling = lambda * Rational::new(11, 10);
    let used = binding.used_tiles();
    let mut stats = BaselineStats::default();

    let remaining: Vec<u64> = arch
        .tile_ids()
        .map(|t| state.available_wheel(arch, t))
        .collect();
    let slice_for = |k: u64, big_k: u64| -> Vec<u64> {
        arch.tile_ids()
            .map(|t| {
                if used.contains(&t) {
                    (remaining[t.index()] * k / big_k).max(1)
                } else {
                    0
                }
            })
            .collect()
    };
    let big_k = used
        .iter()
        .map(|t| remaining[t.index()])
        .max()
        .ok_or(MapError::ConstraintUnsatisfiable)?;
    if big_k == 0 {
        return Err(MapError::ConstraintUnsatisfiable);
    }

    let evaluate = |ba: &mut BindingAwareGraph,
                    slices: &[u64],
                    stats: &mut BaselineStats|
     -> Result<Rational, MapError> {
        stats.throughput_checks += 1;
        ba.set_slices(slices);
        let (thr, hsdf_actors) = baseline_throughput(ba)?;
        stats.peak_hsdf_actors = stats.peak_hsdf_actors.max(hsdf_actors);
        Ok(thr)
    };

    let full = slice_for(big_k, big_k);
    let thr_full = evaluate(ba, &full, &mut stats)?;
    if thr_full < lambda {
        return Err(MapError::ConstraintUnsatisfiable);
    }
    let mut lo = 1u64;
    let mut hi = big_k;
    let mut best = full;
    let mut best_thr = thr_full;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let candidate = slice_for(mid, big_k);
        let thr = evaluate(ba, &candidate, &mut stats)?;
        if thr >= lambda {
            let within = thr <= ceiling;
            hi = mid;
            best = candidate;
            best_thr = thr;
            if within {
                break;
            }
        } else {
            lo = mid + 1;
        }
    }
    ba.set_slices(&best);
    // Package as a SliceAllocation; the achieved ThroughputResult comes
    // from re-running the *exact* analysis once so callers can compare.
    let schedules = crate::list_sched::construct_schedules(ba).map_err(MapError::Sdf)?;
    let reference = ba.ba_actor(app.output_actor());
    let achieved = crate::constrained::ConstrainedExecutor::new(ba, &schedules)
        .throughput(reference)
        .map_err(MapError::Sdf)?;
    let _ = best_thr;
    Ok((
        SliceAllocation {
            slices: best,
            achieved,
            throughput_checks: stats.throughput_checks,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constrained::constrained_throughput;
    use crate::list_sched::construct_schedules;
    use sdfrs_appmodel::apps::{example_platform, paper_example};
    use sdfrs_platform::TileId;

    fn example_ba(
        slices: [u64; 2],
    ) -> (
        ApplicationGraph,
        ArchitectureGraph,
        Binding,
        BindingAwareGraph,
    ) {
        let app = paper_example();
        let arch = example_platform();
        let g = app.graph();
        let mut binding = Binding::new(g.actor_count());
        binding.bind(g.actor_by_name("a1").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a2").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a3").unwrap(), TileId::from_index(1));
        let ba = BindingAwareGraph::build(&app, &arch, &binding, &slices).unwrap();
        (app, arch, binding, ba)
    }

    #[test]
    fn inflation_matches_sec82_example() {
        // Sec 8.2: with 50% slices the [4] model "increases the execution
        // time of actor a3 with 5 time units": τ(a3) = 2, w − ω = 5 ⇒ 7.
        let (_, _, _, ba) = example_ba([5, 5]);
        let inflated = inflate_execution_times(&ba);
        let a3 = inflated.actor_by_name("a3").unwrap();
        assert_eq!(inflated.actor(a3).execution_time(), 7);
        // Connection/sync actors untouched.
        let c = inflated.actor_by_name("c_d2").unwrap();
        assert_eq!(inflated.actor(c).execution_time(), 11);
    }

    #[test]
    fn baseline_is_more_conservative() {
        for slices in [[5u64, 5], [7, 7], [10, 10], [3, 9]] {
            let (_, _, _, ba) = example_ba(slices);
            let (base_thr, hsdf_actors) = baseline_throughput(&ba).unwrap();
            let schedules = construct_schedules(&ba).unwrap();
            let a3 = ba.graph().actor_by_name("a3").unwrap();
            let exact = constrained_throughput(&ba, &schedules, a3)
                .unwrap()
                .iteration_throughput;
            assert!(
                base_thr <= exact,
                "baseline {base_thr} beat the exact analysis {exact} at {slices:?}"
            );
            assert!(hsdf_actors >= ba.graph().actor_count());
        }
    }

    #[test]
    fn baseline_allocation_needs_no_smaller_slices() {
        // The conservative model can only demand more wheel time.
        let (app, arch, binding, mut ba) = example_ba([5, 5]);
        let state = PlatformState::new(&arch);
        let (base_alloc, stats) =
            allocate_baseline(&mut ba, &app, &arch, &state, &binding).unwrap();
        assert!(stats.throughput_checks >= 1);
        assert!(base_alloc.achieved.iteration_throughput >= app.throughput_constraint());

        let mut ba2 = BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]).unwrap();
        let schedules = construct_schedules(&ba2).unwrap();
        let exact_alloc = crate::slice::allocate_slices(
            &mut ba2,
            &schedules,
            &app,
            &arch,
            &state,
            &binding,
            &crate::slice::SliceConfig::default(),
        )
        .unwrap();
        let base_total: u64 = base_alloc.slices.iter().sum();
        let exact_total: u64 = exact_alloc.slices.iter().sum();
        assert!(
            base_total >= exact_total,
            "baseline allocated {base_total} < exact {exact_total}"
        );
    }

    #[test]
    fn infeasible_under_baseline_reported() {
        let (app, arch, binding, mut ba) = example_ba([5, 5]);
        let app = app.with_throughput_constraint(Rational::new(1, 20));
        let state = PlatformState::new(&arch);
        // λ = 1/20 is at the edge: the exact analysis reaches 1/24 at
        // best, the inflated baseline even less — both infeasible, but the
        // baseline must fail cleanly.
        let err = allocate_baseline(&mut ba, &app, &arch, &state, &binding).unwrap_err();
        assert_eq!(err, MapError::ConstraintUnsatisfiable);
    }
}
