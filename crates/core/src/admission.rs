//! The improvement mechanisms Sec 10.1 names but leaves as future work:
//!
//! * "a design-time preprocessing step that orders the applications to
//!   optimize the order in which they are handled" — [`order_applications`];
//! * "a (run-time) mechanism that rejects an application and continues
//!   with the next one" — [`allocate_skipping_failures`];
//! * "a platform dimensioning step" — [`dimension_platform`], which grows
//!   a mesh until a given application set fits.

use sdfrs_appmodel::ApplicationGraph;
use sdfrs_platform::mesh::{mesh_platform, MeshConfig};
use sdfrs_platform::{ArchitectureGraph, PlatformState};
use sdfrs_sdf::Rational;

use crate::allocator::Allocator;
use crate::error::MapError;
use crate::events::FlowEvent;
use crate::exact::ExactConfig;
use crate::flow::{Allocation, FlowConfig, FlowStats};
use crate::ids::AppId;
use crate::solver::{Exact, Greedy, Portfolio, SolveReport, SolverBackend};

/// Strategies for ordering applications before allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionOrder {
    /// Keep the arrival order (the paper's baseline protocol).
    Arrival,
    /// Most demanding first: largest γ-weighted worst-case work first, so
    /// heavy applications grab resources while the platform is empty.
    HeaviestFirst,
    /// Least demanding first: maximizes the *count* of admitted
    /// applications (classic bin-packing intuition).
    LightestFirst,
    /// Tightest throughput constraint first: the applications with the
    /// least scheduling slack choose their tiles first.
    TightestConstraintFirst,
}

/// How [`Allocator::admit_with`](crate::Allocator::admit_with) decides
/// which applications to admit.
///
/// This enum is now a thin *constructor facade* over the open
/// [`SolverBackend`] trait: build values with the constructors
/// ([`greedy`](AdmissionPolicy::greedy), [`best_fit`](AdmissionPolicy::best_fit),
/// [`exact`](AdmissionPolicy::exact), [`portfolio`](AdmissionPolicy::portfolio),
/// …), parse them from CLI strings with [`FromStr`](std::str::FromStr),
/// and dispatch through
/// [`solver_backend`](AdmissionPolicy::solver_backend) /
/// [`Allocator::admit_with`] rather than matching on the variants —
/// direct variant access is deprecated and will become private once the
/// migration window closes (see CHANGELOG.md).
///
/// Marked `#[non_exhaustive]`: further protocols (e.g. utilization-aware
/// or energy-aware fits) will grow more variants.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Allocate in a static order ([`AdmissionOrder`]), skipping
    /// applications that fail — the run-time mechanism of Sec 10.1.
    #[deprecated(
        since = "0.10.0",
        note = "construct with AdmissionPolicy::greedy() / first_fit(order) and dispatch through solver_backend()"
    )]
    FirstFit(AdmissionOrder),
    /// Dynamic best-fit: each round speculatively allocates every
    /// remaining application and admits the one claiming the least total
    /// wheel time.
    #[deprecated(
        since = "0.10.0",
        note = "construct with AdmissionPolicy::best_fit() and dispatch through solver_backend()"
    )]
    BestFit,
    /// Per-application branch-and-bound ([`crate::exact`]): admissions are
    /// proved optimal (or bounded within a certified gap) instead of
    /// merely heuristic.
    #[deprecated(
        since = "0.10.0",
        note = "construct with AdmissionPolicy::exact() / exact_with(config) and dispatch through solver_backend()"
    )]
    Exact(ExactConfig),
    /// Greedy-first with an exact-search-tightened bound pair per
    /// admission ([`crate::solver::Portfolio`]).
    #[deprecated(
        since = "0.10.0",
        note = "construct with AdmissionPolicy::portfolio() / portfolio_with(config) and dispatch through solver_backend()"
    )]
    Portfolio(ExactConfig),
}

#[allow(deprecated)]
impl AdmissionPolicy {
    /// The paper's heuristic in arrival order — the default policy.
    pub fn greedy() -> Self {
        AdmissionPolicy::FirstFit(AdmissionOrder::Arrival)
    }

    /// Static-order first fit with an explicit [`AdmissionOrder`].
    pub fn first_fit(order: AdmissionOrder) -> Self {
        AdmissionPolicy::FirstFit(order)
    }

    /// Dynamic best-fit (least claimed wheel time wins each round).
    pub fn best_fit() -> Self {
        AdmissionPolicy::BestFit
    }

    /// Branch-and-bound admission with the default [`ExactConfig`].
    pub fn exact() -> Self {
        AdmissionPolicy::Exact(ExactConfig::default())
    }

    /// Branch-and-bound admission with an explicit search budget.
    pub fn exact_with(config: ExactConfig) -> Self {
        AdmissionPolicy::Exact(config)
    }

    /// Greedy-first, exact-tightened admission with the default
    /// [`ExactConfig`].
    pub fn portfolio() -> Self {
        AdmissionPolicy::Portfolio(ExactConfig::default())
    }

    /// Greedy-first, exact-tightened admission with an explicit budget.
    pub fn portfolio_with(config: ExactConfig) -> Self {
        AdmissionPolicy::Portfolio(config)
    }

    /// The stable lower-case label used by `--policy` flags and JSONL
    /// fields (`"greedy"`, `"best-fit"`, `"exact"`, `"portfolio"`).
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionPolicy::FirstFit(_) => "greedy",
            AdmissionPolicy::BestFit => "best-fit",
            AdmissionPolicy::Exact(_) => "exact",
            AdmissionPolicy::Portfolio(_) => "portfolio",
        }
    }

    /// `true` for the heuristic policies (greedy first fit, best fit) —
    /// the ones eligible for speculative region-parallel admission, whose
    /// transcripts and metrics are bit-compatible with pre-solver
    /// releases.
    pub fn is_heuristic(&self) -> bool {
        matches!(
            self,
            AdmissionPolicy::FirstFit(_) | AdmissionPolicy::BestFit
        )
    }

    /// The [`SolverBackend`] this policy dispatches each admission
    /// through. The heuristic policies resolve to [`Greedy`] (their
    /// batch-level ordering/best-fit behavior lives in
    /// [`Allocator::admit_with`], which special-cases them for
    /// transcript compatibility).
    pub fn solver_backend(&self) -> Box<dyn SolverBackend> {
        match self {
            AdmissionPolicy::FirstFit(_) | AdmissionPolicy::BestFit => Box::new(Greedy),
            AdmissionPolicy::Exact(config) => Box::new(Exact::new(*config)),
            AdmissionPolicy::Portfolio(config) => Box::new(Portfolio::new(*config)),
        }
    }

    /// The branch-and-bound configuration, for the solver-backed
    /// policies.
    pub fn exact_config(&self) -> Option<ExactConfig> {
        match self {
            AdmissionPolicy::Exact(config) | AdmissionPolicy::Portfolio(config) => Some(*config),
            _ => None,
        }
    }

    /// Overrides the branch-and-bound node budget on the solver-backed
    /// policies; a no-op on the heuristic ones.
    pub fn with_node_budget(self, node_budget: u64) -> Self {
        match self {
            AdmissionPolicy::Exact(config) => AdmissionPolicy::Exact(ExactConfig {
                node_budget,
                ..config
            }),
            AdmissionPolicy::Portfolio(config) => AdmissionPolicy::Portfolio(ExactConfig {
                node_budget,
                ..config
            }),
            other => other,
        }
    }
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy::greedy()
    }
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for AdmissionPolicy {
    type Err = MapError;

    /// Parses the `--policy` vocabulary shared by `run`, `serve` and the
    /// load generator: `greedy`, `best-fit`, `exact`, `portfolio`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "greedy" => Ok(AdmissionPolicy::greedy()),
            "best-fit" => Ok(AdmissionPolicy::best_fit()),
            "exact" => Ok(AdmissionPolicy::exact()),
            "portfolio" => Ok(AdmissionPolicy::portfolio()),
            other => Err(MapError::InvalidConfig {
                reason: format!(
                    "unknown policy `{other}` (expected greedy, best-fit, exact or portfolio)"
                ),
            }),
        }
    }
}

/// The γ-weighted worst-case computation demand of an application: the
/// denominator of `l_p` (Sec 9.1), a platform-independent weight proxy.
///
/// # Errors
///
/// [`MapError::Sdf`] if the graph has no repetition vector (validated
/// applications always do).
pub fn application_work(app: &ApplicationGraph) -> Result<u128, MapError> {
    let gamma = app.graph().repetition_vector()?;
    Ok(app
        .graph()
        .actor_ids()
        .map(|a| gamma[a] as u128 * app.max_execution_time(a) as u128)
        .sum())
}

/// Returns indices into `apps` in the chosen allocation order.
///
/// # Errors
///
/// [`MapError::Sdf`] if any application has no repetition vector (only
/// the work-weighted orders evaluate it).
pub fn order_applications(
    apps: &[ApplicationGraph],
    order: AdmissionOrder,
) -> Result<Vec<usize>, MapError> {
    let mut idx: Vec<usize> = (0..apps.len()).collect();
    match order {
        AdmissionOrder::Arrival => {}
        AdmissionOrder::HeaviestFirst => {
            let work = works(apps)?;
            idx.sort_by_key(|&i| std::cmp::Reverse(work[i]));
        }
        AdmissionOrder::LightestFirst => {
            let work = works(apps)?;
            idx.sort_by_key(|&i| work[i]);
        }
        AdmissionOrder::TightestConstraintFirst => {
            // Tightness = λ · work: how much of a processor the app needs
            // per time unit. Descending.
            let work = works(apps)?;
            idx.sort_by(|&a, &b| {
                let ta = apps[a].throughput_constraint() * Rational::from_integer(work[a] as i128);
                let tb = apps[b].throughput_constraint() * Rational::from_integer(work[b] as i128);
                tb.cmp(&ta).then(a.cmp(&b))
            });
        }
    }
    Ok(idx)
}

/// [`application_work`] of every application, in input order.
fn works(apps: &[ApplicationGraph]) -> Result<Vec<u128>, MapError> {
    apps.iter().map(application_work).collect()
}

/// Dynamic best-fit admission: at every step, try each remaining
/// application and admit the one whose allocation claims the least total
/// TDMA wheel time; skip applications that fit nowhere. More expensive
/// than a static order (it runs the flow speculatively), but it packs the
/// platform tighter — the strongest form of the "ordering" improvement
/// Sec 10.1 suggests.
pub fn allocate_best_fit(
    apps: &[ApplicationGraph],
    arch: &ArchitectureGraph,
    config: &FlowConfig,
) -> AdmissionResult {
    // Best-fit runs the flow speculatively: every round re-allocates each
    // remaining application, and between the speculative run that wins a
    // round and its commit nothing changes — one shared cache across the
    // protocol answers those repeats from memory. Probes that *do* differ
    // round-to-round (an application re-tried against a fuller platform)
    // usually move single tile slices, so they warm-start from the
    // allocator's shared exploration memo instead of exploring cold.
    let mut allocator = Allocator::from_config(*config);
    allocate_best_fit_with(&mut allocator, apps, arch)
}

/// [`allocate_best_fit`] through an existing [`Allocator`], sharing its
/// cache and emitting one [`MultiAppRound`](FlowEvent::MultiAppRound) per
/// round plus one [`AdmissionDecision`](FlowEvent::AdmissionDecision) per
/// final accept/reject on its sink.
pub fn allocate_best_fit_with(
    allocator: &mut Allocator,
    apps: &[ApplicationGraph],
    arch: &ArchitectureGraph,
) -> AdmissionResult {
    let mut state = PlatformState::new(arch);
    let mut remaining: Vec<usize> = (0..apps.len()).collect();
    let mut admitted = Vec::new();
    let mut rejected: Vec<(AppId, MapError)> = Vec::new();
    let mut round = 0usize;
    while !remaining.is_empty() {
        let candidates = remaining.len();
        let mut best: Option<(usize, Allocation, FlowStats, u64)> = None;
        let mut round_errors = Vec::new();
        for &i in &remaining {
            match allocator.allocate(&apps[i], arch, &state) {
                Ok((alloc, stats)) => {
                    let wheel: u64 = alloc.usage.iter().map(|u| u.wheel).sum();
                    let better = best.as_ref().is_none_or(|(_, _, _, w)| wheel < *w);
                    if better {
                        best = Some((i, alloc, stats, wheel));
                    }
                }
                Err(e) => round_errors.push((i, e)),
            }
        }
        let winner = best.as_ref().map(|(i, _, _, _)| *i);
        allocator.emit(|| FlowEvent::MultiAppRound {
            round,
            candidates,
            admitted: winner,
        });
        round += 1;
        match best {
            Some((i, alloc, stats, _)) => {
                alloc.claim_set().apply(&mut state);
                allocator.metric(|m| m.admission_admitted.inc());
                allocator.emit(|| FlowEvent::AdmissionDecision {
                    index: i,
                    app: apps[i].graph().name().to_string(),
                    admitted: true,
                    detail: String::new(),
                });
                admitted.push((AppId::from_index(i), alloc, stats));
                remaining.retain(|&x| x != i);
            }
            None => {
                // Nothing fits any more: everything left is rejected.
                for (i, e) in round_errors {
                    allocator.metric(|m| m.admission_rejected.inc());
                    allocator.emit(|| FlowEvent::AdmissionDecision {
                        index: i,
                        app: apps[i].graph().name().to_string(),
                        admitted: false,
                        detail: e.to_string(),
                    });
                    rejected.push((AppId::from_index(i), e));
                }
                break;
            }
        }
    }
    AdmissionResult {
        admitted,
        rejected,
        final_state: state,
        reports: Vec::new(),
    }
}

/// Outcome of an admission run that skips failing applications.
#[derive(Debug)]
pub struct AdmissionResult {
    /// `(application id, allocation, stats)` for every admitted app.
    pub admitted: Vec<(AppId, Allocation, FlowStats)>,
    /// `(application id, error)` for every rejected app.
    pub rejected: Vec<(AppId, MapError)>,
    /// Platform state after all admissions.
    pub final_state: PlatformState,
    /// Per-admission certified bound reports, in admission order. Empty
    /// for the heuristic policies (greedy first fit / best fit), one
    /// entry per admitted application under a solver-backed policy.
    pub reports: Vec<(AppId, SolveReport)>,
}

impl AdmissionResult {
    /// Number of admitted applications.
    pub fn admitted_count(&self) -> usize {
        self.admitted.len()
    }

    /// The certified bound report of an admitted application, when the
    /// policy produced one.
    pub fn report_for(&self, app: AppId) -> Option<&SolveReport> {
        self.reports
            .iter()
            .find(|(id, _)| *id == app)
            .map(|(_, r)| r)
    }
}

/// Arrival-order admission through an arbitrary [`SolverBackend`]: each
/// application is solved against the evolving platform state, admitted
/// applications claim their allocation, failing applications are skipped
/// (the run-time mechanism of Sec 10.1). Mirrors
/// [`allocate_skipping_failures_with`] — same
/// [`AdmissionDecision`](FlowEvent::AdmissionDecision) events, same
/// admitted/rejected accounting — but additionally returns the
/// [`SolveReport`] of every admission.
pub fn allocate_solver_with(
    allocator: &mut Allocator,
    apps: &[ApplicationGraph],
    arch: &ArchitectureGraph,
    backend: &dyn SolverBackend,
) -> AdmissionResult {
    let mut state = PlatformState::new(arch);
    let mut admitted = Vec::new();
    let mut rejected = Vec::new();
    let mut reports = Vec::new();
    for (i, app) in apps.iter().enumerate() {
        match backend.solve(allocator, app, arch, &state) {
            Ok(outcome) => {
                outcome.allocation.claim_set().apply(&mut state);
                allocator.metric(|m| m.admission_admitted.inc());
                allocator.emit(|| FlowEvent::AdmissionDecision {
                    index: i,
                    app: app.graph().name().to_string(),
                    admitted: true,
                    detail: String::new(),
                });
                reports.push((AppId::from_index(i), outcome.report));
                admitted.push((AppId::from_index(i), outcome.allocation, outcome.stats));
            }
            Err(e) => {
                allocator.metric(|m| m.admission_rejected.inc());
                allocator.emit(|| FlowEvent::AdmissionDecision {
                    index: i,
                    app: app.graph().name().to_string(),
                    admitted: false,
                    detail: e.to_string(),
                });
                rejected.push((AppId::from_index(i), e));
            }
        }
    }
    AdmissionResult {
        admitted,
        rejected,
        final_state: state,
        reports,
    }
}

/// Allocates applications in the given order, *skipping* applications that
/// fail instead of stopping (the run-time mechanism of Sec 10.1).
pub fn allocate_skipping_failures(
    apps: &[ApplicationGraph],
    arch: &ArchitectureGraph,
    config: &FlowConfig,
    order: AdmissionOrder,
) -> AdmissionResult {
    let mut allocator = Allocator::from_config(*config);
    allocate_skipping_failures_with(&mut allocator, apps, arch, order)
}

/// [`allocate_skipping_failures`] through an existing [`Allocator`],
/// sharing its cache and emitting one
/// [`AdmissionDecision`](FlowEvent::AdmissionDecision) per application on
/// its sink.
pub fn allocate_skipping_failures_with(
    allocator: &mut Allocator,
    apps: &[ApplicationGraph],
    arch: &ArchitectureGraph,
    order: AdmissionOrder,
) -> AdmissionResult {
    let mut state = PlatformState::new(arch);
    let mut admitted = Vec::new();
    let mut rejected = Vec::new();
    // A broken application graph must not abort the whole sweep: fall back
    // to arrival order and let the per-application allocate calls report
    // the offending graphs as rejections.
    let ordered = order_applications(apps, order).unwrap_or_else(|_| (0..apps.len()).collect());
    for i in ordered {
        match allocator.allocate(&apps[i], arch, &state) {
            Ok((alloc, stats)) => {
                alloc.claim_set().apply(&mut state);
                allocator.metric(|m| m.admission_admitted.inc());
                allocator.emit(|| FlowEvent::AdmissionDecision {
                    index: i,
                    app: apps[i].graph().name().to_string(),
                    admitted: true,
                    detail: String::new(),
                });
                admitted.push((AppId::from_index(i), alloc, stats));
            }
            Err(e) => {
                allocator.metric(|m| m.admission_rejected.inc());
                allocator.emit(|| FlowEvent::AdmissionDecision {
                    index: i,
                    app: apps[i].graph().name().to_string(),
                    admitted: false,
                    detail: e.to_string(),
                });
                rejected.push((AppId::from_index(i), e));
            }
        }
    }
    AdmissionResult {
        admitted,
        rejected,
        final_state: state,
        reports: Vec::new(),
    }
}

/// Grows a square mesh until every application in `apps` can be admitted
/// (in arrival order, with skipping disabled), up to `max_side` tiles per
/// side. Returns the platform and its side length, or `None` if even the
/// largest mesh cannot host the set — the "platform dimensioning step" of
/// Sec 10.1.
pub fn dimension_platform(
    apps: &[ApplicationGraph],
    base: &MeshConfig,
    config: &FlowConfig,
    max_side: usize,
) -> Option<(ArchitectureGraph, usize)> {
    for side in 1..=max_side {
        let cfg = MeshConfig {
            rows: side,
            cols: side,
            ..base.clone()
        };
        let arch = mesh_platform(format!("mesh{side}x{side}"), &cfg);
        let result = crate::multi_app::allocate_until_failure(apps, &arch, config);
        if result.bound_count() == apps.len() {
            return Some((arch, side));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfrs_appmodel::apps::paper_example;

    fn scaled_example(period: i128) -> ApplicationGraph {
        paper_example().with_throughput_constraint(Rational::new(1, period))
    }

    #[test]
    fn work_is_gamma_weighted() {
        let app = paper_example();
        // γ = (2,2,1); sup τ = (4,7,3) ⇒ 8 + 14 + 3 = 25.
        assert_eq!(application_work(&app).unwrap(), 25);
    }

    #[test]
    fn orderings_permute_consistently() {
        let apps = vec![scaled_example(30), scaled_example(300), scaled_example(100)];
        assert_eq!(
            order_applications(&apps, AdmissionOrder::Arrival).unwrap(),
            vec![0, 1, 2]
        );
        // Same work everywhere ⇒ heaviest/lightest keep arrival order
        // (stable sort).
        assert_eq!(
            order_applications(&apps, AdmissionOrder::HeaviestFirst).unwrap(),
            vec![0, 1, 2]
        );
        // Tightest λ first: 1/30 > 1/100 > 1/300.
        assert_eq!(
            order_applications(&apps, AdmissionOrder::TightestConstraintFirst).unwrap(),
            vec![0, 2, 1]
        );
    }

    #[test]
    fn skipping_admits_later_applications() {
        use sdfrs_appmodel::apps::example_platform;
        // App 1 is impossible; the skipper admits apps 0 and 2 anyway.
        let apps = vec![scaled_example(60), scaled_example(2), scaled_example(60)];
        let arch = example_platform();
        let result = allocate_skipping_failures(
            &apps,
            &arch,
            &FlowConfig::default(),
            AdmissionOrder::Arrival,
        );
        assert_eq!(result.admitted_count(), 2);
        assert_eq!(result.rejected.len(), 1);
        assert_eq!(result.rejected[0].0, AppId::from_index(1));
        // Contrast: stop-on-failure binds only the first.
        let stop = crate::multi_app::allocate_until_failure(&apps, &arch, &FlowConfig::default());
        assert_eq!(stop.bound_count(), 1);
    }

    #[test]
    fn best_fit_admits_at_least_as_many_as_arrival_order() {
        use sdfrs_appmodel::apps::example_platform;
        let apps = vec![
            scaled_example(40),
            scaled_example(120),
            scaled_example(60),
            scaled_example(200),
        ];
        let arch = example_platform();
        let arrival = allocate_skipping_failures(
            &apps,
            &arch,
            &FlowConfig::default(),
            AdmissionOrder::Arrival,
        );
        let best_fit = allocate_best_fit(&apps, &arch, &FlowConfig::default());
        assert!(
            best_fit.admitted_count() >= arrival.admitted_count(),
            "best-fit {} < arrival {}",
            best_fit.admitted_count(),
            arrival.admitted_count()
        );
        // Accounting stays consistent.
        assert_eq!(
            best_fit.admitted_count()
                + best_fit.rejected.len()
                + (apps.len() - best_fit.admitted_count() - best_fit.rejected.len()),
            apps.len()
        );
    }

    #[test]
    fn dimensioning_finds_a_fitting_mesh() {
        use sdfrs_platform::ProcessorType;
        // Three copies of the example need more wheel than one tiny tile.
        let apps = vec![scaled_example(60), scaled_example(60), scaled_example(60)];
        let base = MeshConfig {
            processor_types: vec![ProcessorType::new("p1"), ProcessorType::new("p2")],
            wheel_size: 10,
            memory: 4_096,
            max_connections: 8,
            bandwidth_in: 1_000,
            bandwidth_out: 1_000,
            hop_latency: 1,
            rows: 1,
            cols: 1,
        };
        let (arch, side) = dimension_platform(&apps, &base, &FlowConfig::default(), 4)
            .expect("a 4×4 mesh is plenty");
        assert!(side >= 1);
        assert_eq!(arch.tile_count(), side * side);
        // And the set indeed fits the dimensioned platform.
        let check = crate::multi_app::allocate_until_failure(&apps, &arch, &FlowConfig::default());
        assert_eq!(check.bound_count(), 3);
    }
}
