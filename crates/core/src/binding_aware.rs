//! Binding-aware SDFG construction (Section 8.1).
//!
//! The effect of a binding is modeled *into* the graph:
//!
//! * every bound actor gets the execution time of its tile's processor
//!   type and — unless the application already provides one — a self-edge
//!   with one initial token (firings on a tile do not overlap);
//! * a channel whose endpoints share a tile keeps its rates and gains a
//!   reverse channel carrying `α_tile` initial tokens, bounding its buffer;
//! * a channel crossing tiles is split through a *connection actor* `c`
//!   (execution time ℒ(connection) + ⌈sz/β⌉, self-edge so tokens are sent
//!   sequentially) and a *sync actor* `s` (execution time `w − ω` of the
//!   destination tile: the worst-case wait for the application's slice
//!   given unsynchronized wheels); reverse channels with `α_src` / `α_dst`
//!   tokens bound the source and destination buffers.

use sdfrs_appmodel::ApplicationGraph;
use sdfrs_platform::{ArchitectureGraph, TileId};
use sdfrs_sdf::{ActorId, ChannelId, SdfGraph};

use crate::binding::Binding;
use crate::error::MapError;
use crate::tdma::TdmaSlice;

/// What a binding-aware actor stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaActorKind {
    /// A bound application actor.
    App(ActorId),
    /// The connection actor `c` modeling the transfer of one application
    /// channel over a platform connection.
    Connection(ChannelId),
    /// The sync actor `s` modeling the worst-case wait for the destination
    /// tile's TDMA slice.
    Sync(ChannelId),
}

/// How cross-tile channels are modeled in the binding-aware graph.
///
/// The paper uses a single connection actor `c` and notes it "can be
/// replaced with a more detailed model if available, such as the
/// network-on-chip connection model of \[14\]" — [`PipelinedHops`] is that
/// refinement: the serialization delay ⌈sz/β⌉ and each latency unit of the
/// route become separate pipeline stages, so consecutive tokens overlap in
/// the network instead of occupying one actor for the whole
/// `ℒ + ⌈sz/β⌉`.
///
/// [`PipelinedHops`]: ConnectionModel::PipelinedHops
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConnectionModel {
    /// One connection actor with Υ(c) = ℒ + ⌈sz/β⌉ (Sec 8.1, the default).
    #[default]
    Simple,
    /// A serialization stage (Υ = ⌈sz/β⌉) followed by ℒ store-and-forward
    /// hop stages (Υ = 1 each), every stage with its own self-edge. More
    /// accurate (less conservative) for streams of tokens.
    PipelinedHops,
}

/// The binding-aware SDFG of an application bound to an architecture,
/// together with the bookkeeping needed to run constrained executions and
/// to re-target slice allocations without rebuilding.
///
/// # Examples
///
/// Build the graph of Fig 4 (paper example, a1/a2 on t1, a3 on t2, 50%
/// slices) and check Υ(c) = 11 and Υ(s) = 5:
///
/// ```
/// use sdfrs_appmodel::apps::{example_platform, paper_example};
/// use sdfrs_core::{Binding, BindingAwareGraph};
/// use sdfrs_platform::TileId;
///
/// # fn main() -> Result<(), sdfrs_core::MapError> {
/// let app = paper_example();
/// let arch = example_platform();
/// let g = app.graph();
/// let mut binding = Binding::new(g.actor_count());
/// let t1 = TileId::from_index(0);
/// let t2 = TileId::from_index(1);
/// binding.bind(g.actor_by_name("a1").unwrap(), t1);
/// binding.bind(g.actor_by_name("a2").unwrap(), t1);
/// binding.bind(g.actor_by_name("a3").unwrap(), t2);
/// let ba = BindingAwareGraph::build(&app, &arch, &binding, &[5, 5])?;
/// let c = ba.graph().actor_by_name("c_d2").unwrap();
/// let s = ba.graph().actor_by_name("s_d2").unwrap();
/// assert_eq!(ba.graph().actor(c).execution_time(), 11);
/// assert_eq!(ba.graph().actor(s).execution_time(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BindingAwareGraph {
    graph: SdfGraph,
    kinds: Vec<BaActorKind>,
    app_to_ba: Vec<ActorId>,
    tile_of: Vec<Option<TileId>>,
    /// Sync actors and the destination tile whose wheel they wait for.
    sync_actors: Vec<(ActorId, TileId)>,
    wheels: Vec<u64>,
    slices: Vec<u64>,
}

impl BindingAwareGraph {
    /// Builds the binding-aware SDFG for a complete binding.
    ///
    /// `slices[t]` is the TDMA slice ω currently assumed for tile index
    /// `t` (values for unused tiles are ignored; 0 is clamped to 1 when a
    /// sync actor needs it).
    ///
    /// # Errors
    ///
    /// * [`MapError::UnboundActor`] if the binding is partial;
    /// * [`MapError::NoFeasibleTile`] if some actor cannot execute on its
    ///   tile's processor type;
    /// * [`MapError::MissingConnection`] if a channel crosses tiles without
    ///   a platform connection;
    /// * [`MapError::ChannelNotMappable`] if a cross-tile channel has zero
    ///   bandwidth.
    pub fn build(
        app: &ApplicationGraph,
        arch: &ArchitectureGraph,
        binding: &Binding,
        slices: &[u64],
    ) -> Result<Self, MapError> {
        Self::build_with_model(app, arch, binding, slices, ConnectionModel::Simple)
    }

    /// Like [`build`](Self::build) with an explicit cross-tile
    /// [`ConnectionModel`].
    ///
    /// # Errors
    ///
    /// See [`build`](Self::build).
    pub fn build_with_model(
        app: &ApplicationGraph,
        arch: &ArchitectureGraph,
        binding: &Binding,
        slices: &[u64],
        model: ConnectionModel,
    ) -> Result<Self, MapError> {
        let src = app.graph();
        let mut graph = SdfGraph::new(format!("{}_bound", src.name()));
        let mut kinds = Vec::new();
        let mut tile_of = Vec::new();
        let mut app_to_ba = Vec::with_capacity(src.actor_count());
        let mut sync_actors = Vec::new();

        // Application actors with their bound execution times.
        for (a, actor) in src.actors() {
            let tile = binding.require(a)?;
            let pt = arch.tile(tile).processor_type();
            let tau = app
                .execution_time(a, pt)
                .ok_or(MapError::NoFeasibleTile { actor: a })?;
            let ba = graph.add_actor(actor.name(), tau);
            debug_assert_eq!(ba.index(), a.index());
            kinds.push(BaActorKind::App(a));
            tile_of.push(Some(tile));
            app_to_ba.push(ba);
        }

        // Self-edges for actors the application leaves unguarded
        // ("adding a self-edge with rates one and one initial token").
        for (a, _) in src.actors() {
            if !src.has_self_edge(a) {
                graph.add_self_edge(app_to_ba[a.index()], 1);
            }
        }

        // Channels: local ones get buffer back-edges; crossing ones are
        // split through connection and sync actors.
        for (d, ch) in src.channels() {
            let a = ch.src();
            let b = ch.dst();
            let ta = binding.require(a)?;
            let tb = binding.require(b)?;
            let (p, q, tok) = (
                ch.production_rate(),
                ch.consumption_rate(),
                ch.initial_tokens(),
            );
            let theta = app.channel_requirements(d);
            let ba_a = app_to_ba[a.index()];
            let ba_b = app_to_ba[b.index()];
            if ta == tb {
                graph.add_channel(ch.name(), ba_a, p, ba_b, q, tok);
                graph.add_channel(
                    format!("buf_{}", ch.name()),
                    ba_b,
                    q,
                    ba_a,
                    p,
                    theta.buffer_tile,
                );
            } else {
                let (_, conn) =
                    arch.connection_between(ta, tb)
                        .ok_or(MapError::MissingConnection {
                            channel: d,
                            src: ta,
                            dst: tb,
                        })?;
                if theta.bandwidth == 0 {
                    return Err(MapError::ChannelNotMappable { channel: d });
                }
                // The entry stage of the connection: the actor that claims
                // the source/destination buffer slots.
                let entry = match model {
                    ConnectionModel::Simple => {
                        let upsilon_c = conn.latency() + theta.transfer_time();
                        let c = graph.add_actor(format!("c_{}", ch.name()), upsilon_c);
                        kinds.push(BaActorKind::Connection(d));
                        tile_of.push(None);
                        graph.add_self_edge(c, 1);
                        c
                    }
                    ConnectionModel::PipelinedHops => {
                        let c = graph.add_actor(format!("c_{}", ch.name()), theta.transfer_time());
                        kinds.push(BaActorKind::Connection(d));
                        tile_of.push(None);
                        graph.add_self_edge(c, 1);
                        c
                    }
                };
                // The exit stage: the last network actor before the sync
                // actor.
                let exit = match model {
                    ConnectionModel::Simple => entry,
                    ConnectionModel::PipelinedHops => {
                        let mut prev = entry;
                        for hop in 0..conn.latency() {
                            let h = graph.add_actor(format!("hop{}_{}", hop, ch.name()), 1);
                            kinds.push(BaActorKind::Connection(d));
                            tile_of.push(None);
                            graph.add_self_edge(h, 1);
                            graph.add_channel(
                                format!("{}_hop{}", ch.name(), hop),
                                prev,
                                1,
                                h,
                                1,
                                0,
                            );
                            prev = h;
                        }
                        prev
                    }
                };

                let wheel = arch.tile(tb).wheel_size();
                let omega = slices
                    .get(tb.index())
                    .copied()
                    .unwrap_or(wheel)
                    .clamp(1, wheel);
                let s = graph.add_actor(format!("s_{}", ch.name()), wheel - omega);
                kinds.push(BaActorKind::Sync(d));
                tile_of.push(None);
                sync_actors.push((s, tb));

                graph.add_channel(format!("{}_out", ch.name()), ba_a, p, entry, 1, 0);
                graph.add_channel(format!("{}_net", ch.name()), exit, 1, s, 1, 0);
                graph.add_channel(format!("{}_in", ch.name()), s, 1, ba_b, q, tok);
                graph.add_channel(
                    format!("buf_src_{}", ch.name()),
                    entry,
                    1,
                    ba_a,
                    p,
                    theta.buffer_src,
                );
                graph.add_channel(
                    format!("buf_dst_{}", ch.name()),
                    ba_b,
                    q,
                    entry,
                    1,
                    theta.buffer_dst,
                );
            }
        }

        let wheels = arch.tile_ids().map(|t| arch.tile(t).wheel_size()).collect();
        let mut ba = BindingAwareGraph {
            graph,
            kinds,
            app_to_ba,
            tile_of,
            sync_actors,
            wheels,
            slices: Vec::new(),
        };
        ba.set_slices(slices);
        Ok(ba)
    }

    /// The binding-aware SDFG itself.
    pub fn graph(&self) -> &SdfGraph {
        &self.graph
    }

    /// The binding-aware actor corresponding to an application actor.
    pub fn ba_actor(&self, app_actor: ActorId) -> ActorId {
        self.app_to_ba[app_actor.index()]
    }

    /// What a binding-aware actor stands for.
    pub fn kind(&self, ba_actor: ActorId) -> BaActorKind {
        self.kinds[ba_actor.index()]
    }

    /// The tile a binding-aware actor is bound to (`None` for connection
    /// and sync actors, which execute on the interconnect).
    pub fn tile_of(&self, ba_actor: ActorId) -> Option<TileId> {
        self.tile_of[ba_actor.index()]
    }

    /// Current slice assumption for one tile.
    pub fn slice(&self, tile: TileId) -> u64 {
        self.slices[tile.index()]
    }

    /// The TDMA configuration of one tile under the current slices.
    pub fn tdma(&self, tile: TileId) -> TdmaSlice {
        TdmaSlice::new(self.wheels[tile.index()], self.slices[tile.index()])
    }

    /// The sync actors and the tile whose slice each one waits for:
    /// `(sync_actor, destination_tile)` pairs. A sync actor's execution
    /// time is `w − ω` of its destination tile, so it is the one actor
    /// kind whose timing changes under [`set_slices`](Self::set_slices) —
    /// the incremental re-analysis uses this to know which tile's slice a
    /// sync firing depends on.
    pub fn sync_actors(&self) -> &[(ActorId, TileId)] {
        &self.sync_actors
    }

    /// Re-targets the graph to a new slice allocation: sync-actor
    /// execution times become `w − ω` of their destination tile and the
    /// TDMA configurations returned by [`tdma`](Self::tdma) follow.
    ///
    /// Slice values are clamped into `[1, w]`.
    pub fn set_slices(&mut self, slices: &[u64]) {
        self.slices = self
            .wheels
            .iter()
            .enumerate()
            .map(|(i, &w)| slices.get(i).copied().unwrap_or(w).clamp(1, w))
            .collect();
        for &(s, tile) in &self.sync_actors {
            let wait = self.wheels[tile.index()] - self.slices[tile.index()];
            self.graph.set_execution_time(s, wait);
        }
    }

    /// All tiles that host at least one application actor, ascending.
    pub fn used_tiles(&self) -> Vec<TileId> {
        let mut tiles: Vec<TileId> = self.tile_of.iter().flatten().copied().collect();
        tiles.sort();
        tiles.dedup();
        tiles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfrs_appmodel::apps::{example_platform, paper_example};
    use sdfrs_sdf::analysis::deadlock::is_live;

    fn example_binding() -> (sdfrs_appmodel::ApplicationGraph, ArchitectureGraph, Binding) {
        let app = paper_example();
        let arch = example_platform();
        let g = app.graph();
        let mut binding = Binding::new(g.actor_count());
        binding.bind(g.actor_by_name("a1").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a2").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a3").unwrap(), TileId::from_index(1));
        (app, arch, binding)
    }

    #[test]
    fn fig4_structure() {
        let (app, arch, binding) = example_binding();
        let ba = BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]).unwrap();
        let g = ba.graph();
        // Actors: a1 a2 a3 + c_d2 + s_d2 = 5.
        assert_eq!(g.actor_count(), 5);
        // Execution times from Γ on the bound processor types (Sec 8.1:
        // "The execution time of a1 and a2 is then equal to 1 and the
        // execution time of a3 is equal to 2").
        assert_eq!(g.actor(g.actor_by_name("a1").unwrap()).execution_time(), 1);
        assert_eq!(g.actor(g.actor_by_name("a2").unwrap()).execution_time(), 1);
        assert_eq!(g.actor(g.actor_by_name("a3").unwrap()).execution_time(), 2);
        // Υ(c) = ℒ(c1) + ⌈sz/β⌉ = 1 + 10 = 11; Υ(s) = w − ω = 5.
        assert_eq!(
            g.actor(g.actor_by_name("c_d2").unwrap()).execution_time(),
            11
        );
        assert_eq!(
            g.actor(g.actor_by_name("s_d2").unwrap()).execution_time(),
            5
        );
        // Self-edges added to a2 and a3 only (a1 already has d3).
        let a1 = g.actor_by_name("a1").unwrap();
        let a2 = g.actor_by_name("a2").unwrap();
        let a3 = g.actor_by_name("a3").unwrap();
        assert!(g.has_self_edge(a1));
        assert!(g.has_self_edge(a2));
        assert!(g.has_self_edge(a3));
        assert!(g.channel_by_name("self_a1").is_none(), "a1 keeps d3 only");
        // Buffer back edges: d1 local (α_tile = 1), d2 split (α_src =
        // α_dst = 2).
        assert_eq!(
            g.channel(g.channel_by_name("buf_d1").unwrap())
                .initial_tokens(),
            1
        );
        assert_eq!(
            g.channel(g.channel_by_name("buf_src_d2").unwrap())
                .initial_tokens(),
            2
        );
        assert_eq!(
            g.channel(g.channel_by_name("buf_dst_d2").unwrap())
                .initial_tokens(),
            2
        );
        // The split keeps the multirate consumption at a3.
        let d2_in = g.channel(g.channel_by_name("d2_in").unwrap());
        assert_eq!(d2_in.consumption_rate(), 2);
        assert_eq!(d2_in.production_rate(), 1);
    }

    #[test]
    fn binding_aware_graph_is_consistent_and_live() {
        let (app, arch, binding) = example_binding();
        let ba = BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]).unwrap();
        assert!(ba.graph().repetition_vector().is_ok());
        assert!(is_live(ba.graph()));
    }

    #[test]
    fn mapping_back_to_application() {
        let (app, arch, binding) = example_binding();
        let ba = BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]).unwrap();
        let g = app.graph();
        let a3 = g.actor_by_name("a3").unwrap();
        let ba_a3 = ba.ba_actor(a3);
        assert_eq!(ba.kind(ba_a3), BaActorKind::App(a3));
        assert_eq!(ba.tile_of(ba_a3), Some(TileId::from_index(1)));
        let c = ba.graph().actor_by_name("c_d2").unwrap();
        assert!(matches!(ba.kind(c), BaActorKind::Connection(_)));
        assert_eq!(ba.tile_of(c), None);
        assert_eq!(
            ba.used_tiles(),
            vec![TileId::from_index(0), TileId::from_index(1)]
        );
    }

    #[test]
    fn set_slices_updates_sync_actors() {
        let (app, arch, binding) = example_binding();
        let mut ba = BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]).unwrap();
        let s = ba.graph().actor_by_name("s_d2").unwrap();
        assert_eq!(ba.graph().actor(s).execution_time(), 5);
        ba.set_slices(&[10, 10]);
        assert_eq!(ba.graph().actor(s).execution_time(), 0);
        assert_eq!(ba.slice(TileId::from_index(1)), 10);
        ba.set_slices(&[3, 2]);
        assert_eq!(ba.graph().actor(s).execution_time(), 8);
        assert_eq!(ba.tdma(TileId::from_index(0)), TdmaSlice::new(10, 3));
    }

    #[test]
    fn all_on_one_tile_has_no_connection_actors() {
        let (app, arch, _) = example_binding();
        let g = app.graph();
        let mut binding = Binding::new(g.actor_count());
        for (a, _) in g.actors() {
            binding.bind(a, TileId::from_index(0));
        }
        let ba = BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]).unwrap();
        // 3 actors, no c/s.
        assert_eq!(ba.graph().actor_count(), 3);
        // a3 on t1 runs with τ = 3 (processor type p1).
        let a3 = ba.graph().actor_by_name("a3").unwrap();
        assert_eq!(ba.graph().actor(a3).execution_time(), 3);
        assert!(is_live(ba.graph()));
    }

    #[test]
    fn partial_binding_is_rejected() {
        let (app, arch, _) = example_binding();
        let binding = Binding::new(app.graph().actor_count());
        assert!(matches!(
            BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]),
            Err(MapError::UnboundActor { .. })
        ));
    }

    #[test]
    fn missing_connection_is_reported() {
        let (app, _, binding) = example_binding();
        // Platform without the t1→t2 connection.
        let mut arch = ArchitectureGraph::new("disconnected");
        arch.add_tile(sdfrs_platform::Tile::new(
            "t1",
            "p1".into(),
            10,
            700,
            5,
            100,
            100,
        ));
        arch.add_tile(sdfrs_platform::Tile::new(
            "t2",
            "p2".into(),
            10,
            500,
            7,
            100,
            100,
        ));
        assert!(matches!(
            BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]),
            Err(MapError::MissingConnection { .. })
        ));
    }

    #[test]
    fn zero_bandwidth_channel_cannot_cross() {
        // Bind a1 and a2 to different tiles: d1 crosses with β = 100 (ok),
        // but placing the self-edge's owner apart is impossible; instead
        // craft a binding where d3 would cross — impossible for self-edges,
        // so test with d2's β zeroed via a fresh app.
        use sdfrs_appmodel::{ActorRequirements, ApplicationGraph, ChannelRequirements};
        use sdfrs_platform::ProcessorType;
        use sdfrs_sdf::Rational;
        let mut g = SdfGraph::new("z");
        let a = g.add_actor("a", 0);
        let b = g.add_actor("b", 0);
        let d = g.add_channel("d", a, 1, b, 1, 0);
        let app = ApplicationGraph::builder(g, Rational::new(1, 100))
            .actor(
                a,
                ActorRequirements::new().on(ProcessorType::new("p1"), 1, 1),
            )
            .actor(
                b,
                ActorRequirements::new().on(ProcessorType::new("p2"), 1, 1),
            )
            .channel(d, ChannelRequirements::new(8, 1, 1, 1, 0))
            .build()
            .unwrap();
        let arch = example_platform();
        let mut binding = Binding::new(2);
        binding.bind(a, TileId::from_index(0));
        binding.bind(b, TileId::from_index(1));
        assert!(matches!(
            BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]),
            Err(MapError::ChannelNotMappable { .. })
        ));
    }
    #[test]
    fn pipelined_hops_structure() {
        let (app, arch, binding) = example_binding();
        let ba = BindingAwareGraph::build_with_model(
            &app,
            &arch,
            &binding,
            &[5, 5],
            ConnectionModel::PipelinedHops,
        )
        .unwrap();
        let g = ba.graph();
        // a1 a2 a3 + c_d2 + hop0_d2 (latency 1) + s_d2 = 6 actors.
        assert_eq!(g.actor_count(), 6);
        let c = g.actor_by_name("c_d2").unwrap();
        assert_eq!(g.actor(c).execution_time(), 10, "serialization only");
        let hop = g.actor_by_name("hop0_d2").unwrap();
        assert_eq!(g.actor(hop).execution_time(), 1);
        assert!(matches!(ba.kind(hop), BaActorKind::Connection(_)));
        assert!(g.repetition_vector().is_ok());
        assert!(is_live(g));
    }

    #[test]
    fn pipelined_model_is_no_slower_than_simple() {
        use sdfrs_sdf::analysis::selftimed::SelfTimedExecutor;
        let (app, arch, binding) = example_binding();
        let thr = |model| {
            let ba =
                BindingAwareGraph::build_with_model(&app, &arch, &binding, &[5, 5], model).unwrap();
            let a3 = ba.graph().actor_by_name("a3").unwrap();
            SelfTimedExecutor::new(ba.graph())
                .throughput(a3)
                .unwrap()
                .actor_throughput
        };
        let simple = thr(ConnectionModel::Simple);
        let pipelined = thr(ConnectionModel::PipelinedHops);
        assert!(
            pipelined >= simple,
            "pipelining the network must not lose throughput ({pipelined} < {simple})"
        );
    }

    #[test]
    fn cross_tile_initial_tokens_start_at_destination() {
        // The h263 feedback channel mc→vld carries one initial token; bind
        // mc and vld apart and the token must appear on the s→vld segment
        // so the graph starts up without waiting for a transfer.
        use sdfrs_appmodel::apps::h263_decoder;
        use sdfrs_platform::mesh::multimedia_platform;
        use sdfrs_sdf::Rational;
        let app = h263_decoder(0, Rational::new(1, 200_000));
        let arch = multimedia_platform();
        let g = app.graph();
        let mut binding = Binding::new(g.actor_count());
        // vld and mc must sit on generic tiles (t00, t10); split iq/idct
        // onto the accelerators.
        binding.bind(
            g.actor_by_name("vld0").unwrap(),
            arch.tile_by_name("t00").unwrap(),
        );
        binding.bind(
            g.actor_by_name("iq0").unwrap(),
            arch.tile_by_name("t01").unwrap(),
        );
        binding.bind(
            g.actor_by_name("idct0").unwrap(),
            arch.tile_by_name("t11").unwrap(),
        );
        binding.bind(
            g.actor_by_name("mc0").unwrap(),
            arch.tile_by_name("t10").unwrap(),
        );
        let slices: Vec<u64> = arch.tile_ids().map(|_| 50).collect();
        let ba = BindingAwareGraph::build(&app, &arch, &binding, &slices).unwrap();
        let bg = ba.graph();
        let feedback_in = bg.channel_by_name("h0_mc_vld_in").unwrap();
        assert_eq!(bg.channel(feedback_in).initial_tokens(), 1);
        let feedback_out = bg.channel_by_name("h0_mc_vld_out").unwrap();
        assert_eq!(bg.channel(feedback_out).initial_tokens(), 0);
        assert!(is_live(bg), "fully split h263 must stay live");
    }
}
