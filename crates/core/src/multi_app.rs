//! Multi-application allocation (the experimental protocol of Sec 10.1):
//! applications are allocated one after another onto the same platform
//! until the first failure; resources claimed by successful allocations
//! stay claimed.

use sdfrs_appmodel::ApplicationGraph;
use sdfrs_platform::{ArchitectureGraph, PlatformState, TileUsage};

use crate::allocator::Allocator;
use crate::error::MapError;
use crate::events::FlowEvent;
use crate::flow::{Allocation, FlowConfig, FlowStats};
use crate::ids::AppId;

/// Outcome of allocating a sequence of applications.
#[derive(Debug)]
pub struct MultiAppResult {
    /// Successful allocations, in application order.
    pub allocations: Vec<Allocation>,
    /// Per-allocation statistics.
    pub stats: Vec<FlowStats>,
    /// The error that stopped the sequence (`None` if every application
    /// fit).
    pub failure: Option<MapError>,
    /// Which application the sequence stopped at (`None` if every
    /// application fit).
    pub failed_app: Option<AppId>,
    /// The platform state after the last successful allocation.
    pub final_state: PlatformState,
}

impl MultiAppResult {
    /// Number of applications that received a valid allocation — the
    /// quantity of Table 4.
    pub fn bound_count(&self) -> usize {
        self.allocations.len()
    }

    /// Total throughput checks across all successful allocations.
    pub fn total_throughput_checks(&self) -> usize {
        self.stats.iter().map(|s| s.throughput_checks).sum()
    }

    /// Total resources in use after the run, summed over tiles — the raw
    /// numbers behind Table 5.
    pub fn total_usage(&self) -> TileUsage {
        self.final_state.total_usage()
    }
}

/// Allocates applications in order until the first failure (Sec 10.1:
/// "resources are allocated to application graphs till no valid resource
/// allocation is found for a graph — a conservative estimate on the
/// number of applications").
pub fn allocate_until_failure(
    apps: &[ApplicationGraph],
    arch: &ArchitectureGraph,
    config: &FlowConfig,
) -> MultiAppResult {
    // One allocator (and thus one evaluation cache) for the whole
    // sequence: identical applications allocated against an unchanged
    // platform state (e.g. after a failed sibling) replay their slice
    // searches from memory.
    let mut allocator = Allocator::from_config(*config);
    allocate_until_failure_with(&mut allocator, apps, arch)
}

/// [`allocate_until_failure`] through an existing [`Allocator`], sharing
/// its cache and emitting one
/// [`AdmissionDecision`](FlowEvent::AdmissionDecision) per application on
/// its sink.
pub fn allocate_until_failure_with(
    allocator: &mut Allocator,
    apps: &[ApplicationGraph],
    arch: &ArchitectureGraph,
) -> MultiAppResult {
    let mut state = PlatformState::new(arch);
    let mut allocations = Vec::new();
    let mut stats = Vec::new();
    let mut failure = None;
    let mut failed_app = None;
    for (index, app) in apps.iter().enumerate() {
        match allocator.allocate(app, arch, &state) {
            Ok((alloc, s)) => {
                alloc.claim_set().apply(&mut state);
                allocations.push(alloc);
                stats.push(s);
                allocator.metric(|m| m.admission_admitted.inc());
                allocator.emit(|| FlowEvent::AdmissionDecision {
                    index,
                    app: app.graph().name().to_string(),
                    admitted: true,
                    detail: String::new(),
                });
            }
            Err(e) => {
                allocator.metric(|m| m.admission_rejected.inc());
                allocator.emit(|| FlowEvent::AdmissionDecision {
                    index,
                    app: app.graph().name().to_string(),
                    admitted: false,
                    detail: e.to_string(),
                });
                failure = Some(e);
                failed_app = Some(AppId::from_index(index));
                break;
            }
        }
    }
    MultiAppResult {
        allocations,
        stats,
        failure,
        failed_app,
        final_state: state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfrs_appmodel::apps::{example_platform, paper_example};

    #[test]
    fn sequence_of_examples_until_wheel_runs_out() {
        // The example app repeated: each copy claims wheel time; the 10-unit
        // wheels bound how many copies fit.
        let apps: Vec<ApplicationGraph> = (0..8).map(|_| paper_example()).collect();
        let arch = example_platform();
        let result = allocate_until_failure(&apps, &arch, &FlowConfig::default());
        assert!(result.bound_count() >= 1, "at least one copy must fit");
        assert!(
            result.bound_count() < 8,
            "eight copies cannot fit a 10-unit wheel"
        );
        assert!(result.failure.is_some());
        assert!(result.total_throughput_checks() >= result.bound_count());
        // Claimed wheel time never exceeds the platform's total.
        let total_wheel: u64 = arch.tile_ids().map(|t| arch.tile(t).wheel_size()).sum();
        assert!(result.total_usage().wheel <= total_wheel);
    }

    #[test]
    fn empty_sequence_binds_nothing() {
        let arch = example_platform();
        let result = allocate_until_failure(&[], &arch, &FlowConfig::default());
        assert_eq!(result.bound_count(), 0);
        assert!(result.failure.is_none());
        assert_eq!(result.total_usage(), TileUsage::default());
    }

    #[test]
    fn first_failure_stops_the_sequence() {
        use sdfrs_sdf::Rational;
        // Second app impossible: the sequence must stop there even though
        // the third would fit.
        let apps = vec![
            paper_example(),
            paper_example().with_throughput_constraint(Rational::new(1, 2)),
            paper_example(),
        ];
        let arch = example_platform();
        let result = allocate_until_failure(&apps, &arch, &FlowConfig::default());
        assert_eq!(result.bound_count(), 1);
        assert_eq!(result.failure, Some(MapError::ConstraintUnsatisfiable));
        assert_eq!(result.failed_app, Some(AppId::from_index(1)));
    }
}
