//! Low-overhead metrics: counters, gauges, histograms, and a phase
//! profiler for quantifying the *work* behind the allocation flow.
//!
//! The [`FlowEvent`] stream shows the
//! *decisions* the Sec 9 strategy takes; this module measures their
//! *cost* — states explored per throughput probe, cache hit ratios,
//! bind attempts per tile, binary-search iteration counts, and where
//! wall-clock time goes (flow → bind / schedule / slice → probe).
//!
//! The design mirrors the [`NullSink`](crate::events::NullSink) lazy
//! pattern: a [`Metrics`] handle is either *null* (the default — one
//! branch per instrumentation site, nothing else) or carries an
//! `Arc<`[`MetricsRegistry`]`>` of cache-line-padded atomics
//! ([`sdfrs_fastutil::cell`]) that parallel refinement tasks update
//! without false sharing. All counter and histogram-bucket values are
//! **deterministic** even under parallel refinement: each parallel task
//! runs a deterministic binary search against a forked cache, so the
//! multiset of recorded observations is independent of thread
//! interleaving; only span *durations* are wall-clock.
//!
//! Two exporters serialize a [`MetricsSnapshot`]: Prometheus text
//! exposition ([`MetricsSnapshot::to_prometheus`]) and deterministic
//! JSON ([`MetricsSnapshot::to_json`]).
//!
//! # Example
//!
//! ```
//! use sdfrs_appmodel::apps::{example_platform, paper_example};
//! use sdfrs_core::metrics::Metrics;
//! use sdfrs_core::Allocator;
//! use sdfrs_platform::PlatformState;
//!
//! # fn main() -> Result<(), sdfrs_core::MapError> {
//! let (app, arch) = (paper_example(), example_platform());
//! let metrics = Metrics::collecting();
//! let mut allocator = Allocator::new().with_metrics(metrics.clone());
//! let (_, stats) = allocator.allocate(&app, &arch, &PlatformState::new(&arch))?;
//! let snapshot = metrics.snapshot().expect("collecting handle");
//! assert_eq!(
//!     snapshot.counter("cache_hits") + snapshot.counter("cache_misses"),
//!     stats.throughput_checks as u64,
//! );
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sdfrs_fastutil::PaddedAtomicU64;

use crate::events::{FlowEvent, FlowPhase, SliceScope};

/// A monotonically increasing event count on its own cache line.
#[derive(Debug, Default)]
pub struct Counter(PaddedAtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.add(1);
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.add(delta);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A last-write-wins instantaneous value (e.g. cache residency).
#[derive(Debug, Default)]
pub struct Gauge(PaddedAtomicU64);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.set(value);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A fixed-bucket histogram of `u64` observations.
///
/// Bucket `i` counts observations `<= bounds[i]` (non-cumulative
/// storage; the Prometheus exporter accumulates); one overflow bucket
/// catches everything above the last bound.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    buckets: Vec<PaddedAtomicU64>,
    sum: PaddedAtomicU64,
    count: PaddedAtomicU64,
}

impl Histogram {
    /// A histogram over `bounds` (must be strictly increasing).
    pub fn new(bounds: &'static [u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds,
            buckets: (0..=bounds.len())
                .map(|_| PaddedAtomicU64::new(0))
                .collect(),
            sum: PaddedAtomicU64::new(0),
            count: PaddedAtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let i = self.bounds.partition_point(|&b| b < value);
        self.buckets[i].add(1);
        self.sum.add(value);
        self.count.add(1);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// A point-in-time copy of the buckets under `name`/`help` — also
    /// used by out-of-registry histograms (the net server's queue-depth
    /// instrument) that render through the same snapshot type.
    pub fn snapshot(&self, name: &'static str, help: &'static str) -> HistogramSnapshot {
        HistogramSnapshot {
            name,
            help,
            bounds: self.bounds.to_vec(),
            counts: self.buckets.iter().map(|b| b.get()).collect(),
            sum: self.sum.get(),
            count: self.count.get(),
        }
    }
}

/// A dense family of counters keyed by a small index (tile number).
///
/// Backed by a mutex, not atomics: binding runs once per flow and is
/// nowhere near the hot path, so simplicity wins over lock-freedom.
#[derive(Debug, Default)]
pub struct IndexedCounter {
    slots: Mutex<Vec<u64>>,
}

impl IndexedCounter {
    /// Adds `delta` to slot `index`, growing the family as needed.
    pub fn add(&self, index: usize, delta: u64) {
        let mut slots = self.slots.lock().expect("indexed counter lock");
        if slots.len() <= index {
            slots.resize(index + 1, 0);
        }
        slots[index] += delta;
    }

    /// All slot values, index order.
    pub fn values(&self) -> Vec<u64> {
        self.slots.lock().expect("indexed counter lock").clone()
    }
}

/// The nodes of the static span hierarchy:
/// `Flow → { Bind, Schedule, Slice → Probe }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One whole allocation run.
    Flow,
    /// The resource-binding phase (Sec 9.1).
    Bind,
    /// Static-order schedule construction (Sec 9.2).
    Schedule,
    /// TDMA slice allocation (Sec 9.3).
    Slice,
    /// One constrained-throughput state-space exploration (a cache miss).
    Probe,
}

impl SpanKind {
    /// Every kind, hierarchy order (parents before children).
    pub const ALL: [SpanKind; 5] = [
        SpanKind::Flow,
        SpanKind::Bind,
        SpanKind::Schedule,
        SpanKind::Slice,
        SpanKind::Probe,
    ];

    /// Stable snake-case name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Flow => "flow",
            SpanKind::Bind => "bind",
            SpanKind::Schedule => "schedule",
            SpanKind::Slice => "slice",
            SpanKind::Probe => "probe",
        }
    }

    /// The parent span this kind's time is attributed under.
    pub fn parent(self) -> Option<SpanKind> {
        match self {
            SpanKind::Flow => None,
            SpanKind::Bind | SpanKind::Schedule | SpanKind::Slice => Some(SpanKind::Flow),
            SpanKind::Probe => Some(SpanKind::Slice),
        }
    }

    /// The span a strategy phase's wall time is recorded under.
    pub fn from_phase(phase: FlowPhase) -> SpanKind {
        match phase {
            FlowPhase::Binding => SpanKind::Bind,
            FlowPhase::Scheduling => SpanKind::Schedule,
            FlowPhase::SliceAllocation => SpanKind::Slice,
        }
    }

    fn index(self) -> usize {
        match self {
            SpanKind::Flow => 0,
            SpanKind::Bind => 1,
            SpanKind::Schedule => 2,
            SpanKind::Slice => 3,
            SpanKind::Probe => 4,
        }
    }
}

/// Accumulated wall time and call counts per [`SpanKind`].
#[derive(Debug, Default)]
pub struct Profiler {
    nanos: [PaddedAtomicU64; 5],
    calls: [PaddedAtomicU64; 5],
}

impl Profiler {
    /// Attributes `duration` (and one call) to `kind`.
    #[inline]
    pub fn record(&self, kind: SpanKind, duration: Duration) {
        let i = kind.index();
        self.nanos[i].add(duration.as_nanos() as u64);
        self.calls[i].add(1);
    }

    /// Total nanoseconds attributed to `kind`.
    pub fn nanos(&self, kind: SpanKind) -> u64 {
        self.nanos[kind.index()].get()
    }

    /// Spans finished under `kind`.
    pub fn calls(&self, kind: SpanKind) -> u64 {
        self.calls[kind.index()].get()
    }
}

/// An RAII timing guard: measures from construction until
/// [`finish`](Span::finish) (or drop) and attributes the elapsed time
/// to its [`SpanKind`].
///
/// The span always measures, even on a null handle — the flow uses the
/// returned [`Duration`] to fill
/// [`FlowStats`](crate::FlowStats) timings, so the *same measurement*
/// feeds the stats, the `PhaseFinished` event, and the profiler. That
/// is what makes the three reconcile exactly.
#[derive(Debug)]
pub struct Span {
    start: Instant,
    kind: SpanKind,
    metrics: Metrics,
    done: bool,
}

impl Span {
    /// Stops the clock, records the elapsed time, and returns it.
    pub fn finish(mut self) -> Duration {
        self.done = true;
        let elapsed = self.start.elapsed();
        let kind = self.kind;
        self.metrics.record(|m| m.profiler.record(kind, elapsed));
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.done {
            let elapsed = self.start.elapsed();
            let kind = self.kind;
            self.metrics.record(|m| m.profiler.record(kind, elapsed));
        }
    }
}

/// Histogram bounds for states explored per throughput probe
/// (powers of four up to the default state budget's order of magnitude).
const PROBE_STATE_BOUNDS: &[u64] = &[
    16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304,
];

/// Histogram bounds for binary-search iterations per refinement task.
const REFINE_ITER_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

/// Histogram bounds for requests executed per drained service batch.
const QUEUE_DEPTH_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

/// Histogram bounds for memoized transitions invalidated per warm probe.
const INVALIDATED_BOUNDS: &[u64] = &[1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576];

/// Histogram bounds for the escalation depth at which a regional
/// admission committed (0 = home region; the overflow bucket catches the
/// global fallback on deep neighbor chains).
const ESCALATION_DEPTH_BOUNDS: &[u64] = &[0, 1, 2, 3];

/// Histogram bounds for network request latency in microseconds
/// (arrival to response write): sub-ms through multi-second, ×4 steps.
/// Unlike every other instrument, observations are wall-clock and thus
/// load-dependent — never compare them across runs.
/// Public so the bench loadgen can bucket its client-side latencies
/// into the same histogram shape the server reports.
pub const NET_LATENCY_BOUNDS: &[u64] = &[
    100, 400, 1_600, 6_400, 25_600, 102_400, 409_600, 1_638_400, 6_553_600,
];

/// Name, help text, and snapshot order of every registry counter.
/// The single source the exporters and [`MetricsSnapshot::counter`]
/// agree on.
const COUNTERS: &[(&str, &str)] = &[
    ("flows_started", "Allocation runs started."),
    (
        "flows_succeeded",
        "Allocation runs that produced a valid allocation.",
    ),
    ("flows_failed", "Allocation runs that returned an error."),
    (
        "bind_attempts",
        "Candidate tiles tried across both binding passes.",
    ),
    (
        "bind_accepted",
        "Bind attempts whose resource-constraint check held.",
    ),
    ("actors_rebound", "Actors moved by the re-binding pass."),
    (
        "schedules_constructed",
        "Static-order schedules fixed (one per scheduled tile).",
    ),
    (
        "schedule_states",
        "States explored by the list scheduler until recurrence.",
    ),
    (
        "global_slice_iterations",
        "Global slice binary-search probes.",
    ),
    (
        "refine_slice_iterations",
        "Per-tile refinement, commit and final probes.",
    ),
    (
        "throughput_checks",
        "Constrained-throughput evaluations requested.",
    ),
    (
        "cache_hits",
        "Evaluations answered from the throughput cache.",
    ),
    (
        "cache_misses",
        "Evaluations that ran the state-space exploration.",
    ),
    (
        "cache_evictions",
        "Memoized evaluations dropped by cache clears.",
    ),
    (
        "states_explored",
        "Constrained state-space states explored across all probes.",
    ),
    (
        "admission_admitted",
        "Applications admitted by an admission protocol.",
    ),
    (
        "admission_rejected",
        "Applications rejected or skipped by an admission protocol.",
    ),
    ("dse_points", "Design-space-exploration points evaluated."),
    (
        "service_requests",
        "Requests accepted into an allocation-service queue.",
    ),
    (
        "sessions_admitted",
        "Applications admitted as live service sessions.",
    ),
    (
        "sessions_departed",
        "Service sessions departed (resources reclaimed).",
    ),
    (
        "sessions_rebound",
        "Service sessions re-allocated after departures freed capacity.",
    ),
    (
        "warm_hits",
        "Probe transitions replayed from the warm-start exploration memo.",
    ),
    (
        "warm_misses",
        "Probe transitions recomputed by the constrained executor.",
    ),
    (
        "warm_trajectory_hits",
        "Warm probes answered entirely from a memoized trajectory.",
    ),
    (
        "cache_ancestor_hits",
        "Cache misses with a memoized ancestor differing in one tile slice.",
    ),
    (
        "region_admits_local",
        "Regional admissions committed entirely inside their home region.",
    ),
    (
        "region_escalations",
        "Regional admissions that escalated beyond their home region.",
    ),
    (
        "region_commits_speculative",
        "Region-parallel drain commits that reused the speculative regional allocation.",
    ),
    (
        "region_commits_inline",
        "Region-parallel drain commits recomputed inline against the global residual.",
    ),
    (
        "net_connections_opened",
        "TCP connections accepted by the network front-end.",
    ),
    (
        "net_connections_closed",
        "Network connections closed (client disconnect, fault, or drain).",
    ),
    (
        "net_requests_received",
        "Requests parsed off network connections.",
    ),
    (
        "net_requests_shed",
        "Requests shed with a typed Overloaded response at the queue watermark.",
    ),
    (
        "net_deadlines_expired",
        "Requests answered with a typed deadline response instead of executing.",
    ),
    (
        "net_parse_errors",
        "Malformed request lines answered with a typed parse-error response.",
    ),
    (
        "net_commits_logged",
        "Committed mutations appended to the deterministic commit log.",
    ),
    (
        "net_introspects",
        "Introspection requests answered over the wire.",
    ),
    (
        "traces_recorded",
        "Completed request traces recorded by the flight recorder.",
    ),
    (
        "traces_pinned",
        "Anomalous request traces pinned by the flight recorder.",
    ),
    (
        "solver_runs_exact",
        "Branch-and-bound solver runs started (exact or portfolio backend).",
    ),
    (
        "exact_nodes_expanded",
        "Branch-and-bound nodes expanded across all exact runs.",
    ),
    (
        "exact_lp_pivots",
        "Rational simplex pivots across all LP-relaxation bounds.",
    ),
    (
        "exact_prunes_bound",
        "Subtrees pruned by the LP/structural bound.",
    ),
    (
        "exact_prunes_infeasible",
        "Children discarded for resource infeasibility.",
    ),
    (
        "exact_leaves_evaluated",
        "Complete bindings evaluated with the throughput machinery.",
    ),
    (
        "exact_proven_optimal",
        "Exact runs that closed the gap and proved optimality.",
    ),
];

/// The full set of instruments the flow records into.
///
/// Every field is updatable through a shared reference (padded atomics,
/// or a mutex for the cold per-tile family), so one registry behind an
/// `Arc` serves the sequential flow and all parallel refinement tasks
/// alike. Counter semantics are documented in the Prometheus `# HELP`
/// lines the exporter emits (see the `COUNTERS` table in the source).
#[derive(Debug)]
pub struct MetricsRegistry {
    /// Allocation runs started.
    pub flows_started: Counter,
    /// Allocation runs that produced a valid allocation.
    pub flows_succeeded: Counter,
    /// Allocation runs that returned an error.
    pub flows_failed: Counter,
    /// Candidate tiles tried across both binding passes.
    pub bind_attempts: Counter,
    /// Bind attempts whose resource-constraint check held.
    pub bind_accepted: Counter,
    /// Actors moved by the re-binding pass.
    pub actors_rebound: Counter,
    /// Static-order schedules fixed (one per scheduled tile).
    pub schedules_constructed: Counter,
    /// States explored by the list scheduler until recurrence.
    pub schedule_states: Counter,
    /// Global slice binary-search probes.
    pub global_slice_iterations: Counter,
    /// Per-tile refinement, commit and final probes.
    pub refine_slice_iterations: Counter,
    /// Constrained-throughput evaluations requested.
    pub throughput_checks: Counter,
    /// Evaluations answered from the throughput cache.
    pub cache_hits: Counter,
    /// Evaluations that ran the state-space exploration.
    pub cache_misses: Counter,
    /// Memoized evaluations dropped by cache clears.
    pub cache_evictions: Counter,
    /// Constrained state-space states explored across all probes.
    pub states_explored: Counter,
    /// Applications admitted by an admission protocol.
    pub admission_admitted: Counter,
    /// Applications rejected or skipped by an admission protocol.
    pub admission_rejected: Counter,
    /// Design-space-exploration points evaluated.
    pub dse_points: Counter,
    /// Requests accepted into an allocation-service queue.
    pub service_requests: Counter,
    /// Applications admitted as live service sessions.
    pub sessions_admitted: Counter,
    /// Service sessions departed (resources reclaimed).
    pub sessions_departed: Counter,
    /// Service sessions re-allocated after departures freed capacity.
    pub sessions_rebound: Counter,
    /// Probe transitions replayed from the warm-start exploration memo.
    pub warm_hits: Counter,
    /// Probe transitions recomputed by the constrained executor.
    pub warm_misses: Counter,
    /// Warm probes answered entirely from a memoized trajectory.
    pub warm_trajectory_hits: Counter,
    /// Cache misses with a memoized ancestor differing in one tile slice.
    pub cache_ancestor_hits: Counter,
    /// Regional admissions committed entirely inside their home region.
    pub region_admits_local: Counter,
    /// Regional admissions that escalated beyond their home region.
    pub region_escalations: Counter,
    /// Region-parallel drain commits that reused the speculative
    /// regional allocation.
    pub region_commits_speculative: Counter,
    /// Region-parallel drain commits recomputed inline against the
    /// global residual.
    pub region_commits_inline: Counter,
    /// TCP connections accepted by the network front-end.
    pub net_connections_opened: Counter,
    /// Network connections closed (disconnect, fault, or drain).
    pub net_connections_closed: Counter,
    /// Requests parsed off network connections.
    pub net_requests_received: Counter,
    /// Requests shed with a typed `Overloaded` response because the
    /// service queue crossed the backpressure watermark.
    pub net_requests_shed: Counter,
    /// Requests answered with a typed deadline response (queued past
    /// their deadline, or trickled in slower than the read deadline).
    pub net_deadlines_expired: Counter,
    /// Malformed request lines answered with a typed parse error.
    pub net_parse_errors: Counter,
    /// Committed mutations appended to the deterministic commit log.
    pub net_commits_logged: Counter,
    /// Introspection requests answered over the wire.
    pub net_introspects: Counter,
    /// Completed request traces recorded by the flight recorder.
    pub traces_recorded: Counter,
    /// Anomalous request traces pinned by the flight recorder.
    pub traces_pinned: Counter,
    /// Branch-and-bound solver runs started (exact or portfolio backend).
    pub solver_runs_exact: Counter,
    /// Branch-and-bound nodes expanded across all exact runs.
    pub exact_nodes_expanded: Counter,
    /// Rational simplex pivots across all LP-relaxation bounds.
    pub exact_lp_pivots: Counter,
    /// Subtrees pruned by the LP/structural bound.
    pub exact_prunes_bound: Counter,
    /// Children discarded for resource infeasibility.
    pub exact_prunes_infeasible: Counter,
    /// Complete bindings evaluated with the throughput machinery.
    pub exact_leaves_evaluated: Counter,
    /// Exact runs that closed the gap and proved optimality.
    pub exact_proven_optimal: Counter,
    /// Distinct configurations currently memoized by the cache.
    pub cache_entries: Gauge,
    /// Currently live service sessions.
    pub sessions_live: Gauge,
    /// Regions the admission service partitions the platform into
    /// (1 = regional admission disabled).
    pub regions_configured: Gauge,
    /// Currently open network connections.
    pub net_connections_live: Gauge,
    /// States explored per constrained-throughput probe (misses only).
    pub probe_states: Histogram,
    /// Binary-search iterations per per-tile refinement task.
    pub refine_search_iters: Histogram,
    /// Requests executed per drained service batch.
    pub service_queue_depth: Histogram,
    /// Memoized transitions invalidated per warm-started probe.
    pub states_invalidated: Histogram,
    /// Escalation depth at which each regional admission committed
    /// (0 = home region; overflow = global fallback).
    pub region_escalation_depth: Histogram,
    /// Wall-clock request latency of the network front-end in
    /// microseconds (arrival → response write). Load-dependent — the
    /// one instrument that is *not* deterministic for a fixed workload.
    pub net_request_latency_us: Histogram,
    /// Bind attempts per candidate tile index.
    pub bind_attempts_per_tile: IndexedCounter,
    /// Admissions committed per home region index.
    pub region_admits_per_region: IndexedCounter,
    /// Wall time per span of the flow → bind/schedule/slice → probe
    /// hierarchy.
    pub profiler: Profiler,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A registry with every instrument at zero.
    pub fn new() -> Self {
        MetricsRegistry {
            flows_started: Counter::default(),
            flows_succeeded: Counter::default(),
            flows_failed: Counter::default(),
            bind_attempts: Counter::default(),
            bind_accepted: Counter::default(),
            actors_rebound: Counter::default(),
            schedules_constructed: Counter::default(),
            schedule_states: Counter::default(),
            global_slice_iterations: Counter::default(),
            refine_slice_iterations: Counter::default(),
            throughput_checks: Counter::default(),
            cache_hits: Counter::default(),
            cache_misses: Counter::default(),
            cache_evictions: Counter::default(),
            states_explored: Counter::default(),
            admission_admitted: Counter::default(),
            admission_rejected: Counter::default(),
            dse_points: Counter::default(),
            service_requests: Counter::default(),
            sessions_admitted: Counter::default(),
            sessions_departed: Counter::default(),
            sessions_rebound: Counter::default(),
            warm_hits: Counter::default(),
            warm_misses: Counter::default(),
            warm_trajectory_hits: Counter::default(),
            cache_ancestor_hits: Counter::default(),
            region_admits_local: Counter::default(),
            region_escalations: Counter::default(),
            region_commits_speculative: Counter::default(),
            region_commits_inline: Counter::default(),
            net_connections_opened: Counter::default(),
            net_connections_closed: Counter::default(),
            net_requests_received: Counter::default(),
            net_requests_shed: Counter::default(),
            net_deadlines_expired: Counter::default(),
            net_parse_errors: Counter::default(),
            net_commits_logged: Counter::default(),
            net_introspects: Counter::default(),
            traces_recorded: Counter::default(),
            traces_pinned: Counter::default(),
            solver_runs_exact: Counter::default(),
            exact_nodes_expanded: Counter::default(),
            exact_lp_pivots: Counter::default(),
            exact_prunes_bound: Counter::default(),
            exact_prunes_infeasible: Counter::default(),
            exact_leaves_evaluated: Counter::default(),
            exact_proven_optimal: Counter::default(),
            cache_entries: Gauge::default(),
            sessions_live: Gauge::default(),
            regions_configured: Gauge::default(),
            net_connections_live: Gauge::default(),
            probe_states: Histogram::new(PROBE_STATE_BOUNDS),
            refine_search_iters: Histogram::new(REFINE_ITER_BOUNDS),
            service_queue_depth: Histogram::new(QUEUE_DEPTH_BOUNDS),
            states_invalidated: Histogram::new(INVALIDATED_BOUNDS),
            region_escalation_depth: Histogram::new(ESCALATION_DEPTH_BOUNDS),
            net_request_latency_us: Histogram::new(NET_LATENCY_BOUNDS),
            bind_attempts_per_tile: IndexedCounter::default(),
            region_admits_per_region: IndexedCounter::default(),
            profiler: Profiler::default(),
        }
    }

    fn counter_value(&self, name: &str) -> u64 {
        match name {
            "flows_started" => self.flows_started.get(),
            "flows_succeeded" => self.flows_succeeded.get(),
            "flows_failed" => self.flows_failed.get(),
            "bind_attempts" => self.bind_attempts.get(),
            "bind_accepted" => self.bind_accepted.get(),
            "actors_rebound" => self.actors_rebound.get(),
            "schedules_constructed" => self.schedules_constructed.get(),
            "schedule_states" => self.schedule_states.get(),
            "global_slice_iterations" => self.global_slice_iterations.get(),
            "refine_slice_iterations" => self.refine_slice_iterations.get(),
            "throughput_checks" => self.throughput_checks.get(),
            "cache_hits" => self.cache_hits.get(),
            "cache_misses" => self.cache_misses.get(),
            "cache_evictions" => self.cache_evictions.get(),
            "states_explored" => self.states_explored.get(),
            "admission_admitted" => self.admission_admitted.get(),
            "admission_rejected" => self.admission_rejected.get(),
            "dse_points" => self.dse_points.get(),
            "service_requests" => self.service_requests.get(),
            "sessions_admitted" => self.sessions_admitted.get(),
            "sessions_departed" => self.sessions_departed.get(),
            "sessions_rebound" => self.sessions_rebound.get(),
            "warm_hits" => self.warm_hits.get(),
            "warm_misses" => self.warm_misses.get(),
            "warm_trajectory_hits" => self.warm_trajectory_hits.get(),
            "cache_ancestor_hits" => self.cache_ancestor_hits.get(),
            "region_admits_local" => self.region_admits_local.get(),
            "region_escalations" => self.region_escalations.get(),
            "region_commits_speculative" => self.region_commits_speculative.get(),
            "region_commits_inline" => self.region_commits_inline.get(),
            "net_connections_opened" => self.net_connections_opened.get(),
            "net_connections_closed" => self.net_connections_closed.get(),
            "net_requests_received" => self.net_requests_received.get(),
            "net_requests_shed" => self.net_requests_shed.get(),
            "net_deadlines_expired" => self.net_deadlines_expired.get(),
            "net_parse_errors" => self.net_parse_errors.get(),
            "net_commits_logged" => self.net_commits_logged.get(),
            "net_introspects" => self.net_introspects.get(),
            "traces_recorded" => self.traces_recorded.get(),
            "traces_pinned" => self.traces_pinned.get(),
            "solver_runs_exact" => self.solver_runs_exact.get(),
            "exact_nodes_expanded" => self.exact_nodes_expanded.get(),
            "exact_lp_pivots" => self.exact_lp_pivots.get(),
            "exact_prunes_bound" => self.exact_prunes_bound.get(),
            "exact_prunes_infeasible" => self.exact_prunes_infeasible.get(),
            "exact_leaves_evaluated" => self.exact_leaves_evaluated.get(),
            "exact_proven_optimal" => self.exact_proven_optimal.get(),
            other => unreachable!("unregistered counter `{other}`"),
        }
    }

    /// Applies one [`FlowEvent`] to the registry — the
    /// [`MetricsSink`](crate::events::MetricsSink) bridge, so an event
    /// stream alone reconstructs the counters the instrumented flow
    /// records directly.
    pub fn record_event(&self, event: &FlowEvent) {
        match event {
            FlowEvent::FlowStarted { .. } => self.flows_started.inc(),
            FlowEvent::FlowFinished { ok, duration } => {
                if *ok {
                    self.flows_succeeded.inc();
                } else {
                    self.flows_failed.inc();
                }
                self.profiler.record(SpanKind::Flow, *duration);
            }
            FlowEvent::PhaseFinished { phase, duration } => {
                self.profiler
                    .record(SpanKind::from_phase(*phase), *duration);
            }
            FlowEvent::BindAttempt { tile, accepted, .. } => {
                self.bind_attempts.inc();
                self.bind_attempts_per_tile.add(*tile, 1);
                if *accepted {
                    self.bind_accepted.inc();
                }
            }
            FlowEvent::ActorRebound { .. } => self.actors_rebound.inc(),
            FlowEvent::ScheduleRecurrence { states } => {
                self.schedule_states.add(*states as u64);
            }
            FlowEvent::ScheduleConstructed { .. } => self.schedules_constructed.inc(),
            FlowEvent::SliceProbe {
                scope, cache_hit, ..
            } => {
                self.throughput_checks.inc();
                if *cache_hit {
                    self.cache_hits.inc();
                } else {
                    self.cache_misses.inc();
                }
                match scope {
                    SliceScope::Global { .. } => self.global_slice_iterations.inc(),
                    SliceScope::Refine { .. } | SliceScope::Commit { .. } | SliceScope::Final => {
                        self.refine_slice_iterations.inc();
                    }
                }
            }
            FlowEvent::AdmissionDecision { admitted, .. } => {
                if *admitted {
                    self.admission_admitted.inc();
                } else {
                    self.admission_rejected.inc();
                }
            }
            FlowEvent::DsePointEvaluated { .. } => self.dse_points.inc(),
            FlowEvent::ServiceRequestQueued { .. } => self.service_requests.inc(),
            FlowEvent::ServiceBatchDrained { requests, .. } => {
                self.service_queue_depth.observe(*requests as u64);
            }
            FlowEvent::SessionAdmitted { live, .. } => {
                self.sessions_admitted.inc();
                self.sessions_live.set(*live as u64);
            }
            FlowEvent::SessionDeparted { live, .. } => {
                self.sessions_departed.inc();
                self.sessions_live.set(*live as u64);
            }
            FlowEvent::SessionRebound { .. } => self.sessions_rebound.inc(),
            FlowEvent::SolverStarted { .. } => self.solver_runs_exact.inc(),
            FlowEvent::SolverFinished {
                proven_optimal,
                nodes,
                lp_pivots,
                pruned_bound,
                pruned_infeasible,
                leaves,
                ..
            } => {
                self.exact_nodes_expanded.add(*nodes);
                self.exact_lp_pivots.add(*lp_pivots);
                self.exact_prunes_bound.add(*pruned_bound);
                self.exact_prunes_infeasible.add(*pruned_infeasible);
                self.exact_leaves_evaluated.add(*leaves);
                if *proven_optimal {
                    self.exact_proven_optimal.inc();
                }
            }
            _ => {}
        }
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: COUNTERS
                .iter()
                .map(|&(name, _)| (name, self.counter_value(name)))
                .collect(),
            cache_entries: self.cache_entries.get(),
            sessions_live: self.sessions_live.get(),
            regions_configured: self.regions_configured.get(),
            net_connections_live: self.net_connections_live.get(),
            bind_attempts_per_tile: self.bind_attempts_per_tile.values(),
            region_admits_per_region: self.region_admits_per_region.values(),
            histograms: vec![
                self.probe_states.snapshot(
                    "probe_states",
                    "States explored per constrained-throughput probe (cache misses only).",
                ),
                self.refine_search_iters.snapshot(
                    "refine_search_iters",
                    "Binary-search iterations per per-tile refinement task.",
                ),
                self.service_queue_depth.snapshot(
                    "service_queue_depth",
                    "Requests executed per drained service batch.",
                ),
                self.states_invalidated.snapshot(
                    "states_invalidated",
                    "Memoized transitions invalidated per warm-started probe.",
                ),
                self.region_escalation_depth.snapshot(
                    "region_escalation_depth",
                    "Escalation depth at which each regional admission committed.",
                ),
                self.net_request_latency_us.snapshot(
                    "net_request_latency_us",
                    "Wall-clock network request latency in microseconds (load-dependent).",
                ),
            ],
            phases: SpanKind::ALL
                .iter()
                .map(|&k| PhaseSnapshot {
                    name: k.name(),
                    parent: k.parent().map(SpanKind::name),
                    nanos: self.profiler.nanos(k),
                    calls: self.profiler.calls(k),
                })
                .collect(),
        }
    }
}

/// The no-op recorder: converts into a null [`Metrics`] handle, making
/// `allocator.with_metrics(NullMetrics)` read like the
/// [`NullSink`](crate::events::NullSink) it mirrors.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMetrics;

/// A cheap, cloneable recording handle: either null (the default;
/// every instrumentation site reduces to one branch) or backed by a
/// shared [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    registry: Option<Arc<MetricsRegistry>>,
}

impl Metrics {
    /// The disabled handle (same as `Metrics::default()`).
    pub fn null() -> Self {
        Metrics { registry: None }
    }

    /// A handle backed by a fresh registry. Clones share the registry.
    pub fn collecting() -> Self {
        Metrics {
            registry: Some(Arc::new(MetricsRegistry::new())),
        }
    }

    /// `false` on the null handle.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// Runs `f` against the registry; a no-op on the null handle.
    #[inline]
    pub fn record(&self, f: impl FnOnce(&MetricsRegistry)) {
        if let Some(registry) = &self.registry {
            f(registry);
        }
    }

    /// The backing registry, if any.
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.registry.as_ref()
    }

    /// Starts a timing span. The span always measures (its duration
    /// feeds [`FlowStats`](crate::FlowStats) timings); it records into
    /// the registry only on a collecting handle.
    pub fn span(&self, kind: SpanKind) -> Span {
        Span {
            start: Instant::now(),
            kind,
            metrics: self.clone(),
            done: false,
        }
    }

    /// Snapshots the registry; `None` on the null handle.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.registry.as_ref().map(|r| r.snapshot())
    }
}

impl From<NullMetrics> for Metrics {
    fn from(_: NullMetrics) -> Self {
        Metrics::null()
    }
}

impl From<Arc<MetricsRegistry>> for Metrics {
    fn from(registry: Arc<MetricsRegistry>) -> Self {
        Metrics {
            registry: Some(registry),
        }
    }
}

impl From<MetricsRegistry> for Metrics {
    fn from(registry: MetricsRegistry) -> Self {
        Metrics {
            registry: Some(Arc::new(registry)),
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Instrument name (snake case, no `sdfrs_` prefix).
    pub name: &'static str,
    /// Help text the Prometheus exporter emits.
    pub help: &'static str,
    /// Upper bucket bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries; the
    /// last is the overflow bucket). Non-cumulative.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

/// A point-in-time copy of one profiler span node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Span name (`flow`, `bind`, `schedule`, `slice`, `probe`).
    pub name: &'static str,
    /// Parent span name, `None` for the root.
    pub parent: Option<&'static str>,
    /// Total nanoseconds attributed to this span.
    pub nanos: u64,
    /// Spans finished.
    pub calls: u64,
}

/// A deterministic, comparable copy of a [`MetricsRegistry`] — what the
/// exporters serialize and what the conformance oracle reconciles
/// against [`FlowStats`](crate::FlowStats).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, fixed registration order.
    pub counters: Vec<(&'static str, u64)>,
    /// The cache-residency gauge.
    pub cache_entries: u64,
    /// The live-session gauge.
    pub sessions_live: u64,
    /// The configured-regions gauge (1 = regional admission disabled).
    pub regions_configured: u64,
    /// The open-network-connections gauge.
    pub net_connections_live: u64,
    /// Bind attempts per tile index.
    pub bind_attempts_per_tile: Vec<u64>,
    /// Admissions committed per home region index.
    pub region_admits_per_region: Vec<u64>,
    /// Every histogram, fixed registration order.
    pub histograms: Vec<HistogramSnapshot>,
    /// Every profiler span node, hierarchy order.
    pub phases: Vec<PhaseSnapshot>,
}

impl MetricsSnapshot {
    /// The value of counter `name`; panics on an unregistered name
    /// (a typo in a test, never a runtime condition).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("unregistered counter `{name}`"))
            .1
    }

    /// A copy with all span durations zeroed: everything that remains
    /// is deterministic for a fixed scenario (counters, per-tile
    /// families, histogram buckets, call counts), so two runs can be
    /// compared with `==`.
    pub fn without_timings(&self) -> MetricsSnapshot {
        let mut copy = self.clone();
        for phase in &mut copy.phases {
            phase.nanos = 0;
        }
        copy
    }

    /// Serializes in Prometheus text exposition format (`# HELP` /
    /// `# TYPE` comments, `_total` counter suffixes, cumulative
    /// `_bucket{le=...}` histogram series, span time as
    /// `sdfrs_phase_seconds_total{phase=...}`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        for &(name, help) in COUNTERS {
            let value = self.counter(name);
            let _ = writeln!(out, "# HELP sdfrs_{name}_total {help}");
            let _ = writeln!(out, "# TYPE sdfrs_{name}_total counter");
            let _ = writeln!(out, "sdfrs_{name}_total {value}");
        }
        out.push_str("# HELP sdfrs_cache_entries Distinct configurations currently memoized.\n");
        out.push_str("# TYPE sdfrs_cache_entries gauge\n");
        let _ = writeln!(out, "sdfrs_cache_entries {}", self.cache_entries);
        out.push_str("# HELP sdfrs_sessions_live Currently live service sessions.\n");
        out.push_str("# TYPE sdfrs_sessions_live gauge\n");
        let _ = writeln!(out, "sdfrs_sessions_live {}", self.sessions_live);
        out.push_str(
            "# HELP sdfrs_regions_configured Regions the admission service partitions into.\n",
        );
        out.push_str("# TYPE sdfrs_regions_configured gauge\n");
        let _ = writeln!(out, "sdfrs_regions_configured {}", self.regions_configured);
        out.push_str("# HELP sdfrs_net_connections_live Currently open network connections.\n");
        out.push_str("# TYPE sdfrs_net_connections_live gauge\n");
        let _ = writeln!(
            out,
            "sdfrs_net_connections_live {}",
            self.net_connections_live
        );
        if !self.region_admits_per_region.is_empty() {
            out.push_str(
                "# HELP sdfrs_region_admits_per_region_total Admissions committed per home region.\n",
            );
            out.push_str("# TYPE sdfrs_region_admits_per_region_total counter\n");
            for (region, value) in self.region_admits_per_region.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "sdfrs_region_admits_per_region_total{{region=\"{region}\"}} {value}"
                );
            }
        }
        if !self.bind_attempts_per_tile.is_empty() {
            out.push_str(
                "# HELP sdfrs_bind_attempts_per_tile_total Bind attempts per candidate tile.\n",
            );
            out.push_str("# TYPE sdfrs_bind_attempts_per_tile_total counter\n");
            for (tile, value) in self.bind_attempts_per_tile.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "sdfrs_bind_attempts_per_tile_total{{tile=\"{tile}\"}} {value}"
                );
            }
        }
        for h in &self.histograms {
            let _ = writeln!(out, "# HELP sdfrs_{} {}", h.name, h.help);
            let _ = writeln!(out, "# TYPE sdfrs_{} histogram", h.name);
            let mut cumulative = 0u64;
            for (bound, count) in h.bounds.iter().zip(&h.counts) {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "sdfrs_{}_bucket{{le=\"{bound}\"}} {cumulative}",
                    h.name
                );
            }
            let _ = writeln!(out, "sdfrs_{}_bucket{{le=\"+Inf\"}} {}", h.name, h.count);
            let _ = writeln!(out, "sdfrs_{}_sum {}", h.name, h.sum);
            let _ = writeln!(out, "sdfrs_{}_count {}", h.name, h.count);
        }
        out.push_str("# HELP sdfrs_phase_seconds_total Wall time attributed to each span.\n");
        out.push_str("# TYPE sdfrs_phase_seconds_total counter\n");
        for p in &self.phases {
            let _ = writeln!(
                out,
                "sdfrs_phase_seconds_total{{phase=\"{}\"}} {}",
                p.name,
                p.nanos as f64 / 1e9
            );
        }
        out.push_str("# HELP sdfrs_phase_calls_total Spans finished per node.\n");
        out.push_str("# TYPE sdfrs_phase_calls_total counter\n");
        for p in &self.phases {
            let _ = writeln!(
                out,
                "sdfrs_phase_calls_total{{phase=\"{}\"}} {}",
                p.name, p.calls
            );
        }
        out
    }

    /// Serializes as one deterministic JSON object (fixed key order,
    /// no floats except span seconds derived from integer nanos).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{value}");
        }
        let _ = write!(
            out,
            "}},\"gauges\":{{\"cache_entries\":{},\"sessions_live\":{},\"regions_configured\":{},\"net_connections_live\":{}}}",
            self.cache_entries, self.sessions_live, self.regions_configured, self.net_connections_live
        );
        out.push_str(",\"bind_attempts_per_tile\":[");
        for (i, v) in self.bind_attempts_per_tile.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push_str("],\"region_admits_per_region\":[");
        for (i, v) in self.region_admits_per_region.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"bounds\":[", h.name);
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            let _ = write!(out, "],\"sum\":{},\"count\":{}}}", h.sum, h.count);
        }
        out.push_str("],\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"parent\":", p.name);
            match p.parent {
                Some(parent) => {
                    let _ = write!(out, "\"{parent}\"");
                }
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"nanos\":{},\"calls\":{}}}", p.nanos, p.calls);
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_handle_records_nothing_and_snapshots_none() {
        let metrics = Metrics::null();
        assert!(!metrics.enabled());
        metrics.record(|m| m.cache_hits.inc());
        assert!(metrics.snapshot().is_none());
        // The span still measures (the flow uses its duration) but has
        // nowhere to record.
        let d = metrics.span(SpanKind::Bind).finish();
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn collecting_handle_shares_one_registry_across_clones() {
        let metrics = Metrics::collecting();
        let clone = metrics.clone();
        metrics.record(|m| m.cache_hits.inc());
        clone.record(|m| m.cache_hits.add(2));
        assert_eq!(metrics.snapshot().unwrap().counter("cache_hits"), 3);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new(&[10, 100]);
        for v in [1, 10, 11, 100, 101, 5000] {
            h.observe(v);
        }
        let s = h.snapshot("test", "test");
        assert_eq!(s.counts, vec![2, 2, 2]);
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1 + 10 + 11 + 100 + 101 + 5000);
    }

    #[test]
    fn span_hierarchy_is_static() {
        assert_eq!(SpanKind::Flow.parent(), None);
        assert_eq!(SpanKind::Bind.parent(), Some(SpanKind::Flow));
        assert_eq!(SpanKind::Schedule.parent(), Some(SpanKind::Flow));
        assert_eq!(SpanKind::Slice.parent(), Some(SpanKind::Flow));
        assert_eq!(SpanKind::Probe.parent(), Some(SpanKind::Slice));
    }

    #[test]
    fn span_records_on_finish_and_on_drop() {
        let metrics = Metrics::collecting();
        let d = metrics.span(SpanKind::Slice).finish();
        {
            let _guard = metrics.span(SpanKind::Slice);
        }
        let registry = metrics.registry().unwrap();
        assert_eq!(registry.profiler.calls(SpanKind::Slice), 2);
        assert!(registry.profiler.nanos(SpanKind::Slice) >= d.as_nanos() as u64);
    }

    #[test]
    fn snapshot_counter_lookup_covers_every_registered_name() {
        let snapshot = MetricsRegistry::new().snapshot();
        for &(name, _) in COUNTERS {
            assert_eq!(snapshot.counter(name), 0);
        }
        assert_eq!(snapshot.counters.len(), COUNTERS.len());
    }

    #[test]
    fn prometheus_exposition_shape() {
        let registry = MetricsRegistry::new();
        registry.cache_hits.add(3);
        registry.cache_misses.add(2);
        registry.probe_states.observe(50);
        registry.probe_states.observe(100_000);
        registry.bind_attempts_per_tile.add(1, 4);
        registry
            .profiler
            .record(SpanKind::Flow, Duration::from_millis(5));
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("# TYPE sdfrs_cache_hits_total counter"));
        assert!(text.contains("sdfrs_cache_hits_total 3"));
        assert!(text.contains("sdfrs_cache_misses_total 2"));
        assert!(text.contains("sdfrs_probe_states_bucket{le=\"64\"} 1"));
        // Buckets are cumulative in the exposition format.
        assert!(text.contains("sdfrs_probe_states_bucket{le=\"262144\"} 2"));
        assert!(text.contains("sdfrs_probe_states_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("sdfrs_probe_states_count 2"));
        assert!(text.contains("sdfrs_bind_attempts_per_tile_total{tile=\"1\"} 4"));
        assert!(text.contains("sdfrs_phase_seconds_total{phase=\"flow\"} 0.005"));
        assert!(text.contains("sdfrs_phase_calls_total{phase=\"flow\"} 1"));
    }

    #[test]
    fn json_export_is_deterministic_and_flat() {
        let registry = MetricsRegistry::new();
        registry.throughput_checks.add(7);
        let a = registry.snapshot().to_json();
        let b = registry.snapshot().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"counters\":{\"flows_started\":0"));
        assert!(a.contains("\"throughput_checks\":7"));
        assert!(a.contains("\"phases\":[{\"name\":\"flow\",\"parent\":null"));
        assert!(a.ends_with("]}"));
    }

    #[test]
    fn record_event_mirrors_direct_instrumentation() {
        use crate::events::BindPass;
        use sdfrs_sdf::Rational;
        let registry = MetricsRegistry::new();
        registry.record_event(&FlowEvent::BindAttempt {
            pass: BindPass::FirstFit,
            actor: "a1".into(),
            tile: 0,
            cost: 1.0,
            accepted: true,
        });
        registry.record_event(&FlowEvent::SliceProbe {
            scope: SliceScope::Global { k: 1, of: 2 },
            slices: vec![1, 1],
            throughput: Rational::new(1, 30),
            feasible: true,
            cache_hit: false,
        });
        registry.record_event(&FlowEvent::SliceProbe {
            scope: SliceScope::Final,
            slices: vec![1, 1],
            throughput: Rational::new(1, 30),
            feasible: true,
            cache_hit: true,
        });
        let s = registry.snapshot();
        assert_eq!(s.counter("bind_attempts"), 1);
        assert_eq!(s.counter("bind_accepted"), 1);
        assert_eq!(s.bind_attempts_per_tile, vec![1]);
        assert_eq!(s.counter("throughput_checks"), 2);
        assert_eq!(s.counter("global_slice_iterations"), 1);
        assert_eq!(s.counter("refine_slice_iterations"), 1);
        assert_eq!(s.counter("cache_hits"), 1);
        assert_eq!(s.counter("cache_misses"), 1);
    }

    #[test]
    fn service_events_feed_the_session_instruments() {
        let registry = MetricsRegistry::new();
        registry.record_event(&FlowEvent::ServiceRequestQueued {
            seq: 0,
            op: "admit",
        });
        registry.record_event(&FlowEvent::SessionAdmitted {
            session: 1,
            app: "a".into(),
            live: 1,
        });
        registry.record_event(&FlowEvent::ServiceBatchDrained {
            batch: 0,
            requests: 3,
        });
        registry.record_event(&FlowEvent::SessionDeparted {
            session: 1,
            live: 0,
        });
        registry.record_event(&FlowEvent::SessionRebound {
            session: 2,
            changed: false,
        });
        let s = registry.snapshot();
        assert_eq!(s.counter("service_requests"), 1);
        assert_eq!(s.counter("sessions_admitted"), 1);
        assert_eq!(s.counter("sessions_departed"), 1);
        assert_eq!(s.counter("sessions_rebound"), 1);
        assert_eq!(s.sessions_live, 0);
        let depth = &s.histograms[2];
        assert_eq!(depth.name, "service_queue_depth");
        assert_eq!(depth.count, 1);
        assert_eq!(depth.sum, 3);
    }

    #[test]
    fn without_timings_zeroes_only_span_nanos() {
        let registry = MetricsRegistry::new();
        registry.cache_hits.inc();
        registry
            .profiler
            .record(SpanKind::Flow, Duration::from_millis(1));
        let s = registry.snapshot().without_timings();
        assert_eq!(s.counter("cache_hits"), 1);
        assert!(s.phases.iter().all(|p| p.nanos == 0));
        assert_eq!(s.phases[0].calls, 1);
    }
}
