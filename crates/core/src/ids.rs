//! Typed identifiers of the allocation layer.
//!
//! Application positions in a batch and live service sessions used to
//! travel as raw `usize` indices; these newtypes make the two spaces
//! unmixable at compile time. [`AppId`] is an *index* into the
//! application slice handed to a batch protocol; [`SessionId`] is an
//! *opaque ticket* handed out by the
//! [`AllocationService`](crate::service::AllocationService) — session ids
//! are never reused, so a stale ticket fails cleanly instead of aliasing
//! a later tenant.

use std::fmt;

/// Position of an application in the slice passed to a batch admission
/// protocol ([`Allocator::admit_with`](crate::Allocator::admit_with),
/// [`multi_app`](crate::multi_app)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(u32);

impl AppId {
    /// The id for position `index` of the application slice.
    pub fn from_index(index: usize) -> Self {
        AppId(u32::try_from(index).expect("application index fits u32"))
    }

    /// The position this id refers to.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// Ticket of one live application session in an
/// [`AllocationService`](crate::service::AllocationService).
///
/// Monotonically increasing and never reused: departing a session
/// invalidates its id forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(u64);

impl SessionId {
    /// Wraps a raw session number (as read back from a JSONL response or
    /// an event).
    pub fn from_raw(raw: u64) -> Self {
        SessionId(raw)
    }

    /// The raw session number (what events and JSONL responses carry).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_ids_round_trip_and_display() {
        let id = AppId::from_index(3);
        assert_eq!(id.index(), 3);
        assert_eq!(id.to_string(), "app3");
        assert!(AppId::from_index(0) < id);
    }

    #[test]
    fn session_ids_are_ordered_and_display() {
        let a = SessionId::from_raw(1);
        let b = SessionId::from_raw(2);
        assert!(a < b);
        assert_eq!(b.to_string(), "s2");
        assert_eq!(b.raw(), 2);
    }
}
