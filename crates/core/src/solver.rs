//! The pluggable solver interface behind admission: [`SolverBackend`]
//! implementations produce a typed [`SolveOutcome`] — the allocation
//! plus a certified lower/upper throughput bound pair, the optimality
//! gap between them, and proof-of-work statistics.
//!
//! This replaces the closed `AdmissionPolicy` enum dispatch: the enum
//! survives as a thin constructor facade
//! ([`AdmissionPolicy::greedy`](crate::AdmissionPolicy::greedy),
//! [`AdmissionPolicy::exact`](crate::AdmissionPolicy::exact), …) whose
//! [`solver_backend`](crate::AdmissionPolicy::solver_backend) method
//! resolves to one of the backends here:
//!
//! * [`Greedy`] — the paper's three-step heuristic
//!   ([`Allocator::allocate`]), wrapped with the cheap structural upper
//!   bound of [`sdfrs_sdf::analysis::bounds`] so even the heuristic
//!   reports a (loose) certified gap;
//! * [`Exact`] — the [`exact`] branch-and-bound search:
//!   certified bounds on the best *achievable* guaranteed throughput of
//!   the platform state, with a full-remaining-wheel witness allocation;
//! * [`Portfolio`] — races greedy first (its allocation is what gets
//!   committed: minimal slices, admission-friendly), then spends the
//!   exact search's node budget tightening the bound pair around it.
//!
//! The bounds in a [`SolveReport`] always refer to the *optimal
//! achievable* guaranteed iteration throughput for this application on
//! this (partially occupied) platform — `lower` is witnessed by a
//! concrete allocation, `upper` is certified by the LP relaxation /
//! structural bounds. The committed allocation's own
//! [`guaranteed_throughput`](Allocation::guaranteed_throughput) may be
//! smaller (greedy stops once the constraint λ is met).

use sdfrs_appmodel::ApplicationGraph;
use sdfrs_platform::{ArchitectureGraph, PlatformState};
use sdfrs_sdf::analysis::bounds::throughput_bounds;
use sdfrs_sdf::Rational;

use crate::allocator::Allocator;
use crate::error::MapError;
use crate::exact::{self, ExactConfig};
use crate::flow::{Allocation, FlowStats};

/// Which backend produced a [`SolveReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// The paper's heuristic flow.
    Greedy,
    /// Branch-and-bound with LP-relaxation pruning.
    Exact,
    /// Greedy allocation, exact-search-tightened bounds.
    Portfolio,
}

impl SolverKind {
    /// Stable lower-case label (CLI values, JSONL fields, event payloads).
    pub fn name(&self) -> &'static str {
        match self {
            SolverKind::Greedy => "greedy",
            SolverKind::Exact => "exact",
            SolverKind::Portfolio => "portfolio",
        }
    }
}

impl std::fmt::Display for SolverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Certified bounds and proof-of-work statistics of one solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveReport {
    /// The backend that produced this report.
    pub kind: SolverKind,
    /// Certified lower bound: the guaranteed iteration throughput of the
    /// best allocation found (witnessed, not estimated).
    pub lower: Rational,
    /// Certified upper bound on the optimal achievable guaranteed
    /// iteration throughput (LP relaxation / structural bounds / a
    /// completed search). Always ≥ `lower`.
    pub upper: Rational,
    /// Relative optimality gap `(upper − lower) / upper` (0 when
    /// `upper` is 0).
    pub gap: Rational,
    /// `true` when the search proved `lower` optimal (`gap == 0` via a
    /// completed enumeration, not merely a coincidentally tight bound
    /// pair — though both imply optimality).
    pub proven_optimal: bool,
    /// Branch-and-bound nodes expanded (0 for pure greedy).
    pub nodes_expanded: u64,
    /// Simplex pivots across all LP-relaxation bound computations.
    pub lp_pivots: u64,
    /// Subtrees pruned because their LP bound could not beat the
    /// incumbent (or the throughput constraint).
    pub pruned_bound: u64,
    /// Children discarded for resource infeasibility.
    pub pruned_infeasible: u64,
    /// Complete bindings evaluated with the full throughput machinery.
    pub leaves_evaluated: u64,
}

impl SolveReport {
    /// The relative gap `(upper − lower) / upper`, the figure of merit
    /// of the EXPERIMENTS.md gap study.
    pub fn gap_between(lower: Rational, upper: Rational) -> Rational {
        if upper > Rational::ZERO {
            (upper - lower) / upper
        } else {
            Rational::ZERO
        }
    }
}

/// What a [`SolverBackend`] returns: the allocation to commit plus the
/// run's statistics and certified-bound report.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The allocation to commit.
    pub allocation: Allocation,
    /// Flow statistics of the run that produced the allocation.
    pub stats: FlowStats,
    /// Certified bounds and proof-of-work statistics.
    pub report: SolveReport,
}

impl SolveOutcome {
    pub(crate) fn new(allocation: Allocation, stats: FlowStats, report: SolveReport) -> Self {
        SolveOutcome {
            allocation,
            stats,
            report,
        }
    }
}

/// An object-safe allocation solver: one application against one
/// (partially occupied) platform state, through the shared
/// [`Allocator`] (its cache, sink, and metrics).
///
/// Implementations must be deterministic: the same inputs (including
/// allocator configuration) must produce bit-identical outcomes.
pub trait SolverBackend: Send {
    /// The kind tag reported in outcomes and events.
    fn kind(&self) -> SolverKind;

    /// Solves one application against `state`.
    ///
    /// # Errors
    ///
    /// [`MapError::ConstraintUnsatisfiable`] when no allocation meeting
    /// the throughput constraint exists (or none was found within the
    /// budget); other [`MapError`]s as for [`Allocator::allocate`].
    fn solve(
        &self,
        allocator: &mut Allocator,
        app: &ApplicationGraph,
        arch: &ArchitectureGraph,
        state: &PlatformState,
    ) -> Result<SolveOutcome, MapError>;
}

/// The structural throughput upper bound of the *application* graph —
/// sound for any binding, since the binding-aware graph only adds
/// constraints (connection actors, TDMA wait times, static orders).
fn structural_upper(app: &ApplicationGraph, max_cycles: usize) -> Option<Rational> {
    throughput_bounds(app.graph(), max_cycles)
        .ok()
        .and_then(|b| b.tightest())
}

/// The paper's heuristic flow as a [`SolverBackend`]: the allocation of
/// [`Allocator::allocate`], bounded above by the structural bounds.
#[derive(Debug, Clone, Copy, Default)]
pub struct Greedy;

impl SolverBackend for Greedy {
    fn kind(&self) -> SolverKind {
        SolverKind::Greedy
    }

    fn solve(
        &self,
        allocator: &mut Allocator,
        app: &ApplicationGraph,
        arch: &ArchitectureGraph,
        state: &PlatformState,
    ) -> Result<SolveOutcome, MapError> {
        let max_cycles = allocator.config().bind.max_cycles;
        let (allocation, stats) = allocator.allocate(app, arch, state)?;
        let lower = allocation.guaranteed_throughput();
        let upper = structural_upper(app, max_cycles).map_or(lower, |s| s.max(lower));
        let gap = SolveReport::gap_between(lower, upper);
        let report = SolveReport {
            kind: SolverKind::Greedy,
            lower,
            upper,
            gap,
            proven_optimal: gap == Rational::ZERO,
            nodes_expanded: 0,
            lp_pivots: 0,
            pruned_bound: 0,
            pruned_infeasible: 0,
            leaves_evaluated: 0,
        };
        Ok(SolveOutcome::new(allocation, stats, report))
    }
}

/// The branch-and-bound backend (see [`exact`]): certified
/// bounds, a full-remaining-wheel witness allocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exact {
    /// Search budget and early-stop gap target.
    pub config: ExactConfig,
}

impl Exact {
    /// A backend with the given search configuration.
    pub fn new(config: ExactConfig) -> Self {
        Exact { config }
    }
}

impl SolverBackend for Exact {
    fn kind(&self) -> SolverKind {
        SolverKind::Exact
    }

    fn solve(
        &self,
        allocator: &mut Allocator,
        app: &ApplicationGraph,
        arch: &ArchitectureGraph,
        state: &PlatformState,
    ) -> Result<SolveOutcome, MapError> {
        exact::solve_exact(allocator, app, arch, state, self.config)
    }
}

/// Greedy-first, exact-tightened: commits the heuristic's (minimal,
/// admission-friendly) allocation, then spends the configured node
/// budget tightening the bound pair around it. Falls back to the exact
/// witness when the heuristic fails but the search finds a feasible
/// binding.
#[derive(Debug, Clone, Copy, Default)]
pub struct Portfolio {
    /// Budget for the bound-tightening exact search.
    pub config: ExactConfig,
}

impl Portfolio {
    /// A backend with the given search configuration.
    pub fn new(config: ExactConfig) -> Self {
        Portfolio { config }
    }
}

impl SolverBackend for Portfolio {
    fn kind(&self) -> SolverKind {
        SolverKind::Portfolio
    }

    fn solve(
        &self,
        allocator: &mut Allocator,
        app: &ApplicationGraph,
        arch: &ArchitectureGraph,
        state: &PlatformState,
    ) -> Result<SolveOutcome, MapError> {
        exact::solve_portfolio(allocator, app, arch, state, self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfrs_appmodel::apps::{example_platform, paper_example};

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(SolverKind::Greedy.name(), "greedy");
        assert_eq!(SolverKind::Exact.name(), "exact");
        assert_eq!(SolverKind::Portfolio.name(), "portfolio");
        assert_eq!(SolverKind::Portfolio.to_string(), "portfolio");
    }

    #[test]
    fn gap_between_handles_zero_upper() {
        assert_eq!(
            SolveReport::gap_between(Rational::ZERO, Rational::ZERO),
            Rational::ZERO
        );
        assert_eq!(
            SolveReport::gap_between(Rational::new(1, 2), Rational::ONE),
            Rational::new(1, 2)
        );
    }

    #[test]
    fn greedy_backend_reports_a_valid_bound_pair() {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let mut allocator = Allocator::new();
        let outcome = Greedy.solve(&mut allocator, &app, &arch, &state).unwrap();
        assert_eq!(outcome.report.kind, SolverKind::Greedy);
        assert!(outcome.report.lower <= outcome.report.upper);
        assert_eq!(
            outcome.report.lower,
            outcome.allocation.guaranteed_throughput()
        );
        assert_eq!(
            outcome.report.gap,
            SolveReport::gap_between(outcome.report.lower, outcome.report.upper)
        );
        assert_eq!(outcome.report.nodes_expanded, 0);
    }
}
