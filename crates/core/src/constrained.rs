//! Constrained state-space execution (Section 8.2).
//!
//! The scheduling function — static actor orders per tile and TDMA slice
//! allocations — is *not* modeled into the binding-aware SDFG (that would
//! require an HSDF conversion, see \[2\]). Instead it constrains the
//! self-timed execution while the state space is explored:
//!
//! * a tile-bound actor may only start firing when it is the actor at the
//!   current position of its tile's static-order schedule (the position
//!   advances when the firing completes);
//! * the remaining execution time of a tile-bound firing decreases only
//!   while the tile's TDMA wheel is inside the application's slice;
//! * connection and sync actors execute unconstrained.
//!
//! The state is extended with the schedule positions and the wheel phase,
//! so recurrence detection — and therefore the computed throughput —
//! remains exact.

use sdfrs_platform::TileId;
use sdfrs_sdf::analysis::interner::StateInterner;
use sdfrs_sdf::analysis::selftimed::ThroughputResult;
use sdfrs_sdf::rational::lcm;
use sdfrs_sdf::{ActorId, Rational, SdfError};

use crate::binding_aware::BindingAwareGraph;
use crate::schedule::StaticOrderSchedule;
use crate::tdma::TdmaSlice;

/// Default bound on the number of explored states.
pub const DEFAULT_STATE_BUDGET: usize = 4_000_000;

/// The static-order part of the scheduling function 𝒮 (Definition 7): one
/// schedule per tile that hosts actors.
///
/// # Examples
///
/// ```
/// use sdfrs_core::{StaticOrderSchedule, TileSchedules};
/// use sdfrs_platform::TileId;
/// use sdfrs_sdf::ActorId;
/// let mut s = TileSchedules::new(2);
/// s.set(TileId::from_index(0),
///       StaticOrderSchedule::new(vec![], vec![ActorId::from_index(0)]));
/// assert!(s.get(TileId::from_index(0)).is_some());
/// assert!(s.get(TileId::from_index(1)).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileSchedules {
    schedules: Vec<Option<StaticOrderSchedule>>,
}

impl TileSchedules {
    /// No schedules yet, for a platform with `tile_count` tiles.
    pub fn new(tile_count: usize) -> Self {
        TileSchedules {
            schedules: vec![None; tile_count],
        }
    }

    /// Sets the schedule of one tile, growing the table if needed.
    pub fn set(&mut self, tile: TileId, schedule: StaticOrderSchedule) {
        if tile.index() >= self.schedules.len() {
            self.schedules.resize(tile.index() + 1, None);
        }
        self.schedules[tile.index()] = Some(schedule);
    }

    /// The schedule of one tile, if set (`None` for unknown tiles).
    pub fn get(&self, tile: TileId) -> Option<&StaticOrderSchedule> {
        self.schedules.get(tile.index())?.as_ref()
    }

    /// All tiles with a schedule.
    pub fn tiles(&self) -> impl Iterator<Item = TileId> + '_ {
        self.schedules
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| TileId::from_index(i))
    }

    /// Returns a copy with every schedule minimized (Sec 9.2).
    pub fn minimized(&self) -> TileSchedules {
        TileSchedules {
            schedules: self
                .schedules
                .iter()
                .map(|s| s.as_ref().map(StaticOrderSchedule::minimized))
                .collect(),
        }
    }
}

// The recurrence-detection state — token counts, the sorted remaining
// *work* per actor lane (slice time for bound actors, wall time for
// connection/sync actors), the canonical schedule position per tile, and
// the wall-clock phase within the TDMA hyper-period — is flat-encoded
// into a `Vec<u64>` and interned (see `encode_state_into`); no per-state
// struct is allocated.

/// Executes a binding-aware SDFG under a scheduling function and computes
/// the guaranteed throughput (Sec 8.2).
///
/// # Examples
///
/// See [`constrained_throughput`] and the `fig5` oracles in the
/// integration tests.
#[derive(Debug)]
pub struct ConstrainedExecutor<'a> {
    ba: &'a BindingAwareGraph,
    schedules: &'a TileSchedules,
    /// TDMA config per tile index (`None` for tiles without a schedule).
    tdma: Vec<Option<TdmaSlice>>,
    hyperperiod: u64,
    tokens: Vec<u64>,
    active: Vec<Vec<u64>>,
    positions: Vec<u32>,
    time: u64,
    completions: Vec<u64>,
    state_budget: usize,
    /// Per binding-aware actor: the tile index whose slice determines a
    /// sync actor's execution time (`u32::MAX` for every other actor).
    sync_dest: Vec<u32>,
    /// When set, each transition records the tiles whose slice values it
    /// read into `touched` (see [`transition`](Self::transition)).
    record_touched: bool,
    /// Deduplicated tile indices read since the last `clear_touched`.
    touched: Vec<u32>,
    /// Per-tile epoch stamp backing the O(1) dedup in `touch`.
    touch_mark: Vec<u64>,
    /// Epoch bumped by `clear_touched`; a stamp equal to it means "in
    /// `touched` already".
    touch_epoch: u64,
}

/// Outcome of one state-to-state transition of the constrained execution
/// (see [`ConstrainedExecutor::transition`]). `rounds` is the number of
/// complete/start/advance passes the transition consumed — each pass
/// counts against the state budget exactly as in the monolithic loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Transition {
    /// The clock advanced: the executor sits in the successor state.
    Advanced { rounds: u32 },
    /// No firing is active and nothing can start: the execution stalls.
    Deadlock { rounds: u32 },
}

impl Transition {
    pub(crate) fn rounds(self) -> u32 {
        match self {
            Transition::Advanced { rounds } | Transition::Deadlock { rounds } => rounds,
        }
    }
}

impl<'a> ConstrainedExecutor<'a> {
    /// Creates an executor at the initial state.
    ///
    /// # Panics
    ///
    /// Panics if some tile hosts actors but has no schedule.
    pub fn new(ba: &'a BindingAwareGraph, schedules: &'a TileSchedules) -> Self {
        let g = ba.graph();
        let mut tdma = Vec::new();
        let mut hyper = 1u64;
        let tile_count = {
            // Highest tile index we may encounter.
            let used = ba.used_tiles();
            used.iter().map(|t| t.index() + 1).max().unwrap_or(0)
        };
        for i in 0..tile_count {
            let tile = TileId::from_index(i);
            if schedules.get(tile).is_some() {
                let slice = ba.tdma(tile);
                hyper = lcm(hyper as u128, slice.wheel as u128) as u64;
                tdma.push(Some(slice));
            } else {
                tdma.push(None);
            }
        }
        for tile in ba.used_tiles() {
            assert!(
                schedules.get(tile).is_some(),
                "tile {tile} hosts actors but has no static-order schedule"
            );
        }
        let mut sync_dest = vec![u32::MAX; g.actor_count()];
        for &(s, tile) in ba.sync_actors() {
            sync_dest[s.index()] = tile.index() as u32;
        }
        ConstrainedExecutor {
            ba,
            schedules,
            tdma,
            hyperperiod: hyper,
            tokens: g
                .channel_ids()
                .map(|c| g.channel(c).initial_tokens())
                .collect(),
            active: vec![Vec::new(); g.actor_count()],
            positions: vec![0; tile_count],
            time: 0,
            completions: vec![0; g.actor_count()],
            state_budget: DEFAULT_STATE_BUDGET,
            sync_dest,
            record_touched: false,
            touched: Vec::new(),
            touch_mark: vec![0; tile_count],
            touch_epoch: 1,
        }
    }

    /// Overrides the exploration budget.
    pub fn with_state_budget(mut self, budget: usize) -> Self {
        self.state_budget = budget;
        self
    }

    fn tokens_enable(&self, actor: ActorId) -> bool {
        self.ba
            .graph()
            .incoming(actor)
            .iter()
            .all(|&ch| self.tokens[ch.index()] >= self.ba.graph().channel(ch).consumption_rate())
    }

    fn schedule_allows(&self, actor: ActorId) -> bool {
        match self.ba.tile_of(actor) {
            None => true,
            Some(tile) => {
                let schedule = self.schedules.get(tile).expect("used tiles have schedules");
                schedule.at(self.positions[tile.index()] as usize) == actor
            }
        }
    }

    fn start_firing(&mut self, actor: ActorId) {
        let g = self.ba.graph();
        for &ch in g.incoming(actor) {
            self.tokens[ch.index()] -= g.channel(ch).consumption_rate();
        }
        // A sync actor's execution time is `w − ω` of its destination
        // tile: starting one reads that tile's slice.
        if self.record_touched {
            let dest = self.sync_dest[actor.index()];
            if dest != u32::MAX {
                self.touch(dest);
            }
        }
        let work = g.actor(actor).execution_time();
        let lane = &mut self.active[actor.index()];
        let pos = lane.partition_point(|&t| t <= work);
        lane.insert(pos, work);
    }

    fn touch(&mut self, tile: u32) {
        if self.touch_mark[tile as usize] != self.touch_epoch {
            self.touch_mark[tile as usize] = self.touch_epoch;
            self.touched.push(tile);
        }
    }

    fn complete_finished(&mut self) -> Vec<ActorId> {
        let g = self.ba.graph();
        let mut completed = Vec::new();
        for idx in 0..self.active.len() {
            while self.active[idx].first() == Some(&0) {
                self.active[idx].remove(0);
                let actor = ActorId::from_index(idx);
                for &ch in g.outgoing(actor) {
                    self.tokens[ch.index()] += g.channel(ch).production_rate();
                }
                self.completions[idx] += 1;
                completed.push(actor);
                if let Some(tile) = self.ba.tile_of(actor) {
                    // The firing at the current schedule position finished:
                    // move on (canonicalized for state hashing).
                    let schedule = self.schedules.get(tile).expect("used tiles have schedules");
                    let next = self.positions[tile.index()] as usize + 1;
                    self.positions[tile.index()] = schedule.canonical_position(next) as u32;
                }
            }
        }
        completed
    }

    fn start_all_allowed(&mut self) -> Vec<ActorId> {
        let mut started = Vec::new();
        loop {
            let mut progress = false;
            for actor in self.ba.graph().actor_ids() {
                while self.tokens_enable(actor) && self.schedule_allows(actor) {
                    // A bound actor with one active firing holds its
                    // self-edge token, so this loop cannot double-start it;
                    // zero-work firings complete immediately below.
                    self.start_firing(actor);
                    started.push(actor);
                    progress = true;
                    if self.ba.graph().actor(actor).execution_time() == 0 {
                        self.complete_finished();
                    } else if self.ba.tile_of(actor).is_some() {
                        break;
                    }
                }
            }
            if !progress {
                break;
            }
        }
        started
    }

    /// Wall time from `self.time` until the given active firing completes.
    fn wall_until_done(&self, actor: ActorId, work: u64) -> u64 {
        match self.ba.tile_of(actor) {
            None => work,
            Some(tile) => self.tdma[tile.index()]
                .expect("bound actors live on scheduled tiles")
                .wall_time_for(self.time, work),
        }
    }

    fn advance_clock(&mut self) -> Option<u64> {
        let mut delta: Option<u64> = None;
        for idx in 0..self.active.len() {
            if let Some(&work) = self.active[idx].first() {
                let wall = self.wall_until_done(ActorId::from_index(idx), work);
                delta = Some(match delta {
                    None => wall,
                    Some(d) => d.min(wall),
                });
            }
        }
        let delta = delta?;
        for idx in 0..self.active.len() {
            if self.active[idx].is_empty() {
                continue;
            }
            let progress = match self.ba.tile_of(ActorId::from_index(idx)) {
                None => delta,
                Some(tile) => {
                    // Both the wall-time minimum above and the progress
                    // here read this tile's slice.
                    if self.record_touched {
                        self.touch(tile.index() as u32);
                    }
                    self.tdma[tile.index()]
                        .expect("bound actors live on scheduled tiles")
                        .slice_time_in(self.time, delta)
                }
            };
            for w in self.active[idx].iter_mut() {
                *w = w.saturating_sub(progress);
            }
        }
        self.time += delta;
        Some(delta)
    }

    /// Flat-encodes the recurrence-detection state into `out` (cleared
    /// first): tokens, each lane as length + sorted entries, schedule
    /// positions, wheel phase. Injective for a fixed graph and schedule
    /// set, so interner equality is state equality.
    pub(crate) fn encode_state_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.tokens);
        for lane in &self.active {
            out.push(lane.len() as u64);
            out.extend_from_slice(lane);
        }
        out.extend(self.positions.iter().map(|&p| p as u64));
        out.push(self.time % self.hyperperiod);
    }

    /// Restores the executor to a previously encoded state (the inverse
    /// of [`encode_state_into`](Self::encode_state_into)). The absolute
    /// clock is set to the encoded wheel phase — every clock use is
    /// modular in a divisor of the hyper-period, so resuming at the phase
    /// is behavior-identical to resuming at the original absolute time.
    /// Completion counts restart at zero; callers track deltas.
    pub(crate) fn load_state(&mut self, words: &[u64]) {
        let mut i = 0usize;
        for t in self.tokens.iter_mut() {
            *t = words[i];
            i += 1;
        }
        for lane in self.active.iter_mut() {
            lane.clear();
            let len = words[i] as usize;
            i += 1;
            lane.extend_from_slice(&words[i..i + len]);
            i += len;
        }
        for p in self.positions.iter_mut() {
            *p = words[i] as u32;
            i += 1;
        }
        self.time = words[i];
        debug_assert_eq!(i + 1, words.len(), "encoded state length mismatch");
        self.completions.iter_mut().for_each(|c| *c = 0);
    }

    /// Enables touched-tile recording (see [`transition`](Self::transition)).
    pub(crate) fn with_touch_recording(mut self) -> Self {
        self.record_touched = true;
        self
    }

    /// Tiles whose slice values were read since the last
    /// [`clear_touched`](Self::clear_touched), deduplicated.
    pub(crate) fn touched(&self) -> &[u32] {
        &self.touched
    }

    pub(crate) fn clear_touched(&mut self) {
        self.touched.clear();
        self.touch_epoch += 1;
    }

    pub(crate) fn time(&self) -> u64 {
        self.time
    }

    pub(crate) fn completions_of(&self, actor: ActorId) -> u64 {
        self.completions[actor.index()]
    }

    /// Current slice per tile index (0 for tiles without a schedule) —
    /// the values the touched-tile guards of the warm-start memo compare
    /// against.
    pub(crate) fn slice_vector(&self) -> Vec<u64> {
        self.tdma.iter().map(|t| t.map_or(0, |s| s.slice)).collect()
    }

    /// [`slice_vector`](Self::slice_vector) without building an executor —
    /// lets trajectory-memo hits skip construction entirely.
    pub(crate) fn slice_vector_of(ba: &BindingAwareGraph, schedules: &TileSchedules) -> Vec<u64> {
        let tile_count = ba
            .used_tiles()
            .iter()
            .map(|t| t.index() + 1)
            .max()
            .unwrap_or(0);
        (0..tile_count)
            .map(|i| {
                let tile = TileId::from_index(i);
                if schedules.get(tile).is_some() {
                    ba.tdma(tile).slice
                } else {
                    0
                }
            })
            .collect()
    }

    /// Runs complete/start/advance passes until the clock advances to the
    /// successor state or the execution deadlocks — exactly the per-state
    /// work of the monolithic exploration loop, factored out so the cold
    /// [`throughput`](Self::throughput) path and the warm-started
    /// re-analysis (`warm` module) execute the very same code. When
    /// touched-tile recording is on, every tile whose slice the
    /// transition read ends up in [`touched`](Self::touched).
    pub(crate) fn transition(&mut self) -> Transition {
        let mut rounds = 0u32;
        loop {
            rounds += 1;
            let completed = self.complete_finished();
            let started = self.start_all_allowed();
            match self.advance_clock() {
                Some(_) => return Transition::Advanced { rounds },
                None => {
                    if completed.is_empty() && started.is_empty() {
                        return Transition::Deadlock { rounds };
                    }
                    // Something still happened at this instant; loop once
                    // more — if nothing follows, the next pass deadlocks.
                }
            }
        }
    }

    /// Runs until a recurrent state and returns the guaranteed throughput
    /// of `reference` (a binding-aware actor id).
    ///
    /// # Errors
    ///
    /// * [`SdfError::Deadlock`] if the constrained execution stalls (e.g. a
    ///   schedule incompatible with the token flow);
    /// * [`SdfError::BudgetExceeded`] if no recurrence is found in budget.
    pub fn throughput(mut self, reference: ActorId) -> Result<ThroughputResult, SdfError> {
        // Interned exploration: states are flat-encoded into a reusable
        // scratch buffer; `(time, firings)` payloads are indexed by the
        // dense state id.
        let mut seen = StateInterner::new();
        let mut at_state: Vec<(u64, u64)> = Vec::new();
        let mut scratch = Vec::new();
        self.encode_state_into(&mut scratch);
        seen.intern(&scratch);
        at_state.push((0, 0));
        let mut states = 0usize;
        loop {
            let step = self.transition();
            for _ in 0..step.rounds() {
                states += 1;
                if states > self.state_budget {
                    return Err(SdfError::BudgetExceeded {
                        analysis: "constrained state space",
                        budget: self.state_budget,
                    });
                }
            }
            if let Transition::Deadlock { .. } = step {
                return Err(SdfError::Deadlock { actor: reference });
            }
            self.encode_state_into(&mut scratch);
            let (id, fresh) = seen.intern(&scratch);
            if fresh {
                at_state.push((self.time, self.completions[reference.index()]));
            } else {
                let (t0, f0) = at_state[id as usize];
                let period = self.time - t0;
                let firings = self.completions[reference.index()] - f0;
                if period == 0 {
                    return Err(SdfError::BudgetExceeded {
                        analysis: "constrained state space (zero-time cycle)",
                        budget: self.state_budget,
                    });
                }
                let actor_throughput = Rational::new(firings as i128, period as i128);
                let gamma = self.ba.graph().repetition_vector()?;
                let iteration_throughput =
                    actor_throughput / Rational::from_integer(gamma[reference] as i128);
                return Ok(ThroughputResult {
                    actor_throughput,
                    iteration_throughput,
                    reference,
                    period,
                    firings_in_period: firings,
                    states_explored: states,
                    transient_time: t0,
                });
            }
        }
    }
}

impl ConstrainedExecutor<'_> {
    /// Explores the constrained state space explicitly — the data behind
    /// Figure 5(c) of the paper.
    ///
    /// # Errors
    ///
    /// Same conditions as [`throughput`](ConstrainedExecutor::throughput).
    pub fn explore_state_space(
        mut self,
    ) -> Result<sdfrs_sdf::analysis::statespace::StateSpaceGraph, SdfError> {
        use sdfrs_sdf::analysis::statespace::{StateSpaceGraph, StateTransition};
        // Interner ids are dense in first-seen order and double as the
        // recorded state indices.
        let mut seen = StateInterner::new();
        let mut scratch = Vec::new();
        self.encode_state_into(&mut scratch);
        seen.intern(&scratch);
        let mut transitions = Vec::new();
        let mut current = 0usize;
        let mut steps = 0usize;
        loop {
            steps += 1;
            if steps > self.state_budget {
                return Err(SdfError::BudgetExceeded {
                    analysis: "constrained state-space exploration",
                    budget: self.state_budget,
                });
            }
            let completed = self.complete_finished();
            let started = self.start_all_allowed();
            let fired: Vec<String> = started
                .iter()
                .map(|&a| self.ba.graph().actor(a).name().to_string())
                .collect();
            let elapsed = match self.advance_clock() {
                Some(d) => d,
                None => {
                    if completed.is_empty() && started.is_empty() {
                        let first = self
                            .ba
                            .graph()
                            .actor_ids()
                            .next()
                            .expect("graphs have actors");
                        return Err(SdfError::Deadlock { actor: first });
                    }
                    continue;
                }
            };
            let next_index = seen.len();
            self.encode_state_into(&mut scratch);
            let (id, fresh) = seen.intern(&scratch);
            if fresh {
                transitions.push(StateTransition {
                    from: current,
                    to: next_index,
                    fired,
                    elapsed,
                });
                current = next_index;
            } else {
                let target = id as usize;
                transitions.push(StateTransition {
                    from: current,
                    to: target,
                    fired,
                    elapsed,
                });
                return Ok(StateSpaceGraph {
                    state_count: next_index,
                    transitions,
                    recurrent_target: target,
                });
            }
        }
    }
}

/// One recorded firing in an execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The binding-aware actor that fired.
    pub actor: ActorId,
    /// Wall-clock start of the firing.
    pub start: u64,
    /// Wall-clock completion of the firing.
    pub end: u64,
}

/// A finite prefix of a constrained execution, for inspection and
/// Gantt-style rendering (see [`gantt`](crate::gantt)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionTrace {
    /// Completed firings, ordered by completion time.
    pub events: Vec<TraceEvent>,
    /// The time up to which the execution was observed.
    pub horizon: u64,
}

impl ExecutionTrace {
    /// Events of one actor, in completion order.
    pub fn events_of(&self, actor: ActorId) -> Vec<TraceEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.actor == actor)
            .collect()
    }
}

impl ConstrainedExecutor<'_> {
    /// Executes until (at least) `horizon` time units have passed and
    /// returns the completed firings.
    ///
    /// Start/completion pairing is exact: bound actors have at most one
    /// active firing (their self-edge), and concurrent firings of a
    /// connection/sync actor share one execution time, so FIFO matching is
    /// faithful.
    ///
    /// # Errors
    ///
    /// [`SdfError::Deadlock`] if the execution stalls before the horizon.
    pub fn trace(mut self, horizon: u64) -> Result<ExecutionTrace, SdfError> {
        use std::collections::VecDeque;
        let mut pending: Vec<VecDeque<u64>> = vec![VecDeque::new(); self.ba.graph().actor_count()];
        let mut events = Vec::new();
        let mut stalled_rounds = 0u32;
        while self.time < horizon {
            let now = self.time;
            let completed = self.complete_finished();
            for actor in completed.iter().copied() {
                let start = pending[actor.index()]
                    .pop_front()
                    .expect("every completion had a start");
                events.push(TraceEvent {
                    actor,
                    start,
                    end: now,
                });
            }
            let started = self.start_all_allowed();
            for actor in &started {
                pending[actor.index()].push_back(now);
            }
            // Zero-time firings completed inside start_all_allowed; flush
            // them so their events carry the right instant. (Their lanes
            // are already empty, so only the pending queues drain here.)
            for (idx, queue) in pending.iter_mut().enumerate() {
                let active = self.active[idx].len();
                while queue.len() > active {
                    let start = queue.pop_front().expect("non-empty");
                    events.push(TraceEvent {
                        actor: ActorId::from_index(idx),
                        start,
                        end: now,
                    });
                }
            }
            match self.advance_clock() {
                Some(_) => stalled_rounds = 0,
                None => {
                    stalled_rounds += 1;
                    if (completed.is_empty() && started.is_empty()) || stalled_rounds > 2 {
                        let reference = self
                            .ba
                            .graph()
                            .actor_ids()
                            .next()
                            .expect("graphs have actors");
                        return Err(SdfError::Deadlock { actor: reference });
                    }
                }
            }
        }
        events.sort_by_key(|e| (e.end, e.start, e.actor));
        Ok(ExecutionTrace {
            events,
            horizon: self.time,
        })
    }
}

/// Convenience wrapper: throughput of the binding-aware graph under the
/// given schedules, measured at the binding-aware image of an application
/// actor.
///
/// # Errors
///
/// See [`ConstrainedExecutor::throughput`].
pub fn constrained_throughput(
    ba: &BindingAwareGraph,
    schedules: &TileSchedules,
    reference: ActorId,
) -> Result<ThroughputResult, SdfError> {
    ConstrainedExecutor::new(ba, schedules).throughput(reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::Binding;
    use sdfrs_appmodel::apps::{example_platform, paper_example};
    use sdfrs_sdf::analysis::selftimed::SelfTimedExecutor;

    fn example_setup(slices: [u64; 2]) -> (BindingAwareGraph, TileSchedules) {
        let app = paper_example();
        let arch = example_platform();
        let g = app.graph();
        let mut binding = Binding::new(g.actor_count());
        binding.bind(g.actor_by_name("a1").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a2").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a3").unwrap(), TileId::from_index(1));
        let ba = BindingAwareGraph::build(&app, &arch, &binding, &slices).unwrap();
        let a1 = ba.graph().actor_by_name("a1").unwrap();
        let a2 = ba.graph().actor_by_name("a2").unwrap();
        let a3 = ba.graph().actor_by_name("a3").unwrap();
        let mut schedules = TileSchedules::new(2);
        schedules.set(
            TileId::from_index(0),
            StaticOrderSchedule::new(vec![], vec![a1, a2]),
        );
        schedules.set(
            TileId::from_index(1),
            StaticOrderSchedule::new(vec![], vec![a3]),
        );
        (ba, schedules)
    }

    /// Fig 5(b): the *unconstrained* self-timed execution of the
    /// binding-aware SDFG (50% slices for the sync actors) lets a3 fire
    /// once every 29 time units.
    #[test]
    fn fig5b_period_is_29() {
        let (ba, _) = example_setup([5, 5]);
        let a3 = ba.graph().actor_by_name("a3").unwrap();
        let thr = SelfTimedExecutor::new(ba.graph()).throughput(a3).unwrap();
        assert_eq!(thr.actor_throughput, Rational::new(1, 29));
    }

    /// Fig 5(c): constraining the execution by the static orders
    /// (a1 a2)* / (a3)* and 50% TDMA wheels postpones firings so a3 fires
    /// once every 30 time units.
    #[test]
    fn fig5c_period_is_30() {
        let (ba, schedules) = example_setup([5, 5]);
        let a3 = ba.graph().actor_by_name("a3").unwrap();
        let thr = constrained_throughput(&ba, &schedules, a3).unwrap();
        assert_eq!(thr.actor_throughput, Rational::new(1, 30));
    }

    /// With the full wheels allocated the TDMA constraint disappears, but
    /// the static order still serializes the tiles.
    #[test]
    fn full_slices_upper_bound() {
        let (ba, schedules) = example_setup([10, 10]);
        let a3 = ba.graph().actor_by_name("a3").unwrap();
        let constrained = constrained_throughput(&ba, &schedules, a3).unwrap();
        let free = SelfTimedExecutor::new(ba.graph()).throughput(a3).unwrap();
        // The schedules are in line with the self-timed order, so the
        // results agree; and both beat the 50%-slice case.
        assert_eq!(constrained.actor_throughput, free.actor_throughput);
        assert!(constrained.actor_throughput > Rational::new(1, 30));
    }

    #[test]
    fn smaller_slices_never_increase_throughput() {
        let a3_of = |slices: [u64; 2]| {
            let (ba, schedules) = example_setup(slices);
            let a3 = ba.graph().actor_by_name("a3").unwrap();
            constrained_throughput(&ba, &schedules, a3)
                .unwrap()
                .actor_throughput
        };
        let mut prev = Rational::ZERO;
        for s in 1..=10 {
            let cur = a3_of([s, s]);
            assert!(cur >= prev, "throughput must grow with slice size");
            prev = cur;
        }
    }

    #[test]
    fn bad_schedule_deadlocks() {
        let (ba, _) = example_setup([5, 5]);
        let a1 = ba.graph().actor_by_name("a1").unwrap();
        let a2 = ba.graph().actor_by_name("a2").unwrap();
        let a3 = ba.graph().actor_by_name("a3").unwrap();
        // a2 before a1 with no token on d1: a2 can never fire first.
        let mut schedules = TileSchedules::new(2);
        schedules.set(
            TileId::from_index(0),
            StaticOrderSchedule::new(vec![], vec![a2, a1]),
        );
        schedules.set(
            TileId::from_index(1),
            StaticOrderSchedule::new(vec![], vec![a3]),
        );
        assert!(matches!(
            constrained_throughput(&ba, &schedules, a3),
            Err(SdfError::Deadlock { .. })
        ));
    }

    #[test]
    fn budget_is_respected() {
        let (ba, schedules) = example_setup([5, 5]);
        let a3 = ba.graph().actor_by_name("a3").unwrap();
        let r = ConstrainedExecutor::new(&ba, &schedules)
            .with_state_budget(2)
            .throughput(a3);
        assert!(matches!(r, Err(SdfError::BudgetExceeded { .. })));
    }

    #[test]
    fn tile_schedules_accessors() {
        let mut s = TileSchedules::new(3);
        assert_eq!(s.tiles().count(), 0);
        s.set(
            TileId::from_index(1),
            StaticOrderSchedule::new(vec![], vec![ActorId::from_index(0)]),
        );
        assert_eq!(s.tiles().collect::<Vec<_>>(), vec![TileId::from_index(1)]);
        let m = s.minimized();
        assert!(m.get(TileId::from_index(1)).is_some());
    }
}
