//! Single-application design-space exploration.
//!
//! The flow produces *one* allocation per (weights, connection model)
//! configuration; this module sweeps a set of configurations and reports
//! the Pareto-optimal trade-offs between the guaranteed throughput and
//! the platform resources claimed — the designer-facing loop around the
//! paper's strategy ("This enables the user to trade-off how the various
//! loads of the tile are weighted", Sec 9.1).

use sdfrs_appmodel::ApplicationGraph;
use sdfrs_platform::{ArchitectureGraph, PlatformState};
use sdfrs_sdf::Rational;

use crate::allocator::Allocator;
use crate::binding_aware::ConnectionModel;
use crate::cost::CostWeights;
use crate::events::{FlowEvent, FlowObserver, NullSink};
use crate::flow::{Allocation, FlowConfig};
use crate::thru_cache::ThroughputCache;

/// One evaluated configuration.
#[derive(Debug, Clone)]
pub struct DsePoint {
    /// The weights that produced this allocation.
    pub weights: CostWeights,
    /// The connection model used.
    pub connection_model: ConnectionModel,
    /// The resulting allocation.
    pub allocation: Allocation,
    /// Total TDMA wheel time claimed (the scarce shared resource).
    pub wheel_claimed: u64,
    /// Tiles used.
    pub tiles_used: usize,
}

impl DsePoint {
    /// The guaranteed iteration throughput of this point.
    pub fn throughput(&self) -> Rational {
        self.allocation.guaranteed_throughput()
    }

    /// `true` if `other` is at least as good on both axes and strictly
    /// better on one (i.e. `self` is dominated).
    pub fn dominated_by(&self, other: &DsePoint) -> bool {
        let no_worse =
            other.throughput() >= self.throughput() && other.wheel_claimed <= self.wheel_claimed;
        let better =
            other.throughput() > self.throughput() || other.wheel_claimed < self.wheel_claimed;
        no_worse && better
    }
}

/// Result of a design-space sweep.
#[derive(Debug)]
pub struct DseResult {
    /// Every configuration that produced a valid allocation.
    pub points: Vec<DsePoint>,
    /// Configurations that failed, with their errors.
    pub failures: Vec<(CostWeights, ConnectionModel, crate::MapError)>,
}

impl DseResult {
    /// The Pareto-optimal points (max throughput, min wheel), sorted by
    /// claimed wheel time ascending.
    pub fn pareto(&self) -> Vec<&DsePoint> {
        let mut frontier: Vec<&DsePoint> = self
            .points
            .iter()
            .filter(|p| !self.points.iter().any(|q| p.dominated_by(q)))
            .collect();
        frontier.sort_by_key(|p| (p.wheel_claimed, std::cmp::Reverse(p.throughput())));
        frontier.dedup_by(|a, b| {
            a.wheel_claimed == b.wheel_claimed && a.throughput() == b.throughput()
        });
        frontier
    }
}

/// Sweeps the given weight settings under both connection models.
pub fn explore(
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    weights: &[CostWeights],
) -> DseResult {
    explore_impl(app, arch, state, weights, false)
}

/// [`explore`] with the sweep points evaluated concurrently.
///
/// Every `(weights, connection model)` configuration is independent; the
/// per-point results are reassembled in sweep order before `points` /
/// `failures` are built, so the output is identical to the sequential
/// [`explore`] (asserted by the `parallel_sweep_matches_sequential` test).
pub fn explore_parallel(
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    weights: &[CostWeights],
) -> DseResult {
    explore_impl(app, arch, state, weights, true)
}

/// [`explore`] through an existing [`Allocator`]: the sweep runs
/// sequentially on its sink, emitting one
/// [`DsePointEvaluated`](FlowEvent::DsePointEvaluated) per configuration.
/// Each point still runs with a fresh cache — different weights produce
/// different bindings, so points share no evaluations — while the
/// allocator's own cache is left untouched.
pub fn explore_with(
    allocator: &mut Allocator,
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    weights: &[CostWeights],
) -> DseResult {
    let base = *allocator.config();
    let mut points = Vec::new();
    let mut failures = Vec::new();
    for (w, model, outcome) in sweep_outcomes(app, arch, state, weights, &base, false) {
        let ok = outcome.is_ok();
        allocator.metric(|m| m.dse_points.inc());
        allocator.emit(|| FlowEvent::DsePointEvaluated {
            weights: w.to_string(),
            connection_model: format!("{model:?}"),
            ok,
        });
        collect_outcome(w, model, outcome, &mut points, &mut failures);
    }
    DseResult { points, failures }
}

/// Runs the sweep and returns `(weights, model, outcome)` in sweep order.
fn sweep_outcomes(
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    weights: &[CostWeights],
    base: &FlowConfig,
    parallel: bool,
) -> Vec<(
    CostWeights,
    ConnectionModel,
    Result<Allocation, crate::MapError>,
)> {
    let sweep: Vec<(CostWeights, ConnectionModel)> = weights
        .iter()
        .flat_map(|&w| {
            [ConnectionModel::Simple, ConnectionModel::PipelinedHops]
                .into_iter()
                .map(move |m| (w, m))
        })
        .collect();
    let outcomes = sdfrs_fastutil::par::maybe_par_map(parallel, &sweep, |&(w, model)| {
        let mut config = *base;
        config.bind.weights = w;
        config.connection_model = model;
        let mut sink = NullSink;
        let mut obs = FlowObserver::new(&mut sink);
        let mut cache = ThroughputCache::new();
        crate::flow::allocate_inner(app, arch, state, &config, &mut cache, &mut obs)
            .map(|(allocation, _)| allocation)
    });
    sweep
        .into_iter()
        .zip(outcomes)
        .map(|((w, model), outcome)| (w, model, outcome))
        .collect()
}

fn collect_outcome(
    w: CostWeights,
    model: ConnectionModel,
    outcome: Result<Allocation, crate::MapError>,
    points: &mut Vec<DsePoint>,
    failures: &mut Vec<(CostWeights, ConnectionModel, crate::MapError)>,
) {
    match outcome {
        Ok(allocation) => {
            let wheel_claimed = allocation.slices.iter().sum();
            let tiles_used = allocation.binding.used_tiles().len();
            points.push(DsePoint {
                weights: w,
                connection_model: model,
                allocation,
                wheel_claimed,
                tiles_used,
            });
        }
        Err(e) => failures.push((w, model, e)),
    }
}

fn explore_impl(
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    weights: &[CostWeights],
    parallel: bool,
) -> DseResult {
    let base = FlowConfig::default();
    let mut points = Vec::new();
    let mut failures = Vec::new();
    for (w, model, outcome) in sweep_outcomes(app, arch, state, weights, &base, parallel) {
        collect_outcome(w, model, outcome, &mut points, &mut failures);
    }
    DseResult { points, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfrs_appmodel::apps::{example_platform, paper_example};

    fn sweep() -> DseResult {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        explore(&app, &arch, &state, &CostWeights::table4())
    }

    #[test]
    fn all_table4_configs_allocate_the_example() {
        let result = sweep();
        assert_eq!(result.points.len(), 10, "5 weights × 2 models");
        assert!(result.failures.is_empty());
        for p in &result.points {
            assert!(p.throughput() >= Rational::new(1, 30));
            assert!(p.wheel_claimed >= 1);
            assert!(p.tiles_used >= 1);
        }
    }

    #[test]
    fn pareto_frontier_is_nondominated_and_sorted() {
        let result = sweep();
        let pareto = result.pareto();
        assert!(!pareto.is_empty());
        for p in &pareto {
            assert!(!result.points.iter().any(|q| p.dominated_by(q)));
        }
        for pair in pareto.windows(2) {
            assert!(pair[0].wheel_claimed <= pair[1].wheel_claimed);
            // More wheel must buy more throughput on the frontier.
            assert!(pair[0].throughput() <= pair[1].throughput());
        }
        // The frontier never exceeds the point count.
        assert!(pareto.len() <= result.points.len());
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let seq = explore(&app, &arch, &state, &CostWeights::table4());
        let par = explore_parallel(&app, &arch, &state, &CostWeights::table4());
        assert_eq!(seq.points.len(), par.points.len());
        for (s, p) in seq.points.iter().zip(&par.points) {
            assert_eq!(s.weights, p.weights);
            assert_eq!(s.connection_model, p.connection_model);
            assert_eq!(s.wheel_claimed, p.wheel_claimed);
            assert_eq!(s.tiles_used, p.tiles_used);
            assert_eq!(s.allocation.binding, p.allocation.binding);
            assert_eq!(s.allocation.schedules, p.allocation.schedules);
            assert_eq!(s.allocation.slices, p.allocation.slices);
            assert_eq!(s.allocation.achieved, p.allocation.achieved);
        }
        assert_eq!(seq.failures.len(), par.failures.len());
        for (s, p) in seq.failures.iter().zip(&par.failures) {
            assert_eq!((s.0, s.1, &s.2), (p.0, p.1, &p.2));
        }
    }

    #[test]
    fn dominance_is_irreflexive() {
        let result = sweep();
        for p in &result.points {
            assert!(!p.dominated_by(p));
        }
    }
}
