//! SDFG-direct multiprocessor resource allocation with throughput
//! guarantees — the core contribution of the DAC 2007 paper
//! (Stuijk, Basten, Geilen, Corporaal: "Multiprocessor Resource Allocation
//! for Throughput-Constrained Synchronous Dataflow Graphs").
//!
//! The strategy binds a multi-rate, cyclic SDF application to a
//! heterogeneous tile-based MP-SoC and allocates TDMA time slices such
//! that a throughput constraint is *guaranteed*, independent of the other
//! applications sharing the platform. It never converts the SDFG to its
//! (exponentially larger) homogeneous equivalent; instead:
//!
//! * binding decisions are modeled *into* the graph
//!   ([`BindingAwareGraph`], Sec 8.1);
//! * scheduling decisions (static orders + TDMA wheels) *constrain* a
//!   self-timed state-space exploration ([`ConstrainedExecutor`],
//!   Sec 8.2);
//! * the three-step flow (Sec 9), driven by the [`Allocator`] front-end,
//!   composes the binding step ([`bind`]), the list scheduler
//!   ([`list_sched`]) and the slice-allocation binary searches (the
//!   [`slice`](crate::slice#) module).
//!
//! The [`multi_app`], [`admission`] and [`buffers`] modules cover the
//! surrounding protocol pieces (allocating application sequences,
//! admission ordering/skipping and platform dimensioning, storage
//! distribution minimization), [`service`] runs the online admission
//! loop (long-lived sessions that admit, depart and rebind against a
//! persistent platform), and [`gantt`] renders execution traces.
//! Every phase of every run reports typed [`events::FlowEvent`]s through
//! the allocator's pluggable [`events::EventSink`], and the [`metrics`]
//! module measures the work behind those decisions — atomic counters,
//! fixed-bucket histograms and a hierarchical phase profiler with
//! Prometheus / JSON exporters.
//!
//! # Example
//!
//! ```
//! use sdfrs_appmodel::apps::{example_platform, paper_example};
//! use sdfrs_core::Allocator;
//! use sdfrs_platform::PlatformState;
//!
//! # fn main() -> Result<(), sdfrs_core::MapError> {
//! let app = paper_example();
//! let arch = example_platform();
//! let state = PlatformState::new(&arch);
//! let (allocation, stats) = Allocator::new().allocate(&app, &arch, &state)?;
//! assert!(allocation.guaranteed_throughput() >= app.throughput_constraint());
//! assert!(stats.throughput_checks > 0);
//! # Ok(())
//! # }
//! ```

pub mod admission;
pub mod allocator;
pub mod baseline;
pub mod bind;
pub mod binding;
pub mod binding_aware;
pub mod buffers;
pub mod constrained;
pub mod cost;
pub mod dse;
pub mod error;
pub mod events;
pub mod exact;
pub mod flow;
pub mod gantt;
pub mod ids;
pub mod list_sched;
pub mod metrics;
pub mod multi_app;
pub mod report;
pub mod resources;
pub mod schedule;
pub mod service;
pub mod simplex;
pub mod slice;
pub mod solver;
pub mod tdma;
pub mod thru_cache;
pub mod trace;
pub mod tutorial;
pub mod verify;
pub mod warm;

pub use admission::{AdmissionOrder, AdmissionPolicy, AdmissionResult};
pub use allocator::Allocator;
pub use binding::{Binding, ChannelPartition};
pub use binding_aware::{BaActorKind, BindingAwareGraph, ConnectionModel};
pub use constrained::{
    constrained_throughput, ConstrainedExecutor, ExecutionTrace, TileSchedules, TraceEvent,
};
pub use cost::CostWeights;
pub use error::MapError;
pub use events::{
    EventSink, FlowEvent, FlowPhase, JsonlSink, LogSink, MetricsSink, MultiSink, NullSink,
    RecordingSink,
};
pub use exact::{enumerate_exhaustive, ExactConfig};
pub use flow::{Allocation, FlowConfig, FlowStats};
pub use ids::{AppId, SessionId};
pub use metrics::{Metrics, MetricsRegistry, MetricsSnapshot, NullMetrics};
pub use schedule::StaticOrderSchedule;
pub use service::{
    peek_request_meta, AllocationService, RequestMeta, ServiceConfig, ServiceError, ServiceRequest,
    ServiceResponse, ServiceStatus, MAX_ESCALATION_NEIGHBORS,
};
pub use solver::{Exact, Greedy, Portfolio, SolveOutcome, SolveReport, SolverBackend, SolverKind};
pub use thru_cache::ThroughputCache;
pub use trace::{CompletedTrace, FlightEntry, FlightRecorder, RequestTrace, TraceId, TraceOutcome};
pub use warm::{WarmPool, WarmStats};
