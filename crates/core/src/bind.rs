//! The resource-binding step (Section 9.1).
//!
//! Actors are considered in decreasing criticality (Eqn 1). Each actor is
//! tried on its candidate tiles in increasing tile cost (Eqn 2, evaluated
//! with the actor provisionally bound); the first candidate that satisfies
//! the Section 7 constraints wins. A reverse-order re-binding pass then
//! improves the load balance.

use sdfrs_appmodel::ApplicationGraph;
use sdfrs_platform::{ArchitectureGraph, PlatformState, TileId};
use sdfrs_sdf::ActorId;

use crate::binding::Binding;
use crate::cost::{binding_order, tile_cost, tile_loads, CostWeights, DEFAULT_CYCLE_CAP};
use crate::error::MapError;
use crate::events::{BindPass, FlowEvent, FlowObserver, NullSink};
use crate::resources::binding_constraints_hold;

/// Configuration of the binding step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BindConfig {
    /// Weights of the tile cost function (Eqn 2).
    pub weights: CostWeights,
    /// Cap for the Eqn 1 cycle enumeration.
    pub max_cycles: usize,
    /// Run the reverse-order re-binding optimization (Sec 9.1, second
    /// paragraph). On by default; exposed for the ablation benches.
    pub optimize: bool,
}

impl Default for BindConfig {
    fn default() -> Self {
        BindConfig {
            weights: CostWeights::BALANCED,
            max_cycles: DEFAULT_CYCLE_CAP,
            optimize: true,
        }
    }
}

impl BindConfig {
    /// A configuration using the given Eqn 2 weights.
    pub fn with_weights(weights: CostWeights) -> Self {
        BindConfig {
            weights,
            ..BindConfig::default()
        }
    }
}

/// Candidate tiles for one actor: every tile whose processor type the
/// actor supports and which still has at least one free wheel unit, in
/// tile order. The wheel filter is exact: `tile_constraints_hold`
/// demands one remaining wheel unit for any tile that hosts an actor, so
/// a fully claimed tile can never be accepted in either pass (and in the
/// optimization pass the actor's original tile always retains its own
/// claimed-free unit, so the restore fallback is unaffected).
fn candidate_tiles(
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    actor: ActorId,
) -> Vec<TileId> {
    arch.tiles()
        .filter(|&(id, tile)| {
            state.usage(id).wheel < tile.wheel_size()
                && app
                    .actor_requirements(actor)
                    .supports(tile.processor_type())
        })
        .map(|(id, _)| id)
        .collect()
}

/// How a candidate tile is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RankScope {
    /// Cost of the candidate tile only (the first-fit pass: "the tile cost
    /// function based on the current partial binding with a bound to t").
    CandidateTile,
    /// Maximum of Eqn 2 over every tile (the optimization pass:
    /// "considering the load of all tiles when the whole application graph
    /// except actor a is bound" — the balance objective is to minimize the
    /// most loaded tile).
    AllTiles,
}

/// Ranks `tiles` by the Eqn 2 cost of binding `actor` there (given the
/// current partial `binding`), ascending; ties in tile order.
#[allow(clippy::too_many_arguments)]
fn rank_tiles(
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    binding: &mut Binding,
    actor: ActorId,
    tiles: &[TileId],
    weights: CostWeights,
    scope: RankScope,
) -> Result<Vec<(TileId, f64)>, MapError> {
    let mut ranked = Vec::with_capacity(tiles.len());
    for &t in tiles {
        binding.bind(actor, t);
        let cost = match scope {
            RankScope::CandidateTile => {
                tile_cost(weights, tile_loads(app, arch, state, binding, t)?)
            }
            RankScope::AllTiles => {
                // Exact restriction of "max over every tile": a tile with
                // no bound actor has zero demand and zero processing share,
                // and `fraction` maps zero use to zero load even on
                // zero-capacity resources, so its Eqn 2 cost is exactly 0 —
                // the value `worst` starts from.
                let mut worst = 0.0f64;
                for u in binding.used_tiles() {
                    worst = worst.max(tile_cost(
                        weights,
                        tile_loads(app, arch, state, binding, u)?,
                    ));
                }
                worst
            }
        };
        binding.unbind(actor);
        ranked.push((t, cost));
    }
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    Ok(ranked)
}

/// Binds every actor of the application to a tile (Sec 9.1).
///
/// # Errors
///
/// [`MapError::NoFeasibleTile`] if some actor fits on no tile without
/// violating the Section 7 constraints.
///
/// # Examples
///
/// Reproduce row 1 of Table 3 — weights (1, 0, 0) bind a1, a2 to t1 and
/// a3 to t2:
///
/// ```
/// use sdfrs_appmodel::apps::{example_platform, paper_example};
/// use sdfrs_core::bind::{bind_actors, BindConfig};
/// use sdfrs_core::cost::CostWeights;
/// use sdfrs_platform::{PlatformState, TileId};
///
/// # fn main() -> Result<(), sdfrs_core::MapError> {
/// let app = paper_example();
/// let arch = example_platform();
/// let state = PlatformState::new(&arch);
/// let binding = bind_actors(&app, &arch, &state,
///     &BindConfig::with_weights(CostWeights::PROCESSING))?;
/// let g = app.graph();
/// let t1 = TileId::from_index(0);
/// let t2 = TileId::from_index(1);
/// assert_eq!(binding.tile_of(g.actor_by_name("a1").unwrap()), Some(t1));
/// assert_eq!(binding.tile_of(g.actor_by_name("a2").unwrap()), Some(t1));
/// assert_eq!(binding.tile_of(g.actor_by_name("a3").unwrap()), Some(t2));
/// # Ok(())
/// # }
/// ```
pub fn bind_actors(
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    config: &BindConfig,
) -> Result<Binding, MapError> {
    let mut sink = NullSink;
    let mut obs = FlowObserver::new(&mut sink);
    bind_actors_observed(app, arch, state, config, &mut obs)
}

/// [`bind_actors`] reporting every decision through an observer: the
/// Eqn 1 criticality order, one
/// [`BindAttempt`](FlowEvent::BindAttempt) per candidate tile tried in
/// either pass, and an [`ActorRebound`](FlowEvent::ActorRebound) whenever
/// the optimization pass moves an actor.
///
/// # Errors
///
/// See [`bind_actors`].
pub fn bind_actors_observed(
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    config: &BindConfig,
    obs: &mut FlowObserver<'_>,
) -> Result<Binding, MapError> {
    let order = binding_order(app, config.max_cycles)?;
    obs.emit(|| FlowEvent::CriticalityOrder {
        actors: order
            .iter()
            .map(|&a| app.graph().actor(a).name().to_string())
            .collect(),
    });
    let mut binding = Binding::new(app.graph().actor_count());

    // First-fit in criticality order.
    for &actor in &order {
        let tiles = candidate_tiles(app, arch, state, actor);
        let ranked = rank_tiles(
            app,
            arch,
            state,
            &mut binding,
            actor,
            &tiles,
            config.weights,
            RankScope::CandidateTile,
        )?;
        let mut placed = false;
        for (tile, cost) in ranked {
            binding.bind(actor, tile);
            let accepted = binding_constraints_hold(app, arch, state, &binding);
            obs.counters.bind_attempts += 1;
            obs.metrics().record(|m| {
                m.bind_attempts.inc();
                m.bind_attempts_per_tile.add(tile.index(), 1);
                if accepted {
                    m.bind_accepted.inc();
                }
            });
            obs.emit(|| FlowEvent::BindAttempt {
                pass: BindPass::FirstFit,
                actor: app.graph().actor(actor).name().to_string(),
                tile: tile.index(),
                cost,
                accepted,
            });
            if accepted {
                placed = true;
                break;
            }
            binding.unbind(actor);
        }
        if !placed {
            return Err(MapError::NoFeasibleTile { actor });
        }
    }

    // Reverse-order re-binding: always succeeds because the original tile
    // is among the candidates.
    if config.optimize {
        for &actor in order.iter().rev() {
            let original = binding.tile_of(actor).expect("first pass bound everything");
            binding.unbind(actor);
            let tiles = candidate_tiles(app, arch, state, actor);
            let ranked = rank_tiles(
                app,
                arch,
                state,
                &mut binding,
                actor,
                &tiles,
                config.weights,
                RankScope::AllTiles,
            )?;
            let mut placed = false;
            for (tile, cost) in ranked {
                binding.bind(actor, tile);
                let accepted = binding_constraints_hold(app, arch, state, &binding);
                obs.counters.bind_attempts += 1;
                obs.metrics().record(|m| {
                    m.bind_attempts.inc();
                    m.bind_attempts_per_tile.add(tile.index(), 1);
                    if accepted {
                        m.bind_accepted.inc();
                    }
                });
                obs.emit(|| FlowEvent::BindAttempt {
                    pass: BindPass::Rebind,
                    actor: app.graph().actor(actor).name().to_string(),
                    tile: tile.index(),
                    cost,
                    accepted,
                });
                if accepted {
                    placed = true;
                    break;
                }
                binding.unbind(actor);
            }
            if !placed {
                binding.bind(actor, original);
            }
            let landed = binding.tile_of(actor).expect("actor rebound or restored");
            if landed != original {
                obs.metrics().record(|m| m.actors_rebound.inc());
                obs.emit(|| FlowEvent::ActorRebound {
                    actor: app.graph().actor(actor).name().to_string(),
                    from: original.index(),
                    to: landed.index(),
                });
            }
        }
    }

    Ok(binding)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfrs_appmodel::apps::{example_platform, paper_example};
    use sdfrs_platform::Tile;

    fn bind_with(weights: CostWeights) -> (ApplicationGraph, Binding) {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let binding = bind_actors(&app, &arch, &state, &BindConfig::with_weights(weights)).unwrap();
        (app, binding)
    }

    fn tiles_of(app: &ApplicationGraph, b: &Binding) -> Vec<usize> {
        ["a1", "a2", "a3"]
            .iter()
            .map(|n| {
                b.tile_of(app.graph().actor_by_name(n).unwrap())
                    .unwrap()
                    .index()
            })
            .collect()
    }

    /// Table 3 row 1: (1, 0, 0) ⇒ t1, t1, t2.
    #[test]
    fn table3_processing_weights() {
        let (app, b) = bind_with(CostWeights::PROCESSING);
        assert_eq!(tiles_of(&app, &b), vec![0, 0, 1]);
    }

    /// Table 3 row 3: (0, 0, 1) ⇒ t1, t1, t1.
    #[test]
    fn table3_communication_weights() {
        let (app, b) = bind_with(CostWeights::COMMUNICATION);
        assert_eq!(tiles_of(&app, &b), vec![0, 0, 0]);
    }

    /// Table 3 row 4: (1, 1, 1) ⇒ t1, t1, t2.
    #[test]
    fn table3_balanced_weights() {
        let (app, b) = bind_with(CostWeights::BALANCED);
        assert_eq!(tiles_of(&app, &b), vec![0, 0, 1]);
    }

    #[test]
    fn binding_is_complete_and_constraint_clean() {
        for w in CostWeights::table4() {
            let app = paper_example();
            let arch = example_platform();
            let state = PlatformState::new(&arch);
            let b = bind_actors(&app, &arch, &state, &BindConfig::with_weights(w)).unwrap();
            assert!(b.is_complete());
            assert!(binding_constraints_hold(&app, &arch, &state, &b));
        }
    }

    #[test]
    fn optimization_can_be_disabled() {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let cfg = BindConfig {
            optimize: false,
            ..BindConfig::with_weights(CostWeights::PROCESSING)
        };
        let b = bind_actors(&app, &arch, &state, &cfg).unwrap();
        assert!(b.is_complete());
    }

    #[test]
    fn infeasible_when_no_type_matches() {
        let app = paper_example();
        // Platform whose processors support nothing the app knows.
        let mut arch = ArchitectureGraph::new("alien");
        arch.add_tile(Tile::new("t", "alien".into(), 10, 1000, 4, 100, 100));
        let state = PlatformState::new(&arch);
        assert!(matches!(
            bind_actors(&app, &arch, &state, &BindConfig::default()),
            Err(MapError::NoFeasibleTile { .. })
        ));
    }

    #[test]
    fn infeasible_when_memory_too_small() {
        let app = paper_example();
        let mut arch = ArchitectureGraph::new("tiny");
        // Single tile with memory below the application's footprint.
        arch.add_tile(Tile::new("t", "p1".into(), 10, 50, 4, 100, 100));
        let state = PlatformState::new(&arch);
        assert!(matches!(
            bind_actors(&app, &arch, &state, &BindConfig::default()),
            Err(MapError::NoFeasibleTile { .. })
        ));
    }

    #[test]
    fn occupancy_steers_binding_away() {
        use sdfrs_platform::TileUsage;
        let app = paper_example();
        let arch = example_platform();
        let mut state = PlatformState::new(&arch);
        // Make t1's memory scarce: the big d2 buffer no longer fits
        // locally, pushing the binding apart or to t2.
        state.claim(
            TileId::from_index(0),
            TileUsage {
                memory: 680,
                ..TileUsage::default()
            },
        );
        let b = bind_actors(
            &app,
            &arch,
            &state,
            &BindConfig::with_weights(CostWeights::MEMORY),
        )
        .unwrap();
        assert!(binding_constraints_hold(&app, &arch, &state, &b));
        // t1 has only 20 bits left: nothing heavy can live there.
        let t1_actors = b.actors_on(TileId::from_index(0));
        let pt = arch.tile(TileId::from_index(0)).processor_type().clone();
        let demand: u64 = t1_actors
            .iter()
            .map(|&a| app.actor_memory(a, &pt).unwrap())
            .sum();
        assert!(demand <= 20);
    }
}
