//! Exact branch-and-bound allocation for small instances, with an
//! LP-relaxation upper bound certified by the rational
//! [`simplex`] kernel.
//!
//! The paper's flow is a greedy heuristic and never reports how far
//! from optimal it lands. This module answers that question with a
//! search over actor→tile bindings that is
//!
//! * **exact** — the objective of a complete binding is the guaranteed
//!   iteration throughput the real machinery computes for it (the
//!   binding-aware graph of Sec 8.1 under list-scheduled static orders,
//!   evaluated at the full remaining TDMA wheel of every tile — the
//!   best slices any allocation of this binding could get, since
//!   guaranteed throughput is monotone in the slice sizes);
//! * **bounded** — every subtree is bounded above by an exact rational
//!   LP: relax the 0/1 placement variables `x_{a,t}` of the unbound
//!   actors to `[0,1]` and minimize the worst per-tile *weighted work*
//!   `P = max_t (fixed_t + Σ_a γ_a·τ_a(t)·x_{a,t}) · W_t / rem_t`.
//!   An actor bound to tile `t` receives at most the asymptotic TDMA
//!   service rate `rem_t / W_t` (the remaining wheel `rem_t` out of
//!   every wheel rotation `W_t`), so one graph iteration — which must
//!   execute `γ_a` firings of τ time units each — takes at least `P`
//!   time units, and `1/P*` upper-bounds the iteration throughput of
//!   every completion of the partial binding. The relaxation drops
//!   token-dependency delays and memory/connection constraints, which
//!   only weakens (never invalidates) the bound. The structural bounds
//!   of [`sdfrs_sdf::analysis::bounds`] tighten it from the graph side;
//! * **deterministic** — actors are expanded in the Eqn 1 criticality
//!   order, candidate tiles in ascending index, the LP pivots by
//!   Bland's rule, and the incumbent only ever updates on a *strict*
//!   improvement. Pruning removes only subtrees whose every leaf is ≤
//!   the incumbent at prune time, so the search returns bit-for-bit the
//!   binding [`enumerate_exhaustive`] returns — the heart of
//!   conformance oracle 10.
//!
//! The search seeds its incumbent from the greedy heuristic (the
//! paper's answer is the starting lower bound) and obeys a node budget:
//! exhaustion is *not* an error — the incumbent is returned with
//! `gap > 0`, bounded by the best LP bound left on the open frontier.
//!
//! Arithmetic note: LP coefficients are `γ·τ·W/rem` rationals over
//! `i128`; the dense tableau can overflow `i128` on adversarially large
//! execution times. The backend targets *small* instances (the
//! conformance panel caps it at a few actors/tiles); overflow panics in
//! debug and wraps in release like every other `Rational` use in this
//! workspace.

use sdfrs_appmodel::ApplicationGraph;
use sdfrs_platform::{ArchitectureGraph, PlatformState, TileId};
use sdfrs_sdf::analysis::bounds::throughput_bounds;
use sdfrs_sdf::analysis::selftimed::ThroughputResult;
use sdfrs_sdf::{ActorId, Rational};

use crate::allocator::Allocator;
use crate::binding::Binding;
use crate::binding_aware::BindingAwareGraph;
use crate::constrained::TileSchedules;
use crate::cost::binding_order;
use crate::error::MapError;
use crate::events::{FlowEvent, FlowObserver, NullSink};
use crate::flow::{Allocation, FlowConfig, FlowStats};
use crate::list_sched::ListScheduler;
use crate::resources::{allocation_usage, cross_channels_routable, tile_constraints_hold};
use crate::simplex::{self, LpConstraint, LpError, LpProblem, LpRelation};
use crate::solver::{SolveOutcome, SolveReport, SolverKind};

/// Knobs of the branch-and-bound search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactConfig {
    /// Maximum branch-and-bound nodes to expand before returning the
    /// incumbent with a residual gap. Exhaustion with an incumbent in
    /// hand is a result, not an error.
    pub node_budget: u64,
    /// Stop early once the relative gap `(upper − lower)/upper` is ≤
    /// this target. The default `0` demands a proof of optimality (and
    /// then only skips the final drain of already-dominated frontier
    /// nodes, so the incumbent is unaffected).
    pub gap_target: Rational,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            node_budget: 20_000,
            gap_target: Rational::ZERO,
        }
    }
}

/// The best complete binding found, with its full-wheel evaluation.
struct Incumbent {
    binding: Binding,
    schedules: TileSchedules,
    achieved: ThroughputResult,
}

/// Raw outcome of one branch-and-bound (or exhaustive) run.
struct Search {
    incumbent: Option<Incumbent>,
    /// Certified upper bound on the optimal objective (`None` = nothing
    /// bounds it, which only happens on degenerate zero-work graphs).
    upper: Option<Rational>,
    /// `true` when the search ran to completion (or hit the gap target);
    /// `false` on node-budget exhaustion.
    complete: bool,
    nodes_expanded: u64,
    lp_pivots: u64,
    pruned_bound: u64,
    pruned_infeasible: u64,
    leaves_evaluated: u64,
}

/// Everything immutable the search consults.
struct Ctx<'a> {
    app: &'a ApplicationGraph,
    arch: &'a ArchitectureGraph,
    state: &'a PlatformState,
    flow: FlowConfig,
    /// Remaining TDMA wheel per tile index (the slices of the witness).
    full: Vec<u64>,
    /// Wheel size per tile index.
    wheel: Vec<u64>,
    /// Actors in Eqn 1 criticality order — the branching order.
    order: Vec<ActorId>,
    /// Candidate tiles per branching position: processor type supported
    /// and at least one wheel unit remaining.
    cands: Vec<Vec<TileId>>,
    /// `γ_a · τ_a(t)` per branching position and tile index (`None` =
    /// unsupported).
    work: Vec<Vec<Option<u64>>>,
    /// The throughput constraint λ.
    lambda: Rational,
    /// Structural throughput upper bound of the application graph.
    structural: Option<Rational>,
}

impl<'a> Ctx<'a> {
    fn build(
        app: &'a ApplicationGraph,
        arch: &'a ArchitectureGraph,
        state: &'a PlatformState,
        flow: FlowConfig,
    ) -> Result<Self, MapError> {
        let order = binding_order(app, flow.bind.max_cycles)?;
        let gamma = app.graph().repetition_vector()?;
        let full: Vec<u64> = arch
            .tile_ids()
            .map(|t| state.available_wheel(arch, t))
            .collect();
        let wheel: Vec<u64> = arch.tile_ids().map(|t| arch.tile(t).wheel_size()).collect();
        let mut cands = Vec::with_capacity(order.len());
        let mut work = Vec::with_capacity(order.len());
        for &a in &order {
            let mut c = Vec::new();
            let mut w = vec![None; wheel.len()];
            for (t, tile) in arch.tiles() {
                if full[t.index()] == 0 {
                    continue;
                }
                if let Some(tau) = app.execution_time(a, tile.processor_type()) {
                    c.push(t);
                    w[t.index()] = Some(gamma[a] * tau);
                }
            }
            cands.push(c);
            work.push(w);
        }
        let structural = throughput_bounds(app.graph(), flow.bind.max_cycles)
            .ok()
            .and_then(|b| b.tightest());
        Ok(Ctx {
            app,
            arch,
            state,
            flow,
            full,
            wheel,
            order,
            cands,
            work,
            lambda: app.throughput_constraint(),
            structural,
        })
    }

    /// The LP-relaxation throughput bound of a partial binding covering
    /// `order[..depth]`, combined with the structural bound. `Ok(None)`
    /// means unbounded (zero-work relaxation); `Err(())` means the
    /// relaxation itself is infeasible (some free actor fits nowhere).
    /// Pivot counts accumulate into `pivots`.
    fn bound(
        &self,
        binding: &Binding,
        depth: usize,
        pivots: &mut u64,
    ) -> Result<Option<Rational>, ()> {
        let tiles = self.wheel.len();
        // Fixed weighted work already committed per tile.
        let mut fixed = vec![0u64; tiles];
        for (pos, &a) in self.order[..depth].iter().enumerate() {
            let t = binding.tile_of(a).expect("prefix actors are bound");
            fixed[t.index()] += self.work[pos][t.index()].expect("bound tiles are supported");
        }
        // Variable layout: one x per (free position, candidate tile),
        // then P last.
        let mut var_of = Vec::new(); // (position, tile index)
        for pos in depth..self.order.len() {
            if self.cands[pos].is_empty() {
                return Err(());
            }
            for &t in &self.cands[pos] {
                var_of.push((pos, t.index()));
            }
        }
        let num_vars = var_of.len() + 1;
        let p_var = var_of.len();
        let mut objective = vec![Rational::ZERO; num_vars];
        objective[p_var] = Rational::ONE;
        let mut constraints = Vec::new();
        // Each free actor is placed exactly once.
        for pos in depth..self.order.len() {
            let mut coeffs = vec![Rational::ZERO; num_vars];
            for (v, &(p, _)) in var_of.iter().enumerate() {
                if p == pos {
                    coeffs[v] = Rational::ONE;
                }
            }
            constraints.push(LpConstraint {
                coeffs,
                relation: LpRelation::Eq,
                rhs: Rational::ONE,
            });
        }
        // Weighted tile load ≤ P.
        for (ti, &fixed_t) in fixed.iter().enumerate() {
            if self.full[ti] == 0 {
                debug_assert_eq!(fixed_t, 0, "work committed to a full tile");
                continue;
            }
            let scale = Rational::new(self.wheel[ti] as i128, self.full[ti] as i128);
            let mut coeffs = vec![Rational::ZERO; num_vars];
            let mut any = fixed_t > 0;
            for (v, &(pos, t)) in var_of.iter().enumerate() {
                if t == ti {
                    let w = self.work[pos][ti].expect("candidates are supported");
                    coeffs[v] = Rational::from_integer(w as i128) * scale;
                    any = true;
                }
            }
            if !any {
                continue;
            }
            coeffs[p_var] = -Rational::ONE;
            constraints.push(LpConstraint {
                coeffs,
                relation: LpRelation::Le,
                rhs: -(Rational::from_integer(fixed_t as i128) * scale),
            });
        }
        let problem = LpProblem {
            num_vars,
            objective,
            constraints,
        };
        match simplex::solve(&problem) {
            Ok(sol) => {
                *pivots += sol.pivots;
                let lp = if sol.objective > Rational::ZERO {
                    Some(sol.objective.recip())
                } else {
                    None
                };
                Ok(match (lp, self.structural) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                })
            }
            Err(LpError::Infeasible) => Err(()),
            // Minimizing P ≥ 0 cannot be unbounded; be safe, not wrong.
            Err(LpError::Unbounded) => Ok(self.structural),
        }
    }

    /// `true` when extending the partial binding by `order[depth] → t`
    /// keeps the Section 7 constraints satisfiable. `binding` already
    /// has the actor bound.
    fn child_feasible(&self, binding: &Binding, tile: TileId) -> bool {
        tile_constraints_hold(self.app, self.arch, self.state, binding, tile, None)
            && cross_channels_routable(self.app, self.arch, binding)
    }

    /// The witness slice vector of a complete binding: the full
    /// remaining wheel on used tiles, nothing elsewhere.
    fn witness_slices(&self, binding: &Binding) -> Vec<u64> {
        let used = binding.used_tiles();
        (0..self.full.len())
            .map(|ti| {
                if used.contains(&TileId::from_index(ti)) {
                    self.full[ti]
                } else {
                    0
                }
            })
            .collect()
    }
}

/// Evaluates one complete binding with the real throughput machinery at
/// full-remaining-wheel slices. `Ok(None)` = resource-infeasible.
fn evaluate_leaf(
    allocator: &mut Allocator,
    ctx: &Ctx<'_>,
    binding: &Binding,
) -> Result<Option<(TileSchedules, ThroughputResult)>, MapError> {
    for t in binding.used_tiles() {
        if !tile_constraints_hold(
            ctx.app,
            ctx.arch,
            ctx.state,
            binding,
            t,
            Some(ctx.full[t.index()]),
        ) {
            return Ok(None);
        }
    }
    if !cross_channels_routable(ctx.app, ctx.arch, binding) {
        return Ok(None);
    }
    // Like the flow's scheduling step, unused tiles get a nominal slice
    // of 1 (their TDMA is never consulted — no actor is scheduled there).
    let ba_slices: Vec<u64> = ctx.full.iter().map(|&w| w.max(1)).collect();
    let ba = BindingAwareGraph::build_with_model(
        ctx.app,
        ctx.arch,
        binding,
        &ba_slices,
        ctx.flow.connection_model,
    )?;
    let schedule_budget = ctx.flow.schedule_state_budget;
    let eval_budget = ctx.flow.slice.state_budget;
    let reference = ba.ba_actor(ctx.app.output_actor());
    let cache = allocator.cache_mut();
    let mut sink = NullSink;
    let mut obs = FlowObserver::new(&mut sink);
    let schedules = cache.schedules_for(&ba, schedule_budget, || {
        ListScheduler::new(&ba)
            .with_state_budget(schedule_budget)
            .construct_observed(&mut obs)
    })?;
    let achieved = cache.throughput(&ba, &schedules, reference, eval_budget)?;
    Ok(Some((schedules, achieved)))
}

/// Strict-improvement incumbent update shared by the branch-and-bound
/// search and the exhaustive enumerator — identical acceptance logic is
/// what makes the two agree bit-for-bit.
fn offer_leaf(
    incumbent: &mut Option<Incumbent>,
    ctx: &Ctx<'_>,
    binding: &Binding,
    schedules: TileSchedules,
    achieved: ThroughputResult,
) -> bool {
    let objective = achieved.iteration_throughput;
    if objective < ctx.lambda {
        return false;
    }
    let better = incumbent
        .as_ref()
        .is_none_or(|i| objective > i.achieved.iteration_throughput);
    if better {
        *incumbent = Some(Incumbent {
            binding: binding.clone(),
            schedules,
            achieved,
        });
    }
    better
}

/// One open node of the DFS stack.
struct Node {
    depth: usize,
    binding: Binding,
    bound: Option<Rational>,
}

/// Is a subtree bounded by `bound` still worth exploring against the
/// incumbent objective and the constraint λ?
fn promising(bound: Option<Rational>, incumbent: Option<Rational>, lambda: Rational) -> bool {
    match bound {
        None => true,
        Some(b) => b >= lambda && incumbent.is_none_or(|i| b > i),
    }
}

/// The branch-and-bound search. Emits [`FlowEvent::SolverStarted`] /
/// [`FlowEvent::ExactIncumbent`] / [`FlowEvent::SolverFinished`] and
/// the `exact_*` metrics; the greedy seed run inside it reports through
/// the ordinary flow instrumentation.
fn search(
    allocator: &mut Allocator,
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    config: ExactConfig,
    kind: SolverKind,
) -> Result<(Option<(Allocation, FlowStats)>, Search), MapError> {
    let flow = *allocator.config();
    flow.validate()?;
    allocator.emit(|| FlowEvent::SolverStarted {
        backend: kind.name(),
    });
    allocator.metric(|m| m.solver_runs_exact.inc());

    let ctx = Ctx::build(app, arch, state, flow)?;
    let mut out = Search {
        incumbent: None,
        upper: None,
        complete: false,
        nodes_expanded: 0,
        lp_pivots: 0,
        pruned_bound: 0,
        pruned_infeasible: 0,
        leaves_evaluated: 0,
    };

    // Seed: the paper's heuristic answer, evaluated at full wheel, is
    // the starting incumbent. Feasibility failures are simply "no seed";
    // configuration errors were caught above.
    let greedy = allocator.allocate(app, arch, state).ok();
    if let Some((alloc, _)) = &greedy {
        out.leaves_evaluated += 1;
        if let Some((schedules, achieved)) = evaluate_leaf(allocator, &ctx, &alloc.binding)? {
            if offer_leaf(
                &mut out.incumbent,
                &ctx,
                &alloc.binding,
                schedules,
                achieved,
            ) {
                let thr = out
                    .incumbent
                    .as_ref()
                    .expect("offer accepted")
                    .achieved
                    .iteration_throughput;
                allocator.emit(|| FlowEvent::ExactIncumbent {
                    node: 0,
                    throughput: thr,
                });
            }
        }
    }

    let mut stack = Vec::new();
    let root = Binding::new(app.graph().actor_count());
    match ctx.bound(&root, 0, &mut out.lp_pivots) {
        Ok(bound) => stack.push(Node {
            depth: 0,
            binding: root,
            bound,
        }),
        Err(()) => out.pruned_infeasible += 1,
    }

    let incumbent_obj =
        |inc: &Option<Incumbent>| inc.as_ref().map(|i| i.achieved.iteration_throughput);
    let frontier_max = |stack: &[Node]| -> Option<Option<Rational>> {
        // max over the open frontier; None inside = unbounded node.
        let mut best: Option<Option<Rational>> = None;
        for n in stack {
            best = Some(match (best, n.bound) {
                (None, b) => b,
                (Some(None), _) | (Some(_), None) => None,
                (Some(Some(a)), Some(b)) => Some(a.max(b)),
            });
        }
        best
    };

    while let Some(node) = stack.pop() {
        // Gap-target early stop (the default target 0 only triggers once
        // the whole frontier is dominated, leaving the incumbent final).
        if let Some(lower) = incumbent_obj(&out.incumbent) {
            let frontier = match frontier_max(&stack) {
                None => node.bound,
                Some(None) => None,
                Some(Some(f)) => node.bound.map(|b| b.max(f)),
            };
            if let Some(f) = frontier {
                let upper = f.max(lower);
                if SolveReport::gap_between(lower, upper) <= config.gap_target {
                    out.complete = true;
                    out.upper = Some(upper);
                    break;
                }
            }
        }
        if out.nodes_expanded >= config.node_budget {
            stack.push(node);
            break;
        }
        out.nodes_expanded += 1;

        // The incumbent may have improved since this node was pushed.
        if !promising(node.bound, incumbent_obj(&out.incumbent), ctx.lambda) {
            out.pruned_bound += 1;
            continue;
        }

        if node.depth == ctx.order.len() {
            out.leaves_evaluated += 1;
            if let Some((schedules, achieved)) = evaluate_leaf(allocator, &ctx, &node.binding)? {
                if offer_leaf(&mut out.incumbent, &ctx, &node.binding, schedules, achieved) {
                    let node_no = out.nodes_expanded;
                    let thr = out
                        .incumbent
                        .as_ref()
                        .expect("offer accepted")
                        .achieved
                        .iteration_throughput;
                    allocator.emit(|| FlowEvent::ExactIncumbent {
                        node: node_no,
                        throughput: thr,
                    });
                }
            }
            continue;
        }

        let actor = ctx.order[node.depth];
        let mut children = Vec::new();
        for &tile in &ctx.cands[node.depth] {
            let mut child = node.binding.clone();
            child.bind(actor, tile);
            if !ctx.child_feasible(&child, tile) {
                out.pruned_infeasible += 1;
                continue;
            }
            let bound = match ctx.bound(&child, node.depth + 1, &mut out.lp_pivots) {
                Ok(b) => b,
                Err(()) => {
                    out.pruned_infeasible += 1;
                    continue;
                }
            };
            if !promising(bound, incumbent_obj(&out.incumbent), ctx.lambda) {
                out.pruned_bound += 1;
                continue;
            }
            children.push(Node {
                depth: node.depth + 1,
                binding: child,
                bound,
            });
        }
        // Push in reverse so the lowest tile index pops (and is explored)
        // first — the deterministic expansion order.
        for child in children.into_iter().rev() {
            stack.push(child);
        }
    }

    if stack.is_empty() && !out.complete {
        out.complete = true;
        out.upper = incumbent_obj(&out.incumbent);
    }
    if !out.complete {
        // Budget exhausted: the optimum is bounded by the best open
        // frontier bound (or the incumbent, whichever is larger).
        let lower = incumbent_obj(&out.incumbent);
        out.upper = match (frontier_max(&stack), lower) {
            (Some(Some(f)), Some(l)) => Some(f.max(l)),
            (Some(Some(f)), None) => Some(f),
            (Some(None), _) | (None, None) => ctx.structural,
            (None, Some(l)) => Some(l),
        };
    }

    let lower = incumbent_obj(&out.incumbent).unwrap_or(Rational::ZERO);
    let upper = out.upper.unwrap_or(lower).max(lower);
    let gap = SolveReport::gap_between(lower, upper);
    let proven = out.complete && out.incumbent.is_some() && gap == Rational::ZERO;
    let (nodes, pivots, pb, pi, leaves) = (
        out.nodes_expanded,
        out.lp_pivots,
        out.pruned_bound,
        out.pruned_infeasible,
        out.leaves_evaluated,
    );
    allocator.emit(|| FlowEvent::SolverFinished {
        backend: kind.name(),
        lower,
        upper,
        gap,
        proven_optimal: proven,
        nodes,
        lp_pivots: pivots,
        pruned_bound: pb,
        pruned_infeasible: pi,
        leaves,
    });
    allocator.metric(|m| {
        m.exact_nodes_expanded.add(nodes);
        m.exact_lp_pivots.add(pivots);
        m.exact_prunes_bound.add(pb);
        m.exact_prunes_infeasible.add(pi);
        m.exact_leaves_evaluated.add(leaves);
        if proven {
            m.exact_proven_optimal.inc();
        }
    });
    Ok((greedy, out))
}

/// Builds the report of a finished search.
fn report_of(kind: SolverKind, out: &Search) -> SolveReport {
    let lower = out
        .incumbent
        .as_ref()
        .map(|i| i.achieved.iteration_throughput)
        .unwrap_or(Rational::ZERO);
    let upper = out.upper.unwrap_or(lower).max(lower);
    let gap = SolveReport::gap_between(lower, upper);
    SolveReport {
        kind,
        lower,
        upper,
        gap,
        proven_optimal: out.complete && out.incumbent.is_some() && gap == Rational::ZERO,
        nodes_expanded: out.nodes_expanded,
        lp_pivots: out.lp_pivots,
        pruned_bound: out.pruned_bound,
        pruned_infeasible: out.pruned_infeasible,
        leaves_evaluated: out.leaves_evaluated,
    }
}

/// Materializes the incumbent as a full-remaining-wheel witness
/// [`Allocation`].
fn witness_allocation(ctx: &Ctx<'_>, incumbent: Incumbent) -> Allocation {
    let slices = ctx.witness_slices(&incumbent.binding);
    let usage = allocation_usage(ctx.app, ctx.arch, &incumbent.binding, &slices);
    Allocation {
        binding: incumbent.binding,
        schedules: incumbent.schedules,
        slices,
        usage,
        achieved: incumbent.achieved,
    }
}

/// Flow statistics of a search-produced outcome: every leaf evaluation
/// is one throughput check.
fn search_stats(out: &Search) -> FlowStats {
    FlowStats {
        throughput_checks: out.leaves_evaluated as usize,
        ..FlowStats::default()
    }
}

/// The [`Exact`](crate::solver::Exact) backend body: branch-and-bound,
/// witness allocation, certified report.
pub(crate) fn solve_exact(
    allocator: &mut Allocator,
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    config: ExactConfig,
) -> Result<SolveOutcome, MapError> {
    let (_, out) = search(allocator, app, arch, state, config, SolverKind::Exact)?;
    let report = report_of(SolverKind::Exact, &out);
    let stats = search_stats(&out);
    let ctx = Ctx::build(app, arch, state, *allocator.config())?;
    match out.incumbent {
        Some(inc) => Ok(SolveOutcome::new(
            witness_allocation(&ctx, inc),
            stats,
            report,
        )),
        None => Err(MapError::ConstraintUnsatisfiable),
    }
}

/// The [`Portfolio`](crate::solver::Portfolio) backend body: the greedy
/// allocation (minimal slices) is what gets committed; the exact search
/// tightens the bound pair around it. When greedy fails but the search
/// finds a feasible binding, the witness is committed instead.
pub(crate) fn solve_portfolio(
    allocator: &mut Allocator,
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    config: ExactConfig,
) -> Result<SolveOutcome, MapError> {
    let (greedy, out) = search(allocator, app, arch, state, config, SolverKind::Portfolio)?;
    let report = report_of(SolverKind::Portfolio, &out);
    let search_only_stats = search_stats(&out);
    match (greedy, out.incumbent) {
        (Some((allocation, stats)), _) => Ok(SolveOutcome::new(allocation, stats, report)),
        (None, Some(inc)) => {
            let ctx = Ctx::build(app, arch, state, *allocator.config())?;
            Ok(SolveOutcome::new(
                witness_allocation(&ctx, inc),
                search_only_stats,
                report,
            ))
        }
        (None, None) => Err(MapError::ConstraintUnsatisfiable),
    }
}

/// Exhaustively enumerates every complete binding in the same
/// deterministic order as the branch-and-bound search (criticality-order
/// actors, ascending tiles), seeded with the identical greedy incumbent,
/// and returns the identical witness outcome — the ground truth of
/// conformance oracle 10. No LP, no pruning beyond monotone resource
/// infeasibility; exponential, so only call it on tiny instances.
///
/// # Errors
///
/// [`MapError::ConstraintUnsatisfiable`] when no complete binding meets
/// the throughput constraint; otherwise as [`Allocator::allocate`].
pub fn enumerate_exhaustive(
    allocator: &mut Allocator,
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
) -> Result<SolveOutcome, MapError> {
    let flow = *allocator.config();
    flow.validate()?;
    let ctx = Ctx::build(app, arch, state, flow)?;
    let mut out = Search {
        incumbent: None,
        upper: None,
        complete: true,
        nodes_expanded: 0,
        lp_pivots: 0,
        pruned_bound: 0,
        pruned_infeasible: 0,
        leaves_evaluated: 0,
    };

    // Identical greedy seeding: ties between the heuristic's binding and
    // an equal-valued enumerated binding resolve the same way they do in
    // the branch-and-bound search.
    if let Ok((alloc, _)) = allocator.allocate(app, arch, state) {
        out.leaves_evaluated += 1;
        if let Some((schedules, achieved)) = evaluate_leaf(allocator, &ctx, &alloc.binding)? {
            offer_leaf(
                &mut out.incumbent,
                &ctx,
                &alloc.binding,
                schedules,
                achieved,
            );
        }
    }

    let mut stack = vec![(0usize, Binding::new(app.graph().actor_count()))];
    while let Some((depth, binding)) = stack.pop() {
        out.nodes_expanded += 1;
        if depth == ctx.order.len() {
            out.leaves_evaluated += 1;
            if let Some((schedules, achieved)) = evaluate_leaf(allocator, &ctx, &binding)? {
                offer_leaf(&mut out.incumbent, &ctx, &binding, schedules, achieved);
            }
            continue;
        }
        let actor = ctx.order[depth];
        for &tile in ctx.cands[depth].iter().rev() {
            let mut child = binding.clone();
            child.bind(actor, tile);
            if ctx.child_feasible(&child, tile) {
                stack.push((depth + 1, child));
            } else {
                out.pruned_infeasible += 1;
            }
        }
    }

    out.upper = out
        .incumbent
        .as_ref()
        .map(|i| i.achieved.iteration_throughput);
    let report = report_of(SolverKind::Exact, &out);
    let stats = search_stats(&out);
    match out.incumbent {
        Some(inc) => Ok(SolveOutcome::new(
            witness_allocation(&ctx, inc),
            stats,
            report,
        )),
        None => Err(MapError::ConstraintUnsatisfiable),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfrs_appmodel::apps::{example_platform, paper_example};

    fn solve_default(config: ExactConfig) -> Result<SolveOutcome, MapError> {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let mut allocator = Allocator::new();
        solve_exact(&mut allocator, &app, &arch, &state, config)
    }

    #[test]
    fn exact_solves_the_paper_example_optimally() {
        let outcome = solve_default(ExactConfig::default()).unwrap();
        let r = outcome.report;
        assert_eq!(r.kind, SolverKind::Exact);
        assert!(r.proven_optimal, "tiny instance must be proved: {r:?}");
        assert_eq!(r.gap, Rational::ZERO);
        assert_eq!(r.lower, r.upper);
        assert_eq!(
            outcome.allocation.guaranteed_throughput(),
            r.lower,
            "the witness achieves the certified lower bound"
        );
        assert!(r.lower >= paper_example().throughput_constraint());
        assert!(r.nodes_expanded > 0);
        assert!(r.leaves_evaluated > 0);
    }

    #[test]
    fn exact_beats_or_matches_greedy() {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let mut allocator = Allocator::new();
        let (greedy, _) = allocator.allocate(&app, &arch, &state).unwrap();
        let exact =
            solve_exact(&mut allocator, &app, &arch, &state, ExactConfig::default()).unwrap();
        assert!(
            exact.allocation.guaranteed_throughput() >= greedy.guaranteed_throughput(),
            "exact {} < greedy {}",
            exact.allocation.guaranteed_throughput(),
            greedy.guaranteed_throughput()
        );
    }

    #[test]
    fn exact_matches_exhaustive_bit_for_bit() {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let exact = {
            let mut allocator = Allocator::new();
            solve_exact(&mut allocator, &app, &arch, &state, ExactConfig::default()).unwrap()
        };
        let brute = {
            let mut allocator = Allocator::new();
            enumerate_exhaustive(&mut allocator, &app, &arch, &state).unwrap()
        };
        assert_eq!(exact.allocation.binding, brute.allocation.binding);
        assert_eq!(exact.allocation.slices, brute.allocation.slices);
        assert_eq!(exact.allocation.achieved, brute.allocation.achieved);
        assert_eq!(exact.report.lower, brute.report.lower);
    }

    #[test]
    fn exhausted_budget_returns_incumbent_with_gap() {
        // One node is enough to seed greedy but not to finish the search.
        let outcome = solve_default(ExactConfig {
            node_budget: 1,
            gap_target: Rational::ZERO,
        })
        .unwrap();
        let r = outcome.report;
        assert!(!r.proven_optimal);
        assert!(r.gap > Rational::ZERO, "residual gap expected: {r:?}");
        assert!(r.lower <= r.upper);
        assert!(r.lower >= paper_example().throughput_constraint());
    }

    #[test]
    fn unsatisfiable_constraint_is_an_error() {
        let app = paper_example().with_throughput_constraint(Rational::new(1, 3));
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let mut allocator = Allocator::new();
        let err =
            solve_exact(&mut allocator, &app, &arch, &state, ExactConfig::default()).unwrap_err();
        assert_eq!(err, MapError::ConstraintUnsatisfiable);
    }

    #[test]
    fn runs_are_bit_reproducible() {
        let a = solve_default(ExactConfig::default()).unwrap();
        let b = solve_default(ExactConfig::default()).unwrap();
        assert_eq!(a.allocation.binding, b.allocation.binding);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn portfolio_commits_the_greedy_allocation() {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let mut allocator = Allocator::new();
        let (greedy, _) = allocator.allocate(&app, &arch, &state).unwrap();
        let outcome =
            solve_portfolio(&mut allocator, &app, &arch, &state, ExactConfig::default()).unwrap();
        assert_eq!(outcome.report.kind, SolverKind::Portfolio);
        assert_eq!(outcome.allocation.binding, greedy.binding);
        assert_eq!(outcome.allocation.slices, greedy.slices);
        // The bound pair describes the optimum, which the (minimal)
        // greedy allocation may undershoot.
        assert!(outcome.report.lower >= outcome.allocation.guaranteed_throughput());
    }
}
