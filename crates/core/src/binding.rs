//! The binding function ℬ : A → T (Definition 6) and the channel
//! partitioning it induces (the sets `A_t`, `D_{t,tile}`, `D_{t,src}`,
//! `D_{t,dst}` of Section 7).

use sdfrs_appmodel::ApplicationGraph;
use sdfrs_platform::TileId;
use sdfrs_sdf::{ActorId, ChannelId};

use crate::error::MapError;

/// A (possibly partial) binding of application actors to platform tiles.
///
/// # Examples
///
/// ```
/// use sdfrs_core::Binding;
/// use sdfrs_platform::TileId;
/// use sdfrs_sdf::ActorId;
/// let mut b = Binding::new(3);
/// let a0 = ActorId::from_index(0);
/// b.bind(a0, TileId::from_index(1));
/// assert_eq!(b.tile_of(a0), Some(TileId::from_index(1)));
/// assert!(!b.is_complete());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    tiles: Vec<Option<TileId>>,
}

impl Binding {
    /// An empty binding for `actor_count` actors.
    pub fn new(actor_count: usize) -> Self {
        Binding {
            tiles: vec![None; actor_count],
        }
    }

    /// Number of actors covered (bound or not).
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// `true` if the binding covers no actors.
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// Binds `actor` to `tile` (replacing any previous binding).
    pub fn bind(&mut self, actor: ActorId, tile: TileId) {
        self.tiles[actor.index()] = Some(tile);
    }

    /// Removes the binding of `actor`.
    pub fn unbind(&mut self, actor: ActorId) {
        self.tiles[actor.index()] = None;
    }

    /// The tile `actor` is bound to, if any.
    pub fn tile_of(&self, actor: ActorId) -> Option<TileId> {
        self.tiles[actor.index()]
    }

    /// `true` when every actor is bound.
    pub fn is_complete(&self) -> bool {
        self.tiles.iter().all(Option::is_some)
    }

    /// The tile of `actor`, or an [`MapError::UnboundActor`] error.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::UnboundActor`] when the actor is unbound.
    pub fn require(&self, actor: ActorId) -> Result<TileId, MapError> {
        self.tile_of(actor).ok_or(MapError::UnboundActor { actor })
    }

    /// Actors bound to `tile` (the set `A_t`), in actor order.
    pub fn actors_on(&self, tile: TileId) -> Vec<ActorId> {
        self.tiles
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == Some(tile))
            .map(|(i, _)| ActorId::from_index(i))
            .collect()
    }

    /// The distinct tiles used by this binding, ascending.
    pub fn used_tiles(&self) -> Vec<TileId> {
        let mut used: Vec<TileId> = self.tiles.iter().flatten().copied().collect();
        used.sort();
        used.dedup();
        used
    }

    /// Partitions the application's channels relative to `tile`:
    /// `(D_{t,tile}, D_{t,src}, D_{t,dst})` of Section 7. Channels with an
    /// unbound endpoint are skipped (partial bindings occur during the
    /// binding step).
    pub fn channel_partition(&self, app: &ApplicationGraph, tile: TileId) -> ChannelPartition {
        let mut part = ChannelPartition::default();
        for (id, ch) in app.graph().channels() {
            let (src, dst) = (self.tile_of(ch.src()), self.tile_of(ch.dst()));
            match (src, dst) {
                (Some(s), Some(d)) if s == tile && d == tile => part.local.push(id),
                (Some(s), Some(d)) if s == tile && d != tile => part.outgoing.push(id),
                (Some(s), Some(d)) if d == tile && s != tile => part.incoming.push(id),
                _ => {}
            }
        }
        part
    }
}

/// The channel sets of Section 7 for one tile.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChannelPartition {
    /// `D_{t,tile}`: both endpoints on the tile.
    pub local: Vec<ChannelId>,
    /// `D_{t,src}`: source on the tile, destination elsewhere.
    pub outgoing: Vec<ChannelId>,
    /// `D_{t,dst}`: destination on the tile, source elsewhere.
    pub incoming: Vec<ChannelId>,
}

impl ChannelPartition {
    /// Number of NI connections this tile needs:
    /// `|D_{t,src}| + |D_{t,dst}|` (constraint 3 of Sec 7).
    pub fn connection_count(&self) -> usize {
        self.outgoing.len() + self.incoming.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfrs_appmodel::apps::paper_example;

    #[test]
    fn bind_unbind_roundtrip() {
        let mut b = Binding::new(2);
        let a = ActorId::from_index(0);
        assert_eq!(b.tile_of(a), None);
        b.bind(a, TileId::from_index(1));
        assert_eq!(b.tile_of(a), Some(TileId::from_index(1)));
        b.unbind(a);
        assert_eq!(b.tile_of(a), None);
        assert!(b.require(a).is_err());
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn completeness_and_used_tiles() {
        let mut b = Binding::new(3);
        let t0 = TileId::from_index(0);
        let t1 = TileId::from_index(1);
        b.bind(ActorId::from_index(0), t0);
        b.bind(ActorId::from_index(1), t0);
        assert!(!b.is_complete());
        b.bind(ActorId::from_index(2), t1);
        assert!(b.is_complete());
        assert_eq!(b.used_tiles(), vec![t0, t1]);
        assert_eq!(b.actors_on(t0).len(), 2);
        assert_eq!(b.actors_on(t1), vec![ActorId::from_index(2)]);
    }

    #[test]
    fn paper_example_partition() {
        // a1, a2 on t1; a3 on t2 (the binding of Sec 8.1).
        let app = paper_example();
        let g = app.graph();
        let t1 = TileId::from_index(0);
        let t2 = TileId::from_index(1);
        let mut b = Binding::new(g.actor_count());
        b.bind(g.actor_by_name("a1").unwrap(), t1);
        b.bind(g.actor_by_name("a2").unwrap(), t1);
        b.bind(g.actor_by_name("a3").unwrap(), t2);

        let p1 = b.channel_partition(&app, t1);
        let d1 = g.channel_by_name("d1").unwrap();
        let d2 = g.channel_by_name("d2").unwrap();
        let d3 = g.channel_by_name("d3").unwrap();
        assert_eq!(p1.local, vec![d1, d3]);
        assert_eq!(p1.outgoing, vec![d2]);
        assert!(p1.incoming.is_empty());
        assert_eq!(p1.connection_count(), 1);

        let p2 = b.channel_partition(&app, t2);
        assert!(p2.local.is_empty());
        assert!(p2.outgoing.is_empty());
        assert_eq!(p2.incoming, vec![d2]);
    }

    #[test]
    fn partial_binding_skips_unbound_channels() {
        let app = paper_example();
        let g = app.graph();
        let t1 = TileId::from_index(0);
        let mut b = Binding::new(g.actor_count());
        b.bind(g.actor_by_name("a1").unwrap(), t1);
        // d1's destination a2 is unbound: not classified anywhere.
        let p = b.channel_partition(&app, t1);
        let d3 = g.channel_by_name("d3").unwrap();
        assert_eq!(p.local, vec![d3]);
        assert!(p.outgoing.is_empty());
        assert!(p.incoming.is_empty());
    }
}
