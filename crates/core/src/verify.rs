//! Independent verification of a finished [`Allocation`] — a
//! trust-but-verify layer that re-derives every validity condition of
//! Section 7 plus the throughput guarantee from scratch, without reusing
//! any intermediate result of the flow that produced the allocation.

use sdfrs_appmodel::ApplicationGraph;
use sdfrs_platform::{ArchitectureGraph, PlatformState};

use crate::binding_aware::BindingAwareGraph;
use crate::constrained::ConstrainedExecutor;
use crate::error::MapError;
use crate::flow::Allocation;
use crate::resources::{tile_capacity, tile_demand};

/// A violated validity condition, as produced by [`verify_allocation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An actor has no tile.
    IncompleteBinding,
    /// A tile's allocated slice exceeds its remaining wheel (Sec 7
    /// constraint 1).
    SliceExceedsWheel {
        /// Tile index.
        tile: usize,
    },
    /// Memory demand exceeds the remaining memory (constraint 2).
    MemoryOverflow {
        /// Tile index.
        tile: usize,
    },
    /// Connection demand exceeds the NI capacity (constraint 3).
    ConnectionOverflow {
        /// Tile index.
        tile: usize,
    },
    /// Bandwidth demand exceeds the NI capacity (constraint 4).
    BandwidthOverflow {
        /// Tile index.
        tile: usize,
    },
    /// A used tile is missing a static-order schedule, the schedule fires
    /// foreign actors, or its periodic firing counts are not proportional
    /// to the repetition vector (such a schedule cannot repeat).
    MalformedSchedule {
        /// Tile index.
        tile: usize,
    },
    /// The re-computed guaranteed throughput misses the constraint λ.
    ThroughputMiss,
    /// The re-computed throughput differs from the recorded one (the
    /// allocation object is internally inconsistent).
    ThroughputMismatch,
}

/// Re-verifies an allocation from first principles.
///
/// Returns the list of violations — empty for a valid allocation. The
/// throughput is re-computed by rebuilding the binding-aware graph at the
/// allocation's slices and running the constrained analysis anew.
///
/// # Errors
///
/// Analysis failures (exploration budget, missing connections) propagate
/// as [`MapError`]; they indicate a malformed allocation rather than a
/// mere violation.
pub fn verify_allocation(
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    allocation: &Allocation,
) -> Result<Vec<Violation>, MapError> {
    let mut violations = Vec::new();

    if !allocation.binding.is_complete() {
        violations.push(Violation::IncompleteBinding);
        return Ok(violations);
    }

    // Section 7 constraints against the remaining capacities.
    for t in arch.tile_ids() {
        let cap = tile_capacity(arch, state, t);
        let demand = tile_demand(app, arch, &allocation.binding, t);
        let used = !allocation.binding.actors_on(t).is_empty();
        let slice = allocation.slices.get(t.index()).copied().unwrap_or(0);
        if used && (slice == 0 || slice > cap.wheel) {
            violations.push(Violation::SliceExceedsWheel { tile: t.index() });
        }
        if demand.memory > cap.memory {
            violations.push(Violation::MemoryOverflow { tile: t.index() });
        }
        if demand.connections > cap.connections {
            violations.push(Violation::ConnectionOverflow { tile: t.index() });
        }
        if demand.bandwidth_in > cap.bandwidth_in || demand.bandwidth_out > cap.bandwidth_out {
            violations.push(Violation::BandwidthOverflow { tile: t.index() });
        }
    }

    // Schedules exist for used tiles, only fire that tile's actors, and
    // fire them γ-proportionally within the period.
    let gamma = app.graph().repetition_vector()?;
    for t in allocation.binding.used_tiles() {
        match allocation.schedules.get(t) {
            None => violations.push(Violation::MalformedSchedule { tile: t.index() }),
            Some(schedule) => {
                let on_tile = allocation.binding.actors_on(t);
                let foreign = schedule
                    .prefix()
                    .iter()
                    .chain(schedule.period())
                    .any(|a| !on_tile.contains(a));
                let missing = on_tile.iter().any(|a| !schedule.period().contains(a));
                // Counts in the period must be k·γ(a) for one common k.
                let mut k: Option<sdfrs_sdf::Rational> = None;
                let mut proportional = true;
                for &a in &on_tile {
                    let count = schedule.period().iter().filter(|&&x| x == a).count();
                    let ratio = sdfrs_sdf::Rational::new(count as i128, gamma[a] as i128);
                    match k {
                        None => k = Some(ratio),
                        Some(prev) if prev != ratio => proportional = false,
                        Some(_) => {}
                    }
                }
                if foreign || missing || !proportional {
                    violations.push(Violation::MalformedSchedule { tile: t.index() });
                }
            }
        }
    }
    if !violations.is_empty() {
        return Ok(violations);
    }

    // Recompute the guarantee from scratch.
    let ba = BindingAwareGraph::build(app, arch, &allocation.binding, &allocation.slices)?;
    let reference = ba.ba_actor(app.output_actor());
    let recomputed = ConstrainedExecutor::new(&ba, &allocation.schedules)
        .throughput(reference)
        .map_err(MapError::from)?;
    if recomputed.iteration_throughput != allocation.achieved.iteration_throughput {
        violations.push(Violation::ThroughputMismatch);
    }
    if recomputed.iteration_throughput < app.throughput_constraint() {
        violations.push(Violation::ThroughputMiss);
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::Allocator;
    use sdfrs_appmodel::apps::{example_platform, paper_example};
    use sdfrs_sdf::Rational;

    fn valid_allocation() -> (
        ApplicationGraph,
        ArchitectureGraph,
        PlatformState,
        Allocation,
    ) {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let (alloc, _) = Allocator::new().allocate(&app, &arch, &state).unwrap();
        (app, arch, state, alloc)
    }

    #[test]
    fn flow_output_verifies_clean() {
        let (app, arch, state, alloc) = valid_allocation();
        assert_eq!(
            verify_allocation(&app, &arch, &state, &alloc).unwrap(),
            vec![]
        );
    }

    #[test]
    fn detects_oversized_slice() {
        let (app, arch, state, mut alloc) = valid_allocation();
        let t = alloc.binding.used_tiles()[0];
        alloc.slices[t.index()] = 99;
        let v = verify_allocation(&app, &arch, &state, &alloc).unwrap();
        assert!(v.contains(&Violation::SliceExceedsWheel { tile: t.index() }));
    }

    #[test]
    fn detects_throughput_miss() {
        // Shrink the slices below what λ needs.
        let (app, arch, state, mut alloc) = valid_allocation();
        for t in alloc.binding.used_tiles() {
            alloc.slices[t.index()] = 1;
        }
        let v = verify_allocation(&app, &arch, &state, &alloc).unwrap();
        assert!(
            v.contains(&Violation::ThroughputMiss) || v.contains(&Violation::ThroughputMismatch),
            "shrunken slices must be caught: {v:?}"
        );
    }

    #[test]
    fn detects_incomplete_binding() {
        let (app, arch, state, mut alloc) = valid_allocation();
        alloc
            .binding
            .unbind(app.graph().actor_by_name("a2").unwrap());
        let v = verify_allocation(&app, &arch, &state, &alloc).unwrap();
        assert_eq!(v, vec![Violation::IncompleteBinding]);
    }

    #[test]
    fn detects_foreign_schedule() {
        let (app, arch, state, mut alloc) = valid_allocation();
        // Swap the two tiles' schedules (both non-trivial in the default
        // allocation of the example).
        let tiles = alloc.binding.used_tiles();
        if tiles.len() == 2 {
            let s0 = alloc.schedules.get(tiles[0]).unwrap().clone();
            let s1 = alloc.schedules.get(tiles[1]).unwrap().clone();
            alloc.schedules.set(tiles[0], s1);
            alloc.schedules.set(tiles[1], s0);
            let v = verify_allocation(&app, &arch, &state, &alloc).unwrap();
            assert!(v
                .iter()
                .any(|x| matches!(x, Violation::MalformedSchedule { .. })));
        }
    }

    #[test]
    fn detects_non_proportional_schedule() {
        use crate::schedule::StaticOrderSchedule;
        let (app, arch, state, mut alloc) = valid_allocation();
        // Find the tile hosting a1 and a2 (γ = 2 each) and fire a1 twice
        // as often as a2: proportionality breaks.
        let a1 = app.graph().actor_by_name("a1").unwrap();
        let a2 = app.graph().actor_by_name("a2").unwrap();
        let t = alloc.binding.tile_of(a1).unwrap();
        if alloc.binding.tile_of(a2) == Some(t) {
            alloc
                .schedules
                .set(t, StaticOrderSchedule::new(vec![], vec![a1, a1, a2]));
            let v = verify_allocation(&app, &arch, &state, &alloc).unwrap();
            assert!(v
                .iter()
                .any(|x| matches!(x, Violation::MalformedSchedule { .. })));
        }
    }

    #[test]
    fn detects_recorded_throughput_mismatch() {
        let (app, arch, state, mut alloc) = valid_allocation();
        alloc.achieved.iteration_throughput = Rational::new(1, 2);
        let v = verify_allocation(&app, &arch, &state, &alloc).unwrap();
        assert!(v.contains(&Violation::ThroughputMismatch));
    }

    #[test]
    fn occupied_state_is_respected() {
        use sdfrs_platform::TileUsage;
        let (app, arch, mut state, alloc) = valid_allocation();
        // Occupy the memory under the allocation's feet.
        for t in arch.tile_ids() {
            state.claim(
                t,
                TileUsage {
                    memory: arch.tile(t).memory(),
                    ..TileUsage::default()
                },
            );
        }
        let v = verify_allocation(&app, &arch, &state, &alloc).unwrap();
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::MemoryOverflow { .. })));
    }
}
