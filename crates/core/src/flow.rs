//! The complete three-step resource-allocation strategy (Section 9).
//!
//! 1. [`bind::bind_actors`](crate::bind::bind_actors()) — resource binding;
//! 2. [`construct_schedules`](crate::list_sched::construct_schedules) —
//!    static-order schedules via a list-scheduled execution assuming 50%
//!    of each tile's remaining wheel;
//! 3. `slice::allocate_slices` — TDMA slice
//!    allocation by binary search.

use std::time::{Duration, Instant};

use sdfrs_appmodel::ApplicationGraph;
use sdfrs_platform::{ArchitectureGraph, PlatformState, TileUsage};
use sdfrs_sdf::analysis::selftimed::ThroughputResult;
use sdfrs_sdf::Rational;

use crate::bind::{bind_actors, BindConfig};
use crate::binding::Binding;
use crate::binding_aware::{BindingAwareGraph, ConnectionModel};
use crate::constrained::TileSchedules;
use crate::error::MapError;
use crate::list_sched::ListScheduler;
use crate::resources::allocation_usage;
use crate::slice::{allocate_slices_cached, SliceConfig};
use crate::thru_cache::ThroughputCache;

/// Configuration of the full flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowConfig {
    /// Binding-step configuration (Eqn 2 weights etc.).
    pub bind: BindConfig,
    /// Slice-allocation configuration.
    pub slice: SliceConfig,
    /// State budget for the schedule-construction execution.
    pub schedule_state_budget: usize,
    /// How cross-tile channels are modeled (Sec 8.1's simple connection
    /// actor, or the pipelined NoC refinement).
    pub connection_model: ConnectionModel,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            bind: BindConfig::default(),
            slice: SliceConfig::default(),
            schedule_state_budget: crate::list_sched::DEFAULT_STATE_BUDGET,
            connection_model: ConnectionModel::Simple,
        }
    }
}

impl FlowConfig {
    /// A configuration using the given Eqn 2 weights.
    pub fn with_weights(weights: crate::cost::CostWeights) -> Self {
        FlowConfig {
            bind: BindConfig::with_weights(weights),
            ..FlowConfig::default()
        }
    }
}

/// Run-time statistics of one allocation (the quantities reported in
/// Sec 10.2 / 10.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowStats {
    /// Throughput computations performed by the slice-allocation step
    /// (paper: 16.1 on average over the benchmark; 34 in the multimedia
    /// experiment; 8 for a single H.263 decoder).
    pub throughput_checks: usize,
    /// Throughput checks answered by the evaluation cache (≤
    /// `throughput_checks`).
    pub cache_hits: usize,
    /// Throughput checks that ran the constrained state-space exploration.
    pub cache_misses: usize,
    /// Wall-clock time of the binding step.
    pub binding_time: Duration,
    /// Wall-clock time of the schedule construction.
    pub scheduling_time: Duration,
    /// Wall-clock time of the slice allocation.
    pub slice_time: Duration,
}

impl FlowStats {
    /// Total flow run time.
    pub fn total_time(&self) -> Duration {
        self.binding_time + self.scheduling_time + self.slice_time
    }
}

/// A complete, valid resource allocation: the output of the strategy.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// The binding function ℬ.
    pub binding: Binding,
    /// The static-order schedules (part of the scheduling function 𝒮).
    pub schedules: TileSchedules,
    /// The TDMA slices ω per tile index (0 for unused tiles).
    pub slices: Vec<u64>,
    /// Resources the allocation claims per tile index.
    pub usage: Vec<TileUsage>,
    /// Guaranteed throughput under the allocation.
    pub achieved: ThroughputResult,
}

impl Allocation {
    /// The guaranteed iteration throughput.
    pub fn guaranteed_throughput(&self) -> Rational {
        self.achieved.iteration_throughput
    }

    /// Claims this allocation's resources on a platform state, making them
    /// unavailable to later applications.
    pub fn claim_on(&self, arch: &ArchitectureGraph, state: &mut PlatformState) {
        for t in arch.tile_ids() {
            state.claim(t, self.usage[t.index()]);
        }
    }
}

/// Runs the three-step strategy for one application on a (partially
/// occupied) platform.
///
/// # Errors
///
/// Any step may fail: [`MapError::NoFeasibleTile`] from binding,
/// [`MapError::Sdf`] from an analysis, or
/// [`MapError::ConstraintUnsatisfiable`] from the slice allocation.
///
/// # Examples
///
/// Allocate the paper's running example and check the guarantee:
///
/// ```
/// use sdfrs_appmodel::apps::{example_platform, paper_example};
/// use sdfrs_core::flow::{allocate, FlowConfig};
/// use sdfrs_platform::PlatformState;
/// use sdfrs_sdf::Rational;
///
/// # fn main() -> Result<(), sdfrs_core::MapError> {
/// let app = paper_example();
/// let arch = example_platform();
/// let state = PlatformState::new(&arch);
/// let (alloc, stats) = allocate(&app, &arch, &state, &FlowConfig::default())?;
/// assert!(alloc.guaranteed_throughput() >= Rational::new(1, 30));
/// assert!(stats.throughput_checks > 0);
/// # Ok(())
/// # }
/// ```
pub fn allocate(
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    config: &FlowConfig,
) -> Result<(Allocation, FlowStats), MapError> {
    let mut cache = ThroughputCache::new();
    allocate_with_cache(app, arch, state, config, &mut cache)
}

/// [`allocate`] with a caller-provided throughput-evaluation cache.
///
/// Admission protocols and DSE sweeps call the flow repeatedly for the
/// same application against a platform state that often has not changed
/// since the last call; sharing one [`ThroughputCache`] across those
/// calls turns every repeated slice search into cache hits.
pub fn allocate_with_cache(
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    config: &FlowConfig,
    cache: &mut ThroughputCache,
) -> Result<(Allocation, FlowStats), MapError> {
    let mut stats = FlowStats::default();
    let (hits0, misses0) = (cache.hits(), cache.misses());

    // Step 1: resource binding.
    let t0 = Instant::now();
    let binding = bind_actors(app, arch, state, &config.bind)?;
    stats.binding_time = t0.elapsed();

    // Step 2: static-order schedules, assuming 50% of each remaining
    // wheel.
    let t0 = Instant::now();
    let half: Vec<u64> = arch
        .tile_ids()
        .map(|t| (state.available_wheel(arch, t) / 2).max(1))
        .collect();
    let mut ba =
        BindingAwareGraph::build_with_model(app, arch, &binding, &half, config.connection_model)?;
    let schedules = ListScheduler::new(&ba)
        .with_state_budget(config.schedule_state_budget)
        .construct()?;
    stats.scheduling_time = t0.elapsed();

    // Step 3: TDMA slice allocation.
    let t0 = Instant::now();
    let slice_alloc = allocate_slices_cached(
        &mut ba,
        &schedules,
        app,
        arch,
        state,
        &binding,
        &config.slice,
        cache,
    )?;
    stats.slice_time = t0.elapsed();
    stats.throughput_checks = slice_alloc.throughput_checks;
    stats.cache_hits = cache.hits() - hits0;
    stats.cache_misses = cache.misses() - misses0;

    let usage = allocation_usage(app, arch, &binding, &slice_alloc.slices);
    Ok((
        Allocation {
            binding,
            schedules,
            slices: slice_alloc.slices,
            usage,
            achieved: slice_alloc.achieved,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostWeights;
    use sdfrs_appmodel::apps::{example_platform, paper_example};
    use sdfrs_platform::TileId;

    #[test]
    fn full_flow_on_paper_example() {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let (alloc, stats) = allocate(&app, &arch, &state, &FlowConfig::default()).unwrap();
        assert!(alloc.binding.is_complete());
        assert!(alloc.guaranteed_throughput() >= Rational::new(1, 30));
        assert!(stats.throughput_checks >= 2);
        // Usage covers the slices.
        for t in alloc.binding.used_tiles() {
            assert_eq!(alloc.usage[t.index()].wheel, alloc.slices[t.index()]);
            assert!(alloc.slices[t.index()] >= 1);
        }
    }

    #[test]
    fn all_table4_weights_allocate_the_example() {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        for w in CostWeights::table4() {
            let (alloc, _) = allocate(&app, &arch, &state, &FlowConfig::with_weights(w))
                .unwrap_or_else(|e| panic!("weights {w} failed: {e}"));
            assert!(alloc.guaranteed_throughput() >= app.throughput_constraint());
        }
    }

    #[test]
    fn claim_on_accumulates_usage() {
        let app = paper_example();
        let arch = example_platform();
        let mut state = PlatformState::new(&arch);
        let (alloc, _) = allocate(&app, &arch, &state, &FlowConfig::default()).unwrap();
        alloc.claim_on(&arch, &mut state);
        for t in alloc.binding.used_tiles() {
            assert_eq!(state.usage(t).wheel, alloc.slices[t.index()]);
            assert!(state.usage(t).memory > 0);
        }
    }

    #[test]
    fn second_copy_fits_after_first() {
        // The example needs few resources: two copies fit on the platform.
        let app = paper_example();
        let arch = example_platform();
        let mut state = PlatformState::new(&arch);
        let (first, _) = allocate(&app, &arch, &state, &FlowConfig::default()).unwrap();
        first.claim_on(&arch, &mut state);
        let second = allocate(&app, &arch, &state, &FlowConfig::default());
        // Whether it fits depends on the wheel left; either a valid
        // allocation or a clean infeasibility — never a panic.
        if let Ok((alloc, _)) = second {
            assert!(alloc.guaranteed_throughput() >= app.throughput_constraint());
            for t in arch.tile_ids() {
                assert!(
                    state.usage(t).wheel + alloc.usage[t.index()].wheel
                        <= arch.tile(t).wheel_size()
                );
            }
        }
    }

    #[test]
    fn unsatisfiable_constraint_reported() {
        let app = paper_example().with_throughput_constraint(Rational::new(1, 3));
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let err = allocate(&app, &arch, &state, &FlowConfig::default()).unwrap_err();
        assert_eq!(err, MapError::ConstraintUnsatisfiable);
    }

    #[test]
    fn stats_times_are_populated() {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let (_, stats) = allocate(&app, &arch, &state, &FlowConfig::default()).unwrap();
        assert!(stats.total_time() >= stats.slice_time);
        // The paper: ~90% of multimedia run-time in slice allocation; here
        // just assert the fields are recorded (platform timing varies).
        assert!(stats.total_time() > Duration::ZERO);
    }

    #[test]
    fn unused_tiles_claim_nothing() {
        let app = paper_example();
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        let cfg = FlowConfig::with_weights(CostWeights::COMMUNICATION);
        let (alloc, _) = allocate(&app, &arch, &state, &cfg).unwrap();
        // (0,0,1) binds everything to t1 (Table 3 row 3): t2 claims nothing.
        let t2 = TileId::from_index(1);
        assert_eq!(alloc.usage[t2.index()], TileUsage::default());
        assert_eq!(alloc.slices[t2.index()], 0);
    }
}
