//! The complete three-step resource-allocation strategy (Section 9).
//!
//! 1. [`bind::bind_actors`](crate::bind::bind_actors()) — resource binding;
//! 2. [`construct_schedules`](crate::list_sched::construct_schedules) —
//!    static-order schedules via a list-scheduled execution assuming 50%
//!    of each tile's remaining wheel;
//! 3. `slice::allocate_slices` — TDMA slice
//!    allocation by binary search.
//!
//! The public entry point is [`Allocator`](crate::Allocator), which owns
//! the [`FlowConfig`], the evaluation cache, and an event sink.

use std::time::Duration;

use sdfrs_appmodel::ApplicationGraph;
use sdfrs_platform::{ArchitectureGraph, ClaimSet, PlatformState, TileUsage};
use sdfrs_sdf::analysis::selftimed::ThroughputResult;
use sdfrs_sdf::Rational;

use crate::bind::{bind_actors_observed, BindConfig};
use crate::binding::Binding;
use crate::binding_aware::{BindingAwareGraph, ConnectionModel};
use crate::constrained::TileSchedules;
use crate::cost::CostWeights;
use crate::error::MapError;
use crate::events::{FlowEvent, FlowObserver, FlowPhase};
use crate::list_sched::ListScheduler;
use crate::metrics::SpanKind;
use crate::resources::allocation_usage;
use crate::slice::{allocate_slices_observed, SliceConfig};
use crate::thru_cache::ThroughputCache;

/// Configuration of the full flow.
///
/// Marked `#[non_exhaustive]`: build one with [`FlowConfig::default`],
/// [`FlowConfig::with_weights`] or the validating [`FlowConfig::builder`]
/// and adjust fields from there.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowConfig {
    /// Binding-step configuration (Eqn 2 weights etc.).
    pub bind: BindConfig,
    /// Slice-allocation configuration.
    pub slice: SliceConfig,
    /// State budget for the schedule-construction execution.
    pub schedule_state_budget: usize,
    /// How cross-tile channels are modeled (Sec 8.1's simple connection
    /// actor, or the pipelined NoC refinement).
    pub connection_model: ConnectionModel,
    /// Warm-start throughput probes from the shared exploration memo
    /// (default `true`). Results are bit-for-bit identical either way;
    /// `false` forces every fingerprint miss to explore from scratch —
    /// the from-scratch leg of the conformance panel and the cold
    /// benchmark baselines.
    pub warm_start: bool,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            bind: BindConfig::default(),
            slice: SliceConfig::default(),
            schedule_state_budget: crate::list_sched::DEFAULT_STATE_BUDGET,
            connection_model: ConnectionModel::Simple,
            warm_start: true,
        }
    }
}

impl FlowConfig {
    /// A configuration using the given Eqn 2 weights.
    pub fn with_weights(weights: CostWeights) -> Self {
        FlowConfig {
            bind: BindConfig::with_weights(weights),
            ..FlowConfig::default()
        }
    }

    /// A validating builder over the default configuration.
    pub fn builder() -> FlowConfigBuilder {
        FlowConfigBuilder::default()
    }

    /// Checks the configuration for values that would derail the flow:
    /// zero state budgets or cycle caps, degenerate Eqn 2 weights
    /// (negative, non-finite, or all zero — an empty weight set), or a
    /// negative tolerance.
    ///
    /// # Errors
    ///
    /// [`MapError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), MapError> {
        let invalid = |reason: &str| {
            Err(MapError::InvalidConfig {
                reason: reason.into(),
            })
        };
        if self.schedule_state_budget == 0 {
            return invalid("schedule_state_budget must be at least 1");
        }
        if self.slice.state_budget == 0 {
            return invalid("slice.state_budget must be at least 1");
        }
        if self.bind.max_cycles == 0 {
            return invalid("bind.max_cycles must be at least 1");
        }
        let w = self.bind.weights;
        for (name, v) in [
            ("processing", w.processing),
            ("memory", w.memory),
            ("communication", w.communication),
        ] {
            if !v.is_finite() {
                return Err(MapError::InvalidConfig {
                    reason: format!("weight {name} must be finite"),
                });
            }
            if v < 0.0 {
                return Err(MapError::InvalidConfig {
                    reason: format!("weight {name} must be non-negative"),
                });
            }
        }
        if w.processing == 0.0 && w.memory == 0.0 && w.communication == 0.0 {
            return invalid("at least one Eqn 2 weight must be positive");
        }
        if self.slice.tolerance < Rational::ZERO {
            return invalid("slice.tolerance must be non-negative");
        }
        Ok(())
    }
}

/// Validating builder for [`FlowConfig`].
///
/// Collects the knobs of all three steps and rejects degenerate values at
/// [`build`](Self::build) time instead of mid-flow.
///
/// # Examples
///
/// ```
/// use sdfrs_core::flow::FlowConfig;
/// use sdfrs_core::CostWeights;
///
/// let config = FlowConfig::builder()
///     .weights(CostWeights::TUNED)
///     .max_refine_passes(5)
///     .parallel(true)
///     .build()
///     .unwrap();
/// assert!(config.slice.parallel);
///
/// assert!(FlowConfig::builder().schedule_state_budget(0).build().is_err());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowConfigBuilder {
    config: FlowConfig,
}

impl FlowConfigBuilder {
    /// Sets the Eqn 2 weights.
    #[must_use]
    pub fn weights(mut self, weights: CostWeights) -> Self {
        self.config.bind.weights = weights;
        self
    }

    /// Sets the Eqn 1 cycle-enumeration cap.
    #[must_use]
    pub fn max_cycles(mut self, max_cycles: usize) -> Self {
        self.config.bind.max_cycles = max_cycles;
        self
    }

    /// Enables or disables the reverse-order re-binding pass.
    #[must_use]
    pub fn optimize(mut self, optimize: bool) -> Self {
        self.config.bind.optimize = optimize;
        self
    }

    /// Sets the global-search early-stop tolerance.
    #[must_use]
    pub fn tolerance(mut self, tolerance: Rational) -> Self {
        self.config.slice.tolerance = tolerance;
        self
    }

    /// Sets the per-tile refinement pass cap.
    #[must_use]
    pub fn max_refine_passes(mut self, passes: usize) -> Self {
        self.config.slice.max_refine_passes = passes;
        self
    }

    /// Enables or disables the per-tile refinement.
    #[must_use]
    pub fn refine(mut self, refine: bool) -> Self {
        self.config.slice.refine = refine;
        self
    }

    /// Runs the per-tile refinement searches concurrently.
    #[must_use]
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.config.slice.parallel = parallel;
        self
    }

    /// Sets the state budget per slice-search throughput evaluation.
    #[must_use]
    pub fn slice_state_budget(mut self, budget: usize) -> Self {
        self.config.slice.state_budget = budget;
        self
    }

    /// Sets the state budget of the schedule construction.
    #[must_use]
    pub fn schedule_state_budget(mut self, budget: usize) -> Self {
        self.config.schedule_state_budget = budget;
        self
    }

    /// Sets the cross-tile connection model.
    #[must_use]
    pub fn connection_model(mut self, model: ConnectionModel) -> Self {
        self.config.connection_model = model;
        self
    }

    /// Enables or disables warm-started throughput probes.
    #[must_use]
    pub fn warm_start(mut self, warm: bool) -> Self {
        self.config.warm_start = warm;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`MapError::InvalidConfig`]; see [`FlowConfig::validate`].
    pub fn build(self) -> Result<FlowConfig, MapError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Run-time statistics of one allocation (the quantities reported in
/// Sec 10.2 / 10.3), aggregated from the same observations that flow to
/// the event sink.
///
/// Marked `#[non_exhaustive]`: more phases will grow more counters.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowStats {
    /// Throughput computations performed by the slice-allocation step
    /// (paper: 16.1 on average over the benchmark; 34 in the multimedia
    /// experiment; 8 for a single H.263 decoder).
    pub throughput_checks: usize,
    /// Throughput checks answered by the evaluation cache (≤
    /// `throughput_checks`).
    pub cache_hits: usize,
    /// Throughput checks that ran the constrained state-space exploration.
    pub cache_misses: usize,
    /// Wall-clock time of the binding step.
    pub binding_time: Duration,
    /// Wall-clock time of the schedule construction.
    pub scheduling_time: Duration,
    /// Wall-clock time of the slice allocation.
    pub slice_time: Duration,
    /// Candidate tiles tried by the binding step (both passes; every
    /// [`BindAttempt`](crate::events::FlowEvent::BindAttempt)).
    pub bind_attempts: usize,
    /// States the list scheduler explored before its recurrence closed.
    pub schedule_states: usize,
    /// Iterations of the global slice binary search (including the
    /// initial full-wheel probe).
    pub global_slice_iterations: usize,
    /// Per-tile refinement evaluations (speculative probes, commit
    /// re-validations, and the final re-evaluation).
    pub refine_slice_iterations: usize,
}

impl FlowStats {
    /// Total flow run time.
    pub fn total_time(&self) -> Duration {
        self.binding_time + self.scheduling_time + self.slice_time
    }
}

/// A complete, valid resource allocation: the output of the strategy.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// The binding function ℬ.
    pub binding: Binding,
    /// The static-order schedules (part of the scheduling function 𝒮).
    pub schedules: TileSchedules,
    /// The TDMA slices ω per tile index (0 for unused tiles).
    pub slices: Vec<u64>,
    /// Resources the allocation claims per tile index.
    pub usage: Vec<TileUsage>,
    /// Guaranteed throughput under the allocation.
    pub achieved: ThroughputResult,
}

impl Allocation {
    /// The guaranteed iteration throughput.
    pub fn guaranteed_throughput(&self) -> Rational {
        self.achieved.iteration_throughput
    }

    /// The transactional per-tile resource footprint of this allocation:
    /// the sparse, sorted set of non-zero claims to
    /// [`apply`](ClaimSet::apply) to or [`revert`](ClaimSet::revert) from
    /// a [`PlatformState`] as one unit. This is the claim/release surface
    /// the admission layers use; it also carries the region bookkeeping
    /// ([`ClaimSet::region_footprint`], [`ClaimSet::within`]) that powers
    /// region-parallel commits.
    pub fn claim_set(&self) -> ClaimSet {
        ClaimSet::from_usage(&self.usage)
    }
}

/// The instrumented flow body behind
/// [`Allocator::allocate`](crate::Allocator::allocate).
pub(crate) fn allocate_inner(
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    config: &FlowConfig,
    cache: &mut ThroughputCache,
    obs: &mut FlowObserver<'_>,
) -> Result<(Allocation, FlowStats), MapError> {
    config.validate()?;
    obs.emit(|| FlowEvent::FlowStarted {
        app: app.graph().name().to_string(),
        actors: app.graph().actor_count(),
        channels: app.graph().channel_count(),
        tiles: arch.tile_count(),
        constraint: app.throughput_constraint(),
    });
    obs.metrics().record(|m| m.flows_started.inc());
    // One measurement feeds the `FlowFinished` duration *and* the `flow`
    // profiler span, so the trace and the metrics reconcile exactly.
    let run_span = obs.metrics().span(SpanKind::Flow);
    let result = allocate_steps(app, arch, state, config, cache, obs);
    let ok = result.is_ok();
    let duration = run_span.finish();
    obs.metrics().record(|m| {
        if ok {
            m.flows_succeeded.inc();
        } else {
            m.flows_failed.inc();
        }
    });
    obs.emit(|| FlowEvent::FlowFinished { ok, duration });
    result
}

fn allocate_steps(
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    config: &FlowConfig,
    cache: &mut ThroughputCache,
    obs: &mut FlowObserver<'_>,
) -> Result<(Allocation, FlowStats), MapError> {
    let mut stats = FlowStats::default();
    let (hits0, misses0) = (cache.hits(), cache.misses());
    // The observer may be shared across runs (admission protocols); read
    // counters as deltas against this run's start.
    let counters0 = obs.counters;

    // Step 1: resource binding.
    obs.emit(|| FlowEvent::PhaseStarted {
        phase: FlowPhase::Binding,
    });
    let span = obs.metrics().span(SpanKind::Bind);
    let binding = bind_actors_observed(app, arch, state, &config.bind, obs)?;
    stats.binding_time = span.finish();
    obs.emit(|| FlowEvent::PhaseFinished {
        phase: FlowPhase::Binding,
        duration: stats.binding_time,
    });

    // Step 2: static-order schedules, assuming 50% of each remaining
    // wheel.
    obs.emit(|| FlowEvent::PhaseStarted {
        phase: FlowPhase::Scheduling,
    });
    let span = obs.metrics().span(SpanKind::Schedule);
    let half: Vec<u64> = arch
        .tile_ids()
        .map(|t| (state.available_wheel(arch, t) / 2).max(1))
        .collect();
    let mut ba =
        BindingAwareGraph::build_with_model(app, arch, &binding, &half, config.connection_model)?;
    // Repeated admission re-checks and rebinds construct schedules for
    // the very same binding-aware graph over and over; the cache
    // memoizes the (deterministic) construction alongside its
    // throughput evaluations whenever warm-started re-analysis is on.
    let schedules = cache.schedules_for(&ba, config.schedule_state_budget, || {
        ListScheduler::new(&ba)
            .with_state_budget(config.schedule_state_budget)
            .construct_observed(obs)
    })?;
    stats.scheduling_time = span.finish();
    obs.emit(|| FlowEvent::PhaseFinished {
        phase: FlowPhase::Scheduling,
        duration: stats.scheduling_time,
    });

    // Step 3: TDMA slice allocation.
    obs.emit(|| FlowEvent::PhaseStarted {
        phase: FlowPhase::SliceAllocation,
    });
    let span = obs.metrics().span(SpanKind::Slice);
    let slice_alloc = allocate_slices_observed(
        &mut ba,
        &schedules,
        app,
        arch,
        state,
        &binding,
        &config.slice,
        cache,
        obs,
    )?;
    stats.slice_time = span.finish();
    obs.emit(|| FlowEvent::PhaseFinished {
        phase: FlowPhase::SliceAllocation,
        duration: stats.slice_time,
    });
    stats.throughput_checks = slice_alloc.throughput_checks;
    stats.cache_hits = cache.hits() - hits0;
    stats.cache_misses = cache.misses() - misses0;
    stats.bind_attempts = obs.counters.bind_attempts - counters0.bind_attempts;
    stats.schedule_states = obs.counters.schedule_states - counters0.schedule_states;
    stats.global_slice_iterations =
        obs.counters.global_slice_iterations - counters0.global_slice_iterations;
    stats.refine_slice_iterations =
        obs.counters.refine_slice_iterations - counters0.refine_slice_iterations;

    let usage = allocation_usage(app, arch, &binding, &slice_alloc.slices);
    Ok((
        Allocation {
            binding,
            schedules,
            slices: slice_alloc.slices,
            usage,
            achieved: slice_alloc.achieved,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::Allocator;
    use crate::cost::CostWeights;
    use sdfrs_appmodel::apps::{example_platform, paper_example};
    use sdfrs_platform::TileId;

    fn run(
        app: &ApplicationGraph,
        config: FlowConfig,
    ) -> Result<(Allocation, FlowStats), MapError> {
        let arch = example_platform();
        let state = PlatformState::new(&arch);
        Allocator::from_config(config).allocate(app, &arch, &state)
    }

    #[test]
    fn full_flow_on_paper_example() {
        let app = paper_example();
        let (alloc, stats) = run(&app, FlowConfig::default()).unwrap();
        assert!(alloc.binding.is_complete());
        assert!(alloc.guaranteed_throughput() >= Rational::new(1, 30));
        assert!(stats.throughput_checks >= 2);
        // The new iteration counters tie out with the check count.
        assert_eq!(
            stats.throughput_checks,
            stats.global_slice_iterations + stats.refine_slice_iterations
        );
        assert!(stats.bind_attempts >= app.graph().actor_count());
        assert!(stats.schedule_states > 0);
        // Usage covers the slices.
        for t in alloc.binding.used_tiles() {
            assert_eq!(alloc.usage[t.index()].wheel, alloc.slices[t.index()]);
            assert!(alloc.slices[t.index()] >= 1);
        }
    }

    #[test]
    fn all_table4_weights_allocate_the_example() {
        let app = paper_example();
        for w in CostWeights::table4() {
            let (alloc, _) = run(&app, FlowConfig::with_weights(w))
                .unwrap_or_else(|e| panic!("weights {w} failed: {e}"));
            assert!(alloc.guaranteed_throughput() >= app.throughput_constraint());
        }
    }

    #[test]
    fn claim_set_accumulates_usage() {
        let app = paper_example();
        let arch = example_platform();
        let mut state = PlatformState::new(&arch);
        let (alloc, _) = Allocator::new().allocate(&app, &arch, &state).unwrap();
        alloc.claim_set().apply(&mut state);
        for t in alloc.binding.used_tiles() {
            assert_eq!(state.usage(t).wheel, alloc.slices[t.index()]);
            assert!(state.usage(t).memory > 0);
        }
    }

    #[test]
    fn second_copy_fits_after_first() {
        // The example needs few resources: two copies fit on the platform.
        let app = paper_example();
        let arch = example_platform();
        let mut state = PlatformState::new(&arch);
        let mut allocator = Allocator::new();
        let (first, _) = allocator.allocate(&app, &arch, &state).unwrap();
        first.claim_set().apply(&mut state);
        let second = allocator.allocate(&app, &arch, &state);
        // Whether it fits depends on the wheel left; either a valid
        // allocation or a clean infeasibility — never a panic.
        if let Ok((alloc, _)) = second {
            assert!(alloc.guaranteed_throughput() >= app.throughput_constraint());
            for t in arch.tile_ids() {
                assert!(
                    state.usage(t).wheel + alloc.usage[t.index()].wheel
                        <= arch.tile(t).wheel_size()
                );
            }
        }
    }

    #[test]
    fn unsatisfiable_constraint_reported() {
        let app = paper_example().with_throughput_constraint(Rational::new(1, 3));
        let err = run(&app, FlowConfig::default()).unwrap_err();
        assert_eq!(err, MapError::ConstraintUnsatisfiable);
    }

    #[test]
    fn stats_times_are_populated() {
        let app = paper_example();
        let (_, stats) = run(&app, FlowConfig::default()).unwrap();
        assert!(stats.total_time() >= stats.slice_time);
        // The paper: ~90% of multimedia run-time in slice allocation; here
        // just assert the fields are recorded (platform timing varies).
        assert!(stats.total_time() > Duration::ZERO);
    }

    #[test]
    fn unused_tiles_claim_nothing() {
        let app = paper_example();
        let (alloc, _) = run(&app, FlowConfig::with_weights(CostWeights::COMMUNICATION)).unwrap();
        // (0,0,1) binds everything to t1 (Table 3 row 3): t2 claims nothing.
        let t2 = TileId::from_index(1);
        assert_eq!(alloc.usage[t2.index()], TileUsage::default());
        assert_eq!(alloc.slices[t2.index()], 0);
    }

    #[test]
    fn claim_set_revert_undoes_apply() {
        let app = paper_example();
        let arch = example_platform();
        let mut state = PlatformState::new(&arch);
        let (alloc, _) = Allocator::new().allocate(&app, &arch, &state).unwrap();
        let before = state.clone();
        let claim = alloc.claim_set();
        assert!(claim.fits(&arch, &state));
        claim.apply(&mut state);
        assert_ne!(state, before, "the allocation must claim something");
        claim.revert(&mut state);
        assert_eq!(state, before, "revert must reclaim exactly the claim");
    }

    #[test]
    fn builder_validation_rejects_degenerate_configs() {
        assert!(FlowConfig::builder().build().is_ok());
        assert!(FlowConfig::builder()
            .schedule_state_budget(0)
            .build()
            .is_err());
        assert!(FlowConfig::builder().slice_state_budget(0).build().is_err());
        assert!(FlowConfig::builder().max_cycles(0).build().is_err());
        assert!(FlowConfig::builder()
            .weights(CostWeights {
                processing: 0.0,
                memory: 0.0,
                communication: 0.0,
            })
            .build()
            .is_err());
        assert!(FlowConfig::builder()
            .weights(CostWeights {
                processing: -1.0,
                memory: 1.0,
                communication: 1.0,
            })
            .build()
            .is_err());
        assert!(FlowConfig::builder()
            .weights(CostWeights {
                processing: f64::NAN,
                memory: 1.0,
                communication: 1.0,
            })
            .build()
            .is_err());
        assert!(FlowConfig::builder()
            .tolerance(Rational::new(-1, 10))
            .build()
            .is_err());
    }
}
