//! Buffer-requirement exploration — the companion analysis of reference
//! \[21\] (Stuijk et al., DAC 2006): how small can the per-channel buffer
//! capacities α be while still meeting a throughput constraint?
//!
//! The allocation flow takes Θ's buffer capacities as given; this module
//! answers the upstream question of choosing them. It performs a greedy
//! descent: starting from a working distribution, every channel's capacity
//! is binary-searched down to its individual minimum while the others stay
//! fixed, repeating until a fixpoint. The result is a locally minimal
//! *storage distribution* (not the full Pareto space of \[21\], which the
//! paper does not need).

use sdfrs_appmodel::ApplicationGraph;
use sdfrs_sdf::analysis::selftimed::SelfTimedExecutor;
use sdfrs_sdf::{Rational, SdfError, SdfGraph};

use crate::error::MapError;

/// A storage distribution: one buffer capacity per application channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageDistribution {
    /// Buffer capacity (tokens) per channel index.
    pub capacities: Vec<u64>,
    /// Throughput achieved under these capacities (single ideal tile,
    /// best-case execution times).
    pub throughput: Rational,
}

impl StorageDistribution {
    /// Total tokens of storage across all channels.
    pub fn total(&self) -> u64 {
        self.capacities.iter().sum()
    }
}

/// Builds the single-tile analysis graph: best-case execution times,
/// self-edges, and buffer back-edges with the given capacities.
fn bounded_graph(app: &ApplicationGraph, capacities: &[u64]) -> Result<SdfGraph, MapError> {
    let src = app.graph();
    let mut g = SdfGraph::new(format!("{}_buf", src.name()));
    for (a, actor) in src.actors() {
        let best = app
            .actor_requirements(a)
            .supported_types()
            .filter_map(|pt| app.execution_time(a, pt))
            .min()
            .ok_or(MapError::NoFeasibleTile { actor: a })?;
        g.add_actor(actor.name(), best);
    }
    for (a, _) in src.actors() {
        if !src.has_self_edge(a) {
            g.add_self_edge(a, 1);
        }
    }
    for (d, ch) in src.channels() {
        g.add_channel(
            ch.name(),
            ch.src(),
            ch.production_rate(),
            ch.dst(),
            ch.consumption_rate(),
            ch.initial_tokens(),
        );
        g.add_channel(
            format!("buf_{}", ch.name()),
            ch.dst(),
            ch.consumption_rate(),
            ch.src(),
            ch.production_rate(),
            capacities[d.index()],
        );
    }
    Ok(g)
}

/// Throughput under a candidate distribution, or `None` if it deadlocks.
fn evaluate(
    app: &ApplicationGraph,
    capacities: &[u64],
    budget: usize,
) -> Result<Option<Rational>, MapError> {
    let g = bounded_graph(app, capacities)?;
    let reference = app.output_actor();
    match SelfTimedExecutor::new(&g)
        .with_state_budget(budget)
        .throughput(reference)
    {
        Ok(r) => Ok(Some(r.iteration_throughput)),
        Err(SdfError::Deadlock { .. }) => Ok(None),
        Err(e) => Err(MapError::Sdf(e)),
    }
}

/// Finds a locally minimal storage distribution meeting `lambda`.
///
/// The search starts from each channel's Θ capacity (α_tile) — or from a
/// safe `p + q` default where that is smaller — and shrinks greedily.
///
/// # Errors
///
/// * [`MapError::ConstraintUnsatisfiable`] if even the starting
///   distribution misses `lambda`;
/// * analysis errors propagate as [`MapError::Sdf`].
///
/// # Examples
///
/// ```
/// use sdfrs_appmodel::apps::paper_example;
/// use sdfrs_core::buffers::minimal_storage_distribution;
/// use sdfrs_sdf::Rational;
///
/// # fn main() -> Result<(), sdfrs_core::MapError> {
/// let app = paper_example();
/// // The single-tile best case reaches 1/4 iterations per time unit.
/// let dist = minimal_storage_distribution(&app, Rational::new(1, 8), 100_000)?;
/// assert!(dist.throughput >= Rational::new(1, 8));
/// # Ok(())
/// # }
/// ```
pub fn minimal_storage_distribution(
    app: &ApplicationGraph,
    lambda: Rational,
    state_budget: usize,
) -> Result<StorageDistribution, MapError> {
    let g = app.graph();
    let mut capacities: Vec<u64> = g
        .channels()
        .map(|(d, ch)| {
            let declared = app.channel_requirements(d).buffer_tile;
            declared.max(ch.production_rate() + ch.consumption_rate())
        })
        .collect();
    let start = evaluate(app, &capacities, state_budget)?
        .filter(|thr| *thr >= lambda)
        .ok_or(MapError::ConstraintUnsatisfiable)?;
    let mut throughput = start;

    loop {
        let mut changed = false;
        for d in g.channel_ids() {
            let upper = capacities[d.index()];
            if upper <= 1 {
                continue;
            }
            let mut lo = 1u64;
            let mut hi = upper;
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let mut candidate = capacities.clone();
                candidate[d.index()] = mid;
                match evaluate(app, &candidate, state_budget)? {
                    Some(thr) if thr >= lambda => hi = mid,
                    _ => lo = mid + 1,
                }
            }
            if hi < upper {
                capacities[d.index()] = hi;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    if let Some(thr) = evaluate(app, &capacities, state_budget)? {
        throughput = thr;
    }
    Ok(StorageDistribution {
        capacities,
        throughput,
    })
}

/// Sweeps the throughput/storage trade-off: for each constraint in
/// `lambdas`, the locally minimal distribution (the \[21\]-style trade-off
/// curve used to pick Θ).
///
/// # Errors
///
/// Propagates per-point failures.
pub fn storage_tradeoff(
    app: &ApplicationGraph,
    lambdas: &[Rational],
    state_budget: usize,
) -> Result<Vec<(Rational, StorageDistribution)>, MapError> {
    lambdas
        .iter()
        .map(|&l| Ok((l, minimal_storage_distribution(app, l, state_budget)?)))
        .collect()
}

/// A point on the storage/throughput Pareto frontier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParetoPoint {
    /// The storage distribution at this point.
    pub distribution: StorageDistribution,
    /// Total storage (tokens) — the x-axis of the trade-off plot.
    pub total_storage: u64,
}

/// Explores the storage/throughput Pareto frontier by greedy hill
/// climbing (the exploration of reference \[21\], in its greedy form):
/// starting from a minimal live distribution, repeatedly grow the single
/// channel whose +1 token improves throughput the most, recording every
/// point where the throughput strictly increases, until `max_total`
/// storage or the unbounded maximum is reached.
///
/// The returned points are strictly increasing in both storage and
/// throughput (a staircase of Pareto-optimal *greedy* points; the exact
/// frontier of \[21\] requires exhaustive search, which the allocation
/// flow does not need).
///
/// # Errors
///
/// Propagates analysis failures; an empty result means even the smallest
/// live distribution exceeds `max_total`.
pub fn pareto_frontier(
    app: &ApplicationGraph,
    max_total: u64,
    state_budget: usize,
) -> Result<Vec<ParetoPoint>, MapError> {
    let g = app.graph();
    // Smallest plausible distribution: p + q − gcd(p, q) per channel is
    // the classic minimal single-channel bound; grow from just below it
    // until the graph is live.
    let mut capacities: Vec<u64> = g
        .channels()
        .map(|(_, ch)| {
            let p = ch.production_rate();
            let q = ch.consumption_rate();
            p + q - sdfrs_sdf::rational::gcd(p as u128, q as u128) as u64
        })
        .collect();
    // Ensure liveness by growing channels round-robin (bounded attempts).
    let mut throughput = loop {
        match evaluate(app, &capacities, state_budget)? {
            Some(thr) => break thr,
            None => {
                for c in capacities.iter_mut() {
                    *c += 1;
                }
                if capacities.iter().sum::<u64>() > max_total {
                    return Ok(Vec::new());
                }
            }
        }
    };

    let mut points = vec![ParetoPoint {
        distribution: StorageDistribution {
            capacities: capacities.clone(),
            throughput,
        },
        total_storage: capacities.iter().sum(),
    }];

    // The ceiling: throughput with effectively unbounded buffers.
    let unbounded: Vec<u64> = g
        .channels()
        .map(|(_, ch)| 16 * (ch.production_rate() + ch.consumption_rate()))
        .collect();
    let ceiling =
        evaluate(app, &unbounded, state_budget)?.ok_or(MapError::ConstraintUnsatisfiable)?;

    while throughput < ceiling && capacities.iter().sum::<u64>() < max_total {
        // Try +1 on each channel; keep the best improvement.
        let mut best: Option<(usize, Rational)> = None;
        for d in g.channel_ids() {
            let mut candidate = capacities.clone();
            candidate[d.index()] += 1;
            if let Some(thr) = evaluate(app, &candidate, state_budget)? {
                if thr > throughput && best.is_none_or(|(_, b)| thr > b) {
                    best = Some((d.index(), thr));
                }
            }
        }
        match best {
            Some((idx, thr)) => {
                capacities[idx] += 1;
                throughput = thr;
                points.push(ParetoPoint {
                    distribution: StorageDistribution {
                        capacities: capacities.clone(),
                        throughput,
                    },
                    total_storage: capacities.iter().sum(),
                });
            }
            None => break, // local plateau: no single token helps
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfrs_appmodel::apps::paper_example;

    #[test]
    fn distribution_meets_constraint() {
        let app = paper_example();
        let dist = minimal_storage_distribution(&app, Rational::new(1, 8), 100_000).unwrap();
        assert!(dist.throughput >= Rational::new(1, 8));
        assert!(dist.capacities.iter().all(|&c| c >= 1));
    }

    #[test]
    fn local_minimality() {
        // Reducing any single channel by one token must break the
        // constraint (or the distribution was not minimal).
        let app = paper_example();
        let lambda = Rational::new(1, 8);
        let dist = minimal_storage_distribution(&app, lambda, 100_000).unwrap();
        for d in app.graph().channel_ids() {
            if dist.capacities[d.index()] == 1 {
                continue;
            }
            let mut smaller = dist.capacities.clone();
            smaller[d.index()] -= 1;
            let thr = evaluate(&app, &smaller, 100_000).unwrap();
            assert!(
                thr.is_none() || thr.unwrap() < lambda,
                "channel {d} was reducible"
            );
        }
    }

    #[test]
    fn tighter_constraints_need_no_less_storage() {
        let app = paper_example();
        let loose = minimal_storage_distribution(&app, Rational::new(1, 32), 100_000).unwrap();
        let tight = minimal_storage_distribution(&app, Rational::new(1, 8), 100_000).unwrap();
        assert!(tight.total() >= loose.total());
    }

    #[test]
    fn impossible_constraint_rejected() {
        let app = paper_example();
        // Faster than the a1 self-edge allows (a1 fires ≤ 1/time, γ=2 ⇒
        // iterations ≤ 1/2; ask for 1/1).
        let err = minimal_storage_distribution(&app, Rational::ONE, 100_000).unwrap_err();
        assert_eq!(err, MapError::ConstraintUnsatisfiable);
    }

    #[test]
    fn pareto_frontier_is_a_staircase() {
        let app = paper_example();
        let points = pareto_frontier(&app, 40, 200_000).unwrap();
        assert!(!points.is_empty());
        for pair in points.windows(2) {
            assert!(pair[1].total_storage > pair[0].total_storage);
            assert!(
                pair[1].distribution.throughput > pair[0].distribution.throughput,
                "every recorded point must strictly improve"
            );
        }
        // The frontier reaches the example's serialization limit 1/4
        // (a1's self-edge: γ(a1)·τ = 2·... with best-case times 1/1/2 the
        // bottleneck is a3: γ=1, τ=2 — or d2's feeding rate; just check a
        // sensible ceiling is approached).
        let last = points.last().unwrap();
        assert!(last.distribution.throughput >= Rational::new(1, 8));
    }

    #[test]
    fn tradeoff_curve_is_monotone() {
        let app = paper_example();
        let lambdas = [
            Rational::new(1, 32),
            Rational::new(1, 16),
            Rational::new(1, 8),
        ];
        let curve = storage_tradeoff(&app, &lambdas, 100_000).unwrap();
        for pair in curve.windows(2) {
            assert!(pair[0].1.total() <= pair[1].1.total());
        }
    }
}
