//! Text-art Gantt rendering of execution traces — one row per actor,
//! one column per time unit, with TDMA slice shading for bound actors.
//!
//! ```text
//! a1   |##.##.....##        |
//! a2   |..##..##............|
//! c_d2 |....///////////.....|
//! ```

use std::fmt::Write as _;

use crate::binding_aware::BindingAwareGraph;
use crate::constrained::ExecutionTrace;

/// Renders a trace as a text Gantt chart over `[from, to)`.
///
/// `#` marks a bound actor executing inside its slice, `/` a connection or
/// sync actor busy on the interconnect, `·` idle time. Multiple concurrent
/// firings of one actor stack into digits (2–9).
///
/// # Examples
///
/// ```
/// use sdfrs_appmodel::apps::{example_platform, paper_example};
/// use sdfrs_core::{Binding, BindingAwareGraph, ConstrainedExecutor};
/// use sdfrs_core::list_sched::construct_schedules;
/// use sdfrs_core::gantt::render;
/// use sdfrs_platform::TileId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let app = paper_example();
/// let arch = example_platform();
/// let g = app.graph();
/// let mut binding = Binding::new(g.actor_count());
/// binding.bind(g.actor_by_name("a1").unwrap(), TileId::from_index(0));
/// binding.bind(g.actor_by_name("a2").unwrap(), TileId::from_index(0));
/// binding.bind(g.actor_by_name("a3").unwrap(), TileId::from_index(1));
/// let ba = BindingAwareGraph::build(&app, &arch, &binding, &[5, 5])?;
/// let schedules = construct_schedules(&ba)?;
/// let trace = ConstrainedExecutor::new(&ba, &schedules).trace(60)?;
/// let chart = render(&ba, &trace, 0, 60);
/// assert!(chart.contains("a1"));
/// # Ok(())
/// # }
/// ```
pub fn render(ba: &BindingAwareGraph, trace: &ExecutionTrace, from: u64, to: u64) -> String {
    let g = ba.graph();
    let width = (to.saturating_sub(from)) as usize;
    let name_width = g
        .actors()
        .map(|(_, a)| a.name().len())
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:name_width$} |{}|",
        "time",
        ruler(from, to),
        name_width = name_width
    );
    for (actor, info) in g.actors() {
        let mut lanes = vec![0u8; width];
        for e in trace.events.iter().filter(|e| e.actor == actor) {
            let lo = e.start.max(from);
            let hi = e.end.min(to);
            for t in lo..hi {
                lanes[(t - from) as usize] = lanes[(t - from) as usize].saturating_add(1);
            }
            // Zero-length firings still deserve a mark.
            if e.start == e.end && e.start >= from && e.start < to {
                let idx = (e.start - from) as usize;
                lanes[idx] = lanes[idx].max(1);
            }
        }
        let busy_char = if ba.tile_of(actor).is_some() {
            '#'
        } else {
            '/'
        };
        let mut row = String::with_capacity(width);
        for &n in &lanes {
            row.push(match n {
                0 => '·',
                1 => busy_char,
                2..=9 => (b'0' + n) as char,
                _ => '+',
            });
        }
        let _ = writeln!(
            out,
            "{:name_width$} |{}|",
            info.name(),
            row,
            name_width = name_width
        );
    }
    out
}

/// Decade ruler: a digit every 10 columns.
pub(crate) fn ruler(from: u64, to: u64) -> String {
    (from..to)
        .map(|t| {
            if t % 10 == 0 {
                char::from_digit(((t / 10) % 10) as u32, 10).unwrap_or('?')
            } else {
                ' '
            }
        })
        .collect()
}

/// Renders a per-tile utilization view over `[from, to)`: one row per
/// tile showing which actor occupies the processor at each instant
/// (first letter of its name), with `▁` marking in-slice idle time and
/// `·` out-of-slice time. Connection/sync actors are aggregated into one
/// `net` row.
pub fn render_by_tile(
    ba: &BindingAwareGraph,
    trace: &ExecutionTrace,
    from: u64,
    to: u64,
) -> String {
    let g = ba.graph();
    let width = (to.saturating_sub(from)) as usize;
    let mut out = String::new();
    let _ = writeln!(out, "{:6} |{}|", "time", super::gantt::ruler(from, to));
    for tile in ba.used_tiles() {
        let tdma = ba.tdma(tile);
        let mut row: Vec<char> = (from..to)
            .map(|t| if tdma.in_slice(t) { '▁' } else { '·' })
            .collect();
        for e in trace.events.iter() {
            if ba.tile_of(e.actor) != Some(tile) {
                continue;
            }
            let label = g.actor(e.actor).name().chars().next().unwrap_or('?');
            for t in e.start.max(from)..e.end.min(to) {
                // Mark only the in-slice instants: those are when the
                // processor genuinely works for this application.
                if tdma.in_slice(t) {
                    row[(t - from) as usize] = label;
                }
            }
        }
        let _ = writeln!(
            out,
            "{:6} |{}|",
            format!("t{}", tile.index()),
            row.into_iter().collect::<String>()
        );
    }
    // Interconnect activity.
    let mut net = vec![0u8; width];
    for e in trace.events.iter() {
        if ba.tile_of(e.actor).is_some() {
            continue;
        }
        for t in e.start.max(from)..e.end.min(to) {
            net[(t - from) as usize] = net[(t - from) as usize].saturating_add(1);
        }
    }
    let net_row: String = net
        .into_iter()
        .map(|n| match n {
            0 => '·',
            1 => '/',
            2..=9 => (b'0' + n) as char,
            _ => '+',
        })
        .collect();
    let _ = writeln!(out, "{:6} |{net_row}|", "net");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::Binding;
    use crate::constrained::ConstrainedExecutor;
    use crate::list_sched::construct_schedules;
    use sdfrs_appmodel::apps::{example_platform, paper_example};
    use sdfrs_platform::TileId;

    fn example_trace(horizon: u64) -> (BindingAwareGraph, ExecutionTrace) {
        let app = paper_example();
        let arch = example_platform();
        let g = app.graph();
        let mut binding = Binding::new(g.actor_count());
        binding.bind(g.actor_by_name("a1").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a2").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a3").unwrap(), TileId::from_index(1));
        let ba = BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]).unwrap();
        let schedules = construct_schedules(&ba).unwrap();
        let trace = ConstrainedExecutor::new(&ba, &schedules)
            .trace(horizon)
            .unwrap();
        (ba, trace)
    }

    #[test]
    fn trace_records_fig5c_periodicity() {
        let (ba, trace) = example_trace(130);
        let a3 = ba.graph().actor_by_name("a3").unwrap();
        let firings = trace.events_of(a3);
        assert!(firings.len() >= 3, "horizon covers several a3 firings");
        // Steady state: consecutive a3 completions 30 apart (Fig 5(c)).
        let last = &firings[firings.len() - 1];
        let prev = &firings[firings.len() - 2];
        assert_eq!(last.end - prev.end, 30);
        // Every firing of a3 takes 2 busy time units... under 50% TDMA the
        // wall-clock span is ≥ 2.
        for e in &firings {
            assert!(e.end - e.start >= 2);
        }
    }

    #[test]
    fn events_never_overlap_on_a_tile_bound_actor() {
        let (ba, trace) = example_trace(100);
        for (actor, _) in ba.graph().actors() {
            if ba.tile_of(actor).is_none() {
                continue;
            }
            let events = trace.events_of(actor);
            for pair in events.windows(2) {
                assert!(pair[0].end <= pair[1].start, "{actor}: overlapping firings");
            }
        }
    }

    #[test]
    fn render_shape() {
        let (ba, trace) = example_trace(60);
        let chart = render(&ba, &trace, 0, 60);
        let lines: Vec<&str> = chart.lines().collect();
        // Header + one row per binding-aware actor.
        assert_eq!(lines.len(), 1 + ba.graph().actor_count());
        for line in &lines[1..] {
            let body = line.split('|').nth(1).expect("row body");
            assert_eq!(body.chars().count(), 60);
        }
        // a1 executes somewhere, and the connection actor too.
        assert!(chart.contains('#'));
        assert!(chart.contains('/'));
    }

    #[test]
    fn tile_view_shows_slices_and_work() {
        let (ba, trace) = example_trace(60);
        let chart = render_by_tile(&ba, &trace, 0, 60);
        let lines: Vec<&str> = chart.lines().collect();
        // Header + 2 tiles + net row.
        assert_eq!(lines.len(), 4);
        // Slice shading appears (out-of-slice instants) and work letters.
        assert!(chart.contains('·'));
        assert!(chart.contains('a'), "actor initials visible");
        assert!(chart.contains('/'), "interconnect visible");
        for line in &lines[1..] {
            let body = line.split('|').nth(1).expect("row body");
            assert_eq!(body.chars().count(), 60);
        }
    }

    #[test]
    fn render_window_clips() {
        let (ba, trace) = example_trace(100);
        let chart = render(&ba, &trace, 30, 50);
        for line in chart.lines().skip(1) {
            let body = line.split('|').nth(1).expect("row body");
            assert_eq!(body.chars().count(), 20);
        }
    }
}
