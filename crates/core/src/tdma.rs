//! TDMA time-wheel arithmetic (Section 4 / Section 8.2).
//!
//! Every tile has a periodically rotating wheel of size `w`; the analyzed
//! application owns the slice `[0, ω)` of each wheel (all wheels aligned
//! at phase 0 — misalignment between tiles is covered conservatively by
//! the sync actors of the binding-aware graph). A firing bound to a tile
//! only makes progress while the wheel phase is inside the slice.

/// One tile's TDMA configuration as seen by the analyzed application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TdmaSlice {
    /// Wheel size `w` in time units.
    pub wheel: u64,
    /// Slice `ω` (time units per revolution) owned by the application,
    /// `0 < slice ≤ wheel`.
    pub slice: u64,
}

impl TdmaSlice {
    /// Creates a slice configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < slice ≤ wheel`.
    pub fn new(wheel: u64, slice: u64) -> Self {
        assert!(wheel > 0, "wheel size must be positive");
        assert!(
            slice > 0 && slice <= wheel,
            "slice must satisfy 0 < slice ≤ wheel (got {slice}/{wheel})"
        );
        TdmaSlice { wheel, slice }
    }

    /// A slice owning the entire wheel (no TDMA interference).
    pub fn full(wheel: u64) -> Self {
        TdmaSlice::new(wheel, wheel)
    }

    /// `true` if wall-clock `time` falls inside the application's slice.
    pub fn in_slice(&self, time: u64) -> bool {
        time % self.wheel < self.slice
    }

    /// Wall-clock time needed, starting at `time`, to accumulate `work`
    /// units of in-slice processing.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdfrs_core::tdma::TdmaSlice;
    /// let t = TdmaSlice::new(10, 5); // slice [0,5) of a 10-wheel
    /// assert_eq!(t.wall_time_for(0, 3), 3);   // fits in current slice
    /// assert_eq!(t.wall_time_for(0, 5), 5);
    /// assert_eq!(t.wall_time_for(0, 6), 11);  // 5 now, wait 5, 1 more
    /// assert_eq!(t.wall_time_for(7, 2), 5);   // wait 3 to phase 0, then 2
    /// ```
    pub fn wall_time_for(&self, time: u64, work: u64) -> u64 {
        if work == 0 {
            return 0;
        }
        let phase = time % self.wheel;
        let mut wall = 0u64;
        let mut remaining = work;
        if phase < self.slice {
            let avail = self.slice - phase;
            if remaining <= avail {
                return remaining;
            }
            remaining -= avail;
            // Advance to the start of the next revolution.
            wall += self.wheel - phase;
        } else {
            wall += self.wheel - phase;
        }
        // Now at phase 0 with `remaining > 0`.
        let full = (remaining - 1) / self.slice;
        let leftover = remaining - full * self.slice;
        wall + full * self.wheel + leftover
    }

    /// In-slice processing time contained in the wall-clock interval
    /// `[time, time + span)`.
    ///
    /// Inverse companion of [`wall_time_for`](TdmaSlice::wall_time_for):
    /// `slice_time_in(t, wall_time_for(t, w)) == w` for every `t`, `w`.
    pub fn slice_time_in(&self, time: u64, span: u64) -> u64 {
        if span == 0 {
            return 0;
        }
        let phase = time % self.wheel;
        let end = phase + span;
        let full = end / self.wheel;
        let tail = end % self.wheel;
        // Work available in [phase, end) unwrapped over revolutions.
        let mut work = full * self.slice + tail.min(self.slice);
        // Subtract the part of revolution 0 before `phase`.
        work -= phase.min(self.slice);
        work
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_slice_boundaries() {
        let t = TdmaSlice::new(10, 4);
        assert!(t.in_slice(0));
        assert!(t.in_slice(3));
        assert!(!t.in_slice(4));
        assert!(!t.in_slice(9));
        assert!(t.in_slice(10));
        assert!(t.in_slice(23));
    }

    #[test]
    fn full_slice_is_transparent() {
        let t = TdmaSlice::full(10);
        for time in 0..25 {
            assert!(t.in_slice(time));
            assert_eq!(t.wall_time_for(time, 7), 7);
            assert_eq!(t.slice_time_in(time, 7), 7);
        }
    }

    #[test]
    fn wall_time_examples() {
        let t = TdmaSlice::new(10, 5);
        assert_eq!(t.wall_time_for(0, 0), 0);
        assert_eq!(t.wall_time_for(2, 3), 3);
        assert_eq!(t.wall_time_for(2, 4), 10 - 2 + 1);
        assert_eq!(t.wall_time_for(5, 1), 6);
        assert_eq!(t.wall_time_for(9, 5), 6);
        assert_eq!(t.wall_time_for(0, 12), 10 + 10 + 2);
    }

    #[test]
    fn wall_and_slice_time_are_inverse() {
        for (wheel, slice) in [(10u64, 5u64), (10, 1), (10, 10), (7, 3), (100, 37)] {
            let t = TdmaSlice::new(wheel, slice);
            for time in 0..(2 * wheel) {
                for work in 0..(3 * slice + 2) {
                    let wall = t.wall_time_for(time, work);
                    assert_eq!(
                        t.slice_time_in(time, wall),
                        work,
                        "wheel={wheel} slice={slice} time={time} work={work}"
                    );
                    // Completion is tight: one unit less wall time must
                    // yield less work.
                    if work > 0 {
                        assert!(t.slice_time_in(time, wall - 1) < work);
                    }
                }
            }
        }
    }

    #[test]
    fn slice_time_monotone_in_span() {
        let t = TdmaSlice::new(10, 4);
        for time in 0..20 {
            let mut prev = 0;
            for span in 0..35 {
                let cur = t.slice_time_in(time, span);
                assert!(cur >= prev);
                prev = cur;
            }
        }
    }

    #[test]
    #[should_panic(expected = "slice must satisfy")]
    fn zero_slice_panics() {
        TdmaSlice::new(10, 0);
    }

    #[test]
    #[should_panic(expected = "slice must satisfy")]
    fn oversize_slice_panics() {
        TdmaSlice::new(10, 11);
    }
}
