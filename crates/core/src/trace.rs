//! Request-scoped tracing and the anomaly flight recorder.
//!
//! Every request entering the networked allocation service carries a
//! [`TraceId`] — supplied by the client in an optional top-level
//! `"trace"` field, or derived deterministically by the server from the
//! connection and request counters otherwise. As the request moves
//! through the stack (`wire` framing → server queue → service → the
//! allocator's event stream) a [`RequestTrace`] accumulates a span tree
//! (`parse` / `queue` / `execute`) plus the annotations the operator
//! actually asks about when a request misbehaves: how long it waited in
//! the queue, how much of the deadline was left at dispatch, how deep
//! regional admission had to escalate, and whether the throughput
//! cache was warm.
//!
//! The [`FlightRecorder`] retains the last *N* completed traces in a
//! bounded ring and *pins* anomalous ones (shed, deadline expiry,
//! admission rejection, parse error, or latency above a configurable
//! slow threshold) so they survive ring eviction. The whole recorder
//! dumps as JSONL on demand (`introspect what=traces` over the wire,
//! `serve --trace-dump` on shutdown).
//!
//! # Determinism contract
//!
//! Trace IDs and timestamps are observational only: they never reach
//! the allocator's search and never influence allocation results or
//! the commit log. Requests are logged *without* their trace field, so
//! a commit-log replay is byte-identical whether or not tracing was on.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::events::FlowEvent;
use crate::service::ServiceResponse;

/// A 64-bit request identifier, rendered as 16 lowercase hex digits.
///
/// Comparable, hashable, and copied freely; the zero value is legal
/// (a client may supply `"trace":"0"`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TraceId(u64);

impl TraceId {
    /// Wraps a raw 64-bit value.
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        TraceId(raw)
    }

    /// The raw 64-bit value.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Parses 1–16 hex digits (case-insensitive). Anything else —
    /// empty, overlong, or non-hex — is `None`, and the caller falls
    /// back to a server-derived id.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }

    /// Derives a server-side id from the connection and per-connection
    /// request counters via a splitmix64 finalizer. Deterministic for
    /// a given (connection, request) pair; the id never influences the
    /// allocation itself.
    #[must_use]
    pub fn derive(connection: u64, request: u64) -> Self {
        let mut z = connection
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(request)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        TraceId(z ^ (z >> 31))
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl std::fmt::Debug for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TraceId({:016x})", self.0)
    }
}

/// How a traced request ended, as seen at the wire.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Admission committed a new session.
    Admitted,
    /// Admission ran to completion but found no valid allocation.
    Rejected,
    /// A session departed.
    Departed,
    /// A session was re-evaluated in the current residual.
    Rebound,
    /// A status probe answered.
    Status,
    /// A session-addressed request failed (unknown session).
    Failed,
    /// Backpressure shed the request at the given queue depth.
    Shed {
        /// Queue depth observed when the request was shed.
        queue_depth: u64,
    },
    /// The request out-waited the server deadline in the queue.
    DeadlineExpired,
    /// The request line did not parse.
    ParseError,
}

impl TraceOutcome {
    /// Maps a service response to its trace outcome.
    #[must_use]
    pub fn from_response(response: &ServiceResponse) -> Self {
        match response {
            ServiceResponse::Admitted { .. } => TraceOutcome::Admitted,
            ServiceResponse::Rejected { .. } => TraceOutcome::Rejected,
            ServiceResponse::Departed { .. } => TraceOutcome::Departed,
            ServiceResponse::Rebound { .. } => TraceOutcome::Rebound,
            ServiceResponse::Status(_) => TraceOutcome::Status,
            _ => TraceOutcome::Failed,
        }
    }

    /// Stable lowercase label used in the JSONL dump.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TraceOutcome::Admitted => "admitted",
            TraceOutcome::Rejected => "rejected",
            TraceOutcome::Departed => "departed",
            TraceOutcome::Rebound => "rebound",
            TraceOutcome::Status => "status",
            TraceOutcome::Failed => "failed",
            TraceOutcome::Shed { .. } => "shed",
            TraceOutcome::DeadlineExpired => "deadline",
            TraceOutcome::ParseError => "parse_error",
        }
    }

    /// The intrinsic anomaly class of this outcome, if any. Latency
    /// anomalies (`"slow"`) are the recorder's to judge — they depend
    /// on its configured threshold, not on the outcome.
    #[must_use]
    pub fn anomaly(&self) -> Option<&'static str> {
        match self {
            TraceOutcome::Shed { .. } => Some("shed"),
            TraceOutcome::DeadlineExpired => Some("deadline"),
            TraceOutcome::Rejected => Some("rejected"),
            TraceOutcome::ParseError => Some("parse_error"),
            _ => None,
        }
    }
}

/// An in-flight request trace: created when the request line arrives,
/// marked as it crosses each stage, finished into a [`CompletedTrace`]
/// when the response is written.
#[derive(Debug)]
pub struct RequestTrace {
    id: TraceId,
    op: &'static str,
    started: Instant,
    parse_us: u64,
    dispatch_us: Option<u64>,
    queue_wait_us: Option<u64>,
    deadline_remaining_us: Option<i64>,
    escalation_depth: Option<u64>,
    warm_cache_hit: Option<bool>,
    events: Vec<(Duration, FlowEvent)>,
}

impl RequestTrace {
    /// Starts a trace; the clock for every span starts now.
    #[must_use]
    pub fn begin(id: TraceId, op: &'static str) -> Self {
        RequestTrace {
            id,
            op,
            started: Instant::now(),
            parse_us: 0,
            dispatch_us: None,
            queue_wait_us: None,
            deadline_remaining_us: None,
            escalation_depth: None,
            warm_cache_hit: None,
            events: Vec::new(),
        }
    }

    /// The request's trace id.
    #[must_use]
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Names the operation once parsing has identified it.
    pub fn set_op(&mut self, op: &'static str) {
        self.op = op;
    }

    fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    /// Ends the `parse` span (and implicitly starts the `queue` span).
    pub fn mark_parsed(&mut self) {
        self.parse_us = self.elapsed_us();
    }

    /// Ends the `queue` span: the request left the queue with
    /// `deadline_remaining_us` microseconds of deadline left (negative
    /// when already expired).
    pub fn mark_dequeued(&mut self, deadline_remaining_us: i64) {
        let now = self.elapsed_us();
        self.dispatch_us = Some(now);
        self.queue_wait_us = Some(now.saturating_sub(self.parse_us));
        self.deadline_remaining_us = Some(deadline_remaining_us);
    }

    /// Records how deep regional admission escalated (0 = home region).
    pub fn set_escalation_depth(&mut self, depth: Option<u64>) {
        self.escalation_depth = depth;
    }

    /// Records whether the throughput cache already held entries the
    /// request could hit.
    pub fn set_warm_cache_hit(&mut self, warm: bool) {
        self.warm_cache_hit = Some(warm);
    }

    /// Attaches the flow events the allocator's tap captured while
    /// executing this request. Event timestamps stay on the
    /// allocator's epoch clock (`t_us` in the dump).
    pub fn attach_events(&mut self, events: Vec<(Duration, FlowEvent)>) {
        self.events = events;
    }

    /// Seals the trace with its wire-visible outcome.
    #[must_use]
    pub fn finish(self, outcome: TraceOutcome) -> CompletedTrace {
        let total_us = self.elapsed_us();
        CompletedTrace {
            id: self.id,
            op: self.op,
            outcome,
            total_us,
            parse_us: self.parse_us,
            dispatch_us: self.dispatch_us,
            queue_wait_us: self.queue_wait_us,
            deadline_remaining_us: self.deadline_remaining_us,
            escalation_depth: self.escalation_depth,
            warm_cache_hit: self.warm_cache_hit,
            events: self.events,
        }
    }
}

/// A finished request trace: the span tree, its annotations, and the
/// captured flow-event trail.
#[derive(Debug, Clone)]
pub struct CompletedTrace {
    /// The request's trace id.
    pub id: TraceId,
    /// Operation name (`admit`, `depart`, …; `line` before parsing).
    pub op: &'static str,
    /// How the request ended at the wire.
    pub outcome: TraceOutcome,
    /// Wall-clock from line arrival to response, microseconds.
    pub total_us: u64,
    /// End of the `parse` span, microseconds from arrival.
    pub parse_us: u64,
    /// Dispatch instant (end of the `queue` span), if the request got
    /// that far.
    pub dispatch_us: Option<u64>,
    /// Time spent queued, if the request was queued.
    pub queue_wait_us: Option<u64>,
    /// Deadline budget left at dispatch (negative: already expired).
    pub deadline_remaining_us: Option<i64>,
    /// Regional admission escalation depth (0 = home region).
    pub escalation_depth: Option<u64>,
    /// Whether the throughput cache served at least one hit.
    pub warm_cache_hit: Option<bool>,
    /// The flow events emitted while executing this request, on the
    /// allocator's epoch clock.
    pub events: Vec<(Duration, FlowEvent)>,
}

impl CompletedTrace {
    /// The anomaly class of this trace under the given slow-latency
    /// threshold: the outcome's intrinsic anomaly first, else
    /// `"slow"` when the total latency breaches the threshold.
    #[must_use]
    pub fn anomaly(&self, slow_threshold_us: Option<u64>) -> Option<&'static str> {
        self.outcome.anomaly().or_else(|| {
            slow_threshold_us
                .is_some_and(|t| self.total_us >= t)
                .then_some("slow")
        })
    }

    /// Renders the span tree as one JSON object (no trailing newline):
    /// annotations first, then the `request` root span with `parse`,
    /// `queue`, and `execute` children, the event trail nested under
    /// `execute`. Key order is fixed; only `*_us` timestamps vary
    /// between runs.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"trace\":\"{}\",\"op\":\"{}\",\"outcome\":\"{}\",\"total_us\":{}",
            self.id,
            self.op,
            self.outcome.label(),
            self.total_us
        );
        if let TraceOutcome::Shed { queue_depth } = self.outcome {
            let _ = write!(s, ",\"queue_depth\":{queue_depth}");
        }
        s.push_str(",\"annotations\":{");
        let mut first = true;
        let mut field = |s: &mut String, name: &str, value: String| {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\"{name}\":{value}");
        };
        if let Some(v) = self.queue_wait_us {
            field(&mut s, "queue_wait_us", v.to_string());
        }
        if let Some(v) = self.deadline_remaining_us {
            field(&mut s, "deadline_remaining_us", v.to_string());
        }
        if let Some(v) = self.escalation_depth {
            field(&mut s, "escalation_depth", v.to_string());
        }
        if let Some(v) = self.warm_cache_hit {
            field(&mut s, "warm_cache_hit", v.to_string());
        }
        s.push('}');
        let _ = write!(
            s,
            ",\"span\":{{\"name\":\"request\",\"start_us\":0,\"end_us\":{},\"children\":[",
            self.total_us
        );
        let _ = write!(
            s,
            "{{\"name\":\"parse\",\"start_us\":0,\"end_us\":{}}}",
            self.parse_us
        );
        if let Some(dispatch) = self.dispatch_us {
            let _ = write!(
                s,
                ",{{\"name\":\"queue\",\"start_us\":{},\"end_us\":{dispatch}}}",
                self.parse_us
            );
            let _ = write!(
                s,
                ",{{\"name\":\"execute\",\"start_us\":{dispatch},\"end_us\":{},\"events\":[",
                self.total_us
            );
            for (i, (at, event)) in self.events.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&event.to_json(*at));
            }
            s.push_str("]}");
        }
        s.push_str("]}}");
        s
    }
}

/// One retained flight-recorder entry: the trace, its anomaly class
/// (if pinned), and a monotonically increasing record sequence.
#[derive(Debug, Clone)]
pub struct FlightEntry {
    /// The completed trace (shared between the ring and the pin list).
    pub trace: Arc<CompletedTrace>,
    /// Why this entry was pinned, `None` for ordinary traffic.
    pub anomaly: Option<&'static str>,
    /// Record sequence number (0-based, total order of recording).
    pub seq: u64,
}

impl FlightEntry {
    /// Renders the entry as one JSON line: recorder metadata (`seq`,
    /// `anomaly`) prepended to the trace's own span-tree object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let body = self.trace.to_json();
        let mut s = String::with_capacity(body.len() + 48);
        let _ = write!(s, "{{\"seq\":{}", self.seq);
        if let Some(anomaly) = self.anomaly {
            let _ = write!(s, ",\"anomaly\":\"{anomaly}\"");
        }
        s.push(',');
        s.push_str(&body[1..]);
        s
    }
}

/// A bounded ring of recent request traces with anomaly pinning.
///
/// The write cursor is a lock-free atomic: concurrent recorders (the
/// reader threads and the service thread) claim distinct slots without
/// coordination. Each slot swap takes a short per-slot mutex — held
/// only for the `Arc` swap, contended only when the ring wraps onto a
/// slot being read — and the pin list takes its own mutex on the rare
/// anomalous path. All locks recover from poisoning, so a panicking
/// recorder cannot take the recorder down with it.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<FlightEntry>>>,
    head: AtomicU64,
    pinned: Mutex<Vec<FlightEntry>>,
    pinned_capacity: usize,
    pinned_total: AtomicU64,
    slow_threshold_us: Option<u64>,
}

fn lock_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` traces (clamped to at
    /// least 1) and pinning up to `4 * capacity` anomalous ones.
    /// Requests at or above `slow_threshold` total latency are pinned
    /// as `"slow"`.
    #[must_use]
    pub fn new(capacity: usize, slow_threshold: Option<Duration>) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            pinned: Mutex::new(Vec::new()),
            pinned_capacity: capacity * 4,
            pinned_total: AtomicU64::new(0),
            slow_threshold_us: slow_threshold
                .map(|t| t.as_micros().min(u128::from(u64::MAX)) as u64),
        }
    }

    /// Ring capacity (traces retained without pinning).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The configured slow-request threshold, microseconds.
    #[must_use]
    pub fn slow_threshold_us(&self) -> Option<u64> {
        self.slow_threshold_us
    }

    /// Traces recorded so far (including ones since evicted).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Traces pinned as anomalous so far.
    #[must_use]
    pub fn pinned_total(&self) -> u64 {
        self.pinned_total.load(Ordering::Relaxed)
    }

    /// Records a completed trace; returns its anomaly class when the
    /// trace was pinned.
    pub fn record(&self, trace: CompletedTrace) -> Option<&'static str> {
        let anomaly = trace.anomaly(self.slow_threshold_us);
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let entry = FlightEntry {
            trace: Arc::new(trace),
            anomaly,
            seq,
        };
        if anomaly.is_some() {
            self.pinned_total.fetch_add(1, Ordering::Relaxed);
            let mut pinned = lock_recover(&self.pinned);
            pinned.push(entry.clone());
            // Oldest pins give way: the most recent anomalies are the
            // ones an operator is debugging.
            let excess = pinned.len().saturating_sub(self.pinned_capacity);
            if excess > 0 {
                pinned.drain(..excess);
            }
        }
        let slot = (seq % self.slots.len() as u64) as usize;
        *lock_recover(&self.slots[slot]) = Some(entry);
        anomaly
    }

    /// The traces still in the ring, oldest first.
    #[must_use]
    pub fn recent(&self) -> Vec<FlightEntry> {
        let mut entries: Vec<FlightEntry> = self
            .slots
            .iter()
            .filter_map(|slot| lock_recover(slot).clone())
            .collect();
        entries.sort_by_key(|e| e.seq);
        entries
    }

    /// The pinned anomalous traces, oldest first.
    #[must_use]
    pub fn pinned(&self) -> Vec<FlightEntry> {
        lock_recover(&self.pinned).clone()
    }

    /// Everything the recorder retains — ring plus pins, deduplicated
    /// by sequence number, oldest first.
    #[must_use]
    pub fn entries(&self) -> Vec<FlightEntry> {
        let mut by_seq: BTreeMap<u64, FlightEntry> = BTreeMap::new();
        for entry in self.pinned().into_iter().chain(self.recent()) {
            by_seq.entry(entry.seq).or_insert(entry);
        }
        by_seq.into_values().collect()
    }

    /// Dumps every retained entry as JSONL (one trace per line, oldest
    /// first, trailing newline when non-empty).
    #[must_use]
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for entry in self.entries() {
            out.push_str(&entry.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completed(id: u64, outcome: TraceOutcome, total_us: u64) -> CompletedTrace {
        CompletedTrace {
            id: TraceId::from_raw(id),
            op: "admit",
            outcome,
            total_us,
            parse_us: 1,
            dispatch_us: Some(2),
            queue_wait_us: Some(1),
            deadline_remaining_us: Some(10_000),
            escalation_depth: None,
            warm_cache_hit: None,
            events: Vec::new(),
        }
    }

    #[test]
    fn trace_id_hex_round_trip() {
        for raw in [0, 1, 0xDEAD_BEEF, u64::MAX] {
            let id = TraceId::from_raw(raw);
            assert_eq!(TraceId::from_hex(&id.to_string()), Some(id));
        }
        assert_eq!(TraceId::from_hex("ABC"), Some(TraceId::from_raw(0xABC)));
        assert_eq!(TraceId::from_hex(""), None);
        assert_eq!(TraceId::from_hex("12345678901234567"), None);
        assert_eq!(TraceId::from_hex("xyz"), None);
    }

    #[test]
    fn derive_is_deterministic_and_spread() {
        assert_eq!(TraceId::derive(3, 7), TraceId::derive(3, 7));
        assert_ne!(TraceId::derive(3, 7), TraceId::derive(3, 8));
        assert_ne!(TraceId::derive(3, 7), TraceId::derive(4, 7));
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_newest() {
        let recorder = FlightRecorder::new(4, None);
        for i in 0..10 {
            recorder.record(completed(i, TraceOutcome::Admitted, 5));
        }
        let recent = recorder.recent();
        assert_eq!(recent.len(), 4);
        let seqs: Vec<u64> = recent.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(recorder.recorded(), 10);
        assert_eq!(recorder.pinned_total(), 0);
    }

    #[test]
    fn anomalies_are_pinned_and_survive_eviction() {
        let recorder = FlightRecorder::new(2, None);
        assert_eq!(
            recorder.record(completed(1, TraceOutcome::Shed { queue_depth: 9 }, 5)),
            Some("shed")
        );
        for i in 0..8 {
            assert_eq!(
                recorder.record(completed(i, TraceOutcome::Admitted, 5)),
                None
            );
        }
        // The shed trace fell out of the 2-slot ring long ago…
        assert!(recorder.recent().iter().all(|e| e.seq != 0));
        // …but its pin keeps it in the dump, exactly once, first.
        let entries = recorder.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].seq, 0);
        assert_eq!(entries[0].anomaly, Some("shed"));
        assert_eq!(recorder.pinned_total(), 1);
        let dump = recorder.dump_jsonl();
        assert_eq!(dump.lines().count(), 3);
        assert_eq!(dump.matches("\"anomaly\":\"shed\"").count(), 1);
        assert!(dump.contains("\"queue_depth\":9"));
    }

    #[test]
    fn every_intrinsic_anomaly_kind_pins() {
        let recorder = FlightRecorder::new(8, None);
        let cases = [
            (TraceOutcome::Shed { queue_depth: 1 }, "shed"),
            (TraceOutcome::DeadlineExpired, "deadline"),
            (TraceOutcome::Rejected, "rejected"),
            (TraceOutcome::ParseError, "parse_error"),
        ];
        for (i, (outcome, want)) in cases.into_iter().enumerate() {
            assert_eq!(recorder.record(completed(i as u64, outcome, 5)), Some(want));
        }
        assert_eq!(
            recorder.record(completed(9, TraceOutcome::Admitted, 5)),
            None
        );
        assert_eq!(recorder.pinned_total(), 4);
    }

    #[test]
    fn slow_threshold_pins_by_latency() {
        let recorder = FlightRecorder::new(8, Some(Duration::from_micros(100)));
        assert_eq!(recorder.slow_threshold_us(), Some(100));
        assert_eq!(
            recorder.record(completed(1, TraceOutcome::Admitted, 99)),
            None
        );
        assert_eq!(
            recorder.record(completed(2, TraceOutcome::Admitted, 100)),
            Some("slow")
        );
        // Intrinsic anomalies take precedence over the latency class.
        assert_eq!(
            recorder.record(completed(3, TraceOutcome::DeadlineExpired, 500)),
            Some("deadline")
        );
    }

    #[test]
    fn pin_list_is_bounded() {
        let recorder = FlightRecorder::new(1, None);
        for i in 0..10 {
            recorder.record(completed(i, TraceOutcome::ParseError, 5));
        }
        // Capacity 1 ⇒ pin list caps at 4; the newest pins win.
        let pinned = recorder.pinned();
        assert_eq!(pinned.len(), 4);
        assert_eq!(pinned.last().unwrap().seq, 9);
        assert_eq!(recorder.pinned_total(), 10);
    }

    #[test]
    fn request_trace_builds_span_tree() {
        let mut trace = RequestTrace::begin(TraceId::from_raw(0xAB), "line");
        trace.set_op("admit");
        trace.mark_parsed();
        trace.mark_dequeued(5_000);
        trace.set_escalation_depth(Some(1));
        trace.set_warm_cache_hit(true);
        trace.attach_events(vec![(
            Duration::from_micros(3),
            FlowEvent::ScheduleConstructed {
                tile: 0,
                prefix_len: 1,
                period_len: 1,
            },
        )]);
        let done = trace.finish(TraceOutcome::Admitted);
        assert_eq!(done.id, TraceId::from_raw(0xAB));
        assert_eq!(done.op, "admit");
        assert_eq!(done.deadline_remaining_us, Some(5_000));
        let json = done.to_json();
        assert!(
            json.starts_with("{\"trace\":\"00000000000000ab\",\"op\":\"admit\","),
            "{json}"
        );
        for needle in [
            "\"outcome\":\"admitted\"",
            "\"escalation_depth\":1",
            "\"warm_cache_hit\":true",
            "\"name\":\"parse\"",
            "\"name\":\"queue\"",
            "\"name\":\"execute\"",
            "\"event\":\"schedule_constructed\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn unqueued_trace_has_no_queue_or_execute_span() {
        let mut trace = RequestTrace::begin(TraceId::from_raw(1), "line");
        trace.mark_parsed();
        let json = trace.finish(TraceOutcome::ParseError).to_json();
        assert!(json.contains("\"name\":\"parse\""), "{json}");
        assert!(!json.contains("\"name\":\"queue\""), "{json}");
        assert!(!json.contains("\"name\":\"execute\""), "{json}");
    }
}
