//! Observability: typed flow events, pluggable sinks, and the observer
//! handle the allocation pipeline emits through.
//!
//! Every phase of the Sec 9 strategy — the criticality sort and per-actor
//! bind attempts (Sec 9.1), the list-scheduler recurrence detection
//! (Sec 9.2), every slice-search iteration with its tested slice vector
//! and measured throughput (Sec 9.3), cache hits/misses, admission
//! decisions and multi-application rounds — is reported as a
//! [`FlowEvent`] carrying a monotonic timestamp relative to the owning
//! [`Allocator`](crate::Allocator)'s epoch.
//!
//! Events flow to an [`EventSink`]:
//!
//! * [`NullSink`] — the zero-overhead default. It reports
//!   [`enabled`](EventSink::enabled)` == false`, so instrumentation sites
//!   never even *construct* the event (construction is deferred behind a
//!   closure in [`FlowObserver::emit`]).
//! * [`LogSink`] — human-readable lines on stderr (or any writer); what
//!   the CLI's `--verbose` streams and what replaces ad-hoc `println!`
//!   diagnostics.
//! * [`JsonlSink`] — one JSON object per line; the machine-readable trace
//!   behind the CLI's `--trace <file>`.
//! * [`RecordingSink`] — an in-memory buffer for tests and benches that
//!   assert on event order and counts.
//! * [`MultiSink`] — fan-out to several sinks at once.
//!
//! The same stream is aggregated into the iteration counters of
//! [`FlowStats`](crate::FlowStats), so structured data is available even
//! under the `NullSink` (counters are plain integer increments, kept
//! outside the event path).

use std::fmt::Write as _;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sdfrs_sdf::Rational;

use crate::metrics::Metrics;

/// The three phases of the allocation strategy (Sec 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowPhase {
    /// Resource binding (Sec 9.1).
    Binding,
    /// Static-order schedule construction (Sec 9.2).
    Scheduling,
    /// TDMA slice allocation (Sec 9.3).
    SliceAllocation,
}

impl FlowPhase {
    /// Stable lower-case name used in traces.
    pub fn name(self) -> &'static str {
        match self {
            FlowPhase::Binding => "binding",
            FlowPhase::Scheduling => "scheduling",
            FlowPhase::SliceAllocation => "slice_allocation",
        }
    }
}

/// Which binding pass produced a [`FlowEvent::BindAttempt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindPass {
    /// The first-fit pass in criticality order.
    FirstFit,
    /// The reverse-order re-binding optimization.
    Rebind,
}

impl BindPass {
    /// Stable lower-case name used in traces.
    pub fn name(self) -> &'static str {
        match self {
            BindPass::FirstFit => "first_fit",
            BindPass::Rebind => "rebind",
        }
    }
}

/// Which search probed a slice vector in a [`FlowEvent::SliceProbe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceScope {
    /// The global binary search over a common fraction `k / of` of each
    /// used tile's remaining wheel.
    Global {
        /// Tested numerator of the common fraction.
        k: u64,
        /// Denominator: the largest remaining wheel.
        of: u64,
    },
    /// A speculative per-tile refinement probe (every other tile frozen at
    /// the pass-start allocation).
    Refine {
        /// Refinement pass (0-based).
        pass: usize,
        /// Tile whose slice is being shrunk.
        tile: usize,
        /// Tested slice for that tile.
        slice: u64,
    },
    /// Re-validation of a refinement proposal against the cumulative
    /// candidate before it is committed.
    Commit {
        /// Refinement pass (0-based).
        pass: usize,
        /// Tile whose proposal is being committed.
        tile: usize,
        /// Proposed slice for that tile.
        slice: u64,
    },
    /// The final re-evaluation at the committed allocation.
    Final,
}

/// One observation from inside the allocation flow.
///
/// Marked `#[non_exhaustive]`: more phases will grow more variants, and
/// sinks must tolerate unknown events (match with a `_` arm).
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum FlowEvent {
    /// An allocation run started.
    FlowStarted {
        /// Application name.
        app: String,
        /// Number of application actors.
        actors: usize,
        /// Number of application channels.
        channels: usize,
        /// Number of platform tiles.
        tiles: usize,
        /// The throughput constraint λ.
        constraint: Rational,
    },
    /// A phase of the strategy started.
    PhaseStarted {
        /// The phase.
        phase: FlowPhase,
    },
    /// A phase of the strategy finished successfully.
    PhaseFinished {
        /// The phase.
        phase: FlowPhase,
        /// Wall-clock time the phase took.
        duration: Duration,
    },
    /// The Eqn 1 criticality sort fixed the binding order.
    CriticalityOrder {
        /// Actor names, most critical first.
        actors: Vec<String>,
    },
    /// One candidate tile was tried for one actor (Eqn 2 ranking plus the
    /// Sec 7 constraint check).
    BindAttempt {
        /// Which pass tried the candidate.
        pass: BindPass,
        /// Actor being bound.
        actor: String,
        /// Candidate tile index.
        tile: usize,
        /// Eqn 2 cost of the candidate.
        cost: f64,
        /// Whether the Sec 7 constraints held (the actor stays here).
        accepted: bool,
    },
    /// The re-binding pass moved an actor to a different tile.
    ActorRebound {
        /// The actor that moved.
        actor: String,
        /// Previous tile index.
        from: usize,
        /// New tile index.
        to: usize,
    },
    /// The list scheduler found a recurrent state.
    ScheduleRecurrence {
        /// States explored until the recurrence closed.
        states: usize,
    },
    /// A minimized static-order schedule was fixed for a tile.
    ScheduleConstructed {
        /// The tile.
        tile: usize,
        /// Length of the transient prefix.
        prefix_len: usize,
        /// Length of the periodic part.
        period_len: usize,
    },
    /// One slice-search throughput evaluation: the tested slice vector,
    /// the measured throughput, and whether the evaluation cache answered.
    SliceProbe {
        /// Which search probed.
        scope: SliceScope,
        /// The tested slice per tile index.
        slices: Vec<u64>,
        /// Measured guaranteed throughput under those slices.
        throughput: Rational,
        /// `throughput ≥ λ`.
        feasible: bool,
        /// Whether the [`ThroughputCache`](crate::ThroughputCache)
        /// answered without running the exploration.
        cache_hit: bool,
    },
    /// An allocation run finished.
    FlowFinished {
        /// Whether a valid allocation was produced.
        ok: bool,
        /// Total wall-clock time of the run.
        duration: Duration,
    },
    /// An admission protocol accepted or skipped one application.
    AdmissionDecision {
        /// Index of the application in the submitted sequence.
        index: usize,
        /// Application name.
        app: String,
        /// Whether the application was admitted.
        admitted: bool,
        /// Failure description for skipped applications (empty on admit).
        detail: String,
    },
    /// One round of a multi-application protocol completed.
    MultiAppRound {
        /// Round number (0-based).
        round: usize,
        /// Applications still competing at the start of the round.
        candidates: usize,
        /// Index of the application admitted this round, if any.
        admitted: Option<usize>,
    },
    /// A design-space-exploration point was evaluated.
    DsePointEvaluated {
        /// The Eqn 2 weights of the point.
        weights: String,
        /// The connection model of the point.
        connection_model: String,
        /// Whether the point produced a valid allocation.
        ok: bool,
    },
    /// A request entered an [`AllocationService`] queue.
    ///
    /// [`AllocationService`]: crate::service::AllocationService
    ServiceRequestQueued {
        /// Request sequence number (echoed as the response id).
        seq: u64,
        /// Operation name (`admit`, `depart`, `rebind`, `status`).
        op: &'static str,
    },
    /// The service drained one batch of queued requests.
    ServiceBatchDrained {
        /// Batch number (0-based, monotonic over the service lifetime).
        batch: usize,
        /// Requests executed in this batch.
        requests: usize,
    },
    /// The service admitted an application as a new live session.
    SessionAdmitted {
        /// Raw session number.
        session: u64,
        /// Application name.
        app: String,
        /// Live sessions after the admission.
        live: usize,
    },
    /// A live session departed; its resources returned to the pool.
    SessionDeparted {
        /// Raw session number.
        session: u64,
        /// Live sessions after the departure.
        live: usize,
    },
    /// A live session was re-allocated against the current residual state.
    SessionRebound {
        /// Raw session number.
        session: u64,
        /// Whether the new allocation differs from the old one.
        changed: bool,
    },
    /// A non-greedy [`SolverBackend`](crate::solver::SolverBackend)
    /// started solving one application.
    SolverStarted {
        /// Backend name (`exact`, `portfolio`).
        backend: &'static str,
    },
    /// The branch-and-bound search improved its incumbent.
    ExactIncumbent {
        /// Nodes expanded when the improvement was found (0 for the
        /// greedy seed).
        node: u64,
        /// Guaranteed iteration throughput of the new incumbent.
        throughput: Rational,
    },
    /// A non-greedy solver finished; the certified bound pair and the
    /// proof-of-work counters of its [`SolveReport`](crate::solver::SolveReport).
    SolverFinished {
        /// Backend name (`exact`, `portfolio`).
        backend: &'static str,
        /// Certified lower throughput bound (the incumbent).
        lower: Rational,
        /// Certified upper throughput bound.
        upper: Rational,
        /// Relative optimality gap.
        gap: Rational,
        /// Whether the search proved the incumbent optimal.
        proven_optimal: bool,
        /// Branch-and-bound nodes expanded.
        nodes: u64,
        /// Simplex pivots across all LP relaxations.
        lp_pivots: u64,
        /// Subtrees pruned by the LP/structural bound.
        pruned_bound: u64,
        /// Children discarded as resource-infeasible.
        pruned_infeasible: u64,
        /// Complete bindings evaluated.
        leaves: u64,
    },
}

impl FlowEvent {
    /// Stable snake-case discriminant name used in traces.
    pub fn kind(&self) -> &'static str {
        match self {
            FlowEvent::FlowStarted { .. } => "flow_started",
            FlowEvent::PhaseStarted { .. } => "phase_started",
            FlowEvent::PhaseFinished { .. } => "phase_finished",
            FlowEvent::CriticalityOrder { .. } => "criticality_order",
            FlowEvent::BindAttempt { .. } => "bind_attempt",
            FlowEvent::ActorRebound { .. } => "actor_rebound",
            FlowEvent::ScheduleRecurrence { .. } => "schedule_recurrence",
            FlowEvent::ScheduleConstructed { .. } => "schedule_constructed",
            FlowEvent::SliceProbe { .. } => "slice_probe",
            FlowEvent::FlowFinished { .. } => "flow_finished",
            FlowEvent::AdmissionDecision { .. } => "admission_decision",
            FlowEvent::MultiAppRound { .. } => "multi_app_round",
            FlowEvent::DsePointEvaluated { .. } => "dse_point",
            FlowEvent::ServiceRequestQueued { .. } => "service_request_queued",
            FlowEvent::ServiceBatchDrained { .. } => "service_batch_drained",
            FlowEvent::SessionAdmitted { .. } => "session_admitted",
            FlowEvent::SessionDeparted { .. } => "session_departed",
            FlowEvent::SessionRebound { .. } => "session_rebound",
            FlowEvent::SolverStarted { .. } => "solver_started",
            FlowEvent::ExactIncumbent { .. } => "exact_incumbent",
            FlowEvent::SolverFinished { .. } => "solver_finished",
        }
    }

    /// Renders the event as one JSON object (no trailing newline). The
    /// timestamp is emitted as integer microseconds under `"t_us"`.
    pub fn to_json(&self, at: Duration) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"t_us\":{}", at.as_micros());
        let _ = write!(s, ",\"event\":\"{}\"", self.kind());
        match self {
            FlowEvent::FlowStarted {
                app,
                actors,
                channels,
                tiles,
                constraint,
            } => {
                let _ = write!(
                    s,
                    ",\"app\":\"{}\",\"actors\":{actors},\"channels\":{channels},\"tiles\":{tiles},\"constraint\":\"{constraint}\"",
                    json_escape(app)
                );
            }
            FlowEvent::PhaseStarted { phase } => {
                let _ = write!(s, ",\"phase\":\"{}\"", phase.name());
            }
            FlowEvent::PhaseFinished { phase, duration } => {
                let _ = write!(
                    s,
                    ",\"phase\":\"{}\",\"duration_us\":{}",
                    phase.name(),
                    duration.as_micros()
                );
            }
            FlowEvent::CriticalityOrder { actors } => {
                s.push_str(",\"actors\":[");
                for (i, a) in actors.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "\"{}\"", json_escape(a));
                }
                s.push(']');
            }
            FlowEvent::BindAttempt {
                pass,
                actor,
                tile,
                cost,
                accepted,
            } => {
                let _ = write!(
                    s,
                    ",\"pass\":\"{}\",\"actor\":\"{}\",\"tile\":{tile},\"cost\":{},\"accepted\":{accepted}",
                    pass.name(),
                    json_escape(actor),
                    json_f64(*cost)
                );
            }
            FlowEvent::ActorRebound { actor, from, to } => {
                let _ = write!(
                    s,
                    ",\"actor\":\"{}\",\"from\":{from},\"to\":{to}",
                    json_escape(actor)
                );
            }
            FlowEvent::ScheduleRecurrence { states } => {
                let _ = write!(s, ",\"states\":{states}");
            }
            FlowEvent::ScheduleConstructed {
                tile,
                prefix_len,
                period_len,
            } => {
                let _ = write!(
                    s,
                    ",\"tile\":{tile},\"prefix_len\":{prefix_len},\"period_len\":{period_len}"
                );
            }
            FlowEvent::SliceProbe {
                scope,
                slices,
                throughput,
                feasible,
                cache_hit,
            } => {
                match scope {
                    SliceScope::Global { k, of } => {
                        let _ = write!(s, ",\"scope\":\"global\",\"k\":{k},\"of\":{of}");
                    }
                    SliceScope::Refine { pass, tile, slice } => {
                        let _ = write!(
                            s,
                            ",\"scope\":\"refine\",\"pass\":{pass},\"tile\":{tile},\"slice\":{slice}"
                        );
                    }
                    SliceScope::Commit { pass, tile, slice } => {
                        let _ = write!(
                            s,
                            ",\"scope\":\"commit\",\"pass\":{pass},\"tile\":{tile},\"slice\":{slice}"
                        );
                    }
                    SliceScope::Final => s.push_str(",\"scope\":\"final\""),
                }
                s.push_str(",\"slices\":[");
                for (i, w) in slices.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "{w}");
                }
                let _ = write!(
                    s,
                    "],\"throughput\":\"{throughput}\",\"feasible\":{feasible},\"cache_hit\":{cache_hit}"
                );
            }
            FlowEvent::FlowFinished { ok, duration } => {
                let _ = write!(s, ",\"ok\":{ok},\"duration_us\":{}", duration.as_micros());
            }
            FlowEvent::AdmissionDecision {
                index,
                app,
                admitted,
                detail,
            } => {
                let _ = write!(
                    s,
                    ",\"index\":{index},\"app\":\"{}\",\"admitted\":{admitted},\"detail\":\"{}\"",
                    json_escape(app),
                    json_escape(detail)
                );
            }
            FlowEvent::MultiAppRound {
                round,
                candidates,
                admitted,
            } => {
                let _ = write!(s, ",\"round\":{round},\"candidates\":{candidates}");
                match admitted {
                    Some(i) => {
                        let _ = write!(s, ",\"admitted\":{i}");
                    }
                    None => s.push_str(",\"admitted\":null"),
                }
            }
            FlowEvent::DsePointEvaluated {
                weights,
                connection_model,
                ok,
            } => {
                let _ = write!(
                    s,
                    ",\"weights\":\"{}\",\"connection_model\":\"{}\",\"ok\":{ok}",
                    json_escape(weights),
                    json_escape(connection_model)
                );
            }
            FlowEvent::ServiceRequestQueued { seq, op } => {
                let _ = write!(s, ",\"seq\":{seq},\"op\":\"{op}\"");
            }
            FlowEvent::ServiceBatchDrained { batch, requests } => {
                let _ = write!(s, ",\"batch\":{batch},\"requests\":{requests}");
            }
            FlowEvent::SessionAdmitted { session, app, live } => {
                let _ = write!(
                    s,
                    ",\"session\":{session},\"app\":\"{}\",\"live\":{live}",
                    json_escape(app)
                );
            }
            FlowEvent::SessionDeparted { session, live } => {
                let _ = write!(s, ",\"session\":{session},\"live\":{live}");
            }
            FlowEvent::SessionRebound { session, changed } => {
                let _ = write!(s, ",\"session\":{session},\"changed\":{changed}");
            }
            FlowEvent::SolverStarted { backend } => {
                let _ = write!(s, ",\"backend\":\"{backend}\"");
            }
            FlowEvent::ExactIncumbent { node, throughput } => {
                let _ = write!(s, ",\"node\":{node},\"throughput\":\"{throughput}\"");
            }
            FlowEvent::SolverFinished {
                backend,
                lower,
                upper,
                gap,
                proven_optimal,
                nodes,
                lp_pivots,
                pruned_bound,
                pruned_infeasible,
                leaves,
            } => {
                let _ = write!(
                    s,
                    ",\"backend\":\"{backend}\",\"lower\":\"{lower}\",\"upper\":\"{upper}\",\"gap\":\"{gap}\",\"proven_optimal\":{proven_optimal},\"nodes\":{nodes},\"lp_pivots\":{lp_pivots},\"pruned_bound\":{pruned_bound},\"pruned_infeasible\":{pruned_infeasible},\"leaves\":{leaves}"
                );
            }
        }
        s.push('}');
        s
    }

    /// Renders the event as one human-readable log line (no newline).
    pub fn to_log_line(&self, at: Duration) -> String {
        let mut s = format!("[{:>12.6}s] ", at.as_secs_f64());
        match self {
            FlowEvent::FlowStarted {
                app,
                actors,
                channels,
                tiles,
                constraint,
            } => {
                let _ = write!(
                    s,
                    "flow: start {app} ({actors} actors, {channels} channels) on {tiles} tiles, λ = {constraint}"
                );
            }
            FlowEvent::PhaseStarted { phase } => {
                let _ = write!(s, "{}: start", phase.name());
            }
            FlowEvent::PhaseFinished { phase, duration } => {
                let _ = write!(s, "{}: done in {duration:?}", phase.name());
            }
            FlowEvent::CriticalityOrder { actors } => {
                let _ = write!(s, "binding: criticality order {}", actors.join(" ≥ "));
            }
            FlowEvent::BindAttempt {
                pass,
                actor,
                tile,
                cost,
                accepted,
            } => {
                let _ = write!(
                    s,
                    "bind[{}]: {actor} → t{tile} (cost {cost:.4}) {}",
                    pass.name(),
                    if *accepted { "accepted" } else { "rejected" }
                );
            }
            FlowEvent::ActorRebound { actor, from, to } => {
                let _ = write!(s, "bind[rebind]: moved {actor} t{from} → t{to}");
            }
            FlowEvent::ScheduleRecurrence { states } => {
                let _ = write!(s, "schedule: recurrence after {states} states");
            }
            FlowEvent::ScheduleConstructed {
                tile,
                prefix_len,
                period_len,
            } => {
                let _ = write!(
                    s,
                    "schedule: t{tile} prefix {prefix_len} firings, period {period_len} firings"
                );
            }
            FlowEvent::SliceProbe {
                scope,
                slices,
                throughput,
                feasible,
                cache_hit,
            } => {
                match scope {
                    SliceScope::Global { k, of } => {
                        let _ = write!(s, "slice[global k={k}/{of}]");
                    }
                    SliceScope::Refine { pass, tile, slice } => {
                        let _ = write!(s, "slice[refine p{pass} t{tile}={slice}]");
                    }
                    SliceScope::Commit { pass, tile, slice } => {
                        let _ = write!(s, "slice[commit p{pass} t{tile}={slice}]");
                    }
                    SliceScope::Final => s.push_str("slice[final]"),
                }
                let _ = write!(
                    s,
                    ": ω = {slices:?} ⇒ thr {throughput} {}{}",
                    if *feasible {
                        "(feasible)"
                    } else {
                        "(infeasible)"
                    },
                    if *cache_hit { " [cache hit]" } else { "" }
                );
            }
            FlowEvent::FlowFinished { ok, duration } => {
                let _ = write!(
                    s,
                    "flow: {} in {duration:?}",
                    if *ok { "succeeded" } else { "failed" }
                );
            }
            FlowEvent::AdmissionDecision {
                index,
                app,
                admitted,
                detail,
            } => {
                if *admitted {
                    let _ = write!(s, "admission: #{index} {app} admitted");
                } else {
                    let _ = write!(s, "admission: #{index} {app} skipped ({detail})");
                }
            }
            FlowEvent::MultiAppRound {
                round,
                candidates,
                admitted,
            } => match admitted {
                Some(i) => {
                    let _ = write!(
                        s,
                        "multi-app: round {round} admitted #{i} of {candidates} candidates"
                    );
                }
                None => {
                    let _ = write!(
                        s,
                        "multi-app: round {round} admitted none of {candidates} candidates"
                    );
                }
            },
            FlowEvent::DsePointEvaluated {
                weights,
                connection_model,
                ok,
            } => {
                let _ = write!(
                    s,
                    "dse: weights {weights} / {connection_model}: {}",
                    if *ok { "valid" } else { "infeasible" }
                );
            }
            FlowEvent::ServiceRequestQueued { seq, op } => {
                let _ = write!(s, "service: queued #{seq} ({op})");
            }
            FlowEvent::ServiceBatchDrained { batch, requests } => {
                let _ = write!(s, "service: batch {batch} drained {requests} requests");
            }
            FlowEvent::SessionAdmitted { session, app, live } => {
                let _ = write!(s, "service: s{session} admitted ({app}), {live} live");
            }
            FlowEvent::SessionDeparted { session, live } => {
                let _ = write!(s, "service: s{session} departed, {live} live");
            }
            FlowEvent::SessionRebound { session, changed } => {
                let _ = write!(
                    s,
                    "service: s{session} rebound ({})",
                    if *changed { "moved" } else { "unchanged" }
                );
            }
            FlowEvent::SolverStarted { backend } => {
                let _ = write!(s, "solver[{backend}]: start");
            }
            FlowEvent::ExactIncumbent { node, throughput } => {
                let _ = write!(s, "solver[exact]: incumbent {throughput} at node {node}");
            }
            FlowEvent::SolverFinished {
                backend,
                lower,
                upper,
                gap,
                proven_optimal,
                nodes,
                lp_pivots,
                pruned_bound,
                pruned_infeasible,
                leaves,
            } => {
                let _ = write!(
                    s,
                    "solver[{backend}]: bounds [{lower}, {upper}] gap {gap}{}, {nodes} nodes, {lp_pivots} pivots, pruned {pruned_bound}+{pruned_infeasible}, {leaves} leaves",
                    if *proven_optimal { " (optimal)" } else { "" }
                );
            }
        }
        s
    }
}

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters; everything else verbatim).
/// Shared by the event sinks, the service wire protocol, and the
/// network front-end's error responses.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// JSON has no NaN/∞; clamp them to null-safe strings.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// A destination for [`FlowEvent`]s.
///
/// Sinks receive each event with the monotonic time elapsed since the
/// emitting [`Allocator`](crate::Allocator)'s epoch. Implementations must
/// be `Send` so allocators can move across threads.
pub trait EventSink: Send {
    /// Receives one event, stamped `at` after the observer's epoch.
    fn record(&mut self, at: Duration, event: &FlowEvent);

    /// `false` if the sink discards everything: instrumentation sites skip
    /// event *construction* entirely (the zero-overhead contract of
    /// [`NullSink`]).
    fn enabled(&self) -> bool {
        true
    }

    /// Flushes buffered output, if any.
    fn flush(&mut self) {}
}

/// The zero-overhead default sink: reports `enabled() == false`, so no
/// event is ever constructed for it.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&mut self, _at: Duration, _event: &FlowEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Human-readable log lines on an arbitrary writer (stderr by default).
///
/// Write errors are swallowed: diagnostics must never fail the flow.
pub struct LogSink {
    out: Box<dyn Write + Send>,
}

impl LogSink {
    /// A sink logging to standard error.
    pub fn stderr() -> Self {
        LogSink {
            out: Box::new(io::stderr()),
        }
    }

    /// A sink logging to the given writer.
    pub fn to_writer(out: Box<dyn Write + Send>) -> Self {
        LogSink { out }
    }
}

impl std::fmt::Debug for LogSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogSink").finish_non_exhaustive()
    }
}

impl EventSink for LogSink {
    fn record(&mut self, at: Duration, event: &FlowEvent) {
        let _ = writeln!(self.out, "{}", event.to_log_line(at));
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Machine-readable trace: one JSON object per line (JSON Lines).
///
/// Buffered; flushed on [`flush`](EventSink::flush) and on drop. Write
/// errors are swallowed.
pub struct JsonlSink {
    out: io::BufWriter<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Creates (truncates) a trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation error.
    pub fn create(path: &str) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink {
            out: io::BufWriter::new(Box::new(file)),
        })
    }

    /// Traces into the given writer.
    pub fn to_writer(out: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: io::BufWriter::new(out),
        }
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl EventSink for JsonlSink {
    fn record(&mut self, at: Duration, event: &FlowEvent) {
        let _ = writeln!(self.out, "{}", event.to_json(at));
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// An in-memory sink for tests and benches. Cloning shares the buffer, so
/// a clone kept by the test observes everything the
/// [`Allocator`](crate::Allocator)-owned clone records.
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    events: Arc<Mutex<Vec<(Duration, FlowEvent)>>>,
}

impl RecordingSink {
    /// Creates an empty recording sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of everything recorded so far.
    pub fn events(&self) -> Vec<(Duration, FlowEvent)> {
        self.events.lock().expect("recording sink lock").clone()
    }

    /// The recorded event kinds, in order.
    pub fn kinds(&self) -> Vec<&'static str> {
        self.events
            .lock()
            .expect("recording sink lock")
            .iter()
            .map(|(_, e)| e.kind())
            .collect()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("recording sink lock").len()
    }

    /// `true` if nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        self.events.lock().expect("recording sink lock").clear();
    }

    /// Takes everything recorded so far, leaving the sink empty — how
    /// the per-request event tap drains into a trace without cloning.
    pub fn take(&self) -> Vec<(Duration, FlowEvent)> {
        std::mem::take(&mut *self.events.lock().expect("recording sink lock"))
    }
}

impl EventSink for RecordingSink {
    fn record(&mut self, at: Duration, event: &FlowEvent) {
        self.events
            .lock()
            .expect("recording sink lock")
            .push((at, event.clone()));
    }
}

/// Tee used by the allocator's per-request event tap: every event goes
/// to the tap unconditionally and to the primary sink only when the
/// primary wants it. Reporting `enabled() == true` is what makes
/// instrumentation sites construct events while a tap is installed,
/// even over a `NullSink` primary.
pub(crate) struct TapSink<'a> {
    pub(crate) primary: &'a mut dyn EventSink,
    pub(crate) tap: RecordingSink,
}

impl EventSink for TapSink<'_> {
    fn record(&mut self, at: Duration, event: &FlowEvent) {
        if self.primary.enabled() {
            self.primary.record(at, event);
        }
        self.tap.record(at, event);
    }

    fn flush(&mut self) {
        self.primary.flush();
    }
}

/// Fan-out to several sinks; enabled iff any member is.
#[derive(Default)]
pub struct MultiSink {
    sinks: Vec<Box<dyn EventSink>>,
}

impl MultiSink {
    /// Creates an empty fan-out (equivalent to [`NullSink`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a member sink.
    #[must_use]
    pub fn with(mut self, sink: impl EventSink + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Adds an already-boxed member sink.
    #[must_use]
    pub fn with_boxed(mut self, sink: Box<dyn EventSink>) -> Self {
        self.sinks.push(sink);
        self
    }
}

impl std::fmt::Debug for MultiSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl EventSink for MultiSink {
    fn record(&mut self, at: Duration, event: &FlowEvent) {
        for sink in &mut self.sinks {
            if sink.enabled() {
                sink.record(at, event);
            }
        }
    }

    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }
}

/// A sink that folds every event into a
/// [`MetricsRegistry`](crate::metrics::MetricsRegistry) via
/// [`record_event`](crate::metrics::MetricsRegistry::record_event) —
/// the bridge between the event stream and the metrics layer, for
/// consumers that only see events (a replayed trace, a remote stream).
///
/// Do **not** combine it with
/// [`Allocator::with_metrics`](crate::Allocator::with_metrics) on the
/// *same* registry: the flow would then record every observation twice
/// (once directly, once through the event bridge).
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    metrics: Metrics,
}

impl MetricsSink {
    /// A sink recording into `metrics` (a null handle makes the sink
    /// report `enabled() == false`, i.e. behave like [`NullSink`]).
    pub fn new(metrics: impl Into<Metrics>) -> Self {
        MetricsSink {
            metrics: metrics.into(),
        }
    }

    /// The handle events are folded into.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

impl EventSink for MetricsSink {
    fn record(&mut self, _at: Duration, event: &FlowEvent) {
        self.metrics.record(|registry| registry.record_event(event));
    }

    fn enabled(&self) -> bool {
        self.metrics.enabled()
    }
}

/// Lightweight per-run iteration counters, aggregated into
/// [`FlowStats`](crate::FlowStats). Kept outside the event path so the
/// counts exist even under the [`NullSink`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct StepCounters {
    pub bind_attempts: usize,
    pub schedule_states: usize,
    pub global_slice_iterations: usize,
    pub refine_slice_iterations: usize,
}

/// The handle instrumentation sites emit through: a sink reference, the
/// epoch all timestamps are relative to, and the iteration counters.
///
/// [`emit`](Self::emit) takes a *closure* producing the event, evaluated
/// only when the sink is enabled — the `NullSink` path performs a single
/// branch and no allocation.
pub struct FlowObserver<'s> {
    sink: &'s mut dyn EventSink,
    epoch: Instant,
    enabled: bool,
    pub(crate) counters: StepCounters,
    metrics: Metrics,
}

impl<'s> FlowObserver<'s> {
    /// An observer over `sink` with the epoch set to now.
    pub fn new(sink: &'s mut dyn EventSink) -> Self {
        Self::with_epoch(sink, Instant::now())
    }

    /// An observer over `sink` with an explicit epoch — lets one
    /// [`Allocator`](crate::Allocator) keep timestamps monotonic across
    /// repeated runs.
    pub fn with_epoch(sink: &'s mut dyn EventSink, epoch: Instant) -> Self {
        let enabled = sink.enabled();
        FlowObserver {
            sink,
            epoch,
            enabled,
            counters: StepCounters::default(),
            metrics: Metrics::null(),
        }
    }

    /// Attaches a metrics handle: instrumentation sites record their
    /// counters and histograms through it alongside the events.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// The attached metrics handle (null unless
    /// [`with_metrics`](Self::with_metrics) was called).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// `true` if emitted events reach a sink (construction is worthwhile).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Stamps and records the event produced by `make` — or does nothing,
    /// without evaluating `make`, when the sink is disabled.
    pub fn emit(&mut self, make: impl FnOnce() -> FlowEvent) {
        if self.enabled {
            let at = self.epoch.elapsed();
            self.sink.record(at, &make());
        }
    }
}

impl std::fmt::Debug for FlowObserver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowObserver")
            .field("enabled", &self.enabled)
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_never_constructs_events() {
        let mut sink = NullSink;
        let mut obs = FlowObserver::new(&mut sink);
        let mut built = false;
        obs.emit(|| {
            built = true;
            FlowEvent::ScheduleRecurrence { states: 1 }
        });
        assert!(!built, "NullSink must skip event construction");
    }

    #[test]
    fn recording_sink_shares_buffer_across_clones() {
        let sink = RecordingSink::new();
        let mut handle = sink.clone();
        let mut obs = FlowObserver::new(&mut handle);
        obs.emit(|| FlowEvent::ScheduleRecurrence { states: 42 });
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.kinds(), vec!["schedule_recurrence"]);
    }

    #[test]
    fn json_lines_are_wellformed_for_every_variant() {
        let events = [
            FlowEvent::FlowStarted {
                app: "a \"quoted\"\nname".into(),
                actors: 3,
                channels: 3,
                tiles: 2,
                constraint: Rational::new(1, 30),
            },
            FlowEvent::PhaseStarted {
                phase: FlowPhase::Binding,
            },
            FlowEvent::PhaseFinished {
                phase: FlowPhase::SliceAllocation,
                duration: Duration::from_micros(12),
            },
            FlowEvent::CriticalityOrder {
                actors: vec!["a1".into(), "a2".into()],
            },
            FlowEvent::BindAttempt {
                pass: BindPass::FirstFit,
                actor: "a1".into(),
                tile: 0,
                cost: 0.5,
                accepted: true,
            },
            FlowEvent::ActorRebound {
                actor: "a1".into(),
                from: 0,
                to: 1,
            },
            FlowEvent::ScheduleRecurrence { states: 17 },
            FlowEvent::ScheduleConstructed {
                tile: 1,
                prefix_len: 0,
                period_len: 2,
            },
            FlowEvent::SliceProbe {
                scope: SliceScope::Global { k: 5, of: 10 },
                slices: vec![5, 5],
                throughput: Rational::new(1, 30),
                feasible: true,
                cache_hit: false,
            },
            FlowEvent::SliceProbe {
                scope: SliceScope::Refine {
                    pass: 0,
                    tile: 1,
                    slice: 3,
                },
                slices: vec![5, 3],
                throughput: Rational::new(1, 40),
                feasible: false,
                cache_hit: true,
            },
            FlowEvent::FlowFinished {
                ok: true,
                duration: Duration::from_millis(1),
            },
            FlowEvent::AdmissionDecision {
                index: 2,
                app: "h263".into(),
                admitted: false,
                detail: "constraint unsatisfiable".into(),
            },
            FlowEvent::MultiAppRound {
                round: 1,
                candidates: 3,
                admitted: None,
            },
            FlowEvent::DsePointEvaluated {
                weights: "(1, 0, 0)".into(),
                connection_model: "simple".into(),
                ok: true,
            },
            FlowEvent::ServiceRequestQueued {
                seq: 4,
                op: "admit",
            },
            FlowEvent::ServiceBatchDrained {
                batch: 2,
                requests: 3,
            },
            FlowEvent::SessionAdmitted {
                session: 5,
                app: "h263".into(),
                live: 2,
            },
            FlowEvent::SessionDeparted {
                session: 5,
                live: 1,
            },
            FlowEvent::SessionRebound {
                session: 3,
                changed: true,
            },
            FlowEvent::SolverStarted { backend: "exact" },
            FlowEvent::ExactIncumbent {
                node: 12,
                throughput: Rational::new(1, 30),
            },
            FlowEvent::SolverFinished {
                backend: "exact",
                lower: Rational::new(1, 30),
                upper: Rational::new(1, 25),
                gap: Rational::new(1, 6),
                proven_optimal: false,
                nodes: 40,
                lp_pivots: 120,
                pruned_bound: 7,
                pruned_infeasible: 3,
                leaves: 5,
            },
        ];
        for e in &events {
            let json = e.to_json(Duration::from_micros(7));
            assert!(json.starts_with("{\"t_us\":7,\"event\":\""), "{json}");
            assert!(json.ends_with('}'), "{json}");
            assert!(!json.contains('\n'), "one line per event: {json}");
            // Balanced quoting: escaped quotes aside, an even count.
            let unescaped = json.replace("\\\"", "");
            assert_eq!(
                unescaped.matches('"').count() % 2,
                0,
                "balanced quotes: {json}"
            );
            // The log rendering exists for every variant, too.
            assert!(!e.to_log_line(Duration::ZERO).is_empty());
        }
    }

    #[test]
    fn multi_sink_is_enabled_iff_any_member_is() {
        assert!(!MultiSink::new().enabled());
        assert!(!MultiSink::new().with(NullSink).enabled());
        let rec = RecordingSink::new();
        let mut multi = MultiSink::new().with(NullSink).with(rec.clone());
        assert!(multi.enabled());
        multi.record(Duration::ZERO, &FlowEvent::ScheduleRecurrence { states: 1 });
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn nonfinite_costs_serialize_as_null() {
        let e = FlowEvent::BindAttempt {
            pass: BindPass::Rebind,
            actor: "a".into(),
            tile: 0,
            cost: f64::INFINITY,
            accepted: false,
        };
        assert!(e.to_json(Duration::ZERO).contains("\"cost\":null"));
    }
}
