//! A guided tour of the library (documentation only — every snippet is
//! compile- and run-tested by `cargo test --doc`).
//!
//! # 1. Model an application
//!
//! An application is an SDFG plus resource requirements (Γ, Θ) and a
//! throughput constraint λ (Definition 5 of the paper). Rates let actors
//! exchange data at different granularities; initial tokens express
//! pipelining and feedback:
//!
//! ```
//! use sdfrs_appmodel::{ActorRequirements, ApplicationGraph, ChannelRequirements};
//! use sdfrs_platform::ProcessorType;
//! use sdfrs_sdf::{Rational, SdfGraph};
//!
//! # fn main() -> Result<(), sdfrs_appmodel::AppError> {
//! let mut g = SdfGraph::new("edge_detect");
//! let camera = g.add_actor("camera", 0);
//! let sobel = g.add_actor("sobel", 0);    // 4 tiles per frame
//! let sink = g.add_actor("sink", 0);
//! g.add_channel("frames", camera, 4, sobel, 1, 0);
//! g.add_channel("tiles", sobel, 1, sink, 4, 0);
//! g.add_channel("ack", sink, 1, camera, 1, 1); // rate control
//!
//! let risc = ProcessorType::new("risc");
//! let dsp = ProcessorType::new("dsp");
//! let app = ApplicationGraph::builder(g, Rational::new(1, 500))
//!     .actor(camera, ActorRequirements::new().on(risc.clone(), 40, 4_096))
//!     .actor(sobel, ActorRequirements::new()
//!         .on(risc.clone(), 25, 2_048)
//!         .on(dsp.clone(), 9, 1_024))
//!     .actor(sink, ActorRequirements::new().on(risc.clone(), 10, 1_024))
//!     .channel_default(ChannelRequirements::new(256, 8, 8, 8, 2_048))
//!     .output_actor(sink)
//!     .build()?;
//! assert_eq!(app.graph().repetition_vector().unwrap().as_slice(), &[1, 4, 1]);
//! # Ok(())
//! # }
//! ```
//!
//! # 2. Describe the platform
//!
//! Tiles carry a processor, memory, a network interface and a TDMA wheel
//! (Definition 3); point-to-point connections have fixed latencies
//! (Definition 4). Use [`mesh`](sdfrs_platform::mesh) for regular grids,
//! [`presets`](sdfrs_platform::presets) for the systems the paper cites,
//! or build by hand:
//!
//! ```
//! use sdfrs_platform::{ArchitectureGraph, ProcessorType, Tile};
//! let mut arch = ArchitectureGraph::new("duo");
//! let cpu = arch.add_tile(Tile::new("cpu", ProcessorType::new("risc"),
//!     100, 64_000, 8, 8_192, 8_192));
//! let dsp = arch.add_tile(Tile::new("dsp", ProcessorType::new("dsp"),
//!     100, 32_000, 8, 8_192, 8_192));
//! arch.add_connection(cpu, dsp, 1);
//! arch.add_connection(dsp, cpu, 1);
//! # assert_eq!(arch.tile_count(), 2);
//! ```
//!
//! For sparse descriptions,
//! [`routing::complete_with_routes`](sdfrs_platform::routing::complete_with_routes)
//! synthesizes the missing point-to-point connections from shortest paths.
//!
//! # 3. Allocate with a guarantee
//!
//! The [`Allocator`](crate::Allocator) front-end runs the paper's three
//! steps — binding (Sec 9.1), list-scheduled static orders (Sec 9.2),
//! slice binary search (Sec 9.3) — and returns an
//! [`Allocation`](crate::flow::Allocation) whose throughput is
//! *guaranteed* under TDMA resource sharing:
//!
//! ```
//! use sdfrs_appmodel::apps::{example_platform, paper_example};
//! use sdfrs_core::cost::CostWeights;
//! use sdfrs_core::Allocator;
//! use sdfrs_platform::PlatformState;
//!
//! # fn main() -> Result<(), sdfrs_core::MapError> {
//! let app = paper_example();
//! let arch = example_platform();
//! let state = PlatformState::new(&arch);
//! let (alloc, stats) = Allocator::new()
//!     .with_weights(CostWeights::TUNED)
//!     .allocate(&app, &arch, &state)?;
//! assert!(alloc.guaranteed_throughput() >= app.throughput_constraint());
//! assert!(stats.throughput_checks > 0);
//! # Ok(())
//! # }
//! ```
//!
//! To watch the flow decide, attach an [`EventSink`](crate::EventSink)
//! — e.g. the bundled [`LogSink`](crate::LogSink) for human-readable
//! stderr logging, a [`JsonlSink`](crate::JsonlSink) for a machine-
//! readable trace, or a [`RecordingSink`](crate::RecordingSink) in
//! tests:
//!
//! ```
//! use sdfrs_appmodel::apps::{example_platform, paper_example};
//! use sdfrs_core::{Allocator, RecordingSink};
//! use sdfrs_platform::PlatformState;
//!
//! # fn main() -> Result<(), sdfrs_core::MapError> {
//! let app = paper_example();
//! let arch = example_platform();
//! let state = PlatformState::new(&arch);
//! let sink = RecordingSink::new();
//! Allocator::new()
//!     .with_sink(sink.clone())
//!     .allocate(&app, &arch, &state)?;
//! assert!(sink.kinds().contains(&"bind_attempt"));
//! assert!(sink.kinds().contains(&"slice_probe"));
//! # Ok(())
//! # }
//! ```
//!
//! The weights steer the binding exactly as in Table 3/4 of the paper:
//! `(1,0,0)` balances processing, `(0,1,0)` memory, `(0,0,1)` minimizes
//! communication, and the paper's tuned `(0,1,2)` admits the most
//! applications.
//!
//! # 4. Share the platform
//!
//! Successive applications claim resources;
//! [`multi_app::allocate_until_failure`](crate::multi_app::allocate_until_failure)
//! is the paper's evaluation protocol and
//! [`admission`](crate::admission) adds the orderings/skipping/dimensioning
//! mechanisms Sec 10.1 suggests:
//!
//! ```
//! use sdfrs_appmodel::apps::paper_example;
//! use sdfrs_appmodel::apps::example_platform;
//! use sdfrs_core::flow::FlowConfig;
//! use sdfrs_core::multi_app::allocate_until_failure;
//!
//! let apps = vec![paper_example(), paper_example(), paper_example()];
//! let arch = example_platform();
//! let result = allocate_until_failure(&apps, &arch, &FlowConfig::default());
//! assert!(result.bound_count() >= 1);
//! ```
//!
//! # 5. Inspect and trust
//!
//! * [`report::render_allocation`](crate::report::render_allocation)
//!   prints the binding, schedules, slices and usage;
//! * [`ConstrainedExecutor::trace`](crate::ConstrainedExecutor::trace) +
//!   [`gantt`](crate::gantt) draw the execution;
//! * [`verify::verify_allocation`](crate::verify::verify_allocation)
//!   re-derives every Section 7 constraint and the throughput guarantee
//!   from scratch:
//!
//! ```
//! use sdfrs_appmodel::apps::{example_platform, paper_example};
//! use sdfrs_core::verify::verify_allocation;
//! use sdfrs_core::Allocator;
//! use sdfrs_platform::PlatformState;
//!
//! # fn main() -> Result<(), sdfrs_core::MapError> {
//! let app = paper_example();
//! let arch = example_platform();
//! let state = PlatformState::new(&arch);
//! let (alloc, _) = Allocator::new().allocate(&app, &arch, &state)?;
//! assert!(verify_allocation(&app, &arch, &state, &alloc)?.is_empty());
//! # Ok(())
//! # }
//! ```
//!
//! # 6. Where the analyses live
//!
//! Everything the flow builds on is public: self-timed throughput and
//! explicit state spaces in
//! [`sdfrs_sdf::analysis::selftimed`],
//! the HSDF baseline in [`sdfrs_sdf::hsdf`] and
//! [`baseline`](crate::baseline), storage exploration in
//! [`buffers`](crate::buffers), structural bounds/latency/occupancy in
//! `sdfrs_sdf::analysis`, and design-space sweeps in [`dse`](crate::dse).
