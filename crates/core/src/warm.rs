//! Warm-started incremental throughput re-analysis.
//!
//! The slice searches and admission protocols evaluate the *same*
//! binding-aware graph under many closely-related slice vectors. A cold
//! [`ConstrainedExecutor::throughput`] run re-discovers the entire state
//! space every time, even though a slice change only alters the
//! transitions that actually *read* the changed tile's slice.
//!
//! [`ExplorationContext`] makes the re-analysis incremental while staying
//! bit-for-bit exact:
//!
//! * **Shared interner arena.** Every state reached under any slice
//!   vector of one *base* (graph structure, binding, schedules, wheels,
//!   reference — everything except the slice values) is interned once
//!   into a single [`StateInterner`]; probes address states by dense id.
//! * **Guarded transition memo.** For each interned state the context
//!   memoizes its single successor transition together with the set of
//!   `(tile, slice)` pairs the transition read — the tiles of bound
//!   actors whose lanes progressed, plus the destination tile of every
//!   sync actor that started (a sync actor's execution time is `w − ω`
//!   of that tile). A memo entry is valid exactly when every recorded
//!   slice matches the probe's current slice; otherwise the executor is
//!   re-entered at the decoded state and the entry is recomputed
//!   (counted as *invalidated*). Determinism of the constrained
//!   execution makes this sound: a transition that reads the same state
//!   and the same slice values produces the same successor, elapsed
//!   time, and reference completions.
//! * **Trajectory memo.** A completed probe records the union of its
//!   slice reads and its outcome. A later probe whose slices match every
//!   recorded read *is* the same trajectory and is answered without
//!   walking it, with the budget semantics of a from-scratch run
//!   re-applied to the caller's budget.
//!
//! Budget accounting replays the cold loop exactly: each
//! complete/start/advance round counts one state against the budget, in
//! the same order, so `states_explored` and every
//! [`SdfError::BudgetExceeded`] / [`SdfError::Deadlock`] outcome is
//! identical to a from-scratch exploration. See DESIGN.md §14 for the
//! full argument.

use std::sync::{Arc, Mutex, PoisonError};

use sdfrs_sdf::analysis::interner::StateInterner;
use sdfrs_sdf::analysis::selftimed::ThroughputResult;
use sdfrs_sdf::{ActorId, Rational, SdfError};

use crate::binding_aware::BindingAwareGraph;
use crate::constrained::{ConstrainedExecutor, TileSchedules, Transition};

/// Successor memo entry kinds.
const KIND_MISSING: u8 = 0;
const KIND_ADVANCED: u8 = 1;
const KIND_DEADLOCK: u8 = 2;

/// The memoized successor transition of one interned state.
#[derive(Debug, Clone, Copy)]
struct MemoEntry {
    kind: u8,
    /// Budget-counted rounds the transition consumed (1, or 2 when a
    /// zero-time instant precedes a deadlock).
    rounds: u8,
    /// Successor state id (`KIND_ADVANCED` only).
    next: u32,
    /// Wall time elapsed across the transition.
    dt: u64,
    /// Reference-actor completions across the transition.
    df: u64,
    /// Slice reads of the transition: `touched_pool[start..start+len]`.
    touched_start: u32,
    touched_len: u32,
}

const MISSING: MemoEntry = MemoEntry {
    kind: KIND_MISSING,
    rounds: 0,
    next: 0,
    dt: 0,
    df: 0,
    touched_start: 0,
    touched_len: 0,
};

/// Per-probe visit payload: the accumulated `(time, firings)` at which a
/// state was reached, valid only when `epoch` matches the current probe.
#[derive(Debug, Clone, Copy)]
struct Visit {
    epoch: u64,
    time: u64,
    fires: u64,
}

/// A completed probe's outcome, replayable under any budget.
#[derive(Debug, Clone)]
enum TrajOutcome {
    /// Recurrence closed; `result.states_explored` rounds were counted.
    Done { result: ThroughputResult },
    /// Execution stalled after `states` budget-counted rounds.
    Deadlock { states: usize },
    /// A zero-time recurrent cycle was detected at round `states`.
    ZeroCycle { states: usize },
}

/// A completed trajectory with the slices it depends on.
#[derive(Debug, Clone)]
struct TrajEntry {
    /// Sorted `(tile, slice)` pairs: every slice value any transition of
    /// the trajectory read. Matching all of them reproduces the whole
    /// trajectory.
    deps: Vec<(u32, u64)>,
    outcome: TrajOutcome,
}

/// Bound on remembered whole-trajectory outcomes per context.
const MAX_TRAJECTORIES: usize = 64;

/// Per-probe reuse statistics, reported by [`explore_warm`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ProbeStats {
    /// The probe was answered entirely from a memoized trajectory.
    pub trajectory_hit: bool,
    /// Transitions replayed from the memo.
    pub replayed: u64,
    /// Transitions recomputed by running the executor.
    pub recomputed: u64,
    /// Recomputed transitions that overwrote a slice-guarded entry.
    pub invalidated: u64,
}

/// Cumulative warm-start statistics of a [`WarmPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Probes served by the warm-start path at all.
    pub probes: u64,
    /// Probes answered entirely from a memoized trajectory.
    pub trajectory_hits: u64,
    /// Transitions replayed from the shared memo.
    pub replayed_transitions: u64,
    /// Transitions recomputed by the executor (cold or invalidated).
    pub recomputed_transitions: u64,
    /// Recomputed transitions that invalidated a guarded memo entry.
    pub invalidated_transitions: u64,
    /// Context resets forced by a base-fingerprint change or eviction.
    pub resets: u64,
}

impl WarmStats {
    /// Replayed + trajectory-served work as a fraction of all warm
    /// transitions — the headline "warm-start hit rate".
    pub fn hit_rate(&self) -> f64 {
        let hits = self.replayed_transitions as f64;
        let total = (self.replayed_transitions + self.recomputed_transitions) as f64;
        if total == 0.0 {
            return 0.0;
        }
        hits / total
    }
}

/// The memoized exploration state of one base configuration.
///
/// All interned states, successor memos and trajectory records refer to
/// one *base fingerprint* — the binding-aware graph and schedules with
/// the slice-dependent values masked out. Probes with different slice
/// vectors of the same base share everything here.
#[derive(Debug)]
pub struct ExplorationContext {
    /// The base fingerprint this context's states belong to.
    base_fp: Vec<u64>,
    interner: StateInterner,
    /// Successor memo, indexed by interned state id.
    memo: Vec<MemoEntry>,
    /// Flattened `(tile, slice)` runs referenced by memo entries.
    touched_pool: Vec<(u32, u64)>,
    /// Pool entries orphaned by invalidation overwrites.
    pool_garbage: usize,
    /// Per-state visit payloads, epoch-stamped per probe.
    visits: Vec<Visit>,
    epoch: u64,
    trajectories: Vec<TrajEntry>,
    /// Per tile: epoch stamp marking it as a dependency of this probe.
    dep_mark: Vec<u64>,
    /// Tiles depended on by the current probe (deduplicated).
    dep_tiles: Vec<u32>,
    /// LRU tick assigned by the owning pool.
    last_used: u64,
}

impl ExplorationContext {
    fn new(base_fp: Vec<u64>) -> Self {
        ExplorationContext {
            base_fp,
            interner: StateInterner::new(),
            memo: Vec::new(),
            touched_pool: Vec::new(),
            pool_garbage: 0,
            visits: Vec::new(),
            epoch: 0,
            trajectories: Vec::new(),
            dep_mark: Vec::new(),
            dep_tiles: Vec::new(),
            last_used: 0,
        }
    }

    /// Distinct states interned so far.
    pub fn states(&self) -> usize {
        self.interner.len()
    }

    /// Pre-sizes the interner for roughly `states` entries (the
    /// nearest-ancestor hint from the cache; never changes results).
    pub(crate) fn reserve(&mut self, states: usize) {
        self.interner
            .reserve(states.saturating_sub(self.interner.len()));
    }

    fn begin_probe(&mut self, tile_count: usize) {
        self.epoch += 1;
        if self.dep_mark.len() < tile_count {
            self.dep_mark.resize(tile_count, 0);
        }
        self.dep_tiles.clear();
        // Compact the touched pool when overwrites orphaned most of it.
        if self.pool_garbage > self.touched_pool.len() / 2 && self.touched_pool.len() > 1 << 16 {
            self.compact_touched();
        }
    }

    fn compact_touched(&mut self) {
        let live = self.touched_pool.len() - self.pool_garbage;
        let mut pool = Vec::with_capacity(live);
        for e in self.memo.iter_mut() {
            if e.kind == KIND_MISSING {
                continue;
            }
            let start = e.touched_start as usize;
            let len = e.touched_len as usize;
            e.touched_start = pool.len() as u32;
            pool.extend_from_slice(&self.touched_pool[start..start + len]);
        }
        self.touched_pool = pool;
        self.pool_garbage = 0;
    }

    fn intern(&mut self, words: &[u64]) -> u32 {
        let (id, fresh) = self.interner.intern(words);
        if fresh {
            self.memo.push(MISSING);
            self.visits.push(Visit {
                epoch: 0,
                time: 0,
                fires: 0,
            });
        }
        id
    }

    fn visit(&mut self, id: u32, time: u64, fires: u64) {
        self.visits[id as usize] = Visit {
            epoch: self.epoch,
            time,
            fires,
        };
    }

    fn visited(&self, id: u32) -> Option<(u64, u64)> {
        let v = self.visits[id as usize];
        (v.epoch == self.epoch).then_some((v.time, v.fires))
    }

    fn mark_dep(&mut self, tile: u32) {
        if self.dep_mark[tile as usize] != self.epoch {
            self.dep_mark[tile as usize] = self.epoch;
            self.dep_tiles.push(tile);
        }
    }

    /// Validates the memo entry of `id` against the probe's slices and
    /// registers its slice reads as probe dependencies when valid.
    fn lookup_memo(&mut self, id: u32, slices: &[u64]) -> Lookup {
        let e = self.memo[id as usize];
        if e.kind == KIND_MISSING {
            return Lookup::Missing;
        }
        let start = e.touched_start as usize;
        let len = e.touched_len as usize;
        for k in 0..len {
            let (tile, slice) = self.touched_pool[start + k];
            if slices[tile as usize] != slice {
                return Lookup::Invalid;
            }
        }
        for k in 0..len {
            let tile = self.touched_pool[start + k].0;
            self.mark_dep(tile);
        }
        Lookup::Valid(e)
    }

    /// Overwrites the memo entry of `id`, appending its slice reads.
    fn record(&mut self, id: u32, mut entry: MemoEntry, touched: &[u32], slices: &[u64]) {
        let old = self.memo[id as usize];
        if old.kind != KIND_MISSING {
            self.pool_garbage += old.touched_len as usize;
        }
        entry.touched_start = self.touched_pool.len() as u32;
        entry.touched_len = touched.len() as u32;
        for &tile in touched {
            self.touched_pool.push((tile, slices[tile as usize]));
            self.mark_dep(tile);
        }
        self.memo[id as usize] = entry;
    }

    /// A memoized trajectory matching every slice the probe would read.
    fn lookup_trajectory(
        &self,
        slices: &[u64],
        budget: usize,
        reference: ActorId,
    ) -> Option<Result<ThroughputResult, SdfError>> {
        self.trajectories
            .iter()
            .find(|e| e.deps.iter().all(|&(t, s)| slices[t as usize] == s))
            .map(|e| synthesize(&e.outcome, budget, reference))
    }

    fn record_trajectory(&mut self, slices: &[u64], outcome: &TrajOutcome) {
        let mut tiles = std::mem::take(&mut self.dep_tiles);
        tiles.sort_unstable();
        let deps: Vec<(u32, u64)> = tiles.iter().map(|&t| (t, slices[t as usize])).collect();
        tiles.clear();
        self.dep_tiles = tiles;
        if let Some(existing) = self.trajectories.iter_mut().find(|e| e.deps == deps) {
            existing.outcome = outcome.clone();
            return;
        }
        if self.trajectories.len() >= MAX_TRAJECTORIES {
            self.trajectories.remove(0);
        }
        self.trajectories.push(TrajEntry {
            deps,
            outcome: outcome.clone(),
        });
    }
}

enum Lookup {
    Valid(MemoEntry),
    Invalid,
    Missing,
}

/// Replays a completed trajectory's outcome under `budget`, reproducing
/// the per-round budget checks of a from-scratch run: the recorded
/// outcome stands when the budget covers every counted round, and a
/// smaller budget fails at round `budget + 1` exactly as the cold loop
/// would.
fn synthesize(
    outcome: &TrajOutcome,
    budget: usize,
    reference: ActorId,
) -> Result<ThroughputResult, SdfError> {
    let over = Err(SdfError::BudgetExceeded {
        analysis: "constrained state space",
        budget,
    });
    match outcome {
        TrajOutcome::Done { result } => {
            if result.states_explored <= budget {
                Ok(result.clone())
            } else {
                over
            }
        }
        TrajOutcome::Deadlock { states } => {
            if *states <= budget {
                Err(SdfError::Deadlock { actor: reference })
            } else {
                over
            }
        }
        TrajOutcome::ZeroCycle { states } => {
            if *states <= budget {
                Err(SdfError::BudgetExceeded {
                    analysis: "constrained state space (zero-time cycle)",
                    budget,
                })
            } else {
                over
            }
        }
    }
}

/// Runs one constrained-throughput probe through the warm context —
/// bit-for-bit equal to `ConstrainedExecutor::throughput` on the same
/// inputs, reusing every memoized transition whose slice guards hold.
pub(crate) fn explore_warm(
    ba: &BindingAwareGraph,
    schedules: &TileSchedules,
    reference: ActorId,
    budget: usize,
    ctx: &mut ExplorationContext,
) -> (Result<ThroughputResult, SdfError>, ProbeStats) {
    let mut stats = ProbeStats::default();
    let slices = ConstrainedExecutor::slice_vector_of(ba, schedules);
    ctx.begin_probe(slices.len());

    if let Some(result) = ctx.lookup_trajectory(&slices, budget, reference) {
        stats.trajectory_hit = true;
        return (result, stats);
    }

    let mut exec = ConstrainedExecutor::new(ba, schedules).with_touch_recording();
    debug_assert_eq!(exec.slice_vector(), slices);

    let budget_err = || SdfError::BudgetExceeded {
        analysis: "constrained state space",
        budget,
    };
    let mut scratch = Vec::new();
    exec.encode_state_into(&mut scratch);
    let mut id = ctx.intern(&scratch);
    let mut states = 0usize;
    let mut acc_time = 0u64;
    let mut acc_fires = 0u64;
    ctx.visit(id, acc_time, acc_fires);
    // Whether `exec` currently holds the decoded state `id` (replay jumps
    // leave it behind; it is re-synchronized lazily on the next cold step).
    let mut loaded = true;

    let outcome = loop {
        match ctx.lookup_memo(id, &slices) {
            Lookup::Valid(entry) => {
                stats.replayed += 1;
                states += entry.rounds as usize;
                if states > budget {
                    return (Err(budget_err()), stats);
                }
                if entry.kind == KIND_DEADLOCK {
                    break TrajOutcome::Deadlock { states };
                }
                acc_time += entry.dt;
                acc_fires += entry.df;
                id = entry.next;
                loaded = false;
            }
            lookup => {
                if matches!(lookup, Lookup::Invalid) {
                    stats.invalidated += 1;
                }
                stats.recomputed += 1;
                if !loaded {
                    exec.load_state(ctx.interner.get(id));
                    loaded = true;
                }
                exec.clear_touched();
                let t0 = exec.time();
                let f0 = exec.completions_of(reference);
                let step = exec.transition();
                let rounds = step.rounds();
                debug_assert!(rounds <= 2, "a transition spans at most two rounds");
                states += rounds as usize;
                let over = states > budget;
                match step {
                    Transition::Deadlock { .. } => {
                        let entry = MemoEntry {
                            kind: KIND_DEADLOCK,
                            rounds: rounds as u8,
                            ..MISSING
                        };
                        ctx.record(id, entry, exec.touched(), &slices);
                        if over {
                            return (Err(budget_err()), stats);
                        }
                        break TrajOutcome::Deadlock { states };
                    }
                    Transition::Advanced { .. } => {
                        exec.encode_state_into(&mut scratch);
                        let next = ctx.intern(&scratch);
                        let entry = MemoEntry {
                            kind: KIND_ADVANCED,
                            rounds: rounds as u8,
                            next,
                            dt: exec.time() - t0,
                            df: exec.completions_of(reference) - f0,
                            touched_start: 0,
                            touched_len: 0,
                        };
                        ctx.record(id, entry, exec.touched(), &slices);
                        if over {
                            return (Err(budget_err()), stats);
                        }
                        acc_time += entry.dt;
                        acc_fires += entry.df;
                        id = next;
                    }
                }
            }
        }
        // The probe advanced to `id`: close the lasso on a re-visit.
        if let Some((t0, f0)) = ctx.visited(id) {
            let period = acc_time - t0;
            let firings = acc_fires - f0;
            if period == 0 {
                break TrajOutcome::ZeroCycle { states };
            }
            let actor_throughput = Rational::new(firings as i128, period as i128);
            let gamma = match ba.graph().repetition_vector() {
                Ok(g) => g,
                Err(e) => return (Err(e), stats),
            };
            let iteration_throughput =
                actor_throughput / Rational::from_integer(gamma[reference] as i128);
            break TrajOutcome::Done {
                result: ThroughputResult {
                    actor_throughput,
                    iteration_throughput,
                    reference,
                    period,
                    firings_in_period: firings,
                    states_explored: states,
                    transient_time: t0,
                },
            };
        }
        ctx.visit(id, acc_time, acc_fires);
    };
    ctx.record_trajectory(&slices, &outcome);
    (synthesize(&outcome, budget, reference), stats)
}

/// Evict contexts (LRU first) until at most this many states are held.
const MAX_POOL_STATES: usize = 2_000_000;
/// Maximum number of live contexts.
const MAX_POOL_CONTEXTS: usize = 8;

/// A small LRU pool of [`ExplorationContext`]s, one per base
/// fingerprint, shared (behind `Arc<Mutex<_>>`) by a cache and all its
/// forks so parallel searches and repeated admissions warm each other.
#[derive(Debug, Default)]
pub struct WarmPool {
    contexts: Vec<ExplorationContext>,
    tick: u64,
    stats: WarmStats,
}

/// A sharable handle to a [`WarmPool`].
pub type SharedWarmPool = Arc<Mutex<WarmPool>>;

impl WarmPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh shared handle.
    pub fn shared() -> SharedWarmPool {
        Arc::new(Mutex::new(WarmPool::new()))
    }

    /// Cumulative statistics across all contexts (including evicted ones).
    pub fn stats(&self) -> WarmStats {
        self.stats
    }

    /// Total interned states across live contexts.
    pub fn states(&self) -> usize {
        self.contexts.iter().map(ExplorationContext::states).sum()
    }

    /// Live contexts.
    pub fn contexts(&self) -> usize {
        self.contexts.len()
    }

    pub(crate) fn apply(&mut self, probe: &ProbeStats) {
        self.stats.probes += 1;
        if probe.trajectory_hit {
            self.stats.trajectory_hits += 1;
        }
        self.stats.replayed_transitions += probe.replayed;
        self.stats.recomputed_transitions += probe.recomputed;
        self.stats.invalidated_transitions += probe.invalidated;
    }

    /// The context for `base_fp`, creating (and evicting LRU contexts if
    /// over budget) as needed.
    pub(crate) fn context_for(&mut self, base_fp: &[u64]) -> &mut ExplorationContext {
        self.tick += 1;
        let tick = self.tick;
        if let Some(i) = self.contexts.iter().position(|c| c.base_fp == base_fp) {
            let ctx = &mut self.contexts[i];
            ctx.last_used = tick;
            return &mut self.contexts[i];
        }
        while self.contexts.len() >= MAX_POOL_CONTEXTS
            || (!self.contexts.is_empty() && self.states() > MAX_POOL_STATES)
        {
            let lru = self
                .contexts
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.last_used)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.contexts.swap_remove(lru);
            self.stats.resets += 1;
        }
        let mut ctx = ExplorationContext::new(base_fp.to_vec());
        ctx.last_used = tick;
        self.contexts.push(ctx);
        self.contexts.last_mut().expect("just pushed")
    }
}

/// Locks a shared pool, recovering from a poisoned mutex (the memo is
/// internally consistent after a panicking probe: entries are written
/// whole before being published).
pub(crate) fn lock_pool(pool: &SharedWarmPool) -> std::sync::MutexGuard<'_, WarmPool> {
    pool.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::Binding;
    use crate::constrained::constrained_throughput;
    use crate::schedule::StaticOrderSchedule;
    use sdfrs_appmodel::apps::{example_platform, paper_example};
    use sdfrs_platform::TileId;

    fn setup(slices: [u64; 2]) -> (BindingAwareGraph, TileSchedules, ActorId) {
        let app = paper_example();
        let arch = example_platform();
        let g = app.graph();
        let mut binding = Binding::new(g.actor_count());
        binding.bind(g.actor_by_name("a1").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a2").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a3").unwrap(), TileId::from_index(1));
        let ba = BindingAwareGraph::build(&app, &arch, &binding, &slices).unwrap();
        let schedules = crate::list_sched::construct_schedules(&ba).unwrap();
        let reference = ba.ba_actor(app.output_actor());
        (ba, schedules, reference)
    }

    fn cold(
        ba: &BindingAwareGraph,
        schedules: &TileSchedules,
        reference: ActorId,
        budget: usize,
    ) -> Result<ThroughputResult, SdfError> {
        ConstrainedExecutor::new(ba, schedules)
            .with_state_budget(budget)
            .throughput(reference)
    }

    #[test]
    fn warm_matches_cold_across_slice_sweep() {
        let (mut ba, schedules, reference) = setup([5, 5]);
        let mut ctx = ExplorationContext::new(Vec::new());
        // Interleave revisits so guarded entries are invalidated back and
        // forth between slice vectors.
        let sweep: &[[u64; 2]] = &[
            [5, 5],
            [1, 1],
            [5, 5],
            [3, 2],
            [1, 5],
            [3, 2],
            [2, 4],
            [5, 5],
            [1, 1],
            [4, 4],
        ];
        for &slices in sweep {
            ba.set_slices(&slices);
            let expect = cold(&ba, &schedules, reference, 100_000);
            let (got, _) = explore_warm(&ba, &schedules, reference, 100_000, &mut ctx);
            assert_eq!(got, expect, "slices {slices:?}");
        }
    }

    #[test]
    fn warm_matches_cold_on_budget_errors() {
        let (ba, schedules, reference) = setup([5, 5]);
        let mut ctx = ExplorationContext::new(Vec::new());
        for budget in [1usize, 2, 3, 5, 10, 100_000] {
            let expect = cold(&ba, &schedules, reference, budget);
            let (got, _) = explore_warm(&ba, &schedules, reference, budget, &mut ctx);
            assert_eq!(got, expect, "budget {budget}");
            // A repeat under the same budget synthesizes from the
            // trajectory memo when one was recorded — still identical.
            let (again, _) = explore_warm(&ba, &schedules, reference, budget, &mut ctx);
            assert_eq!(again, expect, "budget {budget} repeat");
        }
    }

    #[test]
    fn warm_matches_cold_on_deadlock() {
        let (ba, _, _) = setup([5, 5]);
        let a1 = ba.graph().actor_by_name("a1").unwrap();
        let a2 = ba.graph().actor_by_name("a2").unwrap();
        let a3 = ba.graph().actor_by_name("a3").unwrap();
        // a2 before a1 with no token on d1: a2 can never fire first.
        let mut schedules = TileSchedules::new(2);
        schedules.set(
            TileId::from_index(0),
            StaticOrderSchedule::new(vec![], vec![a2, a1]),
        );
        schedules.set(
            TileId::from_index(1),
            StaticOrderSchedule::new(vec![], vec![a3]),
        );
        let expect = constrained_throughput(&ba, &schedules, a3);
        assert!(matches!(expect, Err(SdfError::Deadlock { .. })));
        let mut ctx = ExplorationContext::new(Vec::new());
        let (got, first) = explore_warm(&ba, &schedules, a3, 100_000, &mut ctx);
        assert_eq!(got, expect);
        assert!(!first.trajectory_hit);
        let (again, second) = explore_warm(&ba, &schedules, a3, 100_000, &mut ctx);
        assert_eq!(again, expect);
        assert!(second.trajectory_hit);
    }

    #[test]
    fn repeat_probe_is_a_trajectory_hit() {
        let (mut ba, schedules, reference) = setup([5, 5]);
        let mut ctx = ExplorationContext::new(Vec::new());
        let (first, s1) = explore_warm(&ba, &schedules, reference, 100_000, &mut ctx);
        assert!(!s1.trajectory_hit);
        assert!(s1.recomputed > 0);
        let (second, s2) = explore_warm(&ba, &schedules, reference, 100_000, &mut ctx);
        assert!(s2.trajectory_hit);
        assert_eq!(first, second);
        // Returning to previously seen slices after a change is also a
        // whole-trajectory hit: the old trajectory record still matches.
        ba.set_slices(&[2, 3]);
        let (_, churn) = explore_warm(&ba, &schedules, reference, 100_000, &mut ctx);
        assert!(!churn.trajectory_hit);
        ba.set_slices(&[5, 5]);
        let (third, s3) = explore_warm(&ba, &schedules, reference, 100_000, &mut ctx);
        assert!(s3.trajectory_hit);
        assert_eq!(first, third);
    }

    #[test]
    fn single_slice_change_replays_untouched_transitions() {
        let (mut ba, schedules, reference) = setup([5, 5]);
        let mut ctx = ExplorationContext::new(Vec::new());
        explore_warm(&ba, &schedules, reference, 100_000, &mut ctx)
            .0
            .unwrap();
        ba.set_slices(&[5, 4]);
        let expect = cold(&ba, &schedules, reference, 100_000);
        let (got, stats) = explore_warm(&ba, &schedules, reference, 100_000, &mut ctx);
        assert_eq!(got, expect);
        // The perturbed probe must reuse at least part of the memo.
        assert!(
            stats.replayed > 0,
            "single-slice change should warm-start: {stats:?}"
        );
    }

    #[test]
    fn pool_keys_contexts_by_base_and_tracks_stats() {
        let mut pool = WarmPool::new();
        let (ba, schedules, reference) = setup([5, 5]);
        let base_a = vec![1, 2, 3];
        let base_b = vec![4, 5, 6];
        {
            let ctx = pool.context_for(&base_a);
            let (_, probe) = explore_warm(&ba, &schedules, reference, 100_000, ctx);
            pool.apply(&probe);
        }
        assert_eq!(pool.contexts(), 1);
        assert!(pool.states() > 0);
        let _ = pool.context_for(&base_b);
        assert_eq!(pool.contexts(), 2);
        // Re-requesting an existing base does not create a context.
        let _ = pool.context_for(&base_a);
        assert_eq!(pool.contexts(), 2);
        let stats = pool.stats();
        assert_eq!(stats.probes, 1);
        assert!(stats.recomputed_transitions > 0);
        assert_eq!(stats.replayed_transitions, 0);
        assert!(stats.hit_rate() < 1e-9);
    }
}
