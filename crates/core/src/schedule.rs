//! Static-order schedules (Section 4) and their minimization (Section 9.2).
//!
//! A practical static-order schedule is a finite *prefix* seen once
//! followed by a finite *period* repeated forever: `prefix (period)*`.

use std::fmt;

use sdfrs_sdf::{ActorId, SdfGraph};

/// A static-order schedule `prefix (period)*` over actor firings.
///
/// # Examples
///
/// ```
/// use sdfrs_core::StaticOrderSchedule;
/// use sdfrs_sdf::ActorId;
/// let a = ActorId::from_index(0);
/// let b = ActorId::from_index(1);
/// let s = StaticOrderSchedule::new(vec![a], vec![a, b]);
/// assert_eq!(s.at(0), a);         // prefix
/// assert_eq!(s.at(1), a);         // period[0]
/// assert_eq!(s.at(2), b);         // period[1]
/// assert_eq!(s.at(3), a);         // wraps
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StaticOrderSchedule {
    prefix: Vec<ActorId>,
    period: Vec<ActorId>,
}

impl StaticOrderSchedule {
    /// Creates a schedule from an explicit prefix and period.
    ///
    /// # Panics
    ///
    /// Panics if the period is empty (the schedule must be infinite).
    pub fn new(prefix: Vec<ActorId>, period: Vec<ActorId>) -> Self {
        assert!(
            !period.is_empty(),
            "static-order schedules need a non-empty period"
        );
        StaticOrderSchedule { prefix, period }
    }

    /// The transient prefix.
    pub fn prefix(&self) -> &[ActorId] {
        &self.prefix
    }

    /// The repeated period.
    pub fn period(&self) -> &[ActorId] {
        &self.period
    }

    /// The actor scheduled at (infinite) position `pos`.
    pub fn at(&self, pos: usize) -> ActorId {
        if pos < self.prefix.len() {
            self.prefix[pos]
        } else {
            self.period[(pos - self.prefix.len()) % self.period.len()]
        }
    }

    /// Canonicalizes a position so equal execution states compare equal:
    /// positions inside the prefix stay, later ones fold into
    /// `prefix_len + offset_in_period`.
    pub fn canonical_position(&self, pos: usize) -> usize {
        if pos < self.prefix.len() {
            pos
        } else {
            self.prefix.len() + (pos - self.prefix.len()) % self.period.len()
        }
    }

    /// Minimizes the schedule (the optimization of Sec 9.2): the period is
    /// reduced to its primitive root, then trailing prefix entries that
    /// merely repeat the period are folded into it. The paper's example —
    /// prefix `a1a2a1a2a1a2a1a2a1` with period `(a2a1)⁴` — minimizes to
    /// `(a1a2)*`.
    pub fn minimized(&self) -> StaticOrderSchedule {
        let mut period = primitive_root(&self.period);
        let mut prefix = self.prefix.clone();
        while let Some(&last) = prefix.last() {
            if last == *period.last().expect("period non-empty") {
                prefix.pop();
                let moved = period.pop().expect("period non-empty");
                period.insert(0, moved);
            } else {
                break;
            }
        }
        StaticOrderSchedule { prefix, period }
    }

    /// Renders the schedule using the actor names of `graph`, e.g.
    /// `"a1 (a2 a3)*"`.
    pub fn display<'a>(&'a self, graph: &'a SdfGraph) -> ScheduleDisplay<'a> {
        ScheduleDisplay {
            schedule: self,
            graph,
        }
    }
}

/// Smallest repeating unit of a sequence (e.g. `abab → ab`).
fn primitive_root(seq: &[ActorId]) -> Vec<ActorId> {
    let n = seq.len();
    for len in 1..=n {
        if !n.is_multiple_of(len) {
            continue;
        }
        if seq.chunks(len).all(|c| c == &seq[..len]) {
            return seq[..len].to_vec();
        }
    }
    seq.to_vec()
}

/// Helper returned by [`StaticOrderSchedule::display`].
#[derive(Debug)]
pub struct ScheduleDisplay<'a> {
    schedule: &'a StaticOrderSchedule,
    graph: &'a SdfGraph,
}

impl fmt::Display for ScheduleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in self.schedule.prefix() {
            write!(f, "{} ", self.graph.actor(*a).name())?;
        }
        write!(f, "(")?;
        for (i, a) in self.schedule.period().iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", self.graph.actor(*a).name())?;
        }
        write!(f, ")*")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid(i: usize) -> ActorId {
        ActorId::from_index(i)
    }

    #[test]
    fn indexing_wraps() {
        let s = StaticOrderSchedule::new(vec![aid(9)], vec![aid(0), aid(1), aid(2)]);
        assert_eq!(s.at(0), aid(9));
        assert_eq!(s.at(1), aid(0));
        assert_eq!(s.at(4), aid(0));
        assert_eq!(s.at(6), aid(2));
        assert_eq!(s.canonical_position(0), 0);
        assert_eq!(s.canonical_position(4), 1);
        assert_eq!(s.canonical_position(7), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty period")]
    fn empty_period_panics() {
        StaticOrderSchedule::new(vec![], vec![]);
    }

    #[test]
    fn primitive_root_reduces() {
        assert_eq!(
            primitive_root(&[aid(0), aid(1), aid(0), aid(1)]),
            vec![aid(0), aid(1)]
        );
        assert_eq!(primitive_root(&[aid(0), aid(0), aid(0)]), vec![aid(0)]);
        assert_eq!(
            primitive_root(&[aid(0), aid(1), aid(1)]),
            vec![aid(0), aid(1), aid(1)]
        );
    }

    /// The paper's Sec 9.2 example: 17-state list-scheduler output reduces
    /// to `(a1 a2)*`.
    #[test]
    fn paper_schedule_minimizes_to_a1a2() {
        let a1 = aid(0);
        let a2 = aid(1);
        let prefix = vec![a1, a2, a1, a2, a1, a2, a1, a2, a1];
        let period = vec![a2, a1, a2, a1, a2, a1, a2, a1];
        let s = StaticOrderSchedule::new(prefix, period).minimized();
        assert!(s.prefix().is_empty());
        assert_eq!(s.period(), &[a1, a2]);
    }

    #[test]
    fn minimization_keeps_genuine_transients() {
        // b (a)* cannot fold b into the period.
        let s = StaticOrderSchedule::new(vec![aid(1)], vec![aid(0)]).minimized();
        assert_eq!(s.prefix(), &[aid(1)]);
        assert_eq!(s.period(), &[aid(0)]);
    }

    #[test]
    fn minimization_is_idempotent() {
        let s = StaticOrderSchedule::new(
            vec![aid(0), aid(1), aid(0)],
            vec![aid(1), aid(0), aid(1), aid(0)],
        );
        let once = s.minimized();
        let twice = once.minimized();
        assert_eq!(once, twice);
    }

    #[test]
    fn minimized_schedule_equivalent_to_original() {
        // The infinite firing sequences must agree position by position.
        let original =
            StaticOrderSchedule::new(vec![aid(0), aid(1), aid(0), aid(1)], vec![aid(0), aid(1)]);
        let min = original.minimized();
        for pos in 0..50 {
            assert_eq!(original.at(pos), min.at(pos), "mismatch at {pos}");
        }
        assert!(min.prefix().is_empty());
    }

    #[test]
    fn display_format() {
        let mut g = SdfGraph::new("g");
        let a = g.add_actor("a1", 1);
        let b = g.add_actor("a2", 1);
        let s = StaticOrderSchedule::new(vec![a], vec![a, b]);
        assert_eq!(s.display(&g).to_string(), "a1 (a1 a2)*");
        let s2 = StaticOrderSchedule::new(vec![], vec![b]);
        assert_eq!(s2.display(&g).to_string(), "(a2)*");
    }
}
