//! Memoized constrained-throughput evaluations.
//!
//! The slice-allocation binary searches (Sec 9.3) and the repeated
//! admission protocols (Sec 10.1) evaluate the *same* binding-aware graph
//! under the *same* static orders many times — often at the very same
//! slice vector: the global search probes `slice_for(k)` values that
//! collapse to identical slices for small wheels, every refinement pass
//! re-validates its neighbours, and best-fit admission re-runs whole
//! allocations against an unchanged platform state.
//!
//! [`ThroughputCache`] keys each evaluation by a *structural fingerprint*
//! of everything that determines its outcome: the binding-aware graph
//! (execution times, channels, actor→tile placement), the per-tile TDMA
//! wheels and slices, the static-order schedules, the state budget and the
//! reference actor. The fingerprint is a flat `Vec<u64>`; lookups compare
//! the full key, so a hash collision can never return a wrong result.
//! Hit/miss counters expose how much work the cache saved.

use std::time::Instant;

use sdfrs_fastutil::FxHashMap;
use sdfrs_sdf::analysis::selftimed::ThroughputResult;
use sdfrs_sdf::{ActorId, SdfError};

use crate::binding_aware::BindingAwareGraph;
use crate::constrained::{ConstrainedExecutor, TileSchedules};
use crate::metrics::{Metrics, SpanKind};

/// Encodes everything that determines a constrained-throughput result
/// into `out`. Injective for a fixed encoding version: every field is
/// length-prefixed or fixed-width, so distinct configurations never
/// collide.
fn encode_fingerprint(
    ba: &BindingAwareGraph,
    schedules: &TileSchedules,
    reference: ActorId,
    state_budget: usize,
    out: &mut Vec<u64>,
) {
    out.clear();
    let g = ba.graph();
    out.push(g.actor_count() as u64);
    for a in g.actor_ids() {
        out.push(g.actor(a).execution_time());
        // 0 = not tile-bound (connection/sync actor), i + 1 = tile i.
        out.push(ba.tile_of(a).map_or(0, |t| t.index() as u64 + 1));
    }
    out.push(g.channel_count() as u64);
    for c in g.channel_ids() {
        let ch = g.channel(c);
        out.push(ch.src().index() as u64);
        out.push(ch.dst().index() as u64);
        out.push(ch.production_rate());
        out.push(ch.consumption_rate());
        out.push(ch.initial_tokens());
    }
    // TDMA wheels/slices and static orders for every scheduled tile (the
    // only tiles the constrained executor consults).
    let tiles: Vec<_> = schedules.tiles().collect();
    out.push(tiles.len() as u64);
    for &t in &tiles {
        let tdma = ba.tdma(t);
        out.push(t.index() as u64);
        out.push(tdma.wheel);
        out.push(tdma.slice);
        let s = schedules.get(t).expect("tiles() yields scheduled tiles");
        out.push(s.prefix().len() as u64);
        out.extend(s.prefix().iter().map(|a| a.index() as u64));
        out.push(s.period().len() as u64);
        out.extend(s.period().iter().map(|a| a.index() as u64));
    }
    out.push(state_budget as u64);
    out.push(reference.index() as u64);
}

/// A memo table for [`ConstrainedExecutor::throughput`] evaluations.
///
/// Both successes and analysis errors ([`SdfError::BudgetExceeded`],
/// [`SdfError::Deadlock`]) are cached: the fingerprint includes the state
/// budget, so a cached error is exactly what a re-run would produce.
///
/// # Examples
///
/// ```
/// use sdfrs_core::thru_cache::ThroughputCache;
/// let cache = ThroughputCache::new();
/// assert_eq!((cache.hits(), cache.misses()), (0, 0));
/// ```
#[derive(Debug, Default, Clone)]
pub struct ThroughputCache {
    map: FxHashMap<Vec<u64>, Result<ThroughputResult, SdfError>>,
    hits: usize,
    misses: usize,
    scratch: Vec<u64>,
    bypass: bool,
    metrics: Metrics,
    /// Forks record hits/misses/probes into the shared registry
    /// directly, but leave the `cache_entries` gauge to the main cache:
    /// fork residency is speculative until [`absorb`](Self::absorb).
    is_fork: bool,
}

impl ThroughputCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cache that never memoizes: every evaluation runs the
    /// exploration and counts as a miss. The ablation baseline for the
    /// benches — the flow code stays identical, only memoization is off.
    pub fn disabled() -> Self {
        ThroughputCache {
            bypass: true,
            ..ThroughputCache::default()
        }
    }

    /// Evaluations answered from the cache.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Evaluations that ran the state-space exploration.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Distinct configurations memoized.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops all memoized evaluations; counters keep accumulating.
    pub fn clear(&mut self) {
        let evicted = self.map.len() as u64;
        self.map.clear();
        let is_fork = self.is_fork;
        self.metrics.record(|m| {
            m.cache_evictions.add(evicted);
            if !is_fork {
                m.cache_entries.set(0);
            }
        });
    }

    /// Attaches a metrics handle: every hit, miss and exploration is
    /// recorded through it from now on.
    /// [`Allocator::with_metrics`](crate::Allocator::with_metrics) calls
    /// this for the cache it owns.
    pub fn set_metrics(&mut self, metrics: impl Into<Metrics>) {
        self.metrics = metrics.into();
    }

    /// A copy carrying the same memo table but zeroed counters: the seed
    /// for a (parallel) search task's local cache. [`absorb`](Self::absorb)
    /// of a fork then adds exactly the task's own hits and misses. The
    /// fork shares the metrics registry (its recordings are live) but
    /// never touches the residency gauge.
    pub fn fork(&self) -> ThroughputCache {
        ThroughputCache {
            map: self.map.clone(),
            hits: 0,
            misses: 0,
            scratch: Vec::new(),
            bypass: self.bypass,
            metrics: self.metrics.clone(),
            is_fork: true,
        }
    }

    /// Merges another cache into this one: memoized evaluations are
    /// adopted (first writer wins on duplicates — both sides computed the
    /// same result) and hit/miss counters accumulate. Folds the local
    /// caches of parallel search tasks back into the shared cache.
    ///
    /// Registry counters are *not* re-recorded here — a fork records its
    /// hits and misses live; absorbing only folds the per-run `usize`
    /// counters [`FlowStats`](crate::FlowStats) deltas derive from.
    pub fn absorb(&mut self, other: ThroughputCache) {
        self.hits += other.hits;
        self.misses += other.misses;
        for (key, value) in other.map {
            self.map.entry(key).or_insert(value);
        }
        if !self.is_fork {
            let entries = self.map.len() as u64;
            self.metrics.record(|m| m.cache_entries.set(entries));
        }
    }

    /// The guaranteed throughput of `ba` under `schedules`, measured at
    /// `reference` — from the cache when the same configuration was
    /// evaluated before, otherwise by running the constrained state-space
    /// exploration and memoizing the result.
    pub fn throughput(
        &mut self,
        ba: &BindingAwareGraph,
        schedules: &TileSchedules,
        reference: ActorId,
        state_budget: usize,
    ) -> Result<ThroughputResult, SdfError> {
        if self.bypass {
            self.misses += 1;
            self.metrics.record(|m| {
                m.throughput_checks.inc();
                m.cache_misses.inc();
            });
            return self.explore(ba, schedules, reference, state_budget);
        }
        let mut key = std::mem::take(&mut self.scratch);
        encode_fingerprint(ba, schedules, reference, state_budget, &mut key);
        if let Some(cached) = self.map.get(&key) {
            self.hits += 1;
            self.metrics.record(|m| {
                m.throughput_checks.inc();
                m.cache_hits.inc();
            });
            let result = cached.clone();
            self.scratch = key;
            return result;
        }
        self.misses += 1;
        self.metrics.record(|m| {
            m.throughput_checks.inc();
            m.cache_misses.inc();
        });
        let result = self.explore(ba, schedules, reference, state_budget);
        self.map.insert(key, result.clone());
        if !self.is_fork {
            let entries = self.map.len() as u64;
            self.metrics.record(|m| m.cache_entries.set(entries));
        }
        result
    }

    /// Runs the constrained exploration, timed as a `probe` span, and
    /// records how many states it visited.
    fn explore(
        &self,
        ba: &BindingAwareGraph,
        schedules: &TileSchedules,
        reference: ActorId,
        state_budget: usize,
    ) -> Result<ThroughputResult, SdfError> {
        // `Instant::now` only when a registry listens: the disabled path
        // must cost a single branch.
        let probe_start = self.metrics.enabled().then(Instant::now);
        let result = ConstrainedExecutor::new(ba, schedules)
            .with_state_budget(state_budget)
            .throughput(reference);
        if let Some(t0) = probe_start {
            let elapsed = t0.elapsed();
            self.metrics.record(|m| {
                m.profiler.record(SpanKind::Probe, elapsed);
                if let Ok(r) = &result {
                    m.states_explored.add(r.states_explored as u64);
                    m.probe_states.observe(r.states_explored as u64);
                }
            });
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::Binding;
    use crate::list_sched::construct_schedules;
    use sdfrs_appmodel::apps::{example_platform, paper_example};
    use sdfrs_platform::TileId;

    fn setup(slices: [u64; 2]) -> (BindingAwareGraph, TileSchedules, ActorId) {
        let app = paper_example();
        let arch = example_platform();
        let g = app.graph();
        let mut binding = Binding::new(g.actor_count());
        binding.bind(g.actor_by_name("a1").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a2").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a3").unwrap(), TileId::from_index(1));
        let ba = BindingAwareGraph::build(&app, &arch, &binding, &slices).unwrap();
        let schedules = construct_schedules(&ba).unwrap();
        let reference = ba.ba_actor(app.output_actor());
        (ba, schedules, reference)
    }

    #[test]
    fn identical_inputs_hit() {
        let (ba, schedules, reference) = setup([5, 5]);
        let mut cache = ThroughputCache::new();
        let first = cache
            .throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        let second = cache
            .throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        assert_eq!(first, second);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        // The cached result matches an uncached run exactly.
        let direct = ConstrainedExecutor::new(&ba, &schedules)
            .with_state_budget(100_000)
            .throughput(reference)
            .unwrap();
        assert_eq!(first, direct);
    }

    #[test]
    fn slice_change_misses() {
        let (mut ba, schedules, reference) = setup([5, 5]);
        let mut cache = ThroughputCache::new();
        cache
            .throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        ba.set_slices(&[4, 5]);
        cache
            .throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        // Restoring the original slices hits again.
        ba.set_slices(&[5, 5]);
        cache
            .throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn schedule_order_swap_misses() {
        let (ba, schedules, reference) = setup([5, 5]);
        let t0 = TileId::from_index(0);
        let s0 = schedules.get(t0).unwrap();
        // Rotate tile 0's periodic order: same multiset, different order.
        let mut period = s0.period().to_vec();
        assert!(period.len() >= 2, "tile 0 hosts a1 and a2");
        period.rotate_left(1);
        let mut swapped = schedules.clone();
        swapped.set(
            t0,
            crate::schedule::StaticOrderSchedule::new(s0.prefix().to_vec(), period),
        );
        let mut cache = ThroughputCache::new();
        cache
            .throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        let _ = cache.throughput(&ba, &swapped, reference, 100_000);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
    }

    /// The paper example with a parameterizable execution time for `a1`
    /// on `p1` (1 in Table 2).
    fn paper_like(exec_a1_p1: u64) -> sdfrs_appmodel::ApplicationGraph {
        use sdfrs_appmodel::{ActorRequirements, ApplicationGraph, ChannelRequirements};
        use sdfrs_platform::ProcessorType;
        use sdfrs_sdf::{Rational, SdfGraph};
        let p1 = ProcessorType::new("p1");
        let p2 = ProcessorType::new("p2");
        let mut g = SdfGraph::new("paper_example");
        let a1 = g.add_actor("a1", 0);
        let a2 = g.add_actor("a2", 0);
        let a3 = g.add_actor("a3", 0);
        let d1 = g.add_channel("d1", a1, 1, a2, 1, 0);
        let d2 = g.add_channel("d2", a2, 1, a3, 2, 0);
        let d3 = g.add_channel("d3", a1, 1, a1, 1, 1);
        ApplicationGraph::builder(g, Rational::new(1, 30))
            .actor(
                a1,
                ActorRequirements::new()
                    .on(p1.clone(), exec_a1_p1, 10)
                    .on(p2.clone(), 4, 15),
            )
            .actor(
                a2,
                ActorRequirements::new()
                    .on(p1.clone(), 1, 7)
                    .on(p2.clone(), 7, 19),
            )
            .actor(a3, ActorRequirements::new().on(p1, 3, 13).on(p2, 2, 10))
            .channel(d1, ChannelRequirements::new(7, 1, 2, 2, 100))
            .channel(d2, ChannelRequirements::new(100, 2, 2, 2, 10))
            .channel(d3, ChannelRequirements::new(1, 1, 0, 0, 0))
            .output_actor(a3)
            .build()
            .unwrap()
    }

    #[test]
    fn actor_time_and_budget_changes_miss() {
        let (ba, schedules, reference) = setup([5, 5]);
        let mut cache = ThroughputCache::new();
        cache
            .throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        // Different state budget: a distinct configuration.
        cache
            .throughput(&ba, &schedules, reference, 99_999)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        // Different execution time for a1, everything else identical
        // (same binding, slices, schedules, reference): still a miss.
        let app = paper_like(2);
        let arch = example_platform();
        let g = app.graph();
        let mut binding = Binding::new(g.actor_count());
        binding.bind(g.actor_by_name("a1").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a2").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a3").unwrap(), TileId::from_index(1));
        let ba2 = BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]).unwrap();
        cache
            .throughput(&ba2, &schedules, reference, 100_000)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 3));
        // Sanity: the unperturbed rebuild would have hit.
        let app0 = paper_like(1);
        let ba0 = BindingAwareGraph::build(&app0, &arch, &binding, &[5, 5]).unwrap();
        cache
            .throughput(&ba0, &schedules, reference, 100_000)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 3));
    }

    #[test]
    fn errors_are_cached_too() {
        let (ba, schedules, reference) = setup([5, 5]);
        let mut cache = ThroughputCache::new();
        // A 1-state budget cannot close the recurrence.
        let e1 = cache.throughput(&ba, &schedules, reference, 1).unwrap_err();
        let e2 = cache.throughput(&ba, &schedules, reference, 1).unwrap_err();
        assert_eq!(e1, e2);
        assert!(matches!(e1, SdfError::BudgetExceeded { .. }));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }
}
