//! Memoized constrained-throughput evaluations.
//!
//! The slice-allocation binary searches (Sec 9.3) and the repeated
//! admission protocols (Sec 10.1) evaluate the *same* binding-aware graph
//! under the *same* static orders many times — often at the very same
//! slice vector: the global search probes `slice_for(k)` values that
//! collapse to identical slices for small wheels, every refinement pass
//! re-validates its neighbours, and best-fit admission re-runs whole
//! allocations against an unchanged platform state.
//!
//! [`ThroughputCache`] keys each evaluation by a *structural fingerprint*
//! of everything that determines its outcome: the binding-aware graph
//! (execution times, channels, actor→tile placement), the per-tile TDMA
//! wheels and slices, the static-order schedules, the state budget and the
//! reference actor. The fingerprint is a flat `Vec<u64>`; lookups compare
//! the full key, so a hash collision can never return a wrong result.
//! Hit/miss counters expose how much work the cache saved.
//!
//! Below the fingerprint map sits the *warm-start* layer (the
//! [`warm`](crate::warm) module): fingerprint misses do not explore from
//! scratch but re-enter a shared, slice-guarded exploration memo keyed by
//! the *base* fingerprint (everything except the slice values and the
//! budget). A miss whose configuration differs from a memoized entry in a
//! single tile slice — the shape every binary-search probe and every
//! [`rebind`](crate::service) re-allocation has — replays the unchanged
//! part of the state space and recomputes only the transitions that read
//! the changed slice. [`ThroughputCache::without_warm_start`] restores
//! the fully cold behavior.

use std::time::Instant;

use sdfrs_fastutil::FxHashMap;
use sdfrs_sdf::analysis::selftimed::ThroughputResult;
use sdfrs_sdf::{ActorId, SdfError};

use crate::binding_aware::BindingAwareGraph;
use crate::constrained::{ConstrainedExecutor, TileSchedules};
use crate::metrics::{Metrics, SpanKind};
use crate::warm::{explore_warm, lock_pool, SharedWarmPool, WarmPool, WarmStats};

/// Encodes everything that determines a constrained-throughput result
/// into `out`. Injective for a fixed encoding version: every field is
/// length-prefixed or fixed-width, so distinct configurations never
/// collide.
/// `slice_words` receives the key positions holding tile slice values —
/// the words the nearest-ancestor scan is allowed to see differ.
///
/// A sync actor's execution time is `wheel − slice` of its destination
/// tile — fully determined by words already in the key — so it is
/// encoded as a sentinel plus the destination tile. This keeps the
/// fingerprint injective while making two configurations that differ in
/// one tile slice differ in exactly one key word.
fn encode_fingerprint(
    ba: &BindingAwareGraph,
    schedules: &TileSchedules,
    reference: ActorId,
    state_budget: usize,
    out: &mut Vec<u64>,
    slice_words: &mut Vec<usize>,
) {
    out.clear();
    slice_words.clear();
    let g = ba.graph();
    // dest tile + 1 per sync actor, 0 otherwise.
    let mut sync_dest = vec![0u64; g.actor_count()];
    for &(actor, tile) in ba.sync_actors() {
        sync_dest[actor.index()] = tile.index() as u64 + 1;
    }
    out.push(g.actor_count() as u64);
    for a in g.actor_ids() {
        let dest = sync_dest[a.index()];
        if dest != 0 {
            out.push(u64::MAX);
            out.push(dest);
        } else {
            out.push(g.actor(a).execution_time());
            // 0 = not tile-bound (connection actor), i + 1 = tile i.
            out.push(ba.tile_of(a).map_or(0, |t| t.index() as u64 + 1));
        }
    }
    out.push(g.channel_count() as u64);
    for c in g.channel_ids() {
        let ch = g.channel(c);
        out.push(ch.src().index() as u64);
        out.push(ch.dst().index() as u64);
        out.push(ch.production_rate());
        out.push(ch.consumption_rate());
        out.push(ch.initial_tokens());
    }
    // TDMA wheels/slices and static orders for every scheduled tile (the
    // only tiles the constrained executor consults).
    let tiles: Vec<_> = schedules.tiles().collect();
    out.push(tiles.len() as u64);
    for &t in &tiles {
        let tdma = ba.tdma(t);
        out.push(t.index() as u64);
        out.push(tdma.wheel);
        slice_words.push(out.len());
        out.push(tdma.slice);
        let s = schedules.get(t).expect("tiles() yields scheduled tiles");
        out.push(s.prefix().len() as u64);
        out.extend(s.prefix().iter().map(|a| a.index() as u64));
        out.push(s.period().len() as u64);
        out.extend(s.period().iter().map(|a| a.index() as u64));
    }
    out.push(state_budget as u64);
    out.push(reference.index() as u64);
}

/// Encodes the *base* of a configuration — everything
/// [`encode_fingerprint`] covers except the tile slice values and the
/// state budget. Two configurations with equal bases describe the same
/// state space up to slice-dependent timing, so they may share one
/// warm-start [`ExplorationContext`](crate::warm::ExplorationContext).
///
/// A sync actor's execution time is `wheel − slice` of its destination
/// tile, i.e. slice-dependent: it is encoded as a sentinel plus the
/// destination tile instead of its current execution time.
fn encode_base_fingerprint(
    ba: &BindingAwareGraph,
    schedules: &TileSchedules,
    reference: ActorId,
    out: &mut Vec<u64>,
) {
    out.clear();
    let g = ba.graph();
    // dest tile + 1 per sync actor, 0 otherwise.
    let mut sync_dest = vec![0u64; g.actor_count()];
    for &(actor, tile) in ba.sync_actors() {
        sync_dest[actor.index()] = tile.index() as u64 + 1;
    }
    out.push(g.actor_count() as u64);
    for a in g.actor_ids() {
        let dest = sync_dest[a.index()];
        if dest != 0 {
            out.push(u64::MAX);
            out.push(dest);
        } else {
            out.push(g.actor(a).execution_time());
            out.push(ba.tile_of(a).map_or(0, |t| t.index() as u64 + 1));
        }
    }
    out.push(g.channel_count() as u64);
    for c in g.channel_ids() {
        let ch = g.channel(c);
        out.push(ch.src().index() as u64);
        out.push(ch.dst().index() as u64);
        out.push(ch.production_rate());
        out.push(ch.consumption_rate());
        out.push(ch.initial_tokens());
    }
    let tiles: Vec<_> = schedules.tiles().collect();
    out.push(tiles.len() as u64);
    for &t in &tiles {
        out.push(t.index() as u64);
        out.push(ba.tdma(t).wheel);
        let s = schedules.get(t).expect("tiles() yields scheduled tiles");
        out.push(s.prefix().len() as u64);
        out.extend(s.prefix().iter().map(|a| a.index() as u64));
        out.push(s.period().len() as u64);
        out.extend(s.period().iter().map(|a| a.index() as u64));
    }
    out.push(reference.index() as u64);
}

/// Encodes everything the list scheduler reads: the binding-aware graph
/// (execution times, channels, actor→tile placement) with each used
/// tile's TDMA wheel and slice assumption, plus the construction state
/// budget. Schedule construction is deterministic, so two equal keys
/// yield bit-identical [`TileSchedules`] — the memo behind
/// [`ThroughputCache::schedules_for`] is exact.
fn encode_schedule_key(ba: &BindingAwareGraph, state_budget: usize, out: &mut Vec<u64>) {
    out.clear();
    let g = ba.graph();
    out.push(g.actor_count() as u64);
    for a in g.actor_ids() {
        out.push(g.actor(a).execution_time());
        // 0 = not tile-bound (connection actor), i + 1 = tile i.
        out.push(ba.tile_of(a).map_or(0, |t| t.index() as u64 + 1));
    }
    out.push(g.channel_count() as u64);
    for c in g.channel_ids() {
        let ch = g.channel(c);
        out.push(ch.src().index() as u64);
        out.push(ch.dst().index() as u64);
        out.push(ch.production_rate());
        out.push(ch.consumption_rate());
        out.push(ch.initial_tokens());
    }
    let tiles = ba.used_tiles();
    out.push(tiles.len() as u64);
    for &t in &tiles {
        let tdma = ba.tdma(t);
        out.push(t.index() as u64);
        out.push(tdma.wheel);
        out.push(tdma.slice);
    }
    out.push(state_budget as u64);
}

/// A memo table for [`ConstrainedExecutor::throughput`] evaluations.
///
/// Both successes and analysis errors ([`SdfError::BudgetExceeded`],
/// [`SdfError::Deadlock`]) are cached: the fingerprint includes the state
/// budget, so a cached error is exactly what a re-run would produce.
///
/// # Examples
///
/// ```
/// use sdfrs_core::thru_cache::ThroughputCache;
/// let cache = ThroughputCache::new();
/// assert_eq!((cache.hits(), cache.misses()), (0, 0));
/// ```
#[derive(Debug, Clone)]
pub struct ThroughputCache {
    map: FxHashMap<Vec<u64>, Result<ThroughputResult, SdfError>>,
    hits: usize,
    misses: usize,
    scratch: Vec<u64>,
    /// Key positions holding tile slices, refreshed per fingerprint.
    slice_words: Vec<usize>,
    bypass: bool,
    /// The shared warm-start pool; `None` runs every exploration fully
    /// cold. Clones (and [`fork`](Self::fork)s) share the pool, so
    /// parallel search tasks warm each other.
    warm: Option<SharedWarmPool>,
    metrics: Metrics,
    /// Forks record hits/misses/probes into the shared registry
    /// directly, but leave the `cache_entries` gauge to the main cache:
    /// fork residency is speculative until [`absorb`](Self::absorb).
    is_fork: bool,
    /// Keys this fork inserted itself (empty on non-forks): the only
    /// entries [`absorb`](Self::absorb) needs to consider, instead of
    /// re-walking the inherited copy of the parent's whole map.
    fresh: Vec<Vec<u64>>,
    /// Memoized static-order schedule constructions, part of the
    /// warm-start layer (see [`schedules_for`](Self::schedules_for)).
    /// Forks start empty — schedule construction happens before the
    /// slice phase that forks.
    sched: FxHashMap<Vec<u64>, TileSchedules>,
}

impl Default for ThroughputCache {
    /// An empty cache with warm-started exploration enabled.
    fn default() -> Self {
        ThroughputCache {
            map: FxHashMap::default(),
            hits: 0,
            misses: 0,
            scratch: Vec::new(),
            slice_words: Vec::new(),
            bypass: false,
            warm: Some(WarmPool::shared()),
            metrics: Metrics::default(),
            is_fork: false,
            fresh: Vec::new(),
            sched: FxHashMap::default(),
        }
    }
}

impl ThroughputCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cache that never memoizes at the fingerprint level:
    /// every evaluation counts as a miss. The ablation baseline for the
    /// benches — the flow code stays identical, only memoization is off.
    /// Warm-started exploration stays on; stack
    /// [`without_warm_start`](Self::without_warm_start) for a fully cold
    /// baseline.
    pub fn disabled() -> Self {
        ThroughputCache {
            bypass: true,
            ..ThroughputCache::default()
        }
    }

    /// Drops the warm-start pool: every fingerprint miss explores the
    /// state space from scratch and every flow rebuilds its static-order
    /// schedules, exactly as if the incremental re-analysis layer did
    /// not exist. Results are identical either way — this only trades
    /// time.
    pub fn without_warm_start(mut self) -> Self {
        self.warm = None;
        self.sched.clear();
        self
    }

    /// Returns the memoized static-order schedules for `ba` (with its
    /// 50%-of-wheel slice assumption baked in) or runs `build` and
    /// memoizes a successful result. Construction is deterministic, so
    /// a hit is bit-identical to rebuilding — only wall time changes.
    /// Part of the warm-start layer: with
    /// [`without_warm_start`](Self::without_warm_start), `build` runs
    /// every time. Errors are never memoized.
    ///
    /// # Errors
    ///
    /// Whatever `build` returns.
    pub fn schedules_for<F>(
        &mut self,
        ba: &BindingAwareGraph,
        state_budget: usize,
        build: F,
    ) -> Result<TileSchedules, SdfError>
    where
        F: FnOnce() -> Result<TileSchedules, SdfError>,
    {
        if self.warm.is_none() {
            return build();
        }
        let mut key = std::mem::take(&mut self.scratch);
        encode_schedule_key(ba, state_budget, &mut key);
        if let Some(s) = self.sched.get(&key) {
            let schedules = s.clone();
            self.scratch = key;
            return Ok(schedules);
        }
        let schedules = build();
        if let Ok(s) = &schedules {
            self.sched.insert(key, s.clone());
        } else {
            self.scratch = key;
        }
        schedules
    }

    /// `true` when a warm-start pool backs fingerprint misses.
    pub fn warm_start_enabled(&self) -> bool {
        self.warm.is_some()
    }

    /// Cumulative warm-start statistics of the shared pool, or `None`
    /// when warm-starting is off.
    pub fn warm_stats(&self) -> Option<WarmStats> {
        self.warm.as_ref().map(|pool| lock_pool(pool).stats())
    }

    /// Evaluations answered from the cache.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Evaluations that ran the state-space exploration.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Distinct configurations memoized.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops all memoized evaluations (including memoized schedule
    /// constructions); counters keep accumulating.
    pub fn clear(&mut self) {
        let evicted = self.map.len() as u64;
        self.map.clear();
        self.fresh.clear();
        self.sched.clear();
        let is_fork = self.is_fork;
        self.metrics.record(|m| {
            m.cache_evictions.add(evicted);
            if !is_fork {
                m.cache_entries.set(0);
            }
        });
    }

    /// Attaches a metrics handle: every hit, miss and exploration is
    /// recorded through it from now on.
    /// [`Allocator::with_metrics`](crate::Allocator::with_metrics) calls
    /// this for the cache it owns.
    pub fn set_metrics(&mut self, metrics: impl Into<Metrics>) {
        self.metrics = metrics.into();
    }

    /// A copy carrying the same memo table but zeroed counters: the seed
    /// for a (parallel) search task's local cache. [`absorb`](Self::absorb)
    /// of a fork then adds exactly the task's own hits and misses. The
    /// fork shares the metrics registry (its recordings are live) but
    /// never touches the residency gauge.
    pub fn fork(&self) -> ThroughputCache {
        ThroughputCache {
            map: self.map.clone(),
            hits: 0,
            misses: 0,
            scratch: Vec::new(),
            slice_words: Vec::new(),
            bypass: self.bypass,
            warm: self.warm.clone(),
            metrics: self.metrics.clone(),
            is_fork: true,
            fresh: Vec::new(),
            sched: FxHashMap::default(),
        }
    }

    /// Merges another cache into this one: memoized evaluations are
    /// adopted (first writer wins on duplicates — both sides computed the
    /// same result) and hit/miss counters accumulate. Folds the local
    /// caches of parallel search tasks back into the shared cache.
    /// Returns how many entries were newly adopted.
    ///
    /// A fork's map is a copy of its parent's plus whatever the fork
    /// evaluated itself; only the latter ([`fresh`](Self::fork) keys) are
    /// considered, so absorbing a fork never re-inserts (or re-hashes)
    /// the thousands of entries both sides already share.
    ///
    /// Registry counters are *not* re-recorded here — a fork records its
    /// hits and misses live; absorbing only folds the per-run `usize`
    /// counters [`FlowStats`](crate::FlowStats) deltas derive from.
    pub fn absorb(&mut self, other: ThroughputCache) -> usize {
        self.hits += other.hits;
        self.misses += other.misses;
        for (key, value) in other.sched {
            self.sched.entry(key).or_insert(value);
        }
        let mut adopted = 0;
        if other.is_fork {
            let mut map = other.map;
            for key in other.fresh {
                if let Some(value) = map.remove(&key) {
                    self.map.entry(key).or_insert_with(|| {
                        adopted += 1;
                        value
                    });
                }
            }
        } else {
            for (key, value) in other.map {
                self.map.entry(key).or_insert_with(|| {
                    adopted += 1;
                    value
                });
            }
        }
        if !self.is_fork {
            let entries = self.map.len() as u64;
            self.metrics.record(|m| m.cache_entries.set(entries));
        }
        adopted
    }

    /// The guaranteed throughput of `ba` under `schedules`, measured at
    /// `reference` — from the cache when the same configuration was
    /// evaluated before, otherwise by running the constrained state-space
    /// exploration and memoizing the result.
    pub fn throughput(
        &mut self,
        ba: &BindingAwareGraph,
        schedules: &TileSchedules,
        reference: ActorId,
        state_budget: usize,
    ) -> Result<ThroughputResult, SdfError> {
        if self.bypass {
            self.misses += 1;
            self.metrics.record(|m| {
                m.throughput_checks.inc();
                m.cache_misses.inc();
            });
            return self.explore(ba, schedules, reference, state_budget, None);
        }
        let mut key = std::mem::take(&mut self.scratch);
        let mut slice_words = std::mem::take(&mut self.slice_words);
        encode_fingerprint(
            ba,
            schedules,
            reference,
            state_budget,
            &mut key,
            &mut slice_words,
        );
        self.slice_words = slice_words;
        if let Some(cached) = self.map.get(&key) {
            self.hits += 1;
            self.metrics.record(|m| {
                m.throughput_checks.inc();
                m.cache_hits.inc();
            });
            let result = cached.clone();
            self.scratch = key;
            return result;
        }
        self.misses += 1;
        let ancestor = self.nearest_ancestor(&key);
        self.metrics.record(|m| {
            m.throughput_checks.inc();
            m.cache_misses.inc();
            if ancestor.is_some() {
                m.cache_ancestor_hits.inc();
            }
        });
        let result = self.explore(ba, schedules, reference, state_budget, ancestor.flatten());
        self.map.insert(key.clone(), result.clone());
        if self.is_fork {
            self.fresh.push(key);
        } else {
            let entries = self.map.len() as u64;
            self.metrics.record(|m| m.cache_entries.set(entries));
            self.scratch = key;
        }
        result
    }

    /// Scans for a memoized configuration differing from `key` in exactly
    /// one tile-slice word — the nearest ancestor of an incremental
    /// probe. Returns `Some(size_hint)` when one exists, where the hint
    /// is the ancestor's explored-state count (if it succeeded), used
    /// only to pre-size the warm context. Purely advisory: it never
    /// changes any result.
    fn nearest_ancestor(&self, key: &[u64]) -> Option<Option<usize>> {
        self.warm.as_ref()?;
        'candidates: for (k, v) in &self.map {
            if k.len() != key.len() {
                continue;
            }
            let mut differs = false;
            for (i, (a, b)) in k.iter().zip(key).enumerate() {
                if a != b {
                    if differs || !self.slice_words.contains(&i) {
                        continue 'candidates;
                    }
                    differs = true;
                }
            }
            if differs {
                return Some(v.as_ref().ok().map(|r| r.states_explored));
            }
        }
        None
    }

    /// Runs the constrained exploration — through the shared warm-start
    /// pool when one is attached, fully cold otherwise — timed as a
    /// `probe` span, and records how many states it visited.
    /// `ancestor_hint` pre-sizes the warm context's interner.
    fn explore(
        &self,
        ba: &BindingAwareGraph,
        schedules: &TileSchedules,
        reference: ActorId,
        state_budget: usize,
        ancestor_hint: Option<usize>,
    ) -> Result<ThroughputResult, SdfError> {
        // `Instant::now` only when a registry listens: the disabled path
        // must cost a single branch.
        let probe_start = self.metrics.enabled().then(Instant::now);
        let result = if let Some(pool) = &self.warm {
            let mut base = Vec::new();
            encode_base_fingerprint(ba, schedules, reference, &mut base);
            let mut pool = lock_pool(pool);
            let ctx = pool.context_for(&base);
            if let Some(states) = ancestor_hint {
                ctx.reserve(states);
            }
            let (result, probe) = explore_warm(ba, schedules, reference, state_budget, ctx);
            pool.apply(&probe);
            self.metrics.record(|m| {
                m.warm_hits.add(probe.replayed);
                m.warm_misses.add(probe.recomputed);
                if probe.trajectory_hit {
                    m.warm_trajectory_hits.inc();
                }
                m.states_invalidated.observe(probe.invalidated);
            });
            result
        } else {
            ConstrainedExecutor::new(ba, schedules)
                .with_state_budget(state_budget)
                .throughput(reference)
        };
        if let Some(t0) = probe_start {
            let elapsed = t0.elapsed();
            self.metrics.record(|m| {
                m.profiler.record(SpanKind::Probe, elapsed);
                if let Ok(r) = &result {
                    m.states_explored.add(r.states_explored as u64);
                    m.probe_states.observe(r.states_explored as u64);
                }
            });
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::Binding;
    use crate::list_sched::construct_schedules;
    use sdfrs_appmodel::apps::{example_platform, paper_example};
    use sdfrs_platform::TileId;

    fn setup(slices: [u64; 2]) -> (BindingAwareGraph, TileSchedules, ActorId) {
        let app = paper_example();
        let arch = example_platform();
        let g = app.graph();
        let mut binding = Binding::new(g.actor_count());
        binding.bind(g.actor_by_name("a1").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a2").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a3").unwrap(), TileId::from_index(1));
        let ba = BindingAwareGraph::build(&app, &arch, &binding, &slices).unwrap();
        let schedules = construct_schedules(&ba).unwrap();
        let reference = ba.ba_actor(app.output_actor());
        (ba, schedules, reference)
    }

    #[test]
    fn identical_inputs_hit() {
        let (ba, schedules, reference) = setup([5, 5]);
        let mut cache = ThroughputCache::new();
        let first = cache
            .throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        let second = cache
            .throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        assert_eq!(first, second);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        // The cached result matches an uncached run exactly.
        let direct = ConstrainedExecutor::new(&ba, &schedules)
            .with_state_budget(100_000)
            .throughput(reference)
            .unwrap();
        assert_eq!(first, direct);
    }

    #[test]
    fn slice_change_misses() {
        let (mut ba, schedules, reference) = setup([5, 5]);
        let mut cache = ThroughputCache::new();
        cache
            .throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        ba.set_slices(&[4, 5]);
        cache
            .throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        // Restoring the original slices hits again.
        ba.set_slices(&[5, 5]);
        cache
            .throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn schedule_order_swap_misses() {
        let (ba, schedules, reference) = setup([5, 5]);
        let t0 = TileId::from_index(0);
        let s0 = schedules.get(t0).unwrap();
        // Rotate tile 0's periodic order: same multiset, different order.
        let mut period = s0.period().to_vec();
        assert!(period.len() >= 2, "tile 0 hosts a1 and a2");
        period.rotate_left(1);
        let mut swapped = schedules.clone();
        swapped.set(
            t0,
            crate::schedule::StaticOrderSchedule::new(s0.prefix().to_vec(), period),
        );
        let mut cache = ThroughputCache::new();
        cache
            .throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        let _ = cache.throughput(&ba, &swapped, reference, 100_000);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
    }

    /// The paper example with a parameterizable execution time for `a1`
    /// on `p1` (1 in Table 2).
    fn paper_like(exec_a1_p1: u64) -> sdfrs_appmodel::ApplicationGraph {
        use sdfrs_appmodel::{ActorRequirements, ApplicationGraph, ChannelRequirements};
        use sdfrs_platform::ProcessorType;
        use sdfrs_sdf::{Rational, SdfGraph};
        let p1 = ProcessorType::new("p1");
        let p2 = ProcessorType::new("p2");
        let mut g = SdfGraph::new("paper_example");
        let a1 = g.add_actor("a1", 0);
        let a2 = g.add_actor("a2", 0);
        let a3 = g.add_actor("a3", 0);
        let d1 = g.add_channel("d1", a1, 1, a2, 1, 0);
        let d2 = g.add_channel("d2", a2, 1, a3, 2, 0);
        let d3 = g.add_channel("d3", a1, 1, a1, 1, 1);
        ApplicationGraph::builder(g, Rational::new(1, 30))
            .actor(
                a1,
                ActorRequirements::new()
                    .on(p1.clone(), exec_a1_p1, 10)
                    .on(p2.clone(), 4, 15),
            )
            .actor(
                a2,
                ActorRequirements::new()
                    .on(p1.clone(), 1, 7)
                    .on(p2.clone(), 7, 19),
            )
            .actor(a3, ActorRequirements::new().on(p1, 3, 13).on(p2, 2, 10))
            .channel(d1, ChannelRequirements::new(7, 1, 2, 2, 100))
            .channel(d2, ChannelRequirements::new(100, 2, 2, 2, 10))
            .channel(d3, ChannelRequirements::new(1, 1, 0, 0, 0))
            .output_actor(a3)
            .build()
            .unwrap()
    }

    #[test]
    fn actor_time_and_budget_changes_miss() {
        let (ba, schedules, reference) = setup([5, 5]);
        let mut cache = ThroughputCache::new();
        cache
            .throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        // Different state budget: a distinct configuration.
        cache
            .throughput(&ba, &schedules, reference, 99_999)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        // Different execution time for a1, everything else identical
        // (same binding, slices, schedules, reference): still a miss.
        let app = paper_like(2);
        let arch = example_platform();
        let g = app.graph();
        let mut binding = Binding::new(g.actor_count());
        binding.bind(g.actor_by_name("a1").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a2").unwrap(), TileId::from_index(0));
        binding.bind(g.actor_by_name("a3").unwrap(), TileId::from_index(1));
        let ba2 = BindingAwareGraph::build(&app, &arch, &binding, &[5, 5]).unwrap();
        cache
            .throughput(&ba2, &schedules, reference, 100_000)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 3));
        // Sanity: the unperturbed rebuild would have hit.
        let app0 = paper_like(1);
        let ba0 = BindingAwareGraph::build(&app0, &arch, &binding, &[5, 5]).unwrap();
        cache
            .throughput(&ba0, &schedules, reference, 100_000)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 3));
    }

    #[test]
    fn absorb_adopts_only_fork_fresh_entries() {
        use crate::metrics::MetricsRegistry;
        use std::sync::Arc;
        let registry = Arc::new(MetricsRegistry::new());
        let (ba, schedules, reference) = setup([5, 5]);
        let mut cache = ThroughputCache::new();
        cache.set_metrics(registry.clone());
        cache
            .throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        assert_eq!(registry.cache_entries.get(), 1);
        let mut fork = cache.fork();
        // The fork re-evaluates an inherited entry (a hit — not fresh)
        // and probes one configuration of its own (fresh).
        fork.throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        fork.throughput(&ba, &schedules, reference, 99_999).unwrap();
        assert_eq!((fork.hits(), fork.misses()), (1, 1));
        let adopted = cache.absorb(fork);
        assert_eq!(adopted, 1, "only the fork's own insertion is adopted");
        assert_eq!(cache.len(), 2);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        // The residency gauge tracks the merged map exactly.
        assert_eq!(registry.cache_entries.get(), 2);
        // Absorbing a second fork that added nothing adopts nothing and
        // leaves the gauge pinned to the map size.
        let mut idle = cache.fork();
        idle.throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        assert_eq!(cache.absorb(idle), 0);
        assert_eq!(cache.len(), 2);
        assert_eq!(registry.cache_entries.get(), 2);
    }

    #[test]
    fn warm_start_matches_cold_cache() {
        let (mut ba, schedules, reference) = setup([5, 5]);
        let mut warm = ThroughputCache::disabled();
        let mut cold = ThroughputCache::disabled().without_warm_start();
        assert!(warm.warm_start_enabled());
        assert!(!cold.warm_start_enabled());
        for slices in [[5u64, 5], [4, 5], [5, 5], [2, 3], [4, 5], [1, 1]] {
            ba.set_slices(&slices);
            for budget in [2usize, 100_000] {
                let w = warm.throughput(&ba, &schedules, reference, budget);
                let c = cold.throughput(&ba, &schedules, reference, budget);
                assert_eq!(w, c, "slices {slices:?} budget {budget}");
            }
        }
        let stats = warm.warm_stats().expect("warm pool attached");
        assert!(stats.probes > 0);
        assert!(
            stats.replayed_transitions + stats.trajectory_hits > 0,
            "repeated probes must reuse the memo: {stats:?}"
        );
        assert_eq!(cold.warm_stats(), None);
    }

    #[test]
    fn forks_share_one_warm_pool() {
        let (ba, schedules, reference) = setup([5, 5]);
        let mut cache = ThroughputCache::new();
        cache
            .throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        // A fork's map hit does not touch the pool, but a fork probing a
        // *new* budget warm-starts from the parent's exploration.
        let mut fork = cache.fork();
        fork.throughput(&ba, &schedules, reference, 99_999).unwrap();
        let stats = fork.warm_stats().expect("shared pool");
        assert_eq!(stats.probes, 2);
        assert_eq!(
            stats.trajectory_hits, 1,
            "the fork's probe differs only in budget: same trajectory"
        );
        assert_eq!(cache.warm_stats(), fork.warm_stats());
    }

    #[test]
    fn nearest_ancestor_counts_single_slice_neighbours() {
        use crate::metrics::MetricsRegistry;
        use std::sync::Arc;
        let registry = Arc::new(MetricsRegistry::new());
        let (mut ba, schedules, reference) = setup([5, 5]);
        let mut cache = ThroughputCache::new();
        cache.set_metrics(registry.clone());
        cache
            .throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        assert_eq!(registry.cache_ancestor_hits.get(), 0, "first probe");
        // One tile's slice changed: the memoized entry is an ancestor.
        ba.set_slices(&[5, 4]);
        cache
            .throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        assert_eq!(registry.cache_ancestor_hits.get(), 1);
        // Both slices changed relative to every cached entry: no single
        // slice-word neighbour exists.
        ba.set_slices(&[2, 2]);
        cache
            .throughput(&ba, &schedules, reference, 100_000)
            .unwrap();
        assert_eq!(registry.cache_ancestor_hits.get(), 1);
        // A budget change differs in a non-slice word: not an ancestor.
        ba.set_slices(&[5, 5]);
        cache
            .throughput(&ba, &schedules, reference, 50_000)
            .unwrap();
        assert_eq!(registry.cache_ancestor_hits.get(), 1);
    }

    #[test]
    fn errors_are_cached_too() {
        let (ba, schedules, reference) = setup([5, 5]);
        let mut cache = ThroughputCache::new();
        // A 1-state budget cannot close the recurrence.
        let e1 = cache.throughput(&ba, &schedules, reference, 1).unwrap_err();
        let e2 = cache.throughput(&ba, &schedules, reference, 1).unwrap_err();
        assert_eq!(e1, e2);
        assert!(matches!(e1, SdfError::BudgetExceeded { .. }));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }
}
