//! The online admission service: long-lived multi-tenant allocation
//! sessions over one persistent platform.
//!
//! The batch protocols ([`multi_app`](crate::multi_app),
//! [`admission`](crate::admission)) run the Sec 10.1 flow once and stop;
//! a platform serving sustained traffic also needs applications to
//! *depart* — returning their tile budgets to the pool — and concurrent
//! requests to be drained against shared state. [`AllocationService`]
//! owns exactly that state:
//!
//! * the **residual** [`PlatformState`]: what every earlier admission
//!   claimed and every departure released;
//! * a registry of live **sessions**, each holding the application and
//!   the [`Allocation`] it was admitted with, keyed by a never-reused
//!   [`SessionId`];
//! * one [`Allocator`] — and thus one
//!   [`ThroughputCache`](crate::ThroughputCache), event sink and metrics
//!   registry — shared by every request the service ever executes.
//!
//! Requests are either applied directly ([`admit`](AllocationService::admit),
//! [`depart`](AllocationService::depart),
//! [`rebind`](AllocationService::rebind),
//! [`status`](AllocationService::status)) or queued with
//! [`enqueue`](AllocationService::enqueue) and executed by
//! [`drain`](AllocationService::drain) in deterministic batches: each
//! batch first allocates its admissions *speculatively in parallel*
//! against a snapshot of the residual state (cache-warming forks of the
//! shared [`ThroughputCache`](crate::ThroughputCache), absorbed before
//! commit), then commits every request sequentially in arrival order.
//! The commit re-runs each admission against the true residual state —
//! answered from the warmed cache when no earlier commit changed the
//! state — so a drained batch is *bit-identical* to processing the same
//! requests one by one. The conformance harness pins exactly that
//! equivalence (oracle 6).
//!
//! # Regional admission
//!
//! With [`ServiceConfig::regions`] ` > 1` the platform is partitioned
//! into a [`RegionMap`] of contiguous tile regions, and every admission
//! is assigned a *home region* round-robin. The flow then runs against a
//! [masked view](RegionMap::masked_state) of the residual state in which
//! tiles outside the home region appear fully occupied, so the
//! allocation — if one exists — stays inside the home region and only
//! ranks the home region's tiles. When the home region cannot fit the
//! application, admission *escalates*: the mask widens to the home
//! region plus its nearest neighbor regions (up to
//! [`MAX_ESCALATION_NEIGHBORS`]), and finally falls back to the
//! unmasked global flow.
//!
//! Because a masked allocation is a pure function of its regions'
//! residual share, admits homed in *different* regions commute; with
//! [`ServiceConfig::region_parallel_commit`] a drained run of
//! consecutive admits is grouped by home region, allocated per region in
//! parallel, and the results are **committed directly** in arrival
//! order — no re-run — whenever no earlier inline commit dirtied the
//! home region. Escalations and admits into dirtied regions are
//! recomputed inline, exactly as the sequential path would. Conform
//! oracle 7 pins region-parallel commit ≡ sequential commit,
//! byte-for-byte, including forced-escalation scenarios.
//!
//! # Example
//!
//! ```
//! use sdfrs_appmodel::apps::{example_platform, paper_example};
//! use sdfrs_core::service::AllocationService;
//!
//! let arch = example_platform();
//! let mut service = AllocationService::new(&arch);
//! let first = service.admit(&paper_example()).unwrap();
//! let second = service.admit(&paper_example()).unwrap();
//! service.depart(first).unwrap();
//! assert_eq!(service.live_count(), 1);
//! // The departed budgets are available again.
//! let third = service.admit(&paper_example()).unwrap();
//! assert!(third > second);
//! ```

use std::collections::BTreeMap;

use sdfrs_appmodel::ApplicationGraph;
use sdfrs_fastutil::par::maybe_par_map;
use sdfrs_platform::{ArchitectureGraph, PlatformState, RegionId, RegionMap, TileUsage};
use sdfrs_sdf::Rational;

use crate::admission::AdmissionPolicy;
use crate::allocator::Allocator;
use crate::error::MapError;
use crate::events::{json_escape, EventSink, FlowEvent, RecordingSink};
use crate::flow::{Allocation, FlowConfig, FlowStats};
use crate::ids::SessionId;
use crate::metrics::Metrics;
use crate::resources::TileCapacity;
use crate::solver::SolveReport;

/// Neighbor regions an escalating admission may widen its mask by before
/// falling back to the global unmasked flow: the chain is
/// `{home}`, `{home, n₁}`, `{home, n₁, n₂}`, global.
pub const MAX_ESCALATION_NEIGHBORS: usize = 2;

/// Configuration of an [`AllocationService`].
///
/// Marked `#[non_exhaustive]`: build one with [`ServiceConfig::default`]
/// and adjust fields from there.
#[non_exhaustive]
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// The flow configuration every admission runs under.
    pub flow: FlowConfig,
    /// Queued requests executed per batch by [`drain`]
    /// ([`AllocationService::drain`]); clamped to at least 1.
    ///
    /// [`drain`]: AllocationService::drain
    pub batch_capacity: usize,
    /// Whether a batch's admissions are speculatively allocated in
    /// parallel before the sequential commit. Never changes results —
    /// only how warm the shared cache is when the commit runs.
    pub parallel_speculation: bool,
    /// Regions the platform is partitioned into for regional admission
    /// (clamped to `1..=tile_count`). `1` — the default — disables
    /// regional admission entirely: every admit runs the global flow,
    /// byte-identical to earlier releases.
    pub regions: usize,
    /// Whether [`drain`](AllocationService::drain) commits runs of
    /// consecutive admits region-parallel (see the
    /// [module docs](self#regional-admission)). Only takes effect with
    /// `regions > 1`; results are pinned byte-identical to the
    /// sequential commit by conform oracle 7.
    pub region_parallel_commit: bool,
    /// The admission policy every admit and rebind dispatches through.
    /// The default ([`AdmissionPolicy::greedy`]) preserves the
    /// pre-solver behavior byte-for-byte; the solver-backed policies
    /// (exact / portfolio) attach a certified [`SolveReport`] to every
    /// admission and disable the speculative regional/parallel fast
    /// paths (which are only proven result-identical for the heuristic
    /// flow).
    pub policy: AdmissionPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            flow: FlowConfig::default(),
            batch_capacity: 16,
            parallel_speculation: true,
            regions: 1,
            region_parallel_commit: true,
            policy: AdmissionPolicy::greedy(),
        }
    }
}

/// A request to the service, as queued by
/// [`enqueue`](AllocationService::enqueue).
///
/// Marked `#[non_exhaustive]`: a long-lived service will grow more
/// operations (constraint renegotiation, priority eviction).
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceRequest {
    /// Admit an application as a new session.
    Admit {
        /// The application to admit (its throughput constraint rides
        /// along inside the graph).
        app: Box<ApplicationGraph>,
    },
    /// Depart a live session, reclaiming its resources.
    Depart {
        /// The session to depart.
        session: SessionId,
    },
    /// Re-allocate a live session against the current residual state.
    Rebind {
        /// The session to rebind.
        session: SessionId,
    },
    /// Report the live sessions and the residual platform.
    Status,
}

impl ServiceRequest {
    /// Stable operation name used in events and JSONL responses.
    pub fn op(&self) -> &'static str {
        match self {
            ServiceRequest::Admit { .. } => "admit",
            ServiceRequest::Depart { .. } => "depart",
            ServiceRequest::Rebind { .. } => "rebind",
            ServiceRequest::Status => "status",
        }
    }

    /// Renders the request as one self-contained deterministic JSON
    /// line tagged `"seq":seq` — the commit-log record format, accepted
    /// back by [`parse_request_line`]. An admit embeds the full
    /// application as escaped [`textio`](sdfrs_appmodel::textio) text,
    /// so a log line needs no out-of-band files to replay.
    pub fn to_json_line(&self, seq: u64) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(64);
        let _ = write!(s, "{{\"seq\":{seq},\"op\":\"{}\"", self.op());
        match self {
            ServiceRequest::Admit { app } => {
                let text = sdfrs_appmodel::textio::write_application(app);
                let _ = write!(s, ",\"app\":\"{}\"", json_escape(&text));
            }
            ServiceRequest::Depart { session } | ServiceRequest::Rebind { session } => {
                let _ = write!(s, ",\"session\":{}", session.raw());
            }
            ServiceRequest::Status => {}
        }
        s.push('}');
        s
    }
}

/// Why a session-addressed request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The session id is not live (never existed, or already departed —
    /// ids are never reused, so the two are indistinguishable on
    /// purpose).
    UnknownSession(SessionId),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownSession(id) => write!(f, "unknown session {id}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Outcome of a [`rebind`](AllocationService::rebind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebindOutcome {
    /// Guaranteed throughput after the rebind.
    pub throughput: Rational,
    /// Whether the new allocation differs from the old one (binding or
    /// slices moved). `false` also when re-allocation failed and the old
    /// allocation was kept — a rebind never loses a valid session.
    pub changed: bool,
}

/// One live session, as reported by
/// [`status`](AllocationService::status).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionInfo {
    /// The session's ticket.
    pub session: SessionId,
    /// Application name.
    pub app: String,
    /// Guaranteed throughput of the current allocation.
    pub throughput: Rational,
    /// Total TDMA wheel time the allocation claims across all tiles.
    pub wheel: u64,
}

/// A point-in-time view of the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStatus {
    /// Every live session, admission order (= ascending session id).
    pub sessions: Vec<SessionInfo>,
    /// Requests queued but not yet drained.
    pub queue_depth: usize,
    /// Total resources claimed across all tiles.
    pub claimed: TileUsage,
}

/// The response to one [`ServiceRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceResponse {
    /// An admission succeeded.
    Admitted {
        /// The new session's ticket.
        session: SessionId,
        /// Application name.
        app: String,
        /// Guaranteed throughput of the allocation.
        throughput: Rational,
        /// Total wheel time claimed across all tiles.
        wheel: u64,
        /// The certified bound report, when the admission ran under a
        /// solver-backed policy (`None` under the heuristic policies —
        /// their JSONL lines stay byte-identical to earlier releases).
        report: Option<SolveReport>,
    },
    /// An admission failed; no session was created.
    Rejected {
        /// Application name.
        app: String,
        /// Why the flow found no valid allocation.
        error: MapError,
    },
    /// A departure succeeded.
    Departed {
        /// The departed session.
        session: SessionId,
        /// Total resources returned to the pool, summed over tiles.
        reclaimed: TileUsage,
    },
    /// A rebind completed (possibly keeping the old allocation).
    Rebound {
        /// The rebound session.
        session: SessionId,
        /// The rebind outcome.
        outcome: RebindOutcome,
    },
    /// A status report.
    Status(ServiceStatus),
    /// A session-addressed request failed.
    Failed {
        /// The operation that failed.
        op: &'static str,
        /// Why.
        error: ServiceError,
    },
}

impl ServiceResponse {
    /// `true` when the response reports a *committed mutation* of the
    /// service state — an admission that admitted, a departure that
    /// departed, or a rebind that answered (a kept-in-place rebind still
    /// replays deterministically). Rejections, failures and status
    /// probes leave the state untouched and never enter the commit log.
    pub fn commits(&self) -> bool {
        matches!(
            self,
            ServiceResponse::Admitted { .. }
                | ServiceResponse::Departed { .. }
                | ServiceResponse::Rebound { .. }
        )
    }

    /// Renders the response as one deterministic JSON object (no
    /// timestamps, no timing data), tagged with the request's sequence
    /// number — the line format of the CLI `serve` mode.
    pub fn to_json_line(&self, seq: u64) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"id\":{seq}");
        match self {
            ServiceResponse::Admitted {
                session,
                app,
                throughput,
                wheel,
                report,
            } => {
                let _ = write!(
                    s,
                    ",\"op\":\"admit\",\"ok\":true,\"session\":{},\"app\":\"{}\",\"throughput\":\"{throughput}\",\"wheel\":{wheel}",
                    session.raw(),
                    json_escape(app)
                );
                if let Some(r) = report {
                    let _ = write!(
                        s,
                        ",\"solver\":\"{}\",\"lower\":\"{}\",\"upper\":\"{}\",\"gap\":\"{}\",\"proven_optimal\":{},\"nodes\":{},\"lp_pivots\":{}",
                        r.kind.name(),
                        r.lower,
                        r.upper,
                        r.gap,
                        r.proven_optimal,
                        r.nodes_expanded,
                        r.lp_pivots
                    );
                }
            }
            ServiceResponse::Rejected { app, error } => {
                let _ = write!(
                    s,
                    ",\"op\":\"admit\",\"ok\":false,\"app\":\"{}\",\"error\":\"{}\"",
                    json_escape(app),
                    json_escape(&error.to_string())
                );
            }
            ServiceResponse::Departed { session, reclaimed } => {
                let _ = write!(
                    s,
                    ",\"op\":\"depart\",\"ok\":true,\"session\":{},\"reclaimed_wheel\":{},\"reclaimed_memory\":{},\"reclaimed_connections\":{}",
                    session.raw(),
                    reclaimed.wheel,
                    reclaimed.memory,
                    reclaimed.connections
                );
            }
            ServiceResponse::Rebound { session, outcome } => {
                let _ = write!(
                    s,
                    ",\"op\":\"rebind\",\"ok\":true,\"session\":{},\"throughput\":\"{}\",\"changed\":{}",
                    session.raw(),
                    outcome.throughput,
                    outcome.changed
                );
            }
            ServiceResponse::Status(status) => {
                let _ = write!(
                    s,
                    ",\"op\":\"status\",\"ok\":true,\"live\":{},\"queue_depth\":{},\"claimed_wheel\":{},\"sessions\":[",
                    status.sessions.len(),
                    status.queue_depth,
                    status.claimed.wheel
                );
                for (i, info) in status.sessions.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(
                        s,
                        "{{\"session\":{},\"app\":\"{}\",\"throughput\":\"{}\",\"wheel\":{}}}",
                        info.session.raw(),
                        json_escape(&info.app),
                        info.throughput,
                        info.wheel
                    );
                }
                s.push(']');
            }
            ServiceResponse::Failed { op, error } => {
                let _ = write!(
                    s,
                    ",\"op\":\"{op}\",\"ok\":false,\"error\":\"{}\"",
                    json_escape(&error.to_string())
                );
            }
        }
        s.push('}');
        s
    }
}

/// One live session.
#[derive(Debug, Clone)]
struct Session {
    app: ApplicationGraph,
    allocation: Allocation,
    /// The flow stats of the run that produced `allocation` — what the
    /// tracing layer's warm-cache-hit annotation reads.
    stats: FlowStats,
    /// The certified bound report of the admitting solve, when the
    /// session was admitted (or last rebound) under a solver-backed
    /// policy.
    report: Option<SolveReport>,
}

/// The long-lived admission daemon: persistent residual platform state,
/// a live-session registry, and a queue drained in deterministic
/// batches. See the [module docs](self).
pub struct AllocationService {
    arch: ArchitectureGraph,
    allocator: Allocator,
    residual: PlatformState,
    sessions: BTreeMap<SessionId, Session>,
    next_session: u64,
    queue: Vec<(u64, ServiceRequest)>,
    next_seq: u64,
    batches_drained: usize,
    batch_capacity: usize,
    parallel_speculation: bool,
    region_map: RegionMap,
    region_parallel_commit: bool,
    /// Round-robin home-region counter. Pure arrival-order state — never
    /// load-dependent — so the sequential and region-parallel commit
    /// paths assign identical homes to identical request streams.
    region_rr: u64,
    /// Escalation depth of the most recent regional commit — the
    /// tracing layer reads it after each traced request. Observational
    /// only; nothing in the admission path consults it.
    last_escalation_depth: Option<u64>,
    /// The admission policy every admit and rebind dispatches through.
    policy: AdmissionPolicy,
}

impl std::fmt::Debug for AllocationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AllocationService")
            .field("live", &self.sessions.len())
            .field("queue_depth", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl AllocationService {
    /// A service over `arch` with the default [`ServiceConfig`]: empty
    /// platform, no sessions, empty queue.
    pub fn new(arch: &ArchitectureGraph) -> Self {
        Self::from_config(arch, ServiceConfig::default())
    }

    /// A service over `arch` with the given configuration.
    pub fn from_config(arch: &ArchitectureGraph, config: ServiceConfig) -> Self {
        AllocationService {
            arch: arch.clone(),
            allocator: Allocator::from_config(config.flow),
            residual: PlatformState::new(arch),
            sessions: BTreeMap::new(),
            next_session: 1,
            queue: Vec::new(),
            next_seq: 0,
            batches_drained: 0,
            batch_capacity: config.batch_capacity.max(1),
            parallel_speculation: config.parallel_speculation,
            region_map: RegionMap::contiguous(arch, config.regions.max(1)),
            region_parallel_commit: config.region_parallel_commit,
            region_rr: 0,
            last_escalation_depth: None,
            policy: config.policy,
        }
    }

    /// The admission policy this service dispatches through.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Routes all service and flow events to `sink`.
    #[must_use]
    pub fn with_sink(mut self, sink: impl EventSink + 'static) -> Self {
        self.allocator = self.allocator.with_sink(sink);
        self
    }

    /// Routes all service and flow events to an already-boxed sink.
    #[must_use]
    pub fn with_boxed_sink(mut self, sink: Box<dyn EventSink>) -> Self {
        self.allocator = self.allocator.with_boxed_sink(sink);
        self
    }

    /// Attaches a metrics handle shared by every request the service
    /// executes (session counters, the live gauge, the queue-depth
    /// histogram, and all flow instruments).
    #[must_use]
    pub fn with_metrics(mut self, metrics: impl Into<Metrics>) -> Self {
        self.allocator = self.allocator.with_metrics(metrics);
        let regions = self.region_map.region_count() as u64;
        self.allocator.metric(|m| m.regions_configured.set(regions));
        self
    }

    /// The platform the service allocates on.
    pub fn arch(&self) -> &ArchitectureGraph {
        &self.arch
    }

    /// The residual platform state (everything claimed by live
    /// sessions).
    pub fn residual(&self) -> &PlatformState {
        &self.residual
    }

    /// The remaining capacity of every tile, tile-index order.
    pub fn residual_capacity(&self) -> Vec<TileCapacity> {
        self.residual.residual_capacities(&self.arch)
    }

    /// The region partition admissions run against (a single region when
    /// regional admission is disabled).
    pub fn region_map(&self) -> &RegionMap {
        &self.region_map
    }

    /// Number of live sessions.
    pub fn live_count(&self) -> usize {
        self.sessions.len()
    }

    /// Cumulative warm-start statistics of the allocator's shared
    /// exploration memo, or `None` when the service runs with
    /// `warm_start: false`.
    pub fn warm_stats(&self) -> Option<crate::warm::WarmStats> {
        self.allocator.cache().warm_stats()
    }

    /// Requests queued but not yet drained.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The current allocation of a live session.
    pub fn allocation(&self, session: SessionId) -> Option<&Allocation> {
        self.sessions.get(&session).map(|s| &s.allocation)
    }

    /// The application of a live session.
    pub fn application(&self, session: SessionId) -> Option<&ApplicationGraph> {
        self.sessions.get(&session).map(|s| &s.app)
    }

    /// Live session ids, admission order.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.sessions.keys().copied().collect()
    }

    /// Flushes the event sink (buffered trace files).
    pub fn flush(&mut self) {
        self.allocator.flush();
    }

    /// Runs the Sec 9 flow for `app` against the residual platform and,
    /// on success, claims the allocation and registers a new session.
    ///
    /// With regional admission enabled ([`ServiceConfig::regions`]
    /// ` > 1`) the flow first runs masked to the request's round-robin
    /// home region and escalates through neighbor regions to the global
    /// fallback (see the [module docs](self#regional-admission)).
    ///
    /// # Errors
    ///
    /// Any [`MapError`] of the flow (the *global* attempt's error when
    /// every escalation step failed); the service state is untouched on
    /// failure.
    pub fn admit(&mut self, app: &ApplicationGraph) -> Result<SessionId, MapError> {
        if !self.policy.is_heuristic() {
            // Solver-backed admission always runs the global flow: the
            // speculative regional fast path is only proven
            // result-identical for the heuristic allocator.
            let backend = self.policy.solver_backend();
            let outcome = backend.solve(&mut self.allocator, app, &self.arch, &self.residual)?;
            return Ok(self.commit_admission(
                app,
                outcome.allocation,
                outcome.stats,
                Some(outcome.report),
            ));
        }
        if self.region_map.region_count() <= 1 {
            let (allocation, stats) = self.allocator.allocate(app, &self.arch, &self.residual)?;
            return Ok(self.commit_admission(app, allocation, stats, None));
        }
        let home = self.next_home();
        self.admit_regional_at(app, home, 0)
            .map(|(session, _)| session)
    }

    /// Advances the round-robin home-region counter by one admit.
    fn next_home(&mut self) -> RegionId {
        let count = self.region_map.region_count() as u64;
        let home = RegionId::from_index((self.region_rr % count) as usize);
        self.region_rr += 1;
        home
    }

    /// The escalation chain for `home`: depth 0 masks to the home region
    /// alone, each further depth adds the next of (at most
    /// [`MAX_ESCALATION_NEIGHBORS`]) sorted neighbor regions, and the
    /// final `None` entry is the unmasked global fallback.
    fn escalation_masks(&self, home: RegionId) -> Vec<Option<Vec<RegionId>>> {
        let neighbors = self.region_map.neighbors(home);
        let steps = neighbors.len().min(MAX_ESCALATION_NEIGHBORS);
        let mut masks = Vec::with_capacity(steps + 2);
        for depth in 0..=steps {
            let mut allowed = vec![home];
            allowed.extend_from_slice(&neighbors[..depth]);
            allowed.sort();
            masks.push(Some(allowed));
        }
        masks.push(None);
        masks
    }

    /// Runs the escalation chain of `home` starting at `start_depth`
    /// and commits the first allocation that succeeds. Returns the new
    /// session and the depth it committed at. `start_depth` exists for
    /// the region-parallel drain: when the speculative depth-0 attempt
    /// already failed against an identical masked state, re-running it
    /// would be pure waste.
    fn admit_regional_at(
        &mut self,
        app: &ApplicationGraph,
        home: RegionId,
        start_depth: usize,
    ) -> Result<(SessionId, usize), MapError> {
        let masks = self.escalation_masks(home);
        let mut last_err = None;
        for (depth, mask) in masks.iter().enumerate().skip(start_depth) {
            let attempt = match mask {
                Some(allowed) => {
                    let masked = self
                        .region_map
                        .masked_state(&self.arch, &self.residual, allowed);
                    self.allocator.allocate(app, &self.arch, &masked)
                }
                None => self.allocator.allocate(app, &self.arch, &self.residual),
            };
            match attempt {
                Ok((allocation, stats)) => {
                    self.record_regional_commit(home, depth);
                    let session = self.commit_admission(app, allocation, stats, None);
                    return Ok((session, depth));
                }
                Err(error) => last_err = Some(error),
            }
        }
        Err(last_err.expect("escalation chain is never empty"))
    }

    /// Records the per-region instruments for one committed regional
    /// admission.
    fn record_regional_commit(&mut self, home: RegionId, depth: usize) {
        self.last_escalation_depth = Some(depth as u64);
        self.allocator.metric(|m| {
            m.region_admits_per_region.add(home.index(), 1);
            m.region_escalation_depth.observe(depth as u64);
            if depth == 0 {
                m.region_admits_local.inc();
            } else {
                m.region_escalations.inc();
            }
        });
    }

    /// Claims a successful allocation on the residual state and
    /// registers the new session — the shared tail of every admission
    /// path (global, regional escalation, region-parallel commit).
    fn commit_admission(
        &mut self,
        app: &ApplicationGraph,
        allocation: Allocation,
        stats: FlowStats,
        report: Option<SolveReport>,
    ) -> SessionId {
        allocation.claim_set().apply(&mut self.residual);
        let session = SessionId::from_raw(self.next_session);
        self.next_session += 1;
        self.sessions.insert(
            session,
            Session {
                app: app.clone(),
                allocation,
                stats,
                report,
            },
        );
        let live = self.sessions.len();
        self.allocator.metric(|m| {
            m.sessions_admitted.inc();
            m.sessions_live.set(live as u64);
        });
        self.allocator.emit(|| FlowEvent::SessionAdmitted {
            session: session.raw(),
            app: app.graph().name().to_string(),
            live,
        });
        session
    }

    /// Removes a live session and releases everything its allocation
    /// claimed, so later admissions see the freed budgets. Returns the
    /// total reclaimed resources, summed over tiles.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] if the session is not live.
    pub fn depart(&mut self, session: SessionId) -> Result<TileUsage, ServiceError> {
        let entry = self
            .sessions
            .remove(&session)
            .ok_or(ServiceError::UnknownSession(session))?;
        let claim = entry.allocation.claim_set();
        claim.revert(&mut self.residual);
        let reclaimed = claim.total();
        let live = self.sessions.len();
        self.allocator.metric(|m| {
            m.sessions_departed.inc();
            m.sessions_live.set(live as u64);
        });
        self.allocator.emit(|| FlowEvent::SessionDeparted {
            session: session.raw(),
            live,
        });
        Ok(reclaimed)
    }

    /// Re-runs the flow for a live session against the residual state
    /// *without* the session's own claim — after departures freed
    /// capacity, the session may find a better (smaller-slice) fit. If
    /// re-allocation fails the old allocation is restored untouched; a
    /// rebind never loses a valid session.
    ///
    /// A rebind's throughput probes differ from the session's previous
    /// allocation mostly in single tile slices, so they warm-start from
    /// the allocator's shared exploration memo (see
    /// [`warm_stats`](Self::warm_stats)) instead of re-exploring the
    /// state space from scratch.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] if the session is not live.
    pub fn rebind(&mut self, session: SessionId) -> Result<RebindOutcome, ServiceError> {
        let entry = self
            .sessions
            .get(&session)
            .ok_or(ServiceError::UnknownSession(session))?;
        let old = entry.allocation.clone();
        let app = entry.app.clone();
        // Rebind always runs the global flow, even under regional
        // admission: the point of a rebind is to exploit capacity freed
        // *anywhere* by departures, so masking it to a region would
        // defeat it.
        old.claim_set().revert(&mut self.residual);
        let attempt = if self.policy.is_heuristic() {
            self.allocator
                .allocate(&app, &self.arch, &self.residual)
                .map(|(allocation, stats)| (allocation, stats, None))
        } else {
            let backend = self.policy.solver_backend();
            backend
                .solve(&mut self.allocator, &app, &self.arch, &self.residual)
                .map(|outcome| (outcome.allocation, outcome.stats, Some(outcome.report)))
        };
        let outcome = match attempt {
            Ok((new_alloc, stats, report)) => {
                new_alloc.claim_set().apply(&mut self.residual);
                let changed = new_alloc.binding != old.binding || new_alloc.slices != old.slices;
                let throughput = new_alloc.guaranteed_throughput();
                let entry = self.sessions.get_mut(&session).expect("session is live");
                entry.allocation = new_alloc;
                entry.stats = stats;
                entry.report = report;
                RebindOutcome {
                    throughput,
                    changed,
                }
            }
            Err(_) => {
                // The freed state can only be *more* permissive than the
                // one the session was admitted on, but the heuristic flow
                // gives no such guarantee — restore the old claim.
                old.claim_set().apply(&mut self.residual);
                RebindOutcome {
                    throughput: old.guaranteed_throughput(),
                    changed: false,
                }
            }
        };
        self.allocator.metric(|m| m.sessions_rebound.inc());
        self.allocator.emit(|| FlowEvent::SessionRebound {
            session: session.raw(),
            changed: outcome.changed,
        });
        Ok(outcome)
    }

    /// A point-in-time view: live sessions (admission order), queue
    /// depth, and total claimed resources.
    pub fn status(&self) -> ServiceStatus {
        ServiceStatus {
            sessions: self
                .sessions
                .iter()
                .map(|(&session, entry)| SessionInfo {
                    session,
                    app: entry.app.graph().name().to_string(),
                    throughput: entry.allocation.guaranteed_throughput(),
                    wheel: entry.allocation.usage.iter().map(|u| u.wheel).sum(),
                })
                .collect(),
            queue_depth: self.queue.len(),
            claimed: self.residual.total_usage(),
        }
    }

    /// Accepts a request into the queue and returns its sequence number
    /// (the id its [`drain`](Self::drain) response will carry).
    pub fn enqueue(&mut self, request: ServiceRequest) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.allocator.metric(|m| m.service_requests.inc());
        let op = request.op();
        self.allocator
            .emit(|| FlowEvent::ServiceRequestQueued { seq, op });
        self.queue.push((seq, request));
        seq
    }

    /// Executes every queued request in batches of at most
    /// `batch_capacity`, in arrival order, and returns `(seq, response)`
    /// pairs in the same order.
    ///
    /// Each batch's admissions are first allocated speculatively in
    /// parallel against a snapshot of the residual state (warming the
    /// shared cache); the commit then re-runs every request
    /// sequentially, so the result is identical to executing the
    /// requests one by one — batching changes wall-clock time, never
    /// outcomes.
    ///
    /// Under regional admission with
    /// [`ServiceConfig::region_parallel_commit`], runs of consecutive
    /// admits are instead allocated *per home region* in parallel and
    /// committed directly without a re-run (see
    /// [`commit_admit_run`](self#regional-admission) in the module
    /// docs); the responses and residual state stay byte-identical to
    /// the sequential commit (conform oracle 7).
    pub fn drain(&mut self) -> Vec<(u64, ServiceResponse)> {
        // The region-parallel commit replays heuristic allocations
        // speculatively; under a solver-backed policy every admit runs
        // the global search inline instead.
        let regional = self.policy.is_heuristic()
            && self.region_map.region_count() > 1
            && self.region_parallel_commit;
        let mut pending = std::mem::take(&mut self.queue);
        let mut responses = Vec::with_capacity(pending.len());
        let mut pending = pending.drain(..);
        loop {
            let batch: Vec<(u64, ServiceRequest)> =
                pending.by_ref().take(self.batch_capacity).collect();
            if batch.is_empty() {
                break;
            }
            let requests = batch.len();
            if regional {
                self.execute_batch_regional(batch, &mut responses);
            } else {
                self.speculate(&batch);
                for (seq, request) in batch {
                    let response = self.execute(request);
                    responses.push((seq, response));
                }
            }
            let batch_no = self.batches_drained;
            self.batches_drained += 1;
            self.allocator
                .metric(|m| m.service_queue_depth.observe(requests as u64));
            self.allocator.emit(|| FlowEvent::ServiceBatchDrained {
                batch: batch_no,
                requests,
            });
        }
        responses
    }

    /// Executes one batch under region-parallel commit: maximal runs of
    /// consecutive admits go through [`commit_admit_run`](Self::commit_admit_run);
    /// every other request (a state barrier — departures and rebinds
    /// mutate arbitrary regions) flushes the current run and executes
    /// inline.
    fn execute_batch_regional(
        &mut self,
        batch: Vec<(u64, ServiceRequest)>,
        responses: &mut Vec<(u64, ServiceResponse)>,
    ) {
        let mut run: Vec<(u64, Box<ApplicationGraph>)> = Vec::new();
        for (seq, request) in batch {
            match request {
                ServiceRequest::Admit { app } => run.push((seq, app)),
                other => {
                    self.commit_admit_run(&mut run, responses);
                    let response = self.execute(other);
                    responses.push((seq, response));
                }
            }
        }
        self.commit_admit_run(&mut run, responses);
    }

    /// Commits a run of consecutive admits region-parallel, in two
    /// phases:
    ///
    /// **Phase A (parallel):** admits are assigned home regions
    /// round-robin and grouped by home; each group allocates in arrival
    /// order against an evolving *masked clone* of the run-start
    /// snapshot (forked caches, absorbed afterwards). A masked
    /// allocation depends only on its home region's residual share, so
    /// the groups are independent.
    ///
    /// **Phase B (sequential, arrival order):** a phase-A success whose
    /// home region no earlier inline commit dirtied is committed
    /// *directly* — its claim footprint provably lies inside the home
    /// region, and the home region's evolution was replayed exactly by
    /// phase A. A phase-A failure escalates inline from depth 1 (the
    /// depth-0 attempt would fail against the identical masked state).
    /// Admits whose home region was dirtied recompute inline from depth
    /// 0. Every inline commit marks its claim-footprint regions dirty.
    ///
    /// The result — responses, session ids, residual state — is
    /// byte-identical to executing the run's admits one by one through
    /// [`admit`](Self::admit).
    fn commit_admit_run(
        &mut self,
        run: &mut Vec<(u64, Box<ApplicationGraph>)>,
        responses: &mut Vec<(u64, ServiceResponse)>,
    ) {
        if run.is_empty() {
            return;
        }
        if run.len() == 1 {
            let (seq, app) = run.pop().expect("run has one admit");
            let response = self.execute(ServiceRequest::Admit { app });
            responses.push((seq, response));
            return;
        }
        let run_len = run.len();
        let region_count = self.region_map.region_count();
        let homes: Vec<RegionId> = (0..run_len as u64)
            .map(|k| RegionId::from_index(((self.region_rr + k) % region_count as u64) as usize))
            .collect();
        let mut by_region: Vec<Vec<usize>> = vec![Vec::new(); region_count];
        for (k, home) in homes.iter().enumerate() {
            by_region[home.index()].push(k);
        }
        // Phase A: per-region speculative allocation against masked
        // clones of the snapshot, in parallel across regions.
        let snapshot = self.residual.clone();
        let config = *self.allocator.config();
        let results = {
            let arch = &self.arch;
            let map = &self.region_map;
            let cache = self.allocator.cache();
            let run = &*run;
            let by_region = &by_region;
            let regions: Vec<usize> = (0..region_count)
                .filter(|&r| !by_region[r].is_empty())
                .collect();
            maybe_par_map(true, &regions, move |&r| {
                let allowed = [RegionId::from_index(r)];
                let mut masked = map.masked_state(arch, &snapshot, &allowed);
                let mut speculative = Allocator::from_config(config).with_cache(cache.fork());
                let mut outs = Vec::with_capacity(by_region[r].len());
                for &k in &by_region[r] {
                    let result = speculative.allocate(&run[k].1, arch, &masked);
                    if let Ok((alloc, _)) = &result {
                        alloc.claim_set().apply(&mut masked);
                    }
                    outs.push((k, result));
                }
                (outs, speculative.into_cache())
            })
        };
        let mut phase_a: Vec<Option<Result<(Allocation, FlowStats), MapError>>> =
            (0..run_len).map(|_| None).collect();
        for (outs, fork) in results {
            self.allocator.cache_mut().absorb(fork);
            for (k, result) in outs {
                phase_a[k] = Some(result);
            }
        }
        // Phase B: sequential commit in arrival order.
        let mut dirty = vec![false; region_count];
        for (k, (seq, app)) in run.drain(..).enumerate() {
            let home = homes[k];
            let name = app.graph().name().to_string();
            let speculative = phase_a[k].take().expect("phase A covered every admit");
            let response = if !dirty[home.index()] {
                match speculative {
                    Ok((allocation, stats)) => {
                        debug_assert!(
                            allocation.claim_set().within(&self.region_map, &[home]),
                            "masked allocation escaped its home region"
                        );
                        let throughput = allocation.guaranteed_throughput();
                        let wheel = allocation.usage.iter().map(|u| u.wheel).sum();
                        self.record_regional_commit(home, 0);
                        self.allocator
                            .metric(|m| m.region_commits_speculative.inc());
                        let session = self.commit_admission(&app, allocation, stats, None);
                        ServiceResponse::Admitted {
                            session,
                            app: name,
                            throughput,
                            wheel,
                            report: None,
                        }
                    }
                    Err(_) => self.admit_inline(&app, name, home, 1, &mut dirty),
                }
            } else {
                self.admit_inline(&app, name, home, 0, &mut dirty)
            };
            responses.push((seq, response));
        }
        self.region_rr += run_len as u64;
    }

    /// One inline (non-speculative) admit of the region-parallel commit:
    /// runs the escalation chain from `start_depth` against the true
    /// residual state and dirties the committed claim's footprint
    /// regions.
    fn admit_inline(
        &mut self,
        app: &ApplicationGraph,
        name: String,
        home: RegionId,
        start_depth: usize,
        dirty: &mut [bool],
    ) -> ServiceResponse {
        self.allocator.metric(|m| m.region_commits_inline.inc());
        match self.admit_regional_at(app, home, start_depth) {
            Ok((session, _)) => {
                let allocation = &self.sessions[&session].allocation;
                for region in allocation.claim_set().region_footprint(&self.region_map) {
                    dirty[region.index()] = true;
                }
                ServiceResponse::Admitted {
                    session,
                    app: name,
                    throughput: allocation.guaranteed_throughput(),
                    wheel: allocation.usage.iter().map(|u| u.wheel).sum(),
                    report: None,
                }
            }
            Err(error) => ServiceResponse::Rejected { app: name, error },
        }
    }

    /// Speculatively allocates the batch's admissions in parallel
    /// against the current residual state, through forks of the shared
    /// cache that are absorbed back before the sequential commit. The
    /// first admission of the batch then replays entirely from the
    /// cache; later ones do whenever no earlier commit changed the
    /// state. Pure cache-warming: results are discarded.
    fn speculate(&mut self, batch: &[(u64, ServiceRequest)]) {
        // Speculation warms the cache with *heuristic* runs; under a
        // solver-backed policy the exact search explores far past the
        // greedy trajectory, so the warm-up is not worth the work.
        if !self.parallel_speculation || !self.policy.is_heuristic() {
            return;
        }
        let admits: Vec<&ApplicationGraph> = batch
            .iter()
            .filter_map(|(_, r)| match r {
                ServiceRequest::Admit { app } => Some(app.as_ref()),
                _ => None,
            })
            .collect();
        if admits.len() < 2 {
            return;
        }
        let config = *self.allocator.config();
        let snapshot = self.residual.clone();
        let forks = {
            let arch = &self.arch;
            let cache = self.allocator.cache();
            maybe_par_map(true, &admits, |app| {
                let mut speculative = Allocator::from_config(config).with_cache(cache.fork());
                let _ = speculative.allocate(app, arch, &snapshot);
                speculative.into_cache()
            })
        };
        for fork in forks {
            self.allocator.cache_mut().absorb(fork);
        }
    }

    /// Applies one request to the service state immediately, bypassing
    /// the queue — the entry point of the network front-end, whose
    /// single service thread executes requests in arrival order.
    pub fn execute_request(&mut self, request: ServiceRequest) -> ServiceResponse {
        self.execute(request)
    }

    /// Applies one request and, when the response reports a committed
    /// mutation ([`ServiceResponse::commits`]), appends the request to
    /// `log` — the hook every networked mutation goes through, so that
    /// replaying the log through a fresh sequential service reproduces
    /// the residual [`PlatformState`] byte-for-byte.
    pub fn execute_logged(
        &mut self,
        request: ServiceRequest,
        log: &mut CommitLog,
    ) -> ServiceResponse {
        let logged = request.clone();
        let response = self.execute(request);
        if response.commits() {
            log.append(&logged);
            self.allocator.metric(|m| m.net_commits_logged.inc());
        }
        response
    }

    /// [`execute_logged`](Self::execute_logged) under a request trace:
    /// installs an event tap on the allocator for the duration of the
    /// request, then drains the captured flow events and the
    /// escalation-depth / warm-cache-hit annotations into `trace`.
    ///
    /// Tracing is observational only — the response, the residual
    /// state, and the commit log are byte-identical with and without
    /// it (the `trace_reconciliation` conformance oracle pins the
    /// event trail against the metrics registry on top of that).
    pub fn execute_traced(
        &mut self,
        request: ServiceRequest,
        log: &mut CommitLog,
        trace: &mut crate::trace::RequestTrace,
    ) -> ServiceResponse {
        self.last_escalation_depth = None;
        let tap = RecordingSink::new();
        self.allocator.set_event_tap(Some(tap.clone()));
        let response = self.execute_logged(request, log);
        self.allocator.set_event_tap(None);
        trace.set_escalation_depth(self.last_escalation_depth);
        let committed_session = match &response {
            ServiceResponse::Admitted { session, .. }
            | ServiceResponse::Rebound { session, .. } => Some(*session),
            _ => None,
        };
        if let Some(entry) = committed_session.and_then(|s| self.sessions.get(&s)) {
            trace.set_warm_cache_hit(entry.stats.cache_hits > 0);
        }
        trace.attach_events(tap.take());
        response
    }

    /// The [`PlatformState::digest`] of the residual state — the
    /// byte-equality witness the commit-log replay compares against.
    pub fn residual_digest(&self) -> String {
        self.residual.digest()
    }

    /// Applies one request to the service state.
    fn execute(&mut self, request: ServiceRequest) -> ServiceResponse {
        match request {
            ServiceRequest::Admit { app } => {
                let name = app.graph().name().to_string();
                match self.admit(&app) {
                    Ok(session) => {
                        let entry = &self.sessions[&session];
                        let allocation = &entry.allocation;
                        ServiceResponse::Admitted {
                            session,
                            app: name,
                            throughput: allocation.guaranteed_throughput(),
                            wheel: allocation.usage.iter().map(|u| u.wheel).sum(),
                            report: entry.report,
                        }
                    }
                    Err(error) => ServiceResponse::Rejected { app: name, error },
                }
            }
            ServiceRequest::Depart { session } => match self.depart(session) {
                Ok(reclaimed) => ServiceResponse::Departed { session, reclaimed },
                Err(error) => ServiceResponse::Failed {
                    op: "depart",
                    error,
                },
            },
            ServiceRequest::Rebind { session } => match self.rebind(session) {
                Ok(outcome) => ServiceResponse::Rebound { session, outcome },
                Err(error) => ServiceResponse::Failed {
                    op: "rebind",
                    error,
                },
            },
            ServiceRequest::Status => ServiceResponse::Status(self.status()),
        }
    }
}

/// Why a request line could not be parsed into a [`ServiceRequest`].
///
/// One shared error type covers every ingress path — the CLI's
/// `serve --input` batch files, the network front-end's live framing,
/// and commit-log replay — so malformed input is reported identically
/// everywhere: the 1-based line number (when the source has one), the
/// offending field, and what was wrong with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestParseError {
    /// 1-based line number in the source file or stream, if known.
    pub line: Option<usize>,
    /// The JSON field the error is about (`"op"`, `"session"`, …), if
    /// the error is attributable to one.
    pub field: Option<&'static str>,
    /// What was wrong.
    pub detail: String,
}

impl RequestParseError {
    /// An error about one field of the request object.
    pub fn field(field: &'static str, detail: impl Into<String>) -> Self {
        RequestParseError {
            line: None,
            field: Some(field),
            detail: detail.into(),
        }
    }

    /// An error about the line as a whole (framing, not a field).
    pub fn malformed(detail: impl Into<String>) -> Self {
        RequestParseError {
            line: None,
            field: None,
            detail: detail.into(),
        }
    }

    /// Attaches the 1-based source line number.
    #[must_use]
    pub fn at_line(mut self, line: usize) -> Self {
        self.line = Some(line);
        self
    }

    /// Renders the error as the network front-end's typed response line:
    /// `{"id":id,"ok":false,"kind":"parse",...}` with the field and
    /// detail carried along.
    pub fn to_json_line(&self, id: u64) -> String {
        use std::fmt::Write as _;
        let mut s = format!("{{\"id\":{id},\"ok\":false,\"kind\":\"parse\"");
        if let Some(field) = self.field {
            let _ = write!(s, ",\"field\":\"{field}\"");
        }
        let _ = write!(s, ",\"detail\":\"{}\"}}", json_escape(&self.detail));
        s
    }
}

impl std::fmt::Display for RequestParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(line) = self.line {
            write!(f, "request line {line}: ")?;
        }
        if let Some(field) = self.field {
            write!(f, "field \"{field}\": ")?;
        }
        write!(f, "{}", self.detail)
    }
}

impl std::error::Error for RequestParseError {}

/// One decoded value of a flat request object.
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Str(String),
    Num(u64),
    Other,
}

/// Scans a single-line JSON object into `(key, value)` pairs.
///
/// A real tokenizer rather than substring search: keys appearing
/// *inside* string values (an embedded application text mentioning
/// `"session"`) must never be mistaken for fields. Nested objects and
/// arrays are skipped structurally and reported as [`JsonValue::Other`].
fn scan_object(line: &str) -> Result<Vec<(String, JsonValue)>, RequestParseError> {
    let bytes = line.as_bytes();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && bytes[*i].is_ascii_whitespace() {
            *i += 1;
        }
    };
    skip_ws(&mut i);
    if i >= bytes.len() || bytes[i] != b'{' {
        return Err(RequestParseError::malformed("not a JSON object"));
    }
    i += 1;
    let mut fields = Vec::new();
    loop {
        skip_ws(&mut i);
        if i < bytes.len() && bytes[i] == b'}' {
            return Ok(fields);
        }
        let (key, after) = scan_string(line, i)?;
        i = after;
        skip_ws(&mut i);
        if i >= bytes.len() || bytes[i] != b':' {
            return Err(RequestParseError::malformed(format!(
                "missing `:` after key \"{key}\""
            )));
        }
        i += 1;
        skip_ws(&mut i);
        if i >= bytes.len() {
            return Err(RequestParseError::malformed("truncated object"));
        }
        match bytes[i] {
            b'"' => {
                let (value, after) = scan_string(line, i)?;
                i = after;
                fields.push((key, JsonValue::Str(value)));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let number: u64 = line[start..i]
                    .parse()
                    .map_err(|_| RequestParseError::malformed("number out of range"))?;
                fields.push((key, JsonValue::Num(number)));
            }
            _ => {
                i = skip_value(line, i)?;
                fields.push((key, JsonValue::Other));
            }
        }
        skip_ws(&mut i);
        if i < bytes.len() && bytes[i] == b',' {
            i += 1;
            continue;
        }
        if i < bytes.len() && bytes[i] == b'}' {
            return Ok(fields);
        }
        return Err(RequestParseError::malformed("missing `,` or `}`"));
    }
}

/// Decodes the JSON string starting at byte `at` (which must be `"`),
/// returning the decoded value and the index just past the closing
/// quote.
fn scan_string(line: &str, at: usize) -> Result<(String, usize), RequestParseError> {
    let bytes = line.as_bytes();
    if at >= bytes.len() || bytes[at] != b'"' {
        return Err(RequestParseError::malformed("expected a string"));
    }
    let mut out = String::new();
    let mut chars = line[at + 1..].char_indices();
    while let Some((off, c)) = chars.next() {
        match c {
            '"' => return Ok((out, at + 1 + off + 1)),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars
                            .next()
                            .ok_or_else(|| RequestParseError::malformed("truncated \\u escape"))?;
                        code = code * 16
                            + h.to_digit(16).ok_or_else(|| {
                                RequestParseError::malformed("bad \\u escape digit")
                            })?;
                    }
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                other => {
                    return Err(RequestParseError::malformed(format!(
                        "unsupported escape {:?}",
                        other.map(|(_, c)| c)
                    )))
                }
            },
            c => out.push(c),
        }
    }
    Err(RequestParseError::malformed("unterminated string"))
}

/// Skips one non-string, non-number JSON value (literal, array, or
/// object) starting at `at`, returning the index just past it.
fn skip_value(line: &str, at: usize) -> Result<usize, RequestParseError> {
    let bytes = line.as_bytes();
    match bytes[at] {
        b'{' | b'[' => {
            let mut depth = 0usize;
            let mut i = at;
            while i < bytes.len() {
                match bytes[i] {
                    b'"' => {
                        let (_, after) = scan_string(line, i)?;
                        i = after;
                        continue;
                    }
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => {
                        depth -= 1;
                        if depth == 0 {
                            return Ok(i + 1);
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            Err(RequestParseError::malformed("unbalanced brackets"))
        }
        _ => {
            let mut i = at;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || matches!(bytes[i], b'.' | b'-' | b'+'))
            {
                i += 1;
            }
            if i == at {
                return Err(RequestParseError::malformed("unparseable value"));
            }
            Ok(i)
        }
    }
}

/// Parses one wire/commit-log/batch-file request line into a
/// [`ServiceRequest`].
///
/// Accepted shapes (flat JSON objects; unknown fields like the commit
/// log's `"seq"` are ignored):
///
/// * `{"op":"admit","app":"<escaped .sdfa text>"}` — inline application;
/// * `{"op":"admit","example":"paper"}` — a
///   [bundled](sdfrs_appmodel::apps::bundled) example;
/// * `{"op":"admit","app_file":"x.sdfa"}` — read from disk;
/// * `{"op":"depart","session":1}` / `{"op":"rebind","session":2}`;
/// * `{"op":"status"}`.
///
/// # Errors
///
/// A [`RequestParseError`] naming the offending field; attach the
/// source line number with [`RequestParseError::at_line`].
pub fn parse_request_line(line: &str) -> Result<ServiceRequest, RequestParseError> {
    let fields = scan_object(line)?;
    let str_field = |name: &str| {
        fields.iter().find_map(|(k, v)| match v {
            JsonValue::Str(s) if k == name => Some(s.clone()),
            _ => None,
        })
    };
    let num_field = |name: &'static str| -> Result<u64, RequestParseError> {
        fields
            .iter()
            .find_map(|(k, v)| match v {
                JsonValue::Num(n) if k == name => Some(*n),
                _ => None,
            })
            .ok_or_else(|| RequestParseError::field(name, format!("needs an unsigned \"{name}\"")))
    };
    let op = str_field("op").ok_or_else(|| RequestParseError::field("op", "missing field"))?;
    match op.as_str() {
        "admit" => {
            let app = if let Some(text) = str_field("app") {
                sdfrs_appmodel::textio::parse_application(&text)
                    .map_err(|e| RequestParseError::field("app", e.to_string()))?
            } else if let Some(name) = str_field("example") {
                sdfrs_appmodel::apps::bundled(&name).ok_or_else(|| {
                    RequestParseError::field("example", format!("unknown example {name:?}"))
                })?
            } else if let Some(path) = str_field("app_file") {
                let text = std::fs::read_to_string(&path).map_err(|e| {
                    RequestParseError::field("app_file", format!("cannot read {path}: {e}"))
                })?;
                sdfrs_appmodel::textio::parse_application(&text)
                    .map_err(|e| RequestParseError::field("app_file", format!("{path}: {e}")))?
            } else {
                return Err(RequestParseError::field(
                    "app",
                    "admit needs \"app\", \"example\" or \"app_file\"",
                ));
            };
            Ok(ServiceRequest::Admit { app: Box::new(app) })
        }
        "depart" => Ok(ServiceRequest::Depart {
            session: SessionId::from_raw(num_field("session")?),
        }),
        "rebind" => Ok(ServiceRequest::Rebind {
            session: SessionId::from_raw(num_field("session")?),
        }),
        "status" => Ok(ServiceRequest::Status),
        other => Err(RequestParseError::field(
            "op",
            format!("unknown op {other:?} (admit|depart|rebind|status)"),
        )),
    }
}

/// Pre-parse metadata of one wire request line: the optional
/// client-supplied trace id and the introspection selectors. All
/// fields are optional and unknown to [`parse_request_line`], which
/// ignores them — metadata never changes what a request *does*.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestMeta {
    /// The top-level `"trace"` string field, verbatim.
    pub trace: Option<String>,
    /// The top-level `"kind"` string field (`"introspect"`).
    pub kind: Option<String>,
    /// The top-level `"what"` string field (introspection target).
    pub what: Option<String>,
}

/// Scans the trace / introspection metadata off a request line without
/// fully parsing it. Runs the same tokenizer as [`parse_request_line`]
/// (safe on untrusted input); a line that does not scan as a JSON
/// object yields an all-`None` meta, and the parse error is reported by
/// the request parse that follows.
#[must_use]
pub fn peek_request_meta(line: &str) -> RequestMeta {
    let Ok(fields) = scan_object(line) else {
        return RequestMeta::default();
    };
    let get = |name: &str| {
        fields.iter().find_map(|(key, value)| match value {
            JsonValue::Str(s) if key == name => Some(s.clone()),
            _ => None,
        })
    };
    RequestMeta {
        trace: get("trace"),
        kind: get("kind"),
        what: get("what"),
    }
}

/// The deterministic commit log of a service: one
/// [`ServiceRequest::to_json_line`] record per *committed* mutation
/// (admits that admitted, departs that departed, rebinds that answered
/// — never rejections, status probes, shed or expired requests), with
/// monotonically increasing `"seq"` numbers in commit order.
///
/// Replaying the records in order through a fresh sequential
/// [`AllocationService`] ([`replay_commit_log`]) reproduces the residual
/// [`PlatformState`] byte-for-byte: session ids are assigned in commit
/// order on both sides, and every allocation is a deterministic function
/// of the evolving residual state.
#[derive(Default)]
pub struct CommitLog {
    lines: Vec<String>,
    writer: Option<Box<dyn std::io::Write + Send>>,
}

impl std::fmt::Debug for CommitLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitLog")
            .field("records", &self.lines.len())
            .field("streaming", &self.writer.is_some())
            .finish()
    }
}

impl CommitLog {
    /// An empty in-memory log.
    pub fn new() -> Self {
        CommitLog::default()
    }

    /// An empty log that additionally streams every record to `writer`
    /// (line-buffered: one `write_all` + newline per record).
    pub fn with_writer(writer: impl std::io::Write + Send + 'static) -> Self {
        CommitLog {
            lines: Vec::new(),
            writer: Some(Box::new(writer)),
        }
    }

    /// Appends one committed request, returning its sequence number.
    pub fn append(&mut self, request: &ServiceRequest) -> u64 {
        let seq = self.lines.len() as u64;
        let line = request.to_json_line(seq);
        if let Some(w) = &mut self.writer {
            // A failed log write must not corrupt the in-memory record;
            // the server surfaces stream health in its final stats line.
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
        self.lines.push(line);
        seq
    }

    /// Records appended so far, commit order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// `true` when nothing committed yet.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

/// Replays commit-log `lines` through a fresh sequential
/// [`AllocationService`] over `arch` and returns the resulting service
/// (compare [`AllocationService::residual_digest`] against the live
/// run's). Empty lines are skipped; region and batching configuration
/// are irrelevant to the replay result and run at their defaults.
///
/// # Errors
///
/// A [`RequestParseError`] (with the 1-based line number attached) when
/// a record does not parse.
pub fn replay_commit_log<'a>(
    arch: &ArchitectureGraph,
    config: ServiceConfig,
    lines: impl IntoIterator<Item = &'a str>,
) -> Result<AllocationService, RequestParseError> {
    let mut service = AllocationService::from_config(arch, config);
    for (no, line) in lines.into_iter().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let request = parse_request_line(line).map_err(|e| e.at_line(no + 1))?;
        service.execute_request(request);
    }
    Ok(service)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfrs_appmodel::apps::{example_platform, paper_example};

    fn service() -> AllocationService {
        AllocationService::new(&example_platform())
    }

    #[test]
    fn admit_claims_and_depart_releases() {
        let mut s = service();
        let empty = s.residual().clone();
        let id = s.admit(&paper_example()).unwrap();
        assert_ne!(s.residual(), &empty);
        assert_eq!(s.live_count(), 1);
        let reclaimed = s.depart(id).unwrap();
        assert!(reclaimed.wheel > 0);
        assert_eq!(s.residual(), &empty, "depart must release the exact claim");
        assert_eq!(s.live_count(), 0);
    }

    #[test]
    fn session_ids_are_never_reused() {
        let mut s = service();
        let a = s.admit(&paper_example()).unwrap();
        s.depart(a).unwrap();
        let b = s.admit(&paper_example()).unwrap();
        assert!(b > a);
        assert_eq!(
            s.depart(a),
            Err(ServiceError::UnknownSession(a)),
            "a departed ticket must stay invalid"
        );
    }

    #[test]
    fn drain_matches_direct_calls() {
        let app = paper_example();
        let mut online = service();
        let mut batched = AllocationService::from_config(
            &example_platform(),
            ServiceConfig {
                batch_capacity: 8,
                ..ServiceConfig::default()
            },
        );
        let requests = [
            ServiceRequest::Admit {
                app: Box::new(app.clone()),
            },
            ServiceRequest::Admit {
                app: Box::new(app.clone()),
            },
            ServiceRequest::Depart {
                session: SessionId::from_raw(2),
            },
            ServiceRequest::Status,
        ];
        let mut online_responses = Vec::new();
        for r in &requests {
            let seq = online.enqueue(r.clone());
            let mut drained = online.drain();
            assert_eq!(drained.len(), 1);
            let (got_seq, response) = drained.pop().unwrap();
            assert_eq!(got_seq, seq);
            online_responses.push(response);
        }
        for r in &requests {
            batched.enqueue(r.clone());
        }
        let batched_responses: Vec<ServiceResponse> =
            batched.drain().into_iter().map(|(_, r)| r).collect();
        assert_eq!(online_responses, batched_responses);
        assert_eq!(online.residual(), batched.residual());
    }

    #[test]
    fn status_reports_sessions_in_admission_order() {
        let mut s = service();
        let a = s.admit(&paper_example()).unwrap();
        let b = s.admit(&paper_example()).unwrap();
        let status = s.status();
        assert_eq!(status.sessions.len(), 2);
        assert_eq!(status.sessions[0].session, a);
        assert_eq!(status.sessions[1].session, b);
        assert_eq!(status.claimed, s.residual().total_usage());
        assert_eq!(status.queue_depth, 0);
    }

    #[test]
    fn responses_render_as_single_json_lines() {
        let mut s = service();
        for request in [
            ServiceRequest::Admit {
                app: Box::new(paper_example()),
            },
            ServiceRequest::Status,
            ServiceRequest::Depart {
                session: SessionId::from_raw(99),
            },
        ] {
            s.enqueue(request);
        }
        for (seq, response) in s.drain() {
            let line = response.to_json_line(seq);
            assert!(
                line.starts_with(&format!("{{\"id\":{seq},\"op\":\"")),
                "{line}"
            );
            assert!(line.ends_with('}'), "{line}");
            assert!(!line.contains('\n'), "{line}");
        }
    }
}
