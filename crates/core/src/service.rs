//! The online admission service: long-lived multi-tenant allocation
//! sessions over one persistent platform.
//!
//! The batch protocols ([`multi_app`](crate::multi_app),
//! [`admission`](crate::admission)) run the Sec 10.1 flow once and stop;
//! a platform serving sustained traffic also needs applications to
//! *depart* — returning their tile budgets to the pool — and concurrent
//! requests to be drained against shared state. [`AllocationService`]
//! owns exactly that state:
//!
//! * the **residual** [`PlatformState`]: what every earlier admission
//!   claimed and every departure released;
//! * a registry of live **sessions**, each holding the application and
//!   the [`Allocation`] it was admitted with, keyed by a never-reused
//!   [`SessionId`];
//! * one [`Allocator`] — and thus one
//!   [`ThroughputCache`](crate::ThroughputCache), event sink and metrics
//!   registry — shared by every request the service ever executes.
//!
//! Requests are either applied directly ([`admit`](AllocationService::admit),
//! [`depart`](AllocationService::depart),
//! [`rebind`](AllocationService::rebind),
//! [`status`](AllocationService::status)) or queued with
//! [`enqueue`](AllocationService::enqueue) and executed by
//! [`drain`](AllocationService::drain) in deterministic batches: each
//! batch first allocates its admissions *speculatively in parallel*
//! against a snapshot of the residual state (cache-warming forks of the
//! shared [`ThroughputCache`](crate::ThroughputCache), absorbed before
//! commit), then commits every request sequentially in arrival order.
//! The commit re-runs each admission against the true residual state —
//! answered from the warmed cache when no earlier commit changed the
//! state — so a drained batch is *bit-identical* to processing the same
//! requests one by one. The conformance harness pins exactly that
//! equivalence (oracle 6).
//!
//! # Example
//!
//! ```
//! use sdfrs_appmodel::apps::{example_platform, paper_example};
//! use sdfrs_core::service::AllocationService;
//!
//! let arch = example_platform();
//! let mut service = AllocationService::new(&arch);
//! let first = service.admit(&paper_example()).unwrap();
//! let second = service.admit(&paper_example()).unwrap();
//! service.depart(first).unwrap();
//! assert_eq!(service.live_count(), 1);
//! // The departed budgets are available again.
//! let third = service.admit(&paper_example()).unwrap();
//! assert!(third > second);
//! ```

use std::collections::BTreeMap;

use sdfrs_appmodel::ApplicationGraph;
use sdfrs_fastutil::par::maybe_par_map;
use sdfrs_platform::{ArchitectureGraph, PlatformState, TileUsage};
use sdfrs_sdf::Rational;

use crate::allocator::Allocator;
use crate::error::MapError;
use crate::events::{json_escape, EventSink, FlowEvent};
use crate::flow::{Allocation, FlowConfig, FlowStats};
use crate::ids::SessionId;
use crate::metrics::Metrics;
use crate::resources::{platform_residual, TileCapacity};

/// Configuration of an [`AllocationService`].
///
/// Marked `#[non_exhaustive]`: build one with [`ServiceConfig::default`]
/// and adjust fields from there.
#[non_exhaustive]
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// The flow configuration every admission runs under.
    pub flow: FlowConfig,
    /// Queued requests executed per batch by [`drain`]
    /// ([`AllocationService::drain`]); clamped to at least 1.
    ///
    /// [`drain`]: AllocationService::drain
    pub batch_capacity: usize,
    /// Whether a batch's admissions are speculatively allocated in
    /// parallel before the sequential commit. Never changes results —
    /// only how warm the shared cache is when the commit runs.
    pub parallel_speculation: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            flow: FlowConfig::default(),
            batch_capacity: 16,
            parallel_speculation: true,
        }
    }
}

/// A request to the service, as queued by
/// [`enqueue`](AllocationService::enqueue).
///
/// Marked `#[non_exhaustive]`: a long-lived service will grow more
/// operations (constraint renegotiation, priority eviction).
#[non_exhaustive]
#[derive(Debug, Clone)]
pub enum ServiceRequest {
    /// Admit an application as a new session.
    Admit {
        /// The application to admit (its throughput constraint rides
        /// along inside the graph).
        app: Box<ApplicationGraph>,
    },
    /// Depart a live session, reclaiming its resources.
    Depart {
        /// The session to depart.
        session: SessionId,
    },
    /// Re-allocate a live session against the current residual state.
    Rebind {
        /// The session to rebind.
        session: SessionId,
    },
    /// Report the live sessions and the residual platform.
    Status,
}

impl ServiceRequest {
    /// Stable operation name used in events and JSONL responses.
    pub fn op(&self) -> &'static str {
        match self {
            ServiceRequest::Admit { .. } => "admit",
            ServiceRequest::Depart { .. } => "depart",
            ServiceRequest::Rebind { .. } => "rebind",
            ServiceRequest::Status => "status",
        }
    }
}

/// Why a session-addressed request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The session id is not live (never existed, or already departed —
    /// ids are never reused, so the two are indistinguishable on
    /// purpose).
    UnknownSession(SessionId),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownSession(id) => write!(f, "unknown session {id}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Outcome of a [`rebind`](AllocationService::rebind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebindOutcome {
    /// Guaranteed throughput after the rebind.
    pub throughput: Rational,
    /// Whether the new allocation differs from the old one (binding or
    /// slices moved). `false` also when re-allocation failed and the old
    /// allocation was kept — a rebind never loses a valid session.
    pub changed: bool,
}

/// One live session, as reported by
/// [`status`](AllocationService::status).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionInfo {
    /// The session's ticket.
    pub session: SessionId,
    /// Application name.
    pub app: String,
    /// Guaranteed throughput of the current allocation.
    pub throughput: Rational,
    /// Total TDMA wheel time the allocation claims across all tiles.
    pub wheel: u64,
}

/// A point-in-time view of the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStatus {
    /// Every live session, admission order (= ascending session id).
    pub sessions: Vec<SessionInfo>,
    /// Requests queued but not yet drained.
    pub queue_depth: usize,
    /// Total resources claimed across all tiles.
    pub claimed: TileUsage,
}

/// The response to one [`ServiceRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceResponse {
    /// An admission succeeded.
    Admitted {
        /// The new session's ticket.
        session: SessionId,
        /// Application name.
        app: String,
        /// Guaranteed throughput of the allocation.
        throughput: Rational,
        /// Total wheel time claimed across all tiles.
        wheel: u64,
    },
    /// An admission failed; no session was created.
    Rejected {
        /// Application name.
        app: String,
        /// Why the flow found no valid allocation.
        error: MapError,
    },
    /// A departure succeeded.
    Departed {
        /// The departed session.
        session: SessionId,
        /// Total resources returned to the pool, summed over tiles.
        reclaimed: TileUsage,
    },
    /// A rebind completed (possibly keeping the old allocation).
    Rebound {
        /// The rebound session.
        session: SessionId,
        /// The rebind outcome.
        outcome: RebindOutcome,
    },
    /// A status report.
    Status(ServiceStatus),
    /// A session-addressed request failed.
    Failed {
        /// The operation that failed.
        op: &'static str,
        /// Why.
        error: ServiceError,
    },
}

impl ServiceResponse {
    /// Renders the response as one deterministic JSON object (no
    /// timestamps, no timing data), tagged with the request's sequence
    /// number — the line format of the CLI `serve` mode.
    pub fn to_json_line(&self, seq: u64) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"id\":{seq}");
        match self {
            ServiceResponse::Admitted {
                session,
                app,
                throughput,
                wheel,
            } => {
                let _ = write!(
                    s,
                    ",\"op\":\"admit\",\"ok\":true,\"session\":{},\"app\":\"{}\",\"throughput\":\"{throughput}\",\"wheel\":{wheel}",
                    session.raw(),
                    json_escape(app)
                );
            }
            ServiceResponse::Rejected { app, error } => {
                let _ = write!(
                    s,
                    ",\"op\":\"admit\",\"ok\":false,\"app\":\"{}\",\"error\":\"{}\"",
                    json_escape(app),
                    json_escape(&error.to_string())
                );
            }
            ServiceResponse::Departed { session, reclaimed } => {
                let _ = write!(
                    s,
                    ",\"op\":\"depart\",\"ok\":true,\"session\":{},\"reclaimed_wheel\":{},\"reclaimed_memory\":{},\"reclaimed_connections\":{}",
                    session.raw(),
                    reclaimed.wheel,
                    reclaimed.memory,
                    reclaimed.connections
                );
            }
            ServiceResponse::Rebound { session, outcome } => {
                let _ = write!(
                    s,
                    ",\"op\":\"rebind\",\"ok\":true,\"session\":{},\"throughput\":\"{}\",\"changed\":{}",
                    session.raw(),
                    outcome.throughput,
                    outcome.changed
                );
            }
            ServiceResponse::Status(status) => {
                let _ = write!(
                    s,
                    ",\"op\":\"status\",\"ok\":true,\"live\":{},\"queue_depth\":{},\"claimed_wheel\":{},\"sessions\":[",
                    status.sessions.len(),
                    status.queue_depth,
                    status.claimed.wheel
                );
                for (i, info) in status.sessions.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(
                        s,
                        "{{\"session\":{},\"app\":\"{}\",\"throughput\":\"{}\",\"wheel\":{}}}",
                        info.session.raw(),
                        json_escape(&info.app),
                        info.throughput,
                        info.wheel
                    );
                }
                s.push(']');
            }
            ServiceResponse::Failed { op, error } => {
                let _ = write!(
                    s,
                    ",\"op\":\"{op}\",\"ok\":false,\"error\":\"{}\"",
                    json_escape(&error.to_string())
                );
            }
        }
        s.push('}');
        s
    }
}

/// One live session.
#[derive(Debug, Clone)]
struct Session {
    app: ApplicationGraph,
    allocation: Allocation,
    #[allow(dead_code)]
    stats: FlowStats,
}

/// The long-lived admission daemon: persistent residual platform state,
/// a live-session registry, and a queue drained in deterministic
/// batches. See the [module docs](self).
pub struct AllocationService {
    arch: ArchitectureGraph,
    allocator: Allocator,
    residual: PlatformState,
    sessions: BTreeMap<SessionId, Session>,
    next_session: u64,
    queue: Vec<(u64, ServiceRequest)>,
    next_seq: u64,
    batches_drained: usize,
    batch_capacity: usize,
    parallel_speculation: bool,
}

impl std::fmt::Debug for AllocationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AllocationService")
            .field("live", &self.sessions.len())
            .field("queue_depth", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl AllocationService {
    /// A service over `arch` with the default [`ServiceConfig`]: empty
    /// platform, no sessions, empty queue.
    pub fn new(arch: &ArchitectureGraph) -> Self {
        Self::from_config(arch, ServiceConfig::default())
    }

    /// A service over `arch` with the given configuration.
    pub fn from_config(arch: &ArchitectureGraph, config: ServiceConfig) -> Self {
        AllocationService {
            arch: arch.clone(),
            allocator: Allocator::from_config(config.flow),
            residual: PlatformState::new(arch),
            sessions: BTreeMap::new(),
            next_session: 1,
            queue: Vec::new(),
            next_seq: 0,
            batches_drained: 0,
            batch_capacity: config.batch_capacity.max(1),
            parallel_speculation: config.parallel_speculation,
        }
    }

    /// Routes all service and flow events to `sink`.
    #[must_use]
    pub fn with_sink(mut self, sink: impl EventSink + 'static) -> Self {
        self.allocator = self.allocator.with_sink(sink);
        self
    }

    /// Routes all service and flow events to an already-boxed sink.
    #[must_use]
    pub fn with_boxed_sink(mut self, sink: Box<dyn EventSink>) -> Self {
        self.allocator = self.allocator.with_boxed_sink(sink);
        self
    }

    /// Attaches a metrics handle shared by every request the service
    /// executes (session counters, the live gauge, the queue-depth
    /// histogram, and all flow instruments).
    #[must_use]
    pub fn with_metrics(mut self, metrics: impl Into<Metrics>) -> Self {
        self.allocator = self.allocator.with_metrics(metrics);
        self
    }

    /// The platform the service allocates on.
    pub fn arch(&self) -> &ArchitectureGraph {
        &self.arch
    }

    /// The residual platform state (everything claimed by live
    /// sessions).
    pub fn residual(&self) -> &PlatformState {
        &self.residual
    }

    /// The remaining capacity of every tile, tile-index order.
    pub fn residual_capacity(&self) -> Vec<TileCapacity> {
        platform_residual(&self.arch, &self.residual)
    }

    /// Number of live sessions.
    pub fn live_count(&self) -> usize {
        self.sessions.len()
    }

    /// Cumulative warm-start statistics of the allocator's shared
    /// exploration memo, or `None` when the service runs with
    /// `warm_start: false`.
    pub fn warm_stats(&self) -> Option<crate::warm::WarmStats> {
        self.allocator.cache().warm_stats()
    }

    /// Requests queued but not yet drained.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The current allocation of a live session.
    pub fn allocation(&self, session: SessionId) -> Option<&Allocation> {
        self.sessions.get(&session).map(|s| &s.allocation)
    }

    /// The application of a live session.
    pub fn application(&self, session: SessionId) -> Option<&ApplicationGraph> {
        self.sessions.get(&session).map(|s| &s.app)
    }

    /// Live session ids, admission order.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.sessions.keys().copied().collect()
    }

    /// Flushes the event sink (buffered trace files).
    pub fn flush(&mut self) {
        self.allocator.flush();
    }

    /// Runs the Sec 9 flow for `app` against the residual platform and,
    /// on success, claims the allocation and registers a new session.
    ///
    /// # Errors
    ///
    /// Any [`MapError`] of the flow; the service state is untouched on
    /// failure.
    pub fn admit(&mut self, app: &ApplicationGraph) -> Result<SessionId, MapError> {
        let (allocation, stats) = self.allocator.allocate(app, &self.arch, &self.residual)?;
        allocation.claim_on(&self.arch, &mut self.residual);
        let session = SessionId::from_raw(self.next_session);
        self.next_session += 1;
        self.sessions.insert(
            session,
            Session {
                app: app.clone(),
                allocation,
                stats,
            },
        );
        let live = self.sessions.len();
        self.allocator.metric(|m| {
            m.sessions_admitted.inc();
            m.sessions_live.set(live as u64);
        });
        self.allocator.emit(|| FlowEvent::SessionAdmitted {
            session: session.raw(),
            app: app.graph().name().to_string(),
            live,
        });
        Ok(session)
    }

    /// Removes a live session and releases everything its allocation
    /// claimed, so later admissions see the freed budgets. Returns the
    /// total reclaimed resources, summed over tiles.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] if the session is not live.
    pub fn depart(&mut self, session: SessionId) -> Result<TileUsage, ServiceError> {
        let entry = self
            .sessions
            .remove(&session)
            .ok_or(ServiceError::UnknownSession(session))?;
        entry.allocation.release_on(&self.arch, &mut self.residual);
        let mut reclaimed = TileUsage::default();
        for u in &entry.allocation.usage {
            reclaimed.wheel += u.wheel;
            reclaimed.memory += u.memory;
            reclaimed.connections += u.connections;
            reclaimed.bandwidth_in += u.bandwidth_in;
            reclaimed.bandwidth_out += u.bandwidth_out;
        }
        let live = self.sessions.len();
        self.allocator.metric(|m| {
            m.sessions_departed.inc();
            m.sessions_live.set(live as u64);
        });
        self.allocator.emit(|| FlowEvent::SessionDeparted {
            session: session.raw(),
            live,
        });
        Ok(reclaimed)
    }

    /// Re-runs the flow for a live session against the residual state
    /// *without* the session's own claim — after departures freed
    /// capacity, the session may find a better (smaller-slice) fit. If
    /// re-allocation fails the old allocation is restored untouched; a
    /// rebind never loses a valid session.
    ///
    /// A rebind's throughput probes differ from the session's previous
    /// allocation mostly in single tile slices, so they warm-start from
    /// the allocator's shared exploration memo (see
    /// [`warm_stats`](Self::warm_stats)) instead of re-exploring the
    /// state space from scratch.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] if the session is not live.
    pub fn rebind(&mut self, session: SessionId) -> Result<RebindOutcome, ServiceError> {
        let entry = self
            .sessions
            .get(&session)
            .ok_or(ServiceError::UnknownSession(session))?;
        let old = entry.allocation.clone();
        let app = entry.app.clone();
        old.release_on(&self.arch, &mut self.residual);
        let outcome = match self.allocator.allocate(&app, &self.arch, &self.residual) {
            Ok((new_alloc, stats)) => {
                new_alloc.claim_on(&self.arch, &mut self.residual);
                let changed = new_alloc.binding != old.binding || new_alloc.slices != old.slices;
                let throughput = new_alloc.guaranteed_throughput();
                let entry = self.sessions.get_mut(&session).expect("session is live");
                entry.allocation = new_alloc;
                entry.stats = stats;
                RebindOutcome {
                    throughput,
                    changed,
                }
            }
            Err(_) => {
                // The freed state can only be *more* permissive than the
                // one the session was admitted on, but the heuristic flow
                // gives no such guarantee — restore the old claim.
                old.claim_on(&self.arch, &mut self.residual);
                RebindOutcome {
                    throughput: old.guaranteed_throughput(),
                    changed: false,
                }
            }
        };
        self.allocator.metric(|m| m.sessions_rebound.inc());
        self.allocator.emit(|| FlowEvent::SessionRebound {
            session: session.raw(),
            changed: outcome.changed,
        });
        Ok(outcome)
    }

    /// A point-in-time view: live sessions (admission order), queue
    /// depth, and total claimed resources.
    pub fn status(&self) -> ServiceStatus {
        ServiceStatus {
            sessions: self
                .sessions
                .iter()
                .map(|(&session, entry)| SessionInfo {
                    session,
                    app: entry.app.graph().name().to_string(),
                    throughput: entry.allocation.guaranteed_throughput(),
                    wheel: entry.allocation.usage.iter().map(|u| u.wheel).sum(),
                })
                .collect(),
            queue_depth: self.queue.len(),
            claimed: self.residual.total_usage(),
        }
    }

    /// Accepts a request into the queue and returns its sequence number
    /// (the id its [`drain`](Self::drain) response will carry).
    pub fn enqueue(&mut self, request: ServiceRequest) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.allocator.metric(|m| m.service_requests.inc());
        let op = request.op();
        self.allocator
            .emit(|| FlowEvent::ServiceRequestQueued { seq, op });
        self.queue.push((seq, request));
        seq
    }

    /// Executes every queued request in batches of at most
    /// `batch_capacity`, in arrival order, and returns `(seq, response)`
    /// pairs in the same order.
    ///
    /// Each batch's admissions are first allocated speculatively in
    /// parallel against a snapshot of the residual state (warming the
    /// shared cache); the commit then re-runs every request
    /// sequentially, so the result is identical to executing the
    /// requests one by one — batching changes wall-clock time, never
    /// outcomes.
    pub fn drain(&mut self) -> Vec<(u64, ServiceResponse)> {
        let mut pending = std::mem::take(&mut self.queue);
        let mut responses = Vec::with_capacity(pending.len());
        let mut pending = pending.drain(..);
        loop {
            let batch: Vec<(u64, ServiceRequest)> =
                pending.by_ref().take(self.batch_capacity).collect();
            if batch.is_empty() {
                break;
            }
            self.speculate(&batch);
            let requests = batch.len();
            for (seq, request) in batch {
                let response = self.execute(request);
                responses.push((seq, response));
            }
            let batch_no = self.batches_drained;
            self.batches_drained += 1;
            self.allocator
                .metric(|m| m.service_queue_depth.observe(requests as u64));
            self.allocator.emit(|| FlowEvent::ServiceBatchDrained {
                batch: batch_no,
                requests,
            });
        }
        responses
    }

    /// Speculatively allocates the batch's admissions in parallel
    /// against the current residual state, through forks of the shared
    /// cache that are absorbed back before the sequential commit. The
    /// first admission of the batch then replays entirely from the
    /// cache; later ones do whenever no earlier commit changed the
    /// state. Pure cache-warming: results are discarded.
    fn speculate(&mut self, batch: &[(u64, ServiceRequest)]) {
        if !self.parallel_speculation {
            return;
        }
        let admits: Vec<&ApplicationGraph> = batch
            .iter()
            .filter_map(|(_, r)| match r {
                ServiceRequest::Admit { app } => Some(app.as_ref()),
                _ => None,
            })
            .collect();
        if admits.len() < 2 {
            return;
        }
        let config = *self.allocator.config();
        let snapshot = self.residual.clone();
        let forks = {
            let arch = &self.arch;
            let cache = self.allocator.cache();
            maybe_par_map(true, &admits, |app| {
                let mut speculative = Allocator::from_config(config).with_cache(cache.fork());
                let _ = speculative.allocate(app, arch, &snapshot);
                speculative.into_cache()
            })
        };
        for fork in forks {
            self.allocator.cache_mut().absorb(fork);
        }
    }

    /// Applies one request to the service state.
    fn execute(&mut self, request: ServiceRequest) -> ServiceResponse {
        match request {
            ServiceRequest::Admit { app } => {
                let name = app.graph().name().to_string();
                match self.admit(&app) {
                    Ok(session) => {
                        let allocation = &self.sessions[&session].allocation;
                        ServiceResponse::Admitted {
                            session,
                            app: name,
                            throughput: allocation.guaranteed_throughput(),
                            wheel: allocation.usage.iter().map(|u| u.wheel).sum(),
                        }
                    }
                    Err(error) => ServiceResponse::Rejected { app: name, error },
                }
            }
            ServiceRequest::Depart { session } => match self.depart(session) {
                Ok(reclaimed) => ServiceResponse::Departed { session, reclaimed },
                Err(error) => ServiceResponse::Failed {
                    op: "depart",
                    error,
                },
            },
            ServiceRequest::Rebind { session } => match self.rebind(session) {
                Ok(outcome) => ServiceResponse::Rebound { session, outcome },
                Err(error) => ServiceResponse::Failed {
                    op: "rebind",
                    error,
                },
            },
            ServiceRequest::Status => ServiceResponse::Status(self.status()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfrs_appmodel::apps::{example_platform, paper_example};

    fn service() -> AllocationService {
        AllocationService::new(&example_platform())
    }

    #[test]
    fn admit_claims_and_depart_releases() {
        let mut s = service();
        let empty = s.residual().clone();
        let id = s.admit(&paper_example()).unwrap();
        assert_ne!(s.residual(), &empty);
        assert_eq!(s.live_count(), 1);
        let reclaimed = s.depart(id).unwrap();
        assert!(reclaimed.wheel > 0);
        assert_eq!(s.residual(), &empty, "depart must release the exact claim");
        assert_eq!(s.live_count(), 0);
    }

    #[test]
    fn session_ids_are_never_reused() {
        let mut s = service();
        let a = s.admit(&paper_example()).unwrap();
        s.depart(a).unwrap();
        let b = s.admit(&paper_example()).unwrap();
        assert!(b > a);
        assert_eq!(
            s.depart(a),
            Err(ServiceError::UnknownSession(a)),
            "a departed ticket must stay invalid"
        );
    }

    #[test]
    fn drain_matches_direct_calls() {
        let app = paper_example();
        let mut online = service();
        let mut batched = AllocationService::from_config(
            &example_platform(),
            ServiceConfig {
                batch_capacity: 8,
                ..ServiceConfig::default()
            },
        );
        let requests = [
            ServiceRequest::Admit {
                app: Box::new(app.clone()),
            },
            ServiceRequest::Admit {
                app: Box::new(app.clone()),
            },
            ServiceRequest::Depart {
                session: SessionId::from_raw(2),
            },
            ServiceRequest::Status,
        ];
        let mut online_responses = Vec::new();
        for r in &requests {
            let seq = online.enqueue(r.clone());
            let mut drained = online.drain();
            assert_eq!(drained.len(), 1);
            let (got_seq, response) = drained.pop().unwrap();
            assert_eq!(got_seq, seq);
            online_responses.push(response);
        }
        for r in &requests {
            batched.enqueue(r.clone());
        }
        let batched_responses: Vec<ServiceResponse> =
            batched.drain().into_iter().map(|(_, r)| r).collect();
        assert_eq!(online_responses, batched_responses);
        assert_eq!(online.residual(), batched.residual());
    }

    #[test]
    fn status_reports_sessions_in_admission_order() {
        let mut s = service();
        let a = s.admit(&paper_example()).unwrap();
        let b = s.admit(&paper_example()).unwrap();
        let status = s.status();
        assert_eq!(status.sessions.len(), 2);
        assert_eq!(status.sessions[0].session, a);
        assert_eq!(status.sessions[1].session, b);
        assert_eq!(status.claimed, s.residual().total_usage());
        assert_eq!(status.queue_depth, 0);
    }

    #[test]
    fn responses_render_as_single_json_lines() {
        let mut s = service();
        for request in [
            ServiceRequest::Admit {
                app: Box::new(paper_example()),
            },
            ServiceRequest::Status,
            ServiceRequest::Depart {
                session: SessionId::from_raw(99),
            },
        ] {
            s.enqueue(request);
        }
        for (seq, response) in s.drain() {
            let line = response.to_json_line(seq);
            assert!(
                line.starts_with(&format!("{{\"id\":{seq},\"op\":\"")),
                "{line}"
            );
            assert!(line.ends_with('}'), "{line}");
            assert!(!line.contains('\n'), "{line}");
        }
    }
}
