//! Resource accounting and the validity constraints 1–4 of Section 7.

use sdfrs_appmodel::ApplicationGraph;
use sdfrs_platform::{ArchitectureGraph, PlatformState, TileId, TileUsage};

use crate::binding::Binding;

pub use sdfrs_platform::TileCapacity;

/// Computes the remaining capacity of `tile`.
///
/// Thin convenience wrapper over
/// [`PlatformState::tile_capacity`]; the per-platform residual view that
/// used to live here as `platform_residual` is now
/// [`PlatformState::residual_capacities`].
pub fn tile_capacity(
    arch: &ArchitectureGraph,
    state: &PlatformState,
    tile: TileId,
) -> TileCapacity {
    state.tile_capacity(arch, tile)
}

/// The resources the current (partial) binding demands from one tile:
/// the left-hand sides of constraints 2–4 of Section 7, plus a provisional
/// wheel demand of zero (slices are allocated later).
pub fn tile_demand(
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    binding: &Binding,
    tile: TileId,
) -> TileUsage {
    let pt = arch.tile(tile).processor_type();
    let part = binding.channel_partition(app, tile);
    let mut memory: u64 = 0;
    for a in binding.actors_on(tile) {
        memory += app
            .actor_memory(a, pt)
            .expect("bound actors support their tile's processor type");
    }
    for &d in &part.local {
        memory += app.channel_requirements(d).memory_tile();
    }
    let mut bandwidth_out = 0u64;
    for &d in &part.outgoing {
        let th = app.channel_requirements(d);
        memory += th.memory_src();
        bandwidth_out += th.bandwidth;
    }
    let mut bandwidth_in = 0u64;
    for &d in &part.incoming {
        let th = app.channel_requirements(d);
        memory += th.memory_dst();
        bandwidth_in += th.bandwidth;
    }
    TileUsage {
        wheel: 0,
        memory,
        connections: part.connection_count() as u32,
        bandwidth_in,
        bandwidth_out,
    }
}

/// Checks constraints 1–4 of Section 7 for `tile` under the (partial)
/// binding, against the remaining capacity. Constraint 1 (slice fits the
/// remaining wheel) degenerates to "at least one wheel unit remains" while
/// slices are still unallocated; pass the allocated slice via
/// `slice` once known.
pub fn tile_constraints_hold(
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    binding: &Binding,
    tile: TileId,
    slice: Option<u64>,
) -> bool {
    let cap = tile_capacity(arch, state, tile);
    let demand = tile_demand(app, arch, binding, tile);
    let wheel_needed = match slice {
        Some(s) => s,
        None => {
            if binding.actors_on(tile).is_empty() {
                0
            } else {
                1
            }
        }
    };
    wheel_needed <= cap.wheel
        && demand.memory <= cap.memory
        && demand.connections <= cap.connections
        && demand.bandwidth_in <= cap.bandwidth_in
        && demand.bandwidth_out <= cap.bandwidth_out
}

/// Checks that every cross-tile channel of the binding has a platform
/// connection and positive bandwidth (a structural prerequisite of the
/// binding-aware construction).
pub fn cross_channels_routable(
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    binding: &Binding,
) -> bool {
    app.graph().channels().all(|(d, ch)| {
        match (binding.tile_of(ch.src()), binding.tile_of(ch.dst())) {
            (Some(s), Some(t)) if s != t => {
                arch.connection_between(s, t).is_some() && app.channel_requirements(d).bandwidth > 0
            }
            _ => true,
        }
    })
}

/// Checks constraints for every tile the binding touches (binding an actor
/// affects its own tile and — through cross-tile channels — the tiles of
/// its neighbours).
pub fn binding_constraints_hold(
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    state: &PlatformState,
    binding: &Binding,
) -> bool {
    cross_channels_routable(app, arch, binding)
        && binding
            .used_tiles()
            .into_iter()
            .all(|t| tile_constraints_hold(app, arch, state, binding, t, None))
}

/// The resources a *completed* allocation claims per tile: slice sizes plus
/// the demand of constraints 2–4. Indexed by tile index.
pub fn allocation_usage(
    app: &ApplicationGraph,
    arch: &ArchitectureGraph,
    binding: &Binding,
    slices: &[u64],
) -> Vec<TileUsage> {
    arch.tile_ids()
        .map(|t| {
            let mut u = tile_demand(app, arch, binding, t);
            if !binding.actors_on(t).is_empty() {
                u.wheel = slices[t.index()];
            }
            u
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfrs_appmodel::apps::{example_platform, paper_example};
    use sdfrs_sdf::ActorId;

    fn example_binding() -> (sdfrs_appmodel::ApplicationGraph, ArchitectureGraph, Binding) {
        let app = paper_example();
        let arch = example_platform();
        let mut b = Binding::new(3);
        b.bind(ActorId::from_index(0), TileId::from_index(0)); // a1
        b.bind(ActorId::from_index(1), TileId::from_index(0)); // a2
        b.bind(ActorId::from_index(2), TileId::from_index(1)); // a3
        (app, arch, b)
    }

    #[test]
    fn demand_matches_section7_formulas() {
        let (app, arch, b) = example_binding();
        let t1 = TileId::from_index(0);
        let t2 = TileId::from_index(1);
        // t1: μ(a1,p1)+μ(a2,p1) = 17; d1 local 1·7, d3 local 1·1, d2 src
        // 2·100 = 200 ⇒ memory 17+7+1+200 = 225; 1 connection out; β = 10.
        let d1 = tile_demand(&app, &arch, &b, t1);
        assert_eq!(d1.memory, 225);
        assert_eq!(d1.connections, 1);
        assert_eq!(d1.bandwidth_out, 10);
        assert_eq!(d1.bandwidth_in, 0);
        // t2: μ(a3,p2) = 10 + d2 dst 200 = 210; 1 connection in.
        let d2 = tile_demand(&app, &arch, &b, t2);
        assert_eq!(d2.memory, 210);
        assert_eq!(d2.connections, 1);
        assert_eq!(d2.bandwidth_in, 10);
        assert_eq!(d2.bandwidth_out, 0);
    }

    #[test]
    fn constraints_hold_on_example() {
        let (app, arch, b) = example_binding();
        let state = PlatformState::new(&arch);
        assert!(binding_constraints_hold(&app, &arch, &state, &b));
        for t in [TileId::from_index(0), TileId::from_index(1)] {
            assert!(tile_constraints_hold(&app, &arch, &state, &b, t, Some(5)));
        }
    }

    #[test]
    fn occupied_platform_can_reject() {
        let (app, arch, b) = example_binding();
        let mut state = PlatformState::new(&arch);
        // Occupy nearly all memory of t1: demand of 225 no longer fits.
        state.claim(
            TileId::from_index(0),
            TileUsage {
                memory: 600,
                ..TileUsage::default()
            },
        );
        assert!(!binding_constraints_hold(&app, &arch, &state, &b));
    }

    #[test]
    fn wheel_constraint_uses_slice_when_known() {
        let (app, arch, b) = example_binding();
        let mut state = PlatformState::new(&arch);
        state.claim(
            TileId::from_index(0),
            TileUsage {
                wheel: 8,
                ..TileUsage::default()
            },
        );
        let t1 = TileId::from_index(0);
        assert!(tile_constraints_hold(&app, &arch, &state, &b, t1, Some(2)));
        assert!(!tile_constraints_hold(&app, &arch, &state, &b, t1, Some(3)));
        // Without a slice: at least one unit must remain.
        assert!(tile_constraints_hold(&app, &arch, &state, &b, t1, None));
        state.claim(
            t1,
            TileUsage {
                wheel: 2,
                ..TileUsage::default()
            },
        );
        assert!(!tile_constraints_hold(&app, &arch, &state, &b, t1, None));
    }

    #[test]
    fn unroutable_cross_channel_detected() {
        let (app, _, b) = example_binding();
        let mut arch = ArchitectureGraph::new("disconnected");
        arch.add_tile(sdfrs_platform::Tile::new(
            "t1",
            "p1".into(),
            10,
            700,
            5,
            100,
            100,
        ));
        arch.add_tile(sdfrs_platform::Tile::new(
            "t2",
            "p2".into(),
            10,
            500,
            7,
            100,
            100,
        ));
        assert!(!cross_channels_routable(&app, &arch, &b));
    }

    #[test]
    fn usage_includes_slices() {
        let (app, arch, b) = example_binding();
        let usage = allocation_usage(&app, &arch, &b, &[4, 6]);
        assert_eq!(usage[0].wheel, 4);
        assert_eq!(usage[1].wheel, 6);
        assert_eq!(usage[0].memory, 225);
        assert_eq!(usage[1].memory, 210);
    }

    #[test]
    fn empty_tile_has_zero_demand() {
        let (app, arch, _) = example_binding();
        let b = Binding::new(3);
        let d = tile_demand(&app, &arch, &b, TileId::from_index(0));
        assert_eq!(d, TileUsage::default());
    }
}
