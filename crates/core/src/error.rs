//! Error types of the resource-allocation flow.

use std::error::Error;
use std::fmt;

use sdfrs_platform::TileId;
use sdfrs_sdf::{ActorId, ChannelId, SdfError};

/// Errors raised by binding, scheduling, slice allocation or throughput
/// analysis of a mapped application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The analysis substrate failed (inconsistent graph, deadlock,
    /// exploration budget).
    Sdf(SdfError),
    /// No tile can host `actor` without violating a resource constraint
    /// (Sec 9.1: "When all tiles are tried and no valid binding is found,
    /// the problem is considered infeasible").
    NoFeasibleTile {
        /// The actor that could not be bound.
        actor: ActorId,
    },
    /// A channel crosses two tiles with no point-to-point connection
    /// between them.
    MissingConnection {
        /// The channel that needs the connection.
        channel: ChannelId,
        /// Source tile of the required connection.
        src: TileId,
        /// Destination tile of the required connection.
        dst: TileId,
    },
    /// Even the entire remaining time wheels cannot satisfy the throughput
    /// constraint (Sec 9.3: the slice allocation "ends unsuccessfully").
    ConstraintUnsatisfiable,
    /// An actor is not bound although the operation requires a complete
    /// binding.
    UnboundActor {
        /// The unbound actor.
        actor: ActorId,
    },
    /// A channel was bound across tiles although its Θ forbids it (zero
    /// bandwidth, or a destination buffer smaller than its initial
    /// tokens).
    ChannelNotMappable {
        /// The offending channel.
        channel: ChannelId,
    },
    /// An actor is bound to a tile whose processor type it does not
    /// support. The flow's own binding step never produces this; it is
    /// reported when a hand-built [`Binding`](crate::Binding) is fed to
    /// the cost or slice machinery.
    UnsupportedBinding {
        /// The actor with the impossible placement.
        actor: ActorId,
        /// The tile whose processor type the actor lacks.
        tile: TileId,
    },
    /// The flow configuration is degenerate (zero state budgets, an empty
    /// Eqn 2 weight set, …) — rejected up front by
    /// [`FlowConfig::validate`](crate::flow::FlowConfig::validate) instead
    /// of failing mid-flow.
    InvalidConfig {
        /// Which field was rejected and why.
        reason: String,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Sdf(e) => write!(f, "analysis failed: {e}"),
            MapError::NoFeasibleTile { actor } => {
                write!(
                    f,
                    "no tile can host actor {actor} within its resource limits"
                )
            }
            MapError::MissingConnection { channel, src, dst } => write!(
                f,
                "channel {channel} requires a connection {src}→{dst} which the platform lacks"
            ),
            MapError::ConstraintUnsatisfiable => write!(
                f,
                "throughput constraint unsatisfiable even with the full remaining time wheels"
            ),
            MapError::UnboundActor { actor } => {
                write!(f, "actor {actor} is not bound to any tile")
            }
            MapError::ChannelNotMappable { channel } => write!(
                f,
                "channel {channel} cannot cross tiles (zero bandwidth or undersized buffers)"
            ),
            MapError::UnsupportedBinding { actor, tile } => write!(
                f,
                "actor {actor} is bound to tile {tile} whose processor type it does not support"
            ),
            MapError::InvalidConfig { reason } => {
                write!(f, "invalid flow configuration: {reason}")
            }
        }
    }
}

impl Error for MapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MapError::Sdf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SdfError> for MapError {
    fn from(e: SdfError) -> Self {
        MapError::Sdf(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(MapError::NoFeasibleTile {
            actor: ActorId::from_index(0)
        }
        .to_string()
        .contains("no tile"));
        assert!(MapError::MissingConnection {
            channel: ChannelId::from_index(1),
            src: TileId::from_index(0),
            dst: TileId::from_index(1),
        }
        .to_string()
        .contains("t0→t1"));
        assert!(MapError::ConstraintUnsatisfiable
            .to_string()
            .contains("unsatisfiable"));
        assert!(MapError::UnboundActor {
            actor: ActorId::from_index(3)
        }
        .to_string()
        .contains("a3"));
        assert!(MapError::UnsupportedBinding {
            actor: ActorId::from_index(2),
            tile: TileId::from_index(1),
        }
        .to_string()
        .contains("does not support"));
        let e: MapError = SdfError::Empty.into();
        assert!(e.to_string().contains("no actors"));
        assert!(e.source().is_some());
        assert!(MapError::InvalidConfig {
            reason: "weights are all zero".into()
        }
        .to_string()
        .contains("invalid flow configuration"));
    }
}
