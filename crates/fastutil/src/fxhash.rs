//! The rustc / Firefox `FxHasher`: a non-cryptographic multiply-xor hash.
//!
//! Identical algorithm to the `rustc-hash` crate (`hash = (hash rotl 5 ^
//! word) * SEED` per 8-byte word). It is dramatically faster than the
//! standard library's SipHash-1-3 on the short integer-dense keys the
//! state-space explorers produce, and — unlike SipHash — fully
//! deterministic across runs, which the interned state tables rely on.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit seed constant of the Fx algorithm (derived from π).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// The `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The Fx streaming hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hashes a `u64` slice in one shot — the fast path of the state interner
/// and the cache fingerprints, avoiding `Hash` trait dispatch.
#[inline]
pub fn hash_u64s(words: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    for &w in words {
        h.add_to_hash(w);
    }
    // Finalize with the length so prefixes hash differently.
    h.add_to_hash(words.len() as u64);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        let a = hash_u64s(&[1, 2, 3]);
        let b = hash_u64s(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_ne!(hash_u64s(&[1, 2, 3]), hash_u64s(&[1, 2, 4]));
        assert_ne!(hash_u64s(&[1, 2, 3]), hash_u64s(&[1, 2, 3, 0]));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<Vec<u64>, usize> = FxHashMap::default();
        m.insert(vec![1, 2], 7);
        assert_eq!(m.get(&vec![1, 2]), Some(&7));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(3));
        assert!(!s.insert(3));
    }

    #[test]
    fn byte_stream_matches_word_stream_for_whole_words() {
        use std::hash::Hasher;
        let mut a = FxHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }
}
