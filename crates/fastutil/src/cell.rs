//! Cache-line-padded atomic cells.
//!
//! A metrics registry packs many `AtomicU64` counters into one struct;
//! without padding, counters incremented by different refinement workers
//! share a cache line and every `fetch_add` ping-pongs the line between
//! cores (false sharing). [`PaddedAtomicU64`] aligns each counter to its
//! own 64-byte line so concurrent increments of *different* counters
//! never contend.
//!
//! All operations use [`Ordering::Relaxed`]: the counters are pure
//! statistics — no other memory is published through them — so the
//! cheapest ordering is the correct one.

use std::sync::atomic::{AtomicU64, Ordering};

/// An [`AtomicU64`] alone on its cache line.
///
/// # Examples
///
/// ```
/// use sdfrs_fastutil::cell::PaddedAtomicU64;
/// let c = PaddedAtomicU64::new(0);
/// c.add(2);
/// c.add(3);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct PaddedAtomicU64(AtomicU64);

impl PaddedAtomicU64 {
    /// A cell holding `value`.
    pub const fn new(value: u64) -> Self {
        PaddedAtomicU64(AtomicU64::new(value))
    }

    /// Adds `delta` (relaxed).
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value (relaxed).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value (relaxed). Gauges use this; counters never do.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Maximum of the current value and `value` (relaxed CAS loop).
    #[inline]
    pub fn max(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupies_a_full_cache_line() {
        assert_eq!(std::mem::align_of::<PaddedAtomicU64>(), 64);
        assert_eq!(std::mem::size_of::<PaddedAtomicU64>(), 64);
    }

    #[test]
    fn add_set_max_roundtrip() {
        let c = PaddedAtomicU64::new(7);
        c.add(1);
        assert_eq!(c.get(), 8);
        c.set(3);
        assert_eq!(c.get(), 3);
        c.max(10);
        c.max(5);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let c = std::sync::Arc::new(PaddedAtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.add(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }
}
