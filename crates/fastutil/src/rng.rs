//! A small, fast, seedable PRNG with a `rand`-like surface.
//!
//! xoshiro256** (Blackman & Vigna) seeded through SplitMix64 — the same
//! construction `rand::rngs::SmallRng` uses. Not cryptographic; plenty for
//! benchmark generation and property tests. The stream is stable across
//! platforms and releases: generated benchmark corpora are reproducible
//! from their seed alone.

/// Seedable xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `u64` in `[0, bound)` via Lemire's multiply-shift with
    /// rejection (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Rejection zone keeps the mapping exactly uniform.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform draw from a range, like `rand::Rng::gen_range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

/// Ranges [`SmallRng::gen_range`] accepts.
pub trait SampleRange {
    /// The drawn value's type.
    type Output;
    /// Draws one uniform value.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_signed_range!(i32, i64);

impl SampleRange for std::ops::RangeInclusive<i128> {
    type Output = i128;
    fn sample(self, rng: &mut SmallRng) -> i128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = hi.wrapping_sub(lo) as u128;
        assert!(span < u64::MAX as u128, "range too wide");
        lo + rng.below(span as u64 + 1) as i128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&x));
            let y = rng.gen_range(0usize..5);
            assert!(y < 5);
            let z = rng.gen_range(-50i128..=50);
            assert!((-50..=50).contains(&z));
            let w = rng.gen_range(0u32..100);
            assert!(w < 100);
        }
    }

    #[test]
    fn all_values_reachable_in_small_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bools_and_floats_behave() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = SmallRng::seed_from_u64(9);
        let items = ["a", "b", "c"];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*rng.choose(&items));
        }
        assert_eq!(seen.len(), 3);
    }
}
