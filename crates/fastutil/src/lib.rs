//! Zero-dependency performance substrate for the sdfrs workspace.
//!
//! The container this workspace builds in has no access to crates.io, so
//! the handful of external crates a project like this would normally pull
//! in are reimplemented here at the size we actually need:
//!
//! * [`fxhash`] — the rustc `FxHasher` (a multiply-xor hash, ~5× faster
//!   than SipHash on short keys) plus `FxHashMap`/`FxHashSet` aliases;
//! * [`par`] — a deterministic `rayon`-style parallel map over slices
//!   (results always in input order, independent of thread scheduling);
//! * [`rng`] — a small, seedable xoshiro256** PRNG with a `rand`-like
//!   `gen_range` surface, used by the benchmark generators and the
//!   property tests;
//! * [`crit`] — a criterion-compatible micro-benchmark harness
//!   (`criterion_group!`/`criterion_main!`/`Criterion`) that reports
//!   median/mean wall-clock per iteration;
//! * [`cell`] — cache-line-padded atomic counters, so hot-path metrics
//!   updated from parallel refinement tasks never false-share.

pub mod cell;
pub mod crit;
pub mod fxhash;
pub mod par;
pub mod rng;

pub use cell::PaddedAtomicU64;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use par::par_map;
pub use rng::SmallRng;
