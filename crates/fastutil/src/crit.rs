//! A criterion-compatible micro-benchmark harness.
//!
//! Implements the subset of the `criterion` API the workspace benches use
//! — [`Criterion`], `benchmark_group`, `bench_function`, `sample_size`,
//! [`criterion_group!`](crate::criterion_group),
//! [`criterion_main!`](crate::criterion_main) — so the bench files compile
//! unchanged against this crate. Each benchmark is warmed up, calibrated
//! to a fixed measurement budget, and reported as median/mean wall-clock
//! per iteration.
//!
//! Environment knobs:
//!
//! * `SDFRS_BENCH_TIME_MS` — measurement budget per benchmark (default
//!   150 ms; warm-up is a fifth of it);
//! * `SDFRS_BENCH_JSON` — when set, also emit one JSON line per benchmark
//!   (`{"name":…,"median_ns":…,"mean_ns":…,"samples":…}`) on stdout for
//!   machine consumption.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

fn budget() -> Duration {
    let ms = std::env::var("SDFRS_BENCH_TIME_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(150);
    Duration::from_millis(ms.max(1))
}

/// One benchmark result, as printed (and optionally emitted as JSON).
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Full benchmark id (`group/function`).
    pub name: String,
    /// Median wall-clock per iteration, in nanoseconds.
    pub median_ns: f64,
    /// Mean wall-clock per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The per-function timing driver handed to `bench_function` closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
    calibrating: bool,
}

impl Bencher {
    /// Times `f`, criterion-style: the routine is called repeatedly and
    /// per-iteration wall-clock samples are collected.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.calibrating {
            // One throwaway call so calibration can see a first estimate.
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_nanos() as f64);
            return;
        }
        let t0 = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples
            .push(t0.elapsed().as_nanos() as f64 / self.iters_per_sample as f64);
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark: warm-up, calibration, then timed samples.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, name.into());
        let budget = budget();

        // Calibration: how long does one iteration take?
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            calibrating: true,
        };
        let warm_until = Instant::now() + budget / 5;
        let mut one_iter_ns = f64::MAX;
        while Instant::now() < warm_until {
            b.samples.clear();
            f(&mut b);
            if let Some(&ns) = b.samples.first() {
                one_iter_ns = one_iter_ns.min(ns.max(1.0));
            }
        }
        if one_iter_ns == f64::MAX {
            // The closure never called iter(); nothing to report.
            println!("{id:<48} (no measurement)");
            return self;
        }

        // Spread the budget over `sample_size` samples.
        let per_sample_ns = budget.as_nanos() as f64 / self.sample_size as f64;
        let iters = (per_sample_ns / one_iter_ns).floor().max(1.0) as u64;
        let mut b = Bencher {
            iters_per_sample: iters,
            samples: Vec::with_capacity(self.sample_size),
            calibrating: false,
        };
        let stop = Instant::now() + budget * 2; // hard cap for slow routines
        while b.samples.len() < self.sample_size && Instant::now() < stop {
            f(&mut b);
        }
        let mut sorted = b.samples.clone();
        sorted.sort_by(|a, c| a.partial_cmp(c).expect("finite timings"));
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let report = BenchReport {
            name: id.clone(),
            median_ns: median,
            mean_ns: mean,
            samples: sorted.len(),
        };
        println!(
            "{id:<48} median {:>12}   mean {:>12}   ({} samples × {iters} iters)",
            human(report.median_ns),
            human(report.mean_ns),
            report.samples,
        );
        if std::env::var("SDFRS_BENCH_JSON").is_ok() {
            println!(
                "{{\"name\":\"{}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"samples\":{}}}",
                report.name, report.median_ns, report.mean_ns, report.samples
            );
        }
        self.criterion.reports.push(report);
        self
    }

    /// Ends the group (markers only; reports are printed eagerly).
    pub fn finish(&mut self) {}
}

/// Criterion-compatible benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// All reports collected so far (inspectable from tests).
    pub reports: Vec<BenchReport>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Runs a single, ungrouped benchmark.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }
}

/// Declares a bench group function list, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fun:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::crit::Criterion::default();
            $( $fun(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_sane_timings() {
        std::env::set_var("SDFRS_BENCH_TIME_MS", "20");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(5)
            .bench_function("spin", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.finish();
        assert_eq!(c.reports.len(), 1);
        let r = &c.reports[0];
        assert_eq!(r.name, "t/spin");
        assert!(r.median_ns > 0.0);
        assert!(r.samples >= 2);
    }
}
