//! Deterministic parallel map over slices.
//!
//! A minimal stand-in for `rayon::par_iter().map().collect()`: items are
//! claimed from an atomic cursor by a small pool of scoped threads and the
//! results are written back **by input index**, so the output order — and
//! therefore every downstream reduction — is byte-identical to the serial
//! loop regardless of thread count or scheduling. Panics in the closure
//! propagate to the caller (the scope joins all workers first).
//!
//! Thread count defaults to `std::thread::available_parallelism()` and can
//! be pinned with the `SDFRS_THREADS` environment variable (`1` forces the
//! serial path, which runs the closure inline with zero overhead).

use std::sync::atomic::{AtomicUsize, Ordering};

/// The worker count [`par_map`] will use (≥ 1).
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var("SDFRS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items`, possibly in parallel, returning results in input
/// order. `parallel = false` (or a single worker) runs the plain serial
/// loop; both paths produce identical output for a deterministic `f`.
pub fn maybe_par_map<T, R, F>(parallel: bool, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = if parallel { thread_count() } else { 1 };
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = workers.min(items.len());
    let cursor = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            buckets.push(h.join().expect("par_map worker panicked"));
        }
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced a result"))
        .collect()
}

/// Parallel map with the default thread count; see [`maybe_par_map`].
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    maybe_par_map(true, items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_serial() {
        let items: Vec<u64> = (0..100).collect();
        let serial = maybe_par_map(false, &items, |&x| x * x + 1);
        let parallel = maybe_par_map(true, &items, |&x| x * x + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }
}
