//! `sdfrs-conform` — seeded differential conformance sweeps.
//!
//! ```text
//! sdfrs-conform [--seeds A..B] [--shrink] [--corpus-dir DIR]
//!               [--log FILE.jsonl] [--trace FILE.jsonl]
//! ```
//!
//! Runs every seed in the range through the five-oracle panel and exits
//! non-zero when any oracle diverges. With `--shrink`, each failing
//! scenario is reduced to a minimal reproduction and written to the
//! corpus directory as a `.ron` file ready to be committed to
//! `tests/corpus/`.

use std::env;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::process::ExitCode;

use sdfrs_conform::{check_scenario, corpus, run_seed, shrink, HarnessConfig};

/// Evaluation budget for one shrink (each evaluation runs the panel).
const SHRINK_EVALS: usize = 200;

struct Args {
    seeds: (u64, u64),
    shrink: bool,
    corpus_dir: PathBuf,
    log: Option<PathBuf>,
    trace: Option<PathBuf>,
}

fn main() -> ExitCode {
    let args = match parse_args(env::args().skip(1)) {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS, // --help
        Err(msg) => {
            eprintln!("sdfrs-conform: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(failing) => {
            eprintln!("sdfrs-conform: {failing} failing scenario(s)");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("sdfrs-conform: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &Args) -> Result<usize, String> {
    let config = HarnessConfig {
        keep_events: args.trace.is_some(),
        ..HarnessConfig::default()
    };

    let mut log = open_writer(args.log.as_ref())?;
    let mut trace = open_writer(args.trace.as_ref())?;
    let mut failing = 0usize;

    for seed in args.seeds.0..args.seeds.1 {
        let report = run_seed(seed, &config);
        println!(
            "seed {seed:>6}  {}  allocated={}  failures={}  skipped={}",
            if report.passed() { "ok  " } else { "FAIL" },
            report.allocated,
            report.failures.len(),
            report.skipped.len(),
        );
        for f in &report.failures {
            println!("             {}: {}", f.oracle.as_str(), f.detail);
        }
        if let Some(w) = trace.as_mut() {
            for (at, event) in &report.events {
                writeln!(w, "{}", event.to_json(*at)).map_err(|e| e.to_string())?;
            }
        }
        if let Some(w) = log.as_mut() {
            writeln!(w, "{}", report.to_json()).map_err(|e| e.to_string())?;
        }

        if !report.passed() {
            failing += 1;
            if args.shrink {
                let scenario = sdfrs_conform::Scenario::sample_with(&config.scenario, seed);
                // Shrinking replays the panel on every candidate, so it
                // must not keep (and drag around) event streams.
                let mut quiet = config.clone();
                quiet.keep_events = false;
                let minimal = shrink::shrink(
                    &scenario,
                    |s| !check_scenario(s, &quiet).passed(),
                    SHRINK_EVALS,
                );
                let path = corpus::save(&args.corpus_dir, &minimal)
                    .map_err(|e| format!("writing corpus entry: {e}"))?;
                println!(
                    "             shrunk to {} actors / {} tiles -> {}",
                    minimal.app.graph().actor_count(),
                    minimal.arch.tile_count(),
                    path.display()
                );
            }
        }
    }
    Ok(failing)
}

fn open_writer(path: Option<&PathBuf>) -> Result<Option<BufWriter<File>>, String> {
    path.map(|p| {
        File::create(p)
            .map(BufWriter::new)
            .map_err(|e| format!("creating {}: {e}", p.display()))
    })
    .transpose()
}

const USAGE: &str = "\
usage: sdfrs-conform [options]
  --seeds A..B      seed range to sweep, end-exclusive (default 0..32)
  --shrink          shrink failing scenarios and write them to the corpus
  --corpus-dir DIR  where shrunk failures go (default tests/corpus)
  --log FILE        append one JSONL result line per scenario
  --trace FILE      dump the base runs' FlowEvent streams as JSONL
  --help            show this help";

fn parse_args(args: impl Iterator<Item = String>) -> Result<Option<Args>, String> {
    let mut out = Args {
        seeds: (0, 32),
        shrink: false,
        corpus_dir: PathBuf::from("tests/corpus"),
        log: None,
        trace: None,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--seeds" => out.seeds = parse_seeds(&value("--seeds")?)?,
            "--shrink" => out.shrink = true,
            "--corpus-dir" => out.corpus_dir = PathBuf::from(value("--corpus-dir")?),
            "--log" => out.log = Some(PathBuf::from(value("--log")?)),
            "--trace" => out.trace = Some(PathBuf::from(value("--trace")?)),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(out))
}

/// Parses `A..B` (end-exclusive) or `A..=B` (inclusive).
fn parse_seeds(text: &str) -> Result<(u64, u64), String> {
    let bad = || format!("invalid seed range `{text}` (expected A..B or A..=B)");
    let (lo, hi, inclusive) = if let Some((lo, hi)) = text.split_once("..=") {
        (lo, hi, true)
    } else if let Some((lo, hi)) = text.split_once("..") {
        (lo, hi, false)
    } else {
        return Err(bad());
    };
    let lo: u64 = lo.parse().map_err(|_| bad())?;
    let hi: u64 = hi.parse().map_err(|_| bad())?;
    let end = if inclusive {
        hi.checked_add(1).ok_or_else(bad)?
    } else {
        hi
    };
    if end < lo {
        return Err(bad());
    }
    Ok((lo, end))
}
