//! The regression corpus: shrunk failing scenarios persisted as `.ron`
//! files (format in [`sdfrs_gen::scenario`]) and replayed as ordinary
//! tests forever after.
//!
//! The committed corpus lives in `tests/corpus/`; nightly sweeps write
//! fresh finds into whatever `--corpus-dir` points at.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use sdfrs_gen::Scenario;

/// Writes `scenario` as `<dir>/<name>.ron`, creating `dir` if needed.
/// Returns the written path.
///
/// # Errors
///
/// Any underlying filesystem error.
pub fn save(dir: &Path, scenario: &Scenario) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.ron", scenario.name));
    fs::write(&path, scenario.to_ron())?;
    Ok(path)
}

/// Loads every `.ron` scenario in `dir`, sorted by file name so replay
/// order is stable. A missing directory is an empty corpus, not an error.
///
/// # Errors
///
/// Filesystem errors, or [`io::ErrorKind::InvalidData`] naming the file
/// when a corpus entry no longer parses.
pub fn load_dir(dir: &Path) -> io::Result<Vec<(PathBuf, Scenario)>> {
    let mut paths: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "ron"))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path)?;
        let scenario = Scenario::from_ron(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })?;
        out.push((path, scenario));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sdfrs_corpus_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_then_load_roundtrips() {
        let dir = tmp_dir("roundtrip");
        let a = Scenario::sample(5);
        let b = Scenario::sample(9);
        save(&dir, &a).unwrap();
        save(&dir, &b).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        // Sorted by file name: scn5.ron < scn9.ron.
        assert_eq!(loaded[0].1, a);
        assert_eq!(loaded[1].1, b);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_missing_directory_is_an_empty_corpus() {
        assert!(load_dir(Path::new("/nonexistent/sdfrs/corpus"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn corrupt_entries_name_the_file() {
        let dir = tmp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("bad.ron"), "Scenario(name: \"x\")").unwrap();
        let err = load_dir(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("bad.ron"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
