//! Differential conformance harness for the allocation flow.
//!
//! The paper's central claim — that self-timed exploration of the
//! binding-aware SDFG computes the same throughput as analysis of the
//! (exponentially larger) HSDF conversion — gives us a free oracle, and
//! the workspace's own redundancy (cached vs. uncached evaluation,
//! parallel vs. sequential search, the independent verifier, the event
//! stream vs. the aggregated stats, the online admission service vs. the
//! batch protocols, region-parallel vs. sequential admission commits,
//! the networked front-end vs. its own commit log, the request span
//! tree vs. the metrics registry) gives us eight more.
//! This crate runs seeded random [`Scenario`]s through the whole panel:
//!
//! 1. **HSDF equivalence** — self-timed throughput of the binding-aware
//!    graph vs. `γ/MCM` of its HSDF conversion
//!    ([`sdfrs_sdf::hsdf::hsdf_reference_throughput`]);
//! 2. **cache consistency** — a cached [`Allocator`](sdfrs_core::Allocator)
//!    run vs. a cache-disabled run must produce the same allocation (or
//!    error);
//! 3. **parallel consistency** — parallel vs. sequential slice
//!    refinement, and parallel vs. sequential DSE sweeps;
//! 4. **invariants** — every produced allocation passes
//!    [`verify_allocation`](sdfrs_core::verify::verify_allocation) with
//!    zero violations;
//! 5. **event reconciliation** — the recorded `FlowEvent` stream agrees
//!    with the returned `FlowStats`;
//! 6. **online/batch equivalence** — an admit → depart → admit trace
//!    through the [`AllocationService`](sdfrs_core::AllocationService)
//!    answers identically whether drained one request at a time or as a
//!    single batch, and the surviving sessions match a fresh
//!    `allocate_sequence` of the same applications (departures reclaim
//!    *exactly* what was claimed);
//! 7. **region-parallel equivalence** — with the platform partitioned
//!    into regions (including single-tile regions that force the
//!    escalation path), a region-parallel batched drain must answer
//!    byte-for-byte identically to a sequential-commit drain of the same
//!    trace and leave the identical residual;
//! 8. **network/replay equivalence** — the same trace driven through a
//!    real loopback [`NetServer`](sdfrs_net::NetServer) over TCP (two
//!    interleaved connections) must leave a commit log whose offline
//!    [`replay_commit_log`](sdfrs_core::service::replay_commit_log)
//!    reproduces the live server's residual state byte-for-byte;
//! 9. **trace reconciliation** — a traced service admit's span tree
//!    (the [`RequestTrace`](sdfrs_core::RequestTrace) event capture)
//!    must fold through the independent event→metrics bridge into
//!    exactly the flow counters the service's own registry accumulated,
//!    and the trace id must not influence the allocation (identical
//!    event streams under different ids);
//! 10. **exact optimality** — on instances small enough to enumerate
//!     (≤ 4 actors, ≤ 2 tiles), the branch-and-bound
//!     [`exact`](sdfrs_core::exact) solver must match the budget-free
//!     exhaustive enumeration bit-for-bit (binding, schedules, slices,
//!     achieved throughput), must never report a worse lower bound than
//!     the greedy heuristic achieves, and both must satisfy the
//!     throughput constraint λ whenever they admit.
//!
//! A failing scenario is [`shrink`](shrink::shrink)-able to a minimal
//! reproduction and persisted as a `.ron` [`corpus`] file, which the
//! `conformance` test suite replays forever after.

pub mod corpus;
mod oracles;
pub mod shrink;

use std::time::Duration;

use sdfrs_core::cost::CostWeights;
use sdfrs_core::flow::FlowConfig;
use sdfrs_core::{FlowEvent, MetricsSnapshot};
pub use sdfrs_gen::{Scenario, ScenarioConfig};

/// Deliberate defects for exercising the harness itself: prove that a
/// divergence *would* be caught and shrunk before trusting a green sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultInjection {
    /// Report one extra reference-actor completion per period from the
    /// self-timed side of oracle 1 (a test-only executor shim).
    SelfTimedOffByOne,
}

/// Configuration of one harness run.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Scenario size bounds (see [`ScenarioConfig`]).
    pub scenario: ScenarioConfig,
    /// Flow configuration for every allocation the oracles run.
    pub flow: FlowConfig,
    /// Skip the HSDF oracle when the conversion would exceed this many
    /// actors — the exponential blow-up is the *reason* the paper avoids
    /// this route; the oracle only needs it to be tractable sometimes.
    pub hsdf_limit: u64,
    /// State budget for the self-timed side of the HSDF oracle.
    pub selftimed_budget: usize,
    /// Eqn 2 weight panel for the DSE half of the parallel oracle.
    pub dse_weights: Vec<CostWeights>,
    /// Keep the base run's event stream in the report (for `--trace`).
    pub keep_events: bool,
    /// Inject a deliberate defect (harness self-tests only).
    pub fault: Option<FaultInjection>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        // Generated TDMA wheels are larger than the paper example's; the
        // constrained state space needs the same headroom as the
        // robustness sweep.
        let flow = FlowConfig::builder()
            .schedule_state_budget(300_000)
            .slice_state_budget(300_000)
            .build()
            .expect("static harness flow config is valid");
        HarnessConfig {
            scenario: ScenarioConfig::default(),
            flow,
            hsdf_limit: 1_500,
            selftimed_budget: 300_000,
            dse_weights: vec![CostWeights::PROCESSING, CostWeights::BALANCED],
            keep_events: false,
            fault: None,
        }
    }
}

/// The oracle panel, for labelling failures and skips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleId {
    /// Self-timed vs. HSDF MCR throughput on the binding-aware graph.
    HsdfEquivalence,
    /// Cached vs. cache-disabled allocation.
    CacheConsistency,
    /// Parallel vs. sequential slice refinement and DSE.
    ParallelConsistency,
    /// `verify_allocation` on the produced allocation.
    Invariants,
    /// Event stream vs. `FlowStats`.
    EventReconciliation,
    /// Online (request-at-a-time) vs. batched service drains, and the
    /// surviving sessions vs. a fresh batch allocation.
    OnlineBatchEquivalence,
    /// Region-parallel vs. sequential-commit drains of a partitioned
    /// service (responses byte-for-byte, residual, live sessions).
    RegionEquivalence,
    /// Networked service run vs. offline replay of its commit log
    /// (residual digest, live sessions, commit accounting).
    NetReplay,
    /// Request span tree vs. the metrics registry (per-request event
    /// capture folds into the same flow counters), plus trace-id
    /// independence of the allocation.
    TraceReconciliation,
    /// Branch-and-bound exact solver vs. exhaustive enumeration (bit
    /// identical on enumerable instances) and vs. the greedy heuristic
    /// (never worse, both constraint-satisfying).
    ExactOptimality,
}

impl OracleId {
    /// Stable label used in JSONL result lines.
    pub fn as_str(&self) -> &'static str {
        match self {
            OracleId::HsdfEquivalence => "hsdf_equivalence",
            OracleId::CacheConsistency => "cache_consistency",
            OracleId::ParallelConsistency => "parallel_consistency",
            OracleId::Invariants => "invariants",
            OracleId::EventReconciliation => "event_reconciliation",
            OracleId::OnlineBatchEquivalence => "online_batch_equivalence",
            OracleId::RegionEquivalence => "region_parallel_equivalence",
            OracleId::NetReplay => "net_replay_equivalence",
            OracleId::TraceReconciliation => "trace_reconciliation",
            OracleId::ExactOptimality => "exact_optimality",
        }
    }
}

/// One oracle disagreeing on one scenario.
#[derive(Debug, Clone)]
pub struct OracleFailure {
    /// Which oracle fired.
    pub oracle: OracleId,
    /// Human-readable description of the divergence.
    pub detail: String,
}

/// Everything the panel observed on one scenario.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Seed, when the scenario was sampled (corpus replays have none).
    pub seed: Option<u64>,
    /// Scenario name.
    pub scenario: String,
    /// Whether the base allocation succeeded (an infeasible scenario is
    /// *not* a failure — the oracles then check error agreement instead).
    pub allocated: bool,
    /// The base allocation error, if any.
    pub error: Option<String>,
    /// Oracle divergences. Empty means the scenario conforms.
    pub failures: Vec<OracleFailure>,
    /// Oracles that could not run, with the reason (e.g. the HSDF
    /// conversion exceeding [`HarnessConfig::hsdf_limit`]).
    pub skipped: Vec<(OracleId, String)>,
    /// The base run's event stream (only with
    /// [`HarnessConfig::keep_events`]).
    pub events: Vec<(Duration, FlowEvent)>,
    /// Metrics registry snapshot of the base run (always collected — the
    /// reconciliation oracle compares it against `FlowStats` and the
    /// event stream).
    pub metrics: Option<MetricsSnapshot>,
}

impl ScenarioReport {
    /// `true` when no oracle diverged.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// One JSONL result line (the CLI's `--log` format).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        if let Some(seed) = self.seed {
            out.push_str(&format!("\"seed\":{seed},"));
        }
        out.push_str(&format!(
            "\"scenario\":\"{}\",\"allocated\":{},",
            self.scenario, self.allocated
        ));
        if let Some(e) = &self.error {
            out.push_str(&format!("\"error\":\"{}\",", e.replace('"', "'")));
        }
        out.push_str("\"failures\":[");
        for (i, f) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"oracle\":\"{}\",\"detail\":\"{}\"}}",
                f.oracle.as_str(),
                f.detail.replace('"', "'")
            ));
        }
        out.push_str("],\"skipped\":[");
        for (i, (o, _)) in self.skipped.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", o.as_str()));
        }
        out.push(']');
        if let Some(m) = &self.metrics {
            // Counters only: a full snapshot (histograms, per-tile
            // vectors) would dwarf the result line.
            out.push_str(",\"metrics\":{");
            for (i, (name, value)) in m.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{name}\":{value}"));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Runs the full oracle panel on one scenario.
pub fn check_scenario(scenario: &Scenario, config: &HarnessConfig) -> ScenarioReport {
    oracles::run_panel(scenario, config)
}

/// Samples the scenario of `seed` and runs the panel on it.
pub fn run_seed(seed: u64, config: &HarnessConfig) -> ScenarioReport {
    let scenario = Scenario::sample_with(&config.scenario, seed);
    let mut report = check_scenario(&scenario, config);
    report.seed = Some(seed);
    report
}

/// Runs the panel on every seed, returning one report per seed.
pub fn run_seeds(
    seeds: impl IntoIterator<Item = u64>,
    config: &HarnessConfig,
) -> Vec<ScenarioReport> {
    seeds.into_iter().map(|s| run_seed(s, config)).collect()
}
