//! The nine-oracle panel (see the crate docs for the rationale).
//!
//! Every oracle is *differential*: it never needs to know the right
//! answer for a scenario, only that two independent routes to the answer
//! agree. Infeasible scenarios are first-class — the comparison oracles
//! then require both routes to reject with the same error.

use sdfrs_core::dse::{self, DseResult};
use sdfrs_core::exact::enumerate_exhaustive;
use sdfrs_core::flow::{Allocation, FlowStats};
use sdfrs_core::verify::verify_allocation;
use sdfrs_core::{
    Allocator, Binding, BindingAwareGraph, FlowEvent, MapError, Metrics, MetricsSnapshot,
    RecordingSink,
};
use sdfrs_gen::Scenario;
use sdfrs_platform::PlatformState;
use sdfrs_sdf::analysis::selftimed::SelfTimedExecutor;
use sdfrs_sdf::error::SdfError;
use sdfrs_sdf::hsdf::{hsdf_reference_throughput, hsdf_size};
use sdfrs_sdf::rational::Rational;

use crate::{FaultInjection, HarnessConfig, OracleFailure, OracleId, ScenarioReport};

type FlowOutcome = Result<(Allocation, FlowStats), MapError>;

/// Runs every oracle on one scenario and collects the verdicts.
pub(crate) fn run_panel(scenario: &Scenario, config: &HarnessConfig) -> ScenarioReport {
    let app = &scenario.app;
    let arch = &scenario.arch;
    let state = PlatformState::new(arch);

    let sink = RecordingSink::new();
    let metrics = Metrics::collecting();
    let base: FlowOutcome = Allocator::from_config(config.flow)
        .with_sink(sink.clone())
        .with_metrics(metrics.clone())
        .allocate(app, arch, &state);
    let events = sink.events();
    let snapshot = metrics.snapshot();

    let mut failures = Vec::new();
    let mut skipped = Vec::new();

    // Oracle 4 — invariants: the independent verifier re-derives every
    // validity condition of Definition 11 on the produced allocation.
    if let Ok((alloc, _)) = &base {
        match verify_allocation(app, arch, &state, alloc) {
            Ok(violations) if violations.is_empty() => {}
            Ok(violations) => failures.push(OracleFailure {
                oracle: OracleId::Invariants,
                detail: format!("verifier found violations: {violations:?}"),
            }),
            Err(e) => failures.push(OracleFailure {
                oracle: OracleId::Invariants,
                detail: format!("verifier itself failed: {e}"),
            }),
        }
    }

    // Oracle 5 — event reconciliation: the recorded stream must agree
    // with the aggregate counters the flow returned, and the metrics
    // registry (a third, independently-written tally) with both.
    if let Ok((_, stats)) = &base {
        reconcile_events(&events, stats, snapshot.as_ref(), &mut failures);
    }

    // Oracle 2 — cache consistency: a cache-disabled run (warm-started
    // incremental re-analysis still on) must land on the same allocation
    // (or the same rejection), and so must a fully from-scratch run with
    // the incremental layer off — pinning both reuse layers at once.
    let uncached: FlowOutcome = Allocator::from_config(config.flow)
        .with_cache_disabled()
        .allocate(app, arch, &state);
    compare_outcomes(
        OracleId::CacheConsistency,
        "cached",
        &base,
        "cache-disabled",
        &uncached,
        &mut failures,
    );
    let mut scratch_cfg = config.flow;
    scratch_cfg.warm_start = false;
    let from_scratch: FlowOutcome = Allocator::from_config(scratch_cfg)
        .with_cache_disabled()
        .allocate(app, arch, &state);
    compare_outcomes(
        OracleId::CacheConsistency,
        "warm-incremental",
        &uncached,
        "from-scratch",
        &from_scratch,
        &mut failures,
    );

    // Oracle 3 — parallel consistency: the slice searches and the DSE
    // sweep advertise identical results regardless of thread count.
    let sequential: FlowOutcome = Allocator::from_config(config.flow)
        .with_parallelism(false)
        .allocate(app, arch, &state);
    let parallel: FlowOutcome = Allocator::from_config(config.flow)
        .with_parallelism(true)
        .allocate(app, arch, &state);
    compare_outcomes(
        OracleId::ParallelConsistency,
        "sequential",
        &sequential,
        "parallel",
        &parallel,
        &mut failures,
    );
    compare_dse(
        &dse::explore(app, arch, &state, &config.dse_weights),
        &dse::explore_parallel(app, arch, &state, &config.dse_weights),
        &mut failures,
    );

    // Oracle 6 — online/batch equivalence: the admission service must
    // answer an admit/depart/admit trace identically request-at-a-time
    // and as one speculative batch, and its survivors must match a fresh
    // sequence allocation.
    online_service_oracle(scenario, config, &mut failures);

    // Oracle 7 — region-parallel equivalence: with the platform
    // partitioned into regions, the region-parallel batched commit path
    // must answer byte-for-byte like the sequential-commit path.
    region_equivalence_oracle(scenario, config, &mut failures, &mut skipped);

    // Oracle 8 — network/replay equivalence: the same trace pushed
    // through a real loopback TCP server must leave a commit log whose
    // offline replay reproduces the live residual byte-for-byte.
    net_replay_oracle(scenario, config, &mut failures);

    // Oracle 9 — trace reconciliation: a traced service admit's span
    // tree must fold into exactly the flow counters the service's own
    // registry accumulated, and trace ids must not influence the
    // allocation.
    trace_reconciliation_oracle(scenario, config, &mut failures);

    // Oracle 1 — HSDF equivalence (the paper's own claim).
    hsdf_oracle(scenario, config, &base, &mut failures, &mut skipped);

    // Oracle 10 — exact optimality: on enumerable instances the
    // branch-and-bound solver must equal the exhaustive optimum
    // bit-for-bit and never trail the greedy heuristic.
    exact_optimality_oracle(scenario, config, &base, &mut failures, &mut skipped);

    ScenarioReport {
        seed: None,
        scenario: scenario.name.clone(),
        allocated: base.is_ok(),
        error: base.as_ref().err().map(|e| e.to_string()),
        failures,
        skipped,
        events: if config.keep_events {
            events
        } else {
            Vec::new()
        },
        metrics: snapshot,
    }
}

/// Two allocator runs must agree on the allocation or on the rejection.
///
/// `achieved` is compared through [`Allocation::guaranteed_throughput`]
/// rather than structurally: a cache hit legitimately skips exploration,
/// so `states_explored` may differ while the throughput may not.
fn compare_outcomes(
    oracle: OracleId,
    left_label: &str,
    left: &FlowOutcome,
    right_label: &str,
    right: &FlowOutcome,
    failures: &mut Vec<OracleFailure>,
) {
    let fail = |detail: String| OracleFailure { oracle, detail };
    match (left, right) {
        (Ok((a, _)), Ok((b, _))) => {
            if let Some(diff) = diff_allocations(a, b) {
                failures.push(fail(format!("{left_label} vs {right_label}: {diff}")));
            }
        }
        (Err(a), Err(b)) => {
            if a.to_string() != b.to_string() {
                failures.push(fail(format!(
                    "{left_label} rejected with `{a}` but {right_label} with `{b}`"
                )));
            }
        }
        (Ok(_), Err(e)) => failures.push(fail(format!(
            "{left_label} allocated but {right_label} rejected with `{e}`"
        ))),
        (Err(e), Ok(_)) => failures.push(fail(format!(
            "{left_label} rejected with `{e}` but {right_label} allocated"
        ))),
    }
}

/// First structural difference between two allocations, if any.
fn diff_allocations(a: &Allocation, b: &Allocation) -> Option<String> {
    if a.binding != b.binding {
        return Some("bindings differ".into());
    }
    if a.schedules != b.schedules {
        return Some("static-order schedules differ".into());
    }
    if a.slices != b.slices {
        return Some(format!("slices differ ({:?} vs {:?})", a.slices, b.slices));
    }
    if a.usage != b.usage {
        return Some("claimed tile usage differs".into());
    }
    if a.guaranteed_throughput() != b.guaranteed_throughput() {
        return Some(format!(
            "guaranteed throughput differs ({} vs {})",
            a.guaranteed_throughput(),
            b.guaranteed_throughput()
        ));
    }
    None
}

/// Sequential and parallel DSE must produce identical point sets —
/// `explore_parallel` documents bit-identical output.
fn compare_dse(seq: &DseResult, par: &DseResult, failures: &mut Vec<OracleFailure>) {
    let fail = |detail: String| OracleFailure {
        oracle: OracleId::ParallelConsistency,
        detail,
    };
    if seq.points.len() != par.points.len() {
        failures.push(fail(format!(
            "DSE point counts differ ({} sequential vs {} parallel)",
            seq.points.len(),
            par.points.len()
        )));
        return;
    }
    for (i, (s, p)) in seq.points.iter().zip(&par.points).enumerate() {
        if s.weights != p.weights || s.connection_model != p.connection_model {
            failures.push(fail(format!("DSE point {i} configurations differ")));
        } else if let Some(diff) = diff_allocations(&s.allocation, &p.allocation) {
            failures.push(fail(format!("DSE point {i}: {diff}")));
        } else if s.wheel_claimed != p.wheel_claimed || s.tiles_used != p.tiles_used {
            failures.push(fail(format!("DSE point {i} resource claims differ")));
        }
    }
    if seq.failures.len() != par.failures.len() {
        failures.push(fail(format!(
            "DSE failure counts differ ({} sequential vs {} parallel)",
            seq.failures.len(),
            par.failures.len()
        )));
        return;
    }
    for ((sw, sm, se), (pw, pm, pe)) in seq.failures.iter().zip(&par.failures) {
        if sw != pw || sm != pm || se.to_string() != pe.to_string() {
            failures.push(fail("DSE failure lists differ".into()));
            return;
        }
    }
}

/// Oracle 5: the event stream, the aggregate [`FlowStats`], and the
/// metrics registry snapshot are written by independent code paths; any
/// drift means one of them lies.
fn reconcile_events(
    events: &[(std::time::Duration, FlowEvent)],
    stats: &FlowStats,
    snapshot: Option<&MetricsSnapshot>,
    failures: &mut Vec<OracleFailure>,
) {
    let fail = |detail: String| OracleFailure {
        oracle: OracleId::EventReconciliation,
        detail,
    };
    let kinds: Vec<&str> = events.iter().map(|(_, e)| e.kind()).collect();
    if kinds.first() != Some(&"flow_started") || kinds.last() != Some(&"flow_finished") {
        failures.push(fail(
            "stream is not bracketed by flow_started/flow_finished".into(),
        ));
    }
    let count = |k: &str| kinds.iter().filter(|&&x| x == k).count();

    let bind_attempts = count("bind_attempt");
    if bind_attempts != stats.bind_attempts {
        failures.push(fail(format!(
            "{bind_attempts} bind_attempt events but stats.bind_attempts = {}",
            stats.bind_attempts
        )));
    }

    let probes = count("slice_probe");
    if probes != stats.throughput_checks {
        failures.push(fail(format!(
            "{probes} slice_probe events but stats.throughput_checks = {}",
            stats.throughput_checks
        )));
    }
    let iterations = stats.global_slice_iterations + stats.refine_slice_iterations;
    if stats.throughput_checks != iterations {
        failures.push(fail(format!(
            "stats.throughput_checks = {} but slice iterations sum to {iterations}",
            stats.throughput_checks
        )));
    }
    if stats.throughput_checks != stats.cache_hits + stats.cache_misses {
        failures.push(fail(format!(
            "stats.throughput_checks = {} but cache hits + misses = {}",
            stats.throughput_checks,
            stats.cache_hits + stats.cache_misses
        )));
    }

    let recurrence_states: usize = events
        .iter()
        .filter_map(|(_, e)| match e {
            FlowEvent::ScheduleRecurrence { states, .. } => Some(*states),
            _ => None,
        })
        .sum();
    if recurrence_states != stats.schedule_states {
        failures.push(fail(format!(
            "schedule_recurrence events sum to {recurrence_states} states but \
             stats.schedule_states = {}",
            stats.schedule_states
        )));
    }

    // The registry counts at the same sites the stats deltas derive from,
    // through entirely separate plumbing — a fresh single-run allocator
    // must therefore agree exactly.
    if let Some(m) = snapshot {
        let pairs: [(&str, usize); 7] = [
            ("bind_attempts", stats.bind_attempts),
            ("throughput_checks", stats.throughput_checks),
            ("global_slice_iterations", stats.global_slice_iterations),
            ("refine_slice_iterations", stats.refine_slice_iterations),
            ("cache_hits", stats.cache_hits),
            ("cache_misses", stats.cache_misses),
            ("schedule_states", stats.schedule_states),
        ];
        for (name, expected) in pairs {
            let got = m.counter(name);
            if got != expected as u64 {
                failures.push(fail(format!(
                    "metrics counter {name} = {got} but stats say {expected}"
                )));
            }
        }
        if m.counter("flows_started") != 1 || m.counter("flows_succeeded") != 1 {
            failures.push(fail(format!(
                "metrics saw {} flows started / {} succeeded on a single successful run",
                m.counter("flows_started"),
                m.counter("flows_succeeded")
            )));
        }
    }
}

/// Oracle 6: online/batch equivalence of the admission service.
///
/// Drives an admit → admit → depart-latest → depart-bogus → admit →
/// status trace through one [`AllocationService`] a request at a time,
/// then replays the *same* request sequence through a second service as
/// one batch (engaging the parallel speculative path). Both must produce
/// identical responses and identical residual platform state. Departing
/// the *most recently admitted* live session keeps the trace LIFO, which
/// makes a third check sound: the surviving sessions, re-allocated from
/// scratch with `allocate_sequence`, must reproduce the exact
/// allocations and residual the service holds — proving departures
/// reclaim precisely what admissions claimed.
fn online_service_oracle(
    scenario: &Scenario,
    config: &HarnessConfig,
    failures: &mut Vec<OracleFailure>,
) {
    use sdfrs_core::service::{AllocationService, ServiceConfig, ServiceRequest, ServiceResponse};
    use sdfrs_core::SessionId;

    let oracle = OracleId::OnlineBatchEquivalence;
    let app = &scenario.app;
    let arch = &scenario.arch;
    let bogus = SessionId::from_raw(u64::MAX);

    let mut svc_config = ServiceConfig::default();
    svc_config.flow = config.flow;

    // Online run: drain after every request, recording the trace. The
    // depart target is chosen *during* the run (latest live session), so
    // the recorded trace is fully concrete for the batched replay.
    let mut online = AllocationService::from_config(arch, svc_config);
    let mut trace: Vec<ServiceRequest> = Vec::new();
    let mut online_responses: Vec<ServiceResponse> = Vec::new();
    let admit = || ServiceRequest::Admit {
        app: Box::new(app.clone()),
    };
    let step = |svc: &mut AllocationService,
                trace: &mut Vec<ServiceRequest>,
                out: &mut Vec<ServiceResponse>,
                req: ServiceRequest| {
        trace.push(req.clone());
        svc.enqueue(req);
        let drained = svc.drain();
        debug_assert_eq!(drained.len(), 1);
        out.extend(drained.into_iter().map(|(_, r)| r));
    };
    step(&mut online, &mut trace, &mut online_responses, admit());
    step(&mut online, &mut trace, &mut online_responses, admit());
    let latest = online.session_ids().last().copied().unwrap_or(bogus);
    step(
        &mut online,
        &mut trace,
        &mut online_responses,
        ServiceRequest::Depart { session: latest },
    );
    step(
        &mut online,
        &mut trace,
        &mut online_responses,
        ServiceRequest::Depart { session: bogus },
    );
    step(&mut online, &mut trace, &mut online_responses, admit());
    step(
        &mut online,
        &mut trace,
        &mut online_responses,
        ServiceRequest::Status,
    );

    // Batched replay: same requests, one drain, speculation engaged.
    let mut batch_config = svc_config;
    batch_config.batch_capacity = trace.len();
    let mut batched = AllocationService::from_config(arch, batch_config);
    for req in &trace {
        batched.enqueue(req.clone());
    }
    let batched_responses: Vec<ServiceResponse> =
        batched.drain().into_iter().map(|(_, r)| r).collect();
    if online_responses != batched_responses {
        let first = online_responses
            .iter()
            .zip(&batched_responses)
            .position(|(a, b)| a != b);
        failures.push(OracleFailure {
            oracle,
            detail: format!(
                "online and batched drains disagree (first divergent response: {:?})",
                first
            ),
        });
        return;
    }
    if online.residual() != batched.residual() {
        failures.push(OracleFailure {
            oracle,
            detail: "online and batched drains leave different residual platform state".into(),
        });
        return;
    }

    // Survivor replay: because departures were LIFO, the live sessions
    // were each admitted on exactly the state a fresh sequence of their
    // applications reproduces.
    let survivors = online.session_ids();
    let final_apps: Vec<_> = survivors
        .iter()
        .filter_map(|&id| online.application(id).cloned())
        .collect();
    let replay = Allocator::from_config(config.flow).allocate_sequence(&final_apps, arch);
    if let Some(e) = &replay.failure {
        failures.push(OracleFailure {
            oracle,
            detail: format!("fresh sequence rejected a surviving session's application with `{e}`"),
        });
        return;
    }
    for (i, &id) in survivors.iter().enumerate() {
        let held = online.allocation(id).expect("survivor is live");
        if let Some(diff) = diff_allocations(held, &replay.allocations[i]) {
            failures.push(OracleFailure {
                oracle,
                detail: format!("surviving session {id} vs fresh replay: {diff}"),
            });
        }
    }
    if replay.final_state != *online.residual() {
        failures.push(OracleFailure {
            oracle,
            detail: "service residual differs from fresh-replay platform state \
                     (departure did not reclaim exactly its claim)"
                .into(),
        });
    }
}

/// Oracle 7: region-parallel vs. sequential-commit admission.
///
/// Partitions the scenario platform into regions — a coarse split (2
/// regions) and the finest split (one tile per region, which starves
/// most home regions and forces the escalation chain) — and runs the
/// same admit/depart trace through two services with identical region
/// maps: one draining with `region_parallel_commit` off (sequential,
/// the pinned reference) and one with it on (phase-A speculative
/// allocation plus direct commits). The JSONL response lines must match
/// byte-for-byte, and residual state and live sessions must be
/// identical — the determinism claim of DESIGN.md §15.
fn region_equivalence_oracle(
    scenario: &Scenario,
    config: &HarnessConfig,
    failures: &mut Vec<OracleFailure>,
    skipped: &mut Vec<(OracleId, String)>,
) {
    use sdfrs_core::service::{AllocationService, ServiceConfig, ServiceRequest, ServiceResponse};
    use sdfrs_core::SessionId;

    let oracle = OracleId::RegionEquivalence;
    let app = &scenario.app;
    let arch = &scenario.arch;
    if arch.tile_count() < 2 {
        skipped.push((oracle, "single-tile platform has only one region".into()));
        return;
    }

    let mut region_counts = vec![2usize, arch.tile_count()];
    region_counts.dedup();

    for regions in region_counts {
        // The trace: enough admits to spread over several homes, one
        // departure in the middle (a barrier that dirties a region), a
        // bogus departure and a status probe.
        let trace_len = 7;
        let build = |parallel: bool| {
            let mut svc_config = ServiceConfig::default();
            svc_config.flow = config.flow;
            svc_config.regions = regions;
            svc_config.region_parallel_commit = parallel;
            svc_config.batch_capacity = trace_len;
            AllocationService::from_config(arch, svc_config)
        };
        let drive = |svc: &mut AllocationService| -> Vec<(u64, ServiceResponse)> {
            let admit = || ServiceRequest::Admit {
                app: Box::new(app.clone()),
            };
            let mut out = Vec::new();
            for req in [admit(), admit(), admit(), admit()] {
                svc.enqueue(req);
            }
            out.extend(svc.drain());
            // Depart the first live session (if any), then admit twice
            // more in a fresh batch against the dirtied platform.
            let target = svc
                .session_ids()
                .first()
                .copied()
                .unwrap_or(SessionId::from_raw(u64::MAX));
            for req in [
                ServiceRequest::Depart { session: target },
                admit(),
                admit(),
                ServiceRequest::Status,
            ] {
                svc.enqueue(req);
            }
            out.extend(svc.drain());
            out
        };

        let mut sequential = build(false);
        let mut parallel = build(true);
        let seq_out = drive(&mut sequential);
        let par_out = drive(&mut parallel);

        let seq_lines: Vec<String> = seq_out.iter().map(|(s, r)| r.to_json_line(*s)).collect();
        let par_lines: Vec<String> = par_out.iter().map(|(s, r)| r.to_json_line(*s)).collect();
        if seq_lines != par_lines {
            let first = seq_lines.iter().zip(&par_lines).position(|(a, b)| a != b);
            failures.push(OracleFailure {
                oracle,
                detail: format!(
                    "regions={regions}: sequential and region-parallel commits disagree \
                     (first divergent response line: {first:?})"
                ),
            });
            return;
        }
        if sequential.residual() != parallel.residual() {
            failures.push(OracleFailure {
                oracle,
                detail: format!(
                    "regions={regions}: sequential and region-parallel commits leave \
                     different residual platform state"
                ),
            });
            return;
        }
        if sequential.session_ids() != parallel.session_ids() {
            failures.push(OracleFailure {
                oracle,
                detail: format!(
                    "regions={regions}: sequential and region-parallel commits hold \
                     different live sessions"
                ),
            });
            return;
        }
    }
}

/// Oracle 8: network run vs. commit-log replay.
///
/// Spins up a real loopback [`sdfrs_net::NetServer`] around a fresh
/// service, drives the scenario's admit/depart trace through *two*
/// interleaved TCP connections (strict per-request lockstep, so the
/// global order is deterministic while still exercising the
/// multi-connection path), then shuts the server down and replays its
/// commit log offline through
/// [`replay_commit_log`](sdfrs_core::service::replay_commit_log). The
/// replayed service must hold the identical
/// residual digest and live-session count, and the number of committed
/// responses observed on the wire must equal the commit-log length —
/// the determinism contract of DESIGN.md §16.
fn net_replay_oracle(
    scenario: &Scenario,
    config: &HarnessConfig,
    failures: &mut Vec<OracleFailure>,
) {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    use sdfrs_core::service::{
        replay_commit_log, AllocationService, CommitLog, ServiceConfig, ServiceRequest,
    };
    use sdfrs_net::server::{NetServer, ServerOptions};
    use sdfrs_net::wire::{response_ok, response_u64, FrameBuffer};

    let oracle = OracleId::NetReplay;
    let app = &scenario.app;
    let arch = &scenario.arch;

    let mut svc_config = ServiceConfig::default();
    svc_config.flow = config.flow;

    // One lockstep JSONL client; io errors surface as oracle failures
    // rather than killing the whole sweep.
    struct Conn {
        stream: TcpStream,
        frames: FrameBuffer,
    }
    impl Conn {
        fn open(addr: std::net::SocketAddr) -> std::io::Result<Conn> {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(Duration::from_millis(20)))?;
            Ok(Conn {
                stream,
                frames: FrameBuffer::default(),
            })
        }
        fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
            self.stream.write_all(line.as_bytes())?;
            self.stream.write_all(b"\n")?;
            let deadline = std::time::Instant::now() + Duration::from_secs(60);
            let mut buf = [0u8; 4096];
            loop {
                if let Some(line) = self
                    .frames
                    .next_line()
                    .map_err(|e| std::io::Error::other(e.to_string()))?
                {
                    return Ok(line);
                }
                if std::time::Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "no response within 60s",
                    ));
                }
                match self.stream.read(&mut buf) {
                    Ok(0) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "server closed the connection",
                        ))
                    }
                    Ok(n) => self.frames.push_bytes(&buf[..n]),
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(e) => return Err(e),
                }
            }
        }
    }

    let run = || -> std::io::Result<Option<String>> {
        let options = ServerOptions {
            deadline: Duration::from_secs(120),
            queue_watermark: 4096,
            ..ServerOptions::default()
        };
        let server = NetServer::spawn(
            AllocationService::from_config(arch, svc_config),
            CommitLog::new(),
            options,
            "127.0.0.1:0",
        )?;
        let addr = server.local_addr();
        let mut first = Conn::open(addr)?;
        let mut second = Conn::open(addr)?;

        // The oracle-6 trace shape, alternated across the connections:
        // admit, admit, depart latest, depart bogus, admit, status.
        let admit_line = ServiceRequest::Admit {
            app: Box::new(app.clone()),
        }
        .to_json_line(0);
        let mut latest: Option<u64> = None;
        let mut commits = 0u64;
        fn observe(response: &str, commits: &mut u64, latest: &mut Option<u64>) {
            if response_ok(response) == Some(true)
                && response_u64(response, "id").is_some()
                && sdfrs_net::wire::response_str(response, "op").as_deref() != Some("status")
            {
                *commits += 1;
                if let Some(session) = response_u64(response, "session") {
                    *latest = Some(session);
                }
            }
        }
        observe(&first.round_trip(&admit_line)?, &mut commits, &mut latest);
        observe(&second.round_trip(&admit_line)?, &mut commits, &mut latest);
        let target = latest.unwrap_or(u64::MAX);
        observe(
            &first.round_trip(&format!("{{\"op\":\"depart\",\"session\":{target}}}"))?,
            &mut commits,
            &mut latest,
        );
        observe(
            &second.round_trip("{\"op\":\"depart\",\"session\":18446744073709551615}")?,
            &mut commits,
            &mut latest,
        );
        observe(&first.round_trip(&admit_line)?, &mut commits, &mut latest);
        observe(
            &second.round_trip("{\"op\":\"status\"}")?,
            &mut commits,
            &mut latest,
        );
        drop(first);
        drop(second);

        let report = server.shutdown();
        if report.stats.requests_shed != 0 {
            return Ok(Some(format!(
                "{} requests shed despite the relaxed watermark",
                report.stats.requests_shed
            )));
        }
        if report.commit_log.len() as u64 != commits {
            return Ok(Some(format!(
                "wire observed {commits} commits but the log holds {}",
                report.commit_log.len()
            )));
        }
        let lines = report.commit_log.lines().iter().map(String::as_str);
        let replayed = match replay_commit_log(arch, svc_config, lines) {
            Ok(replayed) => replayed,
            Err(e) => return Ok(Some(format!("commit log does not replay: {e}"))),
        };
        if replayed.residual_digest() != report.residual_digest() {
            return Ok(Some(
                "replayed residual digest differs from the live server's".into(),
            ));
        }
        if replayed.live_count() != report.service.live_count() {
            return Ok(Some(format!(
                "replay holds {} live sessions, the server {}",
                replayed.live_count(),
                report.service.live_count()
            )));
        }
        Ok(None)
    };

    match run() {
        Ok(None) => {}
        Ok(Some(detail)) => failures.push(OracleFailure { oracle, detail }),
        Err(e) => failures.push(OracleFailure {
            oracle,
            detail: format!("network round trip failed: {e}"),
        }),
    }
}

/// Oracle 1: on the binding-aware graph the allocation flow actually
/// analyzed (or a first-fit fallback binding when the flow rejected the
/// scenario), the self-timed state-space throughput must equal `γ(ref) /
/// MCM` of the HSDF conversion — Theorem-level equivalence the whole
/// fast path rests on.
fn hsdf_oracle(
    scenario: &Scenario,
    config: &HarnessConfig,
    base: &FlowOutcome,
    failures: &mut Vec<OracleFailure>,
    skipped: &mut Vec<(OracleId, String)>,
) {
    let app = &scenario.app;
    let arch = &scenario.arch;
    let oracle = OracleId::HsdfEquivalence;
    let mut skip = |reason: String| skipped.push((oracle, reason));

    let (binding, slices) = match base {
        Ok((alloc, _)) => (alloc.binding.clone(), alloc.slices.clone()),
        // The equivalence holds for *any* complete binding, so an
        // infeasible scenario still exercises this oracle: bind first-fit
        // onto type-feasible tiles with full-wheel slices.
        Err(_) => match fallback_binding(scenario) {
            Some(pair) => pair,
            None => {
                skip("no type-feasible fallback binding".into());
                return;
            }
        },
    };

    let ba = match BindingAwareGraph::build_with_model(
        app,
        arch,
        &binding,
        &slices,
        config.flow.connection_model,
    ) {
        Ok(ba) => ba,
        Err(e) => {
            skip(format!("binding-aware graph construction failed: {e}"));
            return;
        }
    };
    let g = ba.graph();

    match hsdf_size(g) {
        Ok(n) if n <= config.hsdf_limit => {}
        Ok(n) => {
            skip(format!(
                "HSDF conversion has {n} actors (limit {})",
                config.hsdf_limit
            ));
            return;
        }
        // A binding-aware graph is consistent by construction; an
        // inconsistency here is a real defect, not a skip.
        Err(e) => {
            failures.push(OracleFailure {
                oracle,
                detail: format!("binding-aware graph is inconsistent: {e}"),
            });
            return;
        }
    }
    // Sync actors carry no self-edge, but their auto-concurrency is still
    // bounded: every binding-aware channel sits on a buffer cycle, so the
    // state space stays finite and the budget skip below catches any
    // scenario where it does not stay *small*.
    let reference = ba.ba_actor(app.output_actor());
    let selftimed = SelfTimedExecutor::new(g)
        .with_state_budget(config.selftimed_budget)
        .throughput(reference);
    let mcr = hsdf_reference_throughput(g, reference);

    match (selftimed, mcr) {
        (Err(SdfError::BudgetExceeded { .. }), _) => {
            skip(format!(
                "self-timed exploration exceeded {} states",
                config.selftimed_budget
            ));
        }
        (_, Err(e)) => failures.push(OracleFailure {
            oracle,
            detail: format!("HSDF analysis failed on the binding-aware graph: {e}"),
        }),
        (Ok(_), Ok(None)) => {
            // No cycle through the reference bounds the rate; MCR sees an
            // acyclic (or zero-ratio) graph. With self-edges everywhere
            // this should be unreachable, so treat it as a skip with a
            // loud reason rather than silently passing.
            skip("HSDF MCR reports unbounded throughput".into());
        }
        (Ok(st), Ok(Some(hs))) => {
            let (actor_thr, iter_thr) = match config.fault {
                // The deliberate defect: a shim that misreports one extra
                // reference completion per period.
                Some(FaultInjection::SelfTimedOffByOne) => {
                    let gamma_ref = g
                        .repetition_vector()
                        .map(|gamma| gamma[reference])
                        .unwrap_or(1)
                        .max(1);
                    let actor =
                        Rational::new(st.firings_in_period as i128 + 1, st.period.max(1) as i128);
                    let iter = actor / Rational::from_integer(gamma_ref as i128);
                    (actor, iter)
                }
                None => (st.actor_throughput, st.iteration_throughput),
            };
            if iter_thr != hs.iteration_throughput || actor_thr != hs.actor_throughput {
                failures.push(OracleFailure {
                    oracle,
                    detail: format!(
                        "self-timed throughput {actor_thr} (iteration {iter_thr}) but HSDF \
                         MCR gives {} (iteration {}) on {} HSDF actors",
                        hs.actor_throughput, hs.iteration_throughput, hs.hsdf_actors
                    ),
                });
            }
        }
        (Err(SdfError::Deadlock { .. }), Ok(Some(hs))) => {
            if !hs.iteration_throughput.is_zero() {
                failures.push(OracleFailure {
                    oracle,
                    detail: format!(
                        "self-timed execution deadlocks but HSDF MCR gives throughput {}",
                        hs.iteration_throughput
                    ),
                });
            }
        }
        (Err(e), Ok(_)) => failures.push(OracleFailure {
            oracle,
            detail: format!("self-timed analysis failed on the binding-aware graph: {e}"),
        }),
    }
}

/// Oracle 10 — exact optimality.
///
/// Gated to instances small enough to enumerate every (binding,
/// static-order, slice) assignment outright (≤ 4 actors, ≤ 2 tiles);
/// everything larger is recorded as a skip. On enumerable instances:
///
/// * the branch-and-bound solver (default budget) must reproduce the
///   exhaustive enumeration's outcome **bit-for-bit** — identical
///   binding, schedules, slices, and achieved throughput, or the
///   identical rejection — which pins both the bound soundness (pruning
///   never removes the optimum) and the deterministic tie-breaking;
/// * when the greedy heuristic admits, the exact solver must admit too,
///   with a certified lower bound no worse than greedy's achieved
///   throughput;
/// * every admitting route must satisfy the throughput constraint λ.
fn exact_optimality_oracle(
    scenario: &Scenario,
    config: &HarnessConfig,
    base: &FlowOutcome,
    failures: &mut Vec<OracleFailure>,
    skipped: &mut Vec<(OracleId, String)>,
) {
    let app = &scenario.app;
    let arch = &scenario.arch;
    let oracle = OracleId::ExactOptimality;
    let actors = app.graph().actor_count();
    let tiles = arch.tile_count();
    if actors > 4 || tiles > 2 {
        skipped.push((
            oracle,
            format!("{actors} actors × {tiles} tiles is beyond exhaustive enumeration"),
        ));
        return;
    }
    let state = PlatformState::new(arch);
    let fail = |failures: &mut Vec<OracleFailure>, detail: String| {
        failures.push(OracleFailure { oracle, detail });
    };

    let exact = Allocator::from_config(config.flow).solve_with(
        &sdfrs_core::Exact::default(),
        app,
        arch,
        &state,
    );
    let exhaustive =
        enumerate_exhaustive(&mut Allocator::from_config(config.flow), app, arch, &state);

    match (&exact, &exhaustive) {
        (Ok(e), Ok(x)) => {
            if let Some(diff) = diff_allocations(&e.allocation, &x.allocation) {
                fail(
                    failures,
                    format!("exact vs exhaustive allocations diverge: {diff}"),
                );
            }
            if e.report.lower != x.report.lower {
                fail(
                    failures,
                    format!(
                        "exact lower bound {} but the exhaustive optimum is {}",
                        e.report.lower, x.report.lower
                    ),
                );
            }
            if !e.report.proven_optimal {
                fail(
                    failures,
                    "exact search left a gap on an enumerable instance".into(),
                );
            }
        }
        (Err(a), Err(b)) => {
            if a.to_string() != b.to_string() {
                fail(
                    failures,
                    format!("exact rejected with `{a}` but exhaustive with `{b}`"),
                );
            }
        }
        (Ok(_), Err(e)) => fail(
            failures,
            format!("exact admitted but exhaustive enumeration rejected with `{e}`"),
        ),
        (Err(e), Ok(_)) => fail(
            failures,
            format!("exhaustive enumeration admits but exact rejected with `{e}`"),
        ),
    }

    // Exact dominates greedy, and every admitting route satisfies λ.
    let lambda = app.throughput_constraint();
    if let Ok((alloc, _)) = base {
        let greedy_achieved = alloc.guaranteed_throughput();
        if greedy_achieved < lambda {
            fail(
                failures,
                format!("greedy admitted below λ: {greedy_achieved} < {lambda}"),
            );
        }
        match &exact {
            Ok(e) => {
                if e.report.lower < greedy_achieved {
                    fail(
                        failures,
                        format!(
                            "exact lower bound {} trails greedy's achieved {}",
                            e.report.lower, greedy_achieved
                        ),
                    );
                }
            }
            Err(e) => fail(
                failures,
                format!("greedy admitted but exact rejected with `{e}`"),
            ),
        }
    }
    if let Ok(e) = &exact {
        if e.report.lower < lambda {
            fail(
                failures,
                format!("exact admitted below λ: {} < {lambda}", e.report.lower),
            );
        }
        if e.report.upper < e.report.lower {
            fail(
                failures,
                format!(
                    "exact bound pair is inverted: [{}, {}]",
                    e.report.lower, e.report.upper
                ),
            );
        }
    }
}

/// First-fit type-feasible binding with full-wheel slices, for running
/// the HSDF oracle on scenarios the flow rejected.
fn fallback_binding(scenario: &Scenario) -> Option<(Binding, Vec<u64>)> {
    let app = &scenario.app;
    let arch = &scenario.arch;
    let mut binding = Binding::new(app.graph().actor_count());
    for (a, _) in app.graph().actors() {
        let tile = arch
            .tiles()
            .find(|(_, t)| app.actor_requirements(a).supports(t.processor_type()))
            .map(|(id, _)| id)?;
        binding.bind(a, tile);
    }
    let slices = arch.tiles().map(|(_, t)| t.wheel_size()).collect();
    Some((binding, slices))
}

/// Oracle 9 — trace reconciliation.
///
/// Runs one traced admit through the service and checks three things:
///
/// * the per-request event capture (the span tree's `execute` events),
///   folded through the independent event→metrics bridge
///   ([`MetricsRegistry::record_event`](sdfrs_core::MetricsRegistry::record_event)),
///   reproduces exactly the flow counters the service's own registry
///   accumulated at the instrumentation sites;
/// * the trace id never influences the allocation — a second run under
///   a different id must produce the identical event stream (modulo
///   timestamps) and the identical response;
/// * the trace's annotations are complete: the outcome matches the
///   response, and a committed admit carries the warm-cache-hit flag.
fn trace_reconciliation_oracle(
    scenario: &Scenario,
    config: &HarnessConfig,
    failures: &mut Vec<OracleFailure>,
) {
    use sdfrs_core::service::{CommitLog, ServiceConfig, ServiceRequest, ServiceResponse};
    use sdfrs_core::trace::{RequestTrace, TraceId, TraceOutcome};
    use sdfrs_core::AllocationService;

    let oracle = OracleId::TraceReconciliation;
    let mut svc_config = ServiceConfig::default();
    svc_config.flow = config.flow;

    let traced_admit = |trace_id: u64| {
        let metrics = Metrics::collecting();
        let mut service = AllocationService::from_config(&scenario.arch, svc_config)
            .with_metrics(metrics.clone());
        let mut log = CommitLog::new();
        let mut trace = RequestTrace::begin(TraceId::from_raw(trace_id), "admit");
        trace.mark_parsed();
        trace.mark_dequeued(0);
        let request = ServiceRequest::Admit {
            app: Box::new(scenario.app.clone()),
        };
        let response = service.execute_traced(request, &mut log, &mut trace);
        let completed = trace.finish(TraceOutcome::from_response(&response));
        (response, completed, metrics.snapshot())
    };

    let (response, completed, snapshot) = traced_admit(0x0123_4567_89AB_CDEF);
    let (response_b, completed_b, _) = traced_admit(0xFEDC_BA98_7654_3210);

    // Trace-id independence: same scenario, different id, identical
    // allocation outcome and event stream.
    if response != response_b {
        failures.push(OracleFailure {
            oracle,
            detail: "response differs under a different trace id".into(),
        });
    }
    let kinds: Vec<&str> = completed.events.iter().map(|(_, e)| e.kind()).collect();
    let kinds_b: Vec<&str> = completed_b.events.iter().map(|(_, e)| e.kind()).collect();
    if kinds != kinds_b {
        failures.push(OracleFailure {
            oracle,
            detail: format!(
                "event stream differs under a different trace id ({} vs {} events)",
                kinds.len(),
                kinds_b.len()
            ),
        });
    }

    // Outcome annotation agrees with the response.
    let expected_label = match &response {
        ServiceResponse::Admitted { .. } => "admitted",
        ServiceResponse::Rejected { .. } => "rejected",
        other => {
            failures.push(OracleFailure {
                oracle,
                detail: format!("admit answered neither admitted nor rejected: {other:?}"),
            });
            return;
        }
    };
    if completed.outcome.label() != expected_label {
        failures.push(OracleFailure {
            oracle,
            detail: format!(
                "trace outcome {:?} but the response says {expected_label}",
                completed.outcome.label()
            ),
        });
    }
    if matches!(response, ServiceResponse::Admitted { .. }) && completed.warm_cache_hit.is_none() {
        failures.push(OracleFailure {
            oracle,
            detail: "committed admit is missing the warm_cache_hit annotation".into(),
        });
    }

    // Fold the span tree's events into a fresh registry through the
    // event→metrics bridge and compare the flow counters the bridge
    // reconstructs against the service registry's direct-site tallies.
    let rebuilt = Metrics::collecting();
    rebuilt.record(|registry| {
        for (_, event) in &completed.events {
            registry.record_event(event);
        }
    });
    let (Some(direct), Some(rebuilt)) = (snapshot, rebuilt.snapshot()) else {
        failures.push(OracleFailure {
            oracle,
            detail: "collecting metrics handle returned no snapshot".into(),
        });
        return;
    };
    for name in [
        "flows_started",
        "bind_attempts",
        "throughput_checks",
        "global_slice_iterations",
        "refine_slice_iterations",
        "cache_hits",
        "cache_misses",
        "schedule_states",
    ] {
        let want = direct.counter(name);
        let got = rebuilt.counter(name);
        if want != got {
            failures.push(OracleFailure {
                oracle,
                detail: format!(
                    "span-tree events rebuild {name} = {got} but the service registry \
                     counted {want}"
                ),
            });
        }
    }
}
