//! Greedy scenario shrinking.
//!
//! When an oracle fires on a generated scenario, the raw reproduction is
//! noisy: six actors, a dozen channels, four tiles. [`shrink`] reduces it
//! to a minimal failing case by repeatedly trying structural
//! simplifications — drop an actor, drop a tile, drop a channel, set all
//! rates to one, halve execution times — and keeping any mutation on
//! which the caller's predicate still fails. The result is what gets
//! committed to the regression corpus.

use sdfrs_appmodel::requirements::ActorRequirements;
use sdfrs_appmodel::ApplicationGraph;
use sdfrs_gen::Scenario;
use sdfrs_platform::{ArchitectureGraph, TileId};
use sdfrs_sdf::{ActorId, ChannelId, SdfGraph};

/// Greedily shrinks `scenario` while `still_fails` keeps returning `true`
/// on the candidate, evaluating the predicate at most `max_evals` times.
///
/// Each pass tries every candidate mutation in a fixed order and restarts
/// from the first one that still fails; the loop ends at a fixpoint (no
/// candidate fails any more) or when the evaluation budget runs out.
/// The input scenario is assumed to fail — callers check that first.
pub fn shrink(
    scenario: &Scenario,
    mut still_fails: impl FnMut(&Scenario) -> bool,
    max_evals: usize,
) -> Scenario {
    let mut current = scenario.clone();
    let mut evals = 0;
    'outer: loop {
        for candidate in candidates(&current) {
            if evals >= max_evals {
                break 'outer;
            }
            evals += 1;
            if still_fails(&candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        break;
    }
    current.name = format!("{}_min", scenario.name);
    current
}

/// Candidate one-step simplifications of a scenario, most aggressive
/// first (dropping an actor removes its channels too).
fn candidates(scenario: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    let app = &scenario.app;
    let graph = app.graph();

    for victim in graph.actor_ids() {
        if let Some(smaller) = drop_actor(app, victim) {
            out.push(with_app(scenario, smaller));
        }
    }
    for victim in scenario.arch.tile_ids() {
        if let Some(smaller) = drop_tile(&scenario.arch, victim) {
            out.push(Scenario::new(scenario.name.clone(), app.clone(), smaller));
        }
    }
    for (victim, ch) in graph.channels() {
        // Self-edges bound auto-concurrency; dropping one changes the
        // semantics the oracles rely on, so only plain channels go.
        if !ch.is_self_edge() {
            if let Some(smaller) = drop_channel(app, victim) {
                out.push(with_app(scenario, smaller));
            }
        }
    }
    if graph
        .channels()
        .any(|(_, c)| !c.is_self_edge() && (c.production_rate() > 1 || c.consumption_rate() > 1))
    {
        if let Some(simpler) = rebuild_app(app, |_| true, |_| true, &|_| 1, &|t| t) {
            out.push(with_app(scenario, simpler));
        }
    }
    if has_large_execution_times(app) {
        let halve = |t: u64| (t / 2).max(1);
        if let Some(simpler) = rebuild_app(app, |_| true, |_| true, &|r| r, &halve) {
            out.push(with_app(scenario, simpler));
        }
    }
    out
}

fn with_app(scenario: &Scenario, app: ApplicationGraph) -> Scenario {
    Scenario::new(scenario.name.clone(), app, scenario.arch.clone())
}

fn has_large_execution_times(app: &ApplicationGraph) -> bool {
    app.graph().actors().any(|(a, actor)| {
        actor.execution_time() > 1
            || app
                .actor_requirements(a)
                .supported_types()
                .any(|pt| app.execution_time(a, pt).unwrap_or(0) > 1)
    })
}

fn drop_actor(app: &ApplicationGraph, victim: ActorId) -> Option<ApplicationGraph> {
    if app.graph().actor_count() <= 1 {
        return None;
    }
    rebuild_app(app, |a| a != victim, |_| true, &|r| r, &|t| t)
}

fn drop_channel(app: &ApplicationGraph, victim: ChannelId) -> Option<ApplicationGraph> {
    rebuild_app(app, |_| true, |d| d != victim, &|r| r, &|t| t)
}

/// Clones the application, keeping only the selected actors/channels and
/// mapping every port rate / execution time through the given functions.
/// Returns `None` when the result is empty or fails application-model
/// validation (e.g. the mutation disconnected a required structure).
fn rebuild_app(
    app: &ApplicationGraph,
    keep_actor: impl Fn(ActorId) -> bool,
    keep_channel: impl Fn(ChannelId) -> bool,
    map_rate: &dyn Fn(u64) -> u64,
    map_time: &dyn Fn(u64) -> u64,
) -> Option<ApplicationGraph> {
    let src = app.graph();
    let mut g = SdfGraph::new(src.name());
    let mut map: Vec<Option<ActorId>> = vec![None; src.actor_count()];
    for (a, actor) in src.actors() {
        if keep_actor(a) {
            map[a.index()] = Some(g.add_actor(actor.name(), map_time(actor.execution_time())));
        }
    }
    if g.actor_count() == 0 {
        return None;
    }

    let mut kept_channels = Vec::new();
    for (d, ch) in src.channels() {
        if !keep_channel(d) {
            continue;
        }
        let (Some(s), Some(t)) = (map[ch.src().index()], map[ch.dst().index()]) else {
            continue;
        };
        // A rewritten self-edge must stay rate-balanced or the graph
        // turns inconsistent; rates on self-edges are untouched.
        let (p, q) = if ch.is_self_edge() {
            (ch.production_rate(), ch.consumption_rate())
        } else {
            (
                map_rate(ch.production_rate()),
                map_rate(ch.consumption_rate()),
            )
        };
        let nd = g.add_channel(ch.name(), s, p, t, q, ch.initial_tokens());
        kept_channels.push((nd, d));
    }

    let mut builder = ApplicationGraph::builder(g, app.throughput_constraint());
    for (a, _) in src.actors() {
        if let Some(na) = map[a.index()] {
            builder = builder.actor(na, map_requirements(app.actor_requirements(a), map_time));
        }
    }
    for (nd, d) in kept_channels {
        builder = builder.channel(nd, *app.channel_requirements(d));
    }
    // Keep the output actor; if it was the victim, fall back to the
    // last surviving actor (mirroring the generator's convention).
    let output = map[app.output_actor().index()].or_else(|| map.iter().rev().find_map(|&m| m))?;
    builder.output_actor(output).build().ok()
}

fn map_requirements(reqs: &ActorRequirements, map_time: &dyn Fn(u64) -> u64) -> ActorRequirements {
    let mut out = ActorRequirements::new();
    for pt in reqs.supported_types() {
        let tau = reqs.execution_time(pt).expect("supported type has a time");
        let mu = reqs.memory(pt).expect("supported type has a memory need");
        out = out.on(pt.clone(), map_time(tau).max(1), mu);
    }
    out
}

fn drop_tile(arch: &ArchitectureGraph, victim: TileId) -> Option<ArchitectureGraph> {
    if arch.tile_count() <= 1 {
        return None;
    }
    let mut out = ArchitectureGraph::new(arch.name());
    let mut map: Vec<Option<TileId>> = vec![None; arch.tile_count()];
    for (t, tile) in arch.tiles() {
        if t != victim {
            map[t.index()] = Some(out.add_tile(tile.clone()));
        }
    }
    for (_, c) in arch.connections() {
        if let (Some(s), Some(d)) = (map[c.src().index()], map[c.dst().index()]) {
            out.add_connection(s, d, c.latency());
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(seed: u64) -> Scenario {
        Scenario::sample(seed)
    }

    #[test]
    fn shrinking_an_always_failing_scenario_reaches_one_actor() {
        let s = scenario(0);
        let min = shrink(&s, |_| true, 500);
        assert_eq!(min.app.graph().actor_count(), 1);
        assert_eq!(min.arch.tile_count(), 1);
        assert!(min.name.ends_with("_min"));
    }

    #[test]
    fn shrunk_scenarios_stay_well_formed() {
        for seed in 0..8 {
            let s = scenario(seed);
            let min = shrink(&s, |_| true, 500);
            assert!(min.app.graph().validate().is_ok());
            assert!(min.app.graph().repetition_vector().is_ok());
        }
    }

    #[test]
    fn predicate_failures_keep_the_original() {
        let s = scenario(1);
        let min = shrink(&s, |_| false, 500);
        assert_eq!(min.app, s.app);
        assert_eq!(min.arch, s.arch);
    }

    #[test]
    fn the_eval_budget_is_respected() {
        let s = scenario(2);
        let mut evals = 0;
        let _ = shrink(
            &s,
            |_| {
                evals += 1;
                true
            },
            7,
        );
        assert!(evals <= 7);
    }
}
