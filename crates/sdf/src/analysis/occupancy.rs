//! Channel-occupancy analysis: the maximum number of tokens each channel
//! holds during the (periodic) self-timed execution.
//!
//! This is the measurement that justifies the buffer modeling of
//! Sec 8.1: a channel `d` paired with a reverse channel holding α initial
//! tokens can never hold more than `Tok(d) + α` tokens — the invariant
//! `tokens(d) + tokens(reverse) + in-flight = Tok(d) + α` is conserved by
//! every firing. [`max_occupancy`] observes the actual peak, which a
//! designer compares against the memory budget behind α.

use crate::analysis::selftimed::SelfTimedExecutor;
use crate::error::SdfError;
use crate::graph::SdfGraph;

/// Peak token counts per channel over a complete execution (transient +
/// one full period).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyResult {
    /// Maximum simultaneous tokens per channel index.
    pub peak: Vec<u64>,
    /// States examined until the recurrence closed.
    pub states_explored: usize,
}

impl OccupancyResult {
    /// The peak of one channel.
    pub fn of(&self, channel: crate::ids::ChannelId) -> u64 {
        self.peak[channel.index()]
    }
}

/// Runs the self-timed execution until a recurrent state, recording each
/// channel's peak occupancy.
///
/// # Errors
///
/// * [`SdfError::Deadlock`] if the execution stalls;
/// * [`SdfError::BudgetExceeded`] if no recurrence is found within
///   `state_budget` steps.
///
/// # Examples
///
/// ```
/// use sdfrs_sdf::{SdfGraph, analysis::occupancy::max_occupancy};
/// let mut g = SdfGraph::new("ring");
/// let a = g.add_actor("a", 1);
/// let b = g.add_actor("b", 4);
/// let ab = g.add_channel("ab", a, 1, b, 1, 0);
/// g.add_channel("ba", b, 1, a, 1, 3);
/// // a is 4× faster: tokens pile up on ab, but at most the 3 circulating.
/// let occ = max_occupancy(&g, 100_000)?;
/// assert_eq!(occ.of(ab), 3);
/// # Ok::<(), sdfrs_sdf::SdfError>(())
/// ```
pub fn max_occupancy(graph: &SdfGraph, state_budget: usize) -> Result<OccupancyResult, SdfError> {
    use crate::analysis::interner::StateInterner;
    let mut executor = SelfTimedExecutor::new(graph);
    let mut peak: Vec<u64> = executor.state().tokens.clone();
    let mut seen = StateInterner::new();
    let mut scratch = Vec::new();
    executor.state().encode_into(&mut scratch);
    seen.intern(&scratch);
    let mut states = 0usize;
    loop {
        states += 1;
        if states > state_budget {
            return Err(SdfError::BudgetExceeded {
                analysis: "occupancy analysis",
                budget: state_budget,
            });
        }
        // Sample the peak *between* completions and starts: produced
        // tokens momentarily occupy the channel even when a waiting
        // consumer grabs them in the same instant.
        let completed = executor.complete_finished();
        for (i, &t) in executor.state().tokens.iter().enumerate() {
            if t > peak[i] {
                peak[i] = t;
            }
        }
        let started = executor.start_all_enabled();
        if executor.advance_clock().is_none() && completed.is_empty() && started.is_empty() {
            let first = graph.actor_ids().next().ok_or(SdfError::Empty)?;
            return Err(SdfError::Deadlock { actor: first });
        }
        for (i, &t) in executor.state().tokens.iter().enumerate() {
            if t > peak[i] {
                peak[i] = t;
            }
        }
        executor.state().encode_into(&mut scratch);
        if !seen.intern(&scratch).1 {
            return Ok(OccupancyResult {
                peak,
                states_explored: states,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conserved_pairs_bound_occupancy() {
        // Buffered channel pair: forward Tok=1, reverse α=3 ⇒ peak ≤ 4.
        let mut g = SdfGraph::new("pair");
        let a = g.add_actor("a", 2);
        let b = g.add_actor("b", 3);
        let fwd = g.add_channel("fwd", a, 1, b, 1, 1);
        let rev = g.add_channel("rev", b, 1, a, 1, 3);
        let occ = max_occupancy(&g, 100_000).unwrap();
        assert!(occ.of(fwd) <= 4);
        assert!(occ.of(rev) <= 4);
        assert!(occ.of(fwd) + occ.of(rev) >= 4, "tokens circulate");
    }

    #[test]
    fn multirate_peaks_respect_batches() {
        // a produces 3 per firing, b consumes 1: peak on ab at least 3.
        let mut g = SdfGraph::new("mr");
        let a = g.add_actor("a", 2);
        let b = g.add_actor("b", 1);
        let ab = g.add_channel("ab", a, 3, b, 1, 0);
        g.add_channel("ba", b, 1, a, 3, 3);
        let occ = max_occupancy(&g, 100_000).unwrap();
        assert!(occ.of(ab) >= 3);
        assert!(occ.of(ab) <= 3 + 3, "bounded by circulating tokens");
    }

    #[test]
    fn initial_tokens_count_as_occupancy() {
        let mut g = SdfGraph::new("init");
        let a = g.add_actor("a", 5);
        let sf = g.add_self_edge(a, 2);
        let occ = max_occupancy(&g, 1_000).unwrap();
        assert!(occ.of(sf) >= 2);
    }

    #[test]
    fn deadlock_is_reported() {
        let mut g = SdfGraph::new("dead");
        let a = g.add_actor("a", 1);
        g.add_self_edge(a, 0);
        assert!(matches!(
            max_occupancy(&g, 1_000),
            Err(SdfError::Deadlock { .. })
        ));
    }

    #[test]
    fn budget_is_respected() {
        // Unbounded accumulation: no recurrence.
        let mut g = SdfGraph::new("unbounded");
        let a = g.add_actor("a", 1);
        let b = g.add_actor("b", 3);
        g.add_self_edge(a, 1);
        g.add_self_edge(b, 1);
        g.add_channel("ab", a, 1, b, 1, 0);
        assert!(matches!(
            max_occupancy(&g, 100),
            Err(SdfError::BudgetExceeded { .. })
        ));
    }
}
