//! Flat, arena-backed interning of execution states.
//!
//! The state-space explorers ([`selftimed`](crate::analysis::selftimed),
//! [`occupancy`](crate::analysis::occupancy), and the constrained executor
//! in `sdfrs-core`) detect recurrence by remembering every visited state.
//! Hashing an [`ExecState`](crate::analysis::selftimed::ExecState) through
//! `HashMap<ExecState, _>` clones one `Vec<u64>` per channel-token vector
//! plus one `Vec<u64>` per actor lane for every explored state, and SipHash
//! re-walks the nested structure on every lookup.
//!
//! [`StateInterner`] replaces that with a single flat encoding per state:
//! the caller serializes the state into a reusable `Vec<u64>` scratch
//! buffer, and the interner stores it once in a shared arena. Lookup is an
//! open-addressing probe over `(precomputed hash, id)` slots — recurrence
//! hits never re-hash, and misses cost one `Vec` extension instead of a
//! nested clone. Ids are dense (`0, 1, 2, …` in insertion order), so
//! per-state payloads live in plain vectors indexed by id.

use sdfrs_fastutil::fxhash::hash_u64s;

/// Slot marker for an empty open-addressing table entry.
const EMPTY: u32 = u32::MAX;

/// Interns `&[u64]`-encoded states, assigning dense ids in first-seen
/// order.
///
/// # Examples
///
/// ```
/// use sdfrs_sdf::analysis::interner::StateInterner;
/// let mut interner = StateInterner::new();
/// let (a, new_a) = interner.intern(&[1, 2, 3]);
/// let (b, new_b) = interner.intern(&[1, 2, 3]);
/// assert_eq!(a, b);
/// assert!(new_a && !new_b);
/// assert_eq!(interner.get(a), &[1, 2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct StateInterner {
    /// Concatenated encodings of all interned states.
    arena: Vec<u64>,
    /// `offsets[id]..offsets[id + 1]` is state `id`'s slice of the arena.
    offsets: Vec<usize>,
    /// Open-addressing slots: precomputed hash + state id.
    slots: Vec<(u64, u32)>,
    /// `slots.len() - 1`; the table size is always a power of two.
    mask: usize,
}

impl StateInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::with_capacity(1024)
    }

    /// Creates an interner pre-sized for roughly `states` entries.
    pub fn with_capacity(states: usize) -> Self {
        let table = (states * 2).next_power_of_two().max(16);
        StateInterner {
            arena: Vec::new(),
            offsets: vec![0],
            slots: vec![(0, EMPTY); table],
            mask: table - 1,
        }
    }

    /// Number of distinct states interned.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Arena words held (diagnostic: memory footprint ∝ this).
    pub fn arena_words(&self) -> usize {
        self.arena.len()
    }

    /// Forgets every interned state but keeps the allocated arena and
    /// slot table, so a sequence of explorations can reuse one interner
    /// without re-growing it from scratch each time.
    pub fn clear(&mut self) {
        self.arena.clear();
        self.offsets.clear();
        self.offsets.push(0);
        self.slots.fill((0, EMPTY));
    }

    /// Grows the slot table (if needed) so that roughly `states` entries
    /// fit before the next resize. Existing entries are preserved.
    pub fn reserve(&mut self, states: usize) {
        let needed = ((self.len() + states) * 2).next_power_of_two().max(16);
        while self.slots.len() < needed {
            self.grow();
        }
    }

    /// The encoded words of state `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never returned by [`intern`](Self::intern).
    pub fn get(&self, id: u32) -> &[u64] {
        let id = id as usize;
        &self.arena[self.offsets[id]..self.offsets[id + 1]]
    }

    /// Interns `words`, returning `(id, freshly_inserted)`. The hash is
    /// computed exactly once per call; a recurrence hit compares slices
    /// only on hash equality.
    pub fn intern(&mut self, words: &[u64]) -> (u32, bool) {
        let hash = hash_u64s(words);
        let mut i = hash as usize & self.mask;
        loop {
            let (slot_hash, slot_id) = self.slots[i];
            if slot_id == EMPTY {
                break;
            }
            if slot_hash == hash && self.get(slot_id) == words {
                return (slot_id, false);
            }
            i = (i + 1) & self.mask;
        }
        let id = self.len() as u32;
        self.arena.extend_from_slice(words);
        self.offsets.push(self.arena.len());
        self.slots[i] = (hash, id);
        // Grow at 7/8 load; stored hashes make the rehash content-free.
        if (self.len() + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        (id, true)
    }

    fn grow(&mut self) {
        let new_size = self.slots.len() * 2;
        let mut slots = vec![(0u64, EMPTY); new_size];
        let mask = new_size - 1;
        for &(hash, id) in self.slots.iter().filter(|&&(_, id)| id != EMPTY) {
            let mut i = hash as usize & mask;
            while slots[i].1 != EMPTY {
                i = (i + 1) & mask;
            }
            slots[i] = (hash, id);
        }
        self.slots = slots;
        self.mask = mask;
    }
}

impl Default for StateInterner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_ids_in_insertion_order() {
        let mut it = StateInterner::new();
        assert!(it.is_empty());
        let (a, _) = it.intern(&[5]);
        let (b, _) = it.intern(&[6, 7]);
        let (c, _) = it.intern(&[]);
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(it.len(), 3);
        assert_eq!(it.get(0), &[5]);
        assert_eq!(it.get(1), &[6, 7]);
        assert_eq!(it.get(2), &[] as &[u64]);
    }

    #[test]
    fn recurrence_hits_return_original_id() {
        let mut it = StateInterner::new();
        let (a, fresh) = it.intern(&[1, 2, 3]);
        assert!(fresh);
        for _ in 0..5 {
            let (b, fresh) = it.intern(&[1, 2, 3]);
            assert_eq!(b, a);
            assert!(!fresh);
        }
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn growth_preserves_all_entries() {
        let mut it = StateInterner::with_capacity(4);
        let keys: Vec<Vec<u64>> = (0..1000u64).map(|i| vec![i, i * 31, i ^ 7]).collect();
        let ids: Vec<u32> = keys.iter().map(|k| it.intern(k).0).collect();
        assert_eq!(it.len(), 1000);
        for (k, &id) in keys.iter().zip(&ids) {
            let (again, fresh) = it.intern(k);
            assert_eq!(again, id);
            assert!(!fresh);
            assert_eq!(it.get(id), k.as_slice());
        }
    }

    #[test]
    fn clear_retains_capacity_and_restarts_ids() {
        let mut it = StateInterner::new();
        for i in 0..100u64 {
            it.intern(&[i, i + 1]);
        }
        let slots_before = it.slots.len();
        it.clear();
        assert!(it.is_empty());
        assert_eq!(it.arena_words(), 0);
        assert_eq!(it.slots.len(), slots_before);
        let (id, fresh) = it.intern(&[42]);
        assert_eq!((id, fresh), (0, true));
        assert_eq!(it.get(0), &[42]);
    }

    #[test]
    fn reserve_avoids_incremental_growth() {
        let mut it = StateInterner::with_capacity(4);
        it.reserve(1000);
        let slots = it.slots.len();
        for i in 0..900u64 {
            it.intern(&[i]);
        }
        assert_eq!(it.slots.len(), slots, "no regrowth after reserve");
        assert_eq!(it.len(), 900);
    }

    #[test]
    fn distinguishes_prefixes_and_boundaries() {
        let mut it = StateInterner::new();
        let (a, _) = it.intern(&[1, 2]);
        let (b, _) = it.intern(&[1, 2, 0]);
        let (c, _) = it.intern(&[1]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
